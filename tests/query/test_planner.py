"""Tests for query compilation and validation."""

import pytest

from repro.errors import QueryError
from repro.query.executor import ExecutorConfig
from repro.query.parser import CompareCondition, SignificanceCondition
from repro.query.planner import (
    PLAN_CACHE_MAX,
    clear_plan_cache,
    compile_query,
    compile_query_cached,
    plan_cache_size,
    prefix_fingerprint,
)
from repro.streams.tuples import Schema


class TestCompilation:
    def test_compiles_from_text(self):
        compiled = compile_query("SELECT a, b AS bee FROM s WHERE a > 1")
        assert compiled.source == "s"
        assert len(compiled.select_items) == 2
        assert len(compiled.conjuncts) == 1
        assert compiled.referenced_columns == frozenset({"a", "b"})

    def test_flattens_nested_and(self):
        compiled = compile_query(
            "SELECT a FROM s WHERE a > 1 AND b > 2 AND c > 3"
        )
        assert len(compiled.conjuncts) == 3
        assert all(
            isinstance(c, CompareCondition) for c in compiled.conjuncts
        )

    def test_no_where_gives_no_conjuncts(self):
        compiled = compile_query("SELECT a FROM s")
        assert compiled.conjuncts == ()

    def test_collects_columns_from_sig_conditions(self):
        compiled = compile_query(
            "SELECT a FROM s WHERE mdTest(x, y, '>', 0, 0.05)"
        )
        assert {"x", "y"} <= compiled.referenced_columns
        assert isinstance(compiled.conjuncts[0], SignificanceCondition)


class TestSchemaValidation:
    def test_accepts_known_columns(self):
        schema = Schema(["a", "b"])
        compile_query("SELECT a FROM s WHERE b > 1", schema)

    def test_rejects_unknown_columns(self):
        schema = Schema(["a"])
        with pytest.raises(QueryError, match="unknown attributes"):
            compile_query("SELECT a FROM s WHERE b > 1", schema)

    def test_rejects_unknown_in_select(self):
        schema = Schema(["a"])
        with pytest.raises(QueryError):
            compile_query("SELECT z FROM s", schema)


class TestCompositionRules:
    def test_rejects_significance_under_or(self):
        with pytest.raises(QueryError, match="significance"):
            compile_query(
                "SELECT a FROM s WHERE mTest(a, '>', 0, 0.05) OR a > 1"
            )

    def test_rejects_significance_under_not(self):
        with pytest.raises(QueryError, match="significance"):
            compile_query(
                "SELECT a FROM s WHERE NOT mTest(a, '>', 0, 0.05)"
            )

    def test_rejects_threshold_under_or(self):
        with pytest.raises(QueryError, match="threshold"):
            compile_query(
                "SELECT a FROM s WHERE (a > 1 PROB 0.5) OR b > 2"
            )

    def test_allows_bare_comparisons_under_or_not(self):
        compiled = compile_query(
            "SELECT a FROM s WHERE a > 1 OR NOT b > 2"
        )
        assert len(compiled.conjuncts) == 1

    def test_rejects_duplicate_output_names(self):
        with pytest.raises(QueryError, match="duplicate"):
            compile_query("SELECT a, b AS a FROM s")


class TestPlanCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_plan_cache()
        yield
        clear_plan_cache()

    def test_identical_text_shares_one_plan(self):
        first, hit1 = compile_query_cached("SELECT a FROM s WHERE a > 1")
        second, hit2 = compile_query_cached("SELECT a FROM s WHERE a > 1")
        assert (hit1, hit2) == (False, True)
        assert first is second

    def test_whitespace_normalized_key(self):
        first, _ = compile_query_cached("SELECT a FROM s")
        second, hit = compile_query_cached("SELECT   a\n  FROM  s")
        assert hit is True
        assert first is second

    def test_eviction_bound_holds(self):
        for i in range(PLAN_CACHE_MAX + 10):
            compile_query_cached(f"SELECT a FROM s WHERE a > {i}")
        assert plan_cache_size() == PLAN_CACHE_MAX

    def test_lru_eviction_keeps_recently_used(self):
        compile_query_cached("SELECT a FROM keepme")
        for i in range(PLAN_CACHE_MAX - 1):
            compile_query_cached(f"SELECT a FROM s WHERE a > {i}")
        # Touch the oldest entry, then overflow by one: the untouched
        # second-oldest is evicted instead.
        _, hit = compile_query_cached("SELECT a FROM keepme")
        assert hit is True
        compile_query_cached("SELECT a FROM overflow")
        _, hit = compile_query_cached("SELECT a FROM keepme")
        assert hit is True

    def test_clear_empties_cache(self):
        compile_query_cached("SELECT a FROM s")
        clear_plan_cache()
        assert plan_cache_size() == 0


class TestPrefixFingerprint:
    def test_where_order_limit_excluded(self):
        config = ExecutorConfig()
        base = prefix_fingerprint(
            compile_query("SELECT a, b FROM s WHERE a > 1 PROB 0.5"),
            config,
        )
        other = prefix_fingerprint(
            compile_query(
                "SELECT a, b FROM s WHERE b < 9 ORDER BY a LIMIT 3"
            ),
            config,
        )
        assert base == other

    def test_select_structure_included(self):
        config = ExecutorConfig()
        a = prefix_fingerprint(compile_query("SELECT a FROM s"), config)
        b = prefix_fingerprint(compile_query("SELECT b FROM s"), config)
        star = prefix_fingerprint(compile_query("SELECT * FROM s"), config)
        assert len({a, b, star}) == 3

    def test_source_included(self):
        config = ExecutorConfig()
        assert prefix_fingerprint(
            compile_query("SELECT a FROM s"), config
        ) != prefix_fingerprint(compile_query("SELECT a FROM t"), config)

    def test_accuracy_config_included(self):
        compiled = compile_query("SELECT a FROM s")
        assert prefix_fingerprint(
            compiled, ExecutorConfig(confidence=0.9)
        ) != prefix_fingerprint(compiled, ExecutorConfig(confidence=0.95))
        assert prefix_fingerprint(
            compiled, ExecutorConfig(accuracy_method="bootstrap")
        ) != prefix_fingerprint(
            compiled, ExecutorConfig(accuracy_method="analytic")
        )

    def test_seed_and_keep_unsure_excluded(self):
        compiled = compile_query("SELECT a FROM s")
        assert prefix_fingerprint(
            compiled, ExecutorConfig(seed=1)
        ) == prefix_fingerprint(compiled, ExecutorConfig(seed=2))
        assert prefix_fingerprint(
            compiled, ExecutorConfig(keep_unsure=True)
        ) == prefix_fingerprint(compiled, ExecutorConfig(keep_unsure=False))

    def test_aggregate_plans_have_no_fingerprint(self):
        assert (
            prefix_fingerprint(
                compile_query("SELECT AVG(a) FROM s"), ExecutorConfig()
            )
            is None
        )
