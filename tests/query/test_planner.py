"""Tests for query compilation and validation."""

import pytest

from repro.errors import QueryError
from repro.query.parser import CompareCondition, SignificanceCondition
from repro.query.planner import compile_query
from repro.streams.tuples import Schema


class TestCompilation:
    def test_compiles_from_text(self):
        compiled = compile_query("SELECT a, b AS bee FROM s WHERE a > 1")
        assert compiled.source == "s"
        assert len(compiled.select_items) == 2
        assert len(compiled.conjuncts) == 1
        assert compiled.referenced_columns == frozenset({"a", "b"})

    def test_flattens_nested_and(self):
        compiled = compile_query(
            "SELECT a FROM s WHERE a > 1 AND b > 2 AND c > 3"
        )
        assert len(compiled.conjuncts) == 3
        assert all(
            isinstance(c, CompareCondition) for c in compiled.conjuncts
        )

    def test_no_where_gives_no_conjuncts(self):
        compiled = compile_query("SELECT a FROM s")
        assert compiled.conjuncts == ()

    def test_collects_columns_from_sig_conditions(self):
        compiled = compile_query(
            "SELECT a FROM s WHERE mdTest(x, y, '>', 0, 0.05)"
        )
        assert {"x", "y"} <= compiled.referenced_columns
        assert isinstance(compiled.conjuncts[0], SignificanceCondition)


class TestSchemaValidation:
    def test_accepts_known_columns(self):
        schema = Schema(["a", "b"])
        compile_query("SELECT a FROM s WHERE b > 1", schema)

    def test_rejects_unknown_columns(self):
        schema = Schema(["a"])
        with pytest.raises(QueryError, match="unknown attributes"):
            compile_query("SELECT a FROM s WHERE b > 1", schema)

    def test_rejects_unknown_in_select(self):
        schema = Schema(["a"])
        with pytest.raises(QueryError):
            compile_query("SELECT z FROM s", schema)


class TestCompositionRules:
    def test_rejects_significance_under_or(self):
        with pytest.raises(QueryError, match="significance"):
            compile_query(
                "SELECT a FROM s WHERE mTest(a, '>', 0, 0.05) OR a > 1"
            )

    def test_rejects_significance_under_not(self):
        with pytest.raises(QueryError, match="significance"):
            compile_query(
                "SELECT a FROM s WHERE NOT mTest(a, '>', 0, 0.05)"
            )

    def test_rejects_threshold_under_or(self):
        with pytest.raises(QueryError, match="threshold"):
            compile_query(
                "SELECT a FROM s WHERE (a > 1 PROB 0.5) OR b > 2"
            )

    def test_allows_bare_comparisons_under_or_not(self):
        compiled = compile_query(
            "SELECT a FROM s WHERE a > 1 OR NOT b > 2"
        )
        assert len(compiled.conjuncts) == 1

    def test_rejects_duplicate_output_names(self):
        with pytest.raises(QueryError, match="duplicate"):
            compile_query("SELECT a, b AS a FROM s")
