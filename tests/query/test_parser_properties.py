"""Property-based tests for the parser: AST -> text -> AST round trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.expressions import (
    BinaryOp,
    Column,
    Expression,
    Literal,
    UnaryOp,
)
from repro.query.parser import parse_expression, parse_query

_COLUMNS = ("a", "b", "c", "delay", "speed")


@st.composite
def expressions(draw, depth: int = 0) -> Expression:
    if depth >= 4:
        kind = draw(st.sampled_from(["column", "literal"]))
    else:
        kind = draw(
            st.sampled_from(
                ["column", "literal", "binary", "unary", "binary"]
            )
        )
    if kind == "column":
        return Column(draw(st.sampled_from(_COLUMNS)))
    if kind == "literal":
        value = draw(
            st.floats(
                min_value=0.0, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            )
        )
        return Literal(value)
    if kind == "binary":
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        return BinaryOp(
            op,
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
        )
    op = draw(st.sampled_from(["sqrtabs", "square", "abs", "neg"]))
    return UnaryOp(op, draw(expressions(depth=depth + 1)))


def render(expr: Expression) -> str:
    """Render an AST to parseable query text."""
    if isinstance(expr, Column):
        return expr.name
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, BinaryOp):
        return f"({render(expr.left)} {expr.op} {render(expr.right)})"
    assert isinstance(expr, UnaryOp)
    if expr.op == "neg":
        return f"(-{render(expr.operand)})"
    keyword = {"sqrtabs": "SQRT", "square": "SQUARE", "abs": "ABS"}[expr.op]
    return f"{keyword}({render(expr.operand)})"


@given(expr=expressions())
@settings(max_examples=300, deadline=None)
def test_expression_round_trip(expr):
    reparsed = parse_expression(render(expr))
    assert reparsed == expr


@given(expr=expressions())
@settings(max_examples=100, deadline=None)
def test_round_trip_preserves_columns(expr):
    reparsed = parse_expression(render(expr))
    assert reparsed.columns() == expr.columns()


@given(
    expr=expressions(),
    threshold=st.floats(min_value=0.01, max_value=0.99),
    constant=st.floats(min_value=-1000, max_value=1000),
)
@settings(max_examples=150, deadline=None)
def test_query_round_trip_with_threshold(expr, threshold, constant):
    text = (
        f"SELECT x FROM s WHERE {render(expr)} > {constant!r} "
        f"PROB {threshold!r}"
    )
    query = parse_query(text)
    assert query.where is not None
    assert query.where.comparison.left == expr
    assert query.where.threshold == threshold


@given(
    exprs=st.lists(expressions(), min_size=1, max_size=4),
)
@settings(max_examples=100, deadline=None)
def test_select_list_round_trip(exprs):
    text = "SELECT " + ", ".join(
        f"{render(e)} AS f{i}" for i, e in enumerate(exprs)
    ) + " FROM s"
    query = parse_query(text)
    assert len(query.select_items) == len(exprs)
    for (parsed, alias), (i, original) in zip(
        query.select_items, enumerate(exprs)
    ):
        assert parsed == original
        assert alias == f"f{i}"
