"""Tests for accuracy-aware query execution."""

import numpy as np
import pytest

from repro.core.coupled import ThreeValued
from repro.core.dfsample import DfSized
from repro.distributions.base import Deterministic
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import QueryError
from repro.learning.histogram_learner import HistogramLearner
from repro.query.executor import ExecutorConfig, QueryExecutor, run_query
from repro.streams.tuples import Schema, UncertainTuple


def _gaussian_tuple(name, mu, sigma2, n, **extra):
    attributes = {name: DfSized(GaussianDistribution(mu, sigma2), n)}
    attributes.update(extra)
    return UncertainTuple(attributes)


class TestSelectEvaluation:
    def test_star_keeps_all_attributes(self):
        results = run_query(
            "SELECT * FROM s",
            [_gaussian_tuple("speed", 50, 4, 10, road=3.0)],
            config=ExecutorConfig(seed=0),
        )
        assert set(results[0].attributes) == {"speed", "road"}

    def test_expressions_with_aliases(self):
        results = run_query(
            "SELECT speed * 2 AS double FROM s",
            [_gaussian_tuple("speed", 10, 1, 10)],
            config=ExecutorConfig(seed=0),
        )
        value = results[0].value("double")
        assert value.distribution.mean() == pytest.approx(20.0)

    def test_unknown_result_field_raises(self):
        results = run_query(
            "SELECT speed FROM s",
            [_gaussian_tuple("speed", 10, 1, 10)],
            config=ExecutorConfig(seed=0),
        )
        with pytest.raises(QueryError):
            results[0].value("nope")


class TestWhereSemantics:
    def test_bare_comparison_scales_probability(self):
        results = run_query(
            "SELECT speed FROM s WHERE speed > 50",
            [_gaussian_tuple("speed", 50, 4, 20)],
            config=ExecutorConfig(seed=0),
        )
        assert results[0].probability == pytest.approx(0.5)

    def test_impossible_predicate_drops_tuple(self):
        results = run_query(
            "SELECT speed FROM s WHERE speed > 1000",
            [_gaussian_tuple("speed", 0, 1, 20)],
            config=ExecutorConfig(seed=0),
        )
        assert results == []

    def test_threshold_requires_minimum_probability(self):
        tuples = [
            _gaussian_tuple("speed", 52, 4, 20, road=1.0),  # P[>50] ~ .84
            _gaussian_tuple("speed", 49, 4, 20, road=2.0),  # P[>50] ~ .31
        ]
        results = run_query(
            "SELECT road FROM s WHERE speed > 50 PROB 0.5",
            tuples,
            config=ExecutorConfig(seed=0),
        )
        assert len(results) == 1
        assert results[0].value("road").distribution.mean() == 1.0

    def test_and_multiplies_probabilities(self):
        tup = _gaussian_tuple("a", 0, 1, 20)
        tup.attributes["b"] = DfSized(GaussianDistribution(0, 1), 30)
        results = run_query(
            "SELECT a FROM s WHERE a > 0 AND b > 0",
            [tup],
            config=ExecutorConfig(seed=0),
        )
        assert results[0].probability == pytest.approx(0.25)

    def test_or_uses_inclusion_exclusion(self):
        tup = _gaussian_tuple("a", 0, 1, 20)
        tup.attributes["b"] = DfSized(GaussianDistribution(0, 1), 20)
        results = run_query(
            "SELECT a FROM s WHERE a > 0 OR b > 0",
            [tup],
            config=ExecutorConfig(seed=0),
        )
        assert results[0].probability == pytest.approx(0.75)

    def test_not_complements(self):
        results = run_query(
            "SELECT a FROM s WHERE NOT a > 0",
            [_gaussian_tuple("a", 0, 1, 20)],
            config=ExecutorConfig(seed=0),
        )
        assert results[0].probability == pytest.approx(0.5)

    def test_input_probability_propagates(self):
        tup = UncertainTuple(
            {"a": DfSized(GaussianDistribution(100, 1), 20)},
            probability=0.5,
        )
        results = run_query(
            "SELECT a FROM s WHERE a > 0", [tup],
            config=ExecutorConfig(seed=0),
        )
        assert results[0].probability == pytest.approx(0.5)


class TestSignificanceInWhere:
    def test_single_mtest_filters(self):
        tuples = [
            _gaussian_tuple("t", 120, 100, 50, tag=1.0),
            _gaussian_tuple("t", 98, 100, 50, tag=2.0),
        ]
        results = run_query(
            "SELECT tag FROM s WHERE mTest(t, '>', 100, 0.05)",
            tuples,
            config=ExecutorConfig(seed=0),
        )
        assert len(results) == 1
        assert results[0].value("tag").distribution.mean() == 1.0
        assert results[0].decisions == (ThreeValued.TRUE,)

    def test_coupled_mtest_unsure_dropped_by_default(self):
        marginal = _gaussian_tuple("t", 100.5, 100, 20)
        results = run_query(
            "SELECT t FROM s WHERE mTest(t, '>', 100, 0.05, 0.05)",
            [marginal],
            config=ExecutorConfig(seed=0),
        )
        assert results == []

    def test_coupled_mtest_unsure_kept_by_policy(self):
        marginal = _gaussian_tuple("t", 100.5, 100, 20)
        results = run_query(
            "SELECT t FROM s WHERE mTest(t, '>', 100, 0.05, 0.05)",
            [marginal],
            config=ExecutorConfig(seed=0, keep_unsure=True),
        )
        assert len(results) == 1
        assert results[0].decisions == (ThreeValued.UNSURE,)

    def test_mdtest_between_fields(self):
        tup = UncertainTuple(
            {
                "x": DfSized(GaussianDistribution(10, 1), 30),
                "y": DfSized(GaussianDistribution(5, 1), 30),
            }
        )
        results = run_query(
            "SELECT x FROM s WHERE mdTest(x, y, '>', 0, 0.05)",
            [tup],
            config=ExecutorConfig(seed=0),
        )
        assert len(results) == 1

    def test_ptest_example9(self):
        """Paper Example 9: only the large-sample field passes pTest."""
        y = _gaussian_tuple("temp", 101.3, 25, 100)  # P[>100] ~ 0.6
        x_small = _gaussian_tuple("temp", 101.3, 25, 5)
        query = "SELECT temp FROM s WHERE pTest(temp > 100, 0.5, 0.05)"
        assert len(
            run_query(query, [y], config=ExecutorConfig(seed=0))
        ) == 1
        assert run_query(query, [x_small], config=ExecutorConfig(seed=0)) == []

    def test_ptest_rejects_exact_comparison(self):
        tup = UncertainTuple({"k": 5.0})
        with pytest.raises(QueryError):
            run_query(
                "SELECT k FROM s WHERE pTest(k > 1, 0.5, 0.05)",
                [tup],
                config=ExecutorConfig(seed=0),
            )


class TestAccuracyAttachment:
    def test_analytic_accuracy_on_fields(self):
        results = run_query(
            "SELECT speed FROM s",
            [_gaussian_tuple("speed", 50, 4, 20)],
            config=ExecutorConfig(seed=0, confidence=0.9),
        )
        info = results[0].accuracy["speed"]
        assert info.method == "analytic"
        assert info.mean.contains(50.0)
        assert info.sample_size == 20

    def test_histogram_fields_get_bin_accuracy(self, rng):
        learner = HistogramLearner(bucket_count=4)
        fitted = learner.learn(rng.normal(60, 10, 40))
        tup = UncertainTuple({"delay": fitted.as_dfsized()})
        results = run_query(
            "SELECT delay FROM s", [tup],
            config=ExecutorConfig(seed=0),
        )
        assert len(results[0].accuracy["delay"].bins) == 4

    def test_bootstrap_accuracy(self):
        results = run_query(
            "SELECT speed + speed AS s2 FROM s",
            [_gaussian_tuple("speed", 50, 4, 20)],
            config=ExecutorConfig(seed=0, accuracy_method="bootstrap"),
        )
        info = results[0].accuracy["s2"]
        assert info.method == "bootstrap"
        assert info.mean.contains(100.0)

    def test_none_method_attaches_nothing(self):
        results = run_query(
            "SELECT speed FROM s WHERE speed > 0",
            [_gaussian_tuple("speed", 50, 4, 20)],
            config=ExecutorConfig(seed=0, accuracy_method="none"),
        )
        assert results[0].accuracy == {}
        assert results[0].probability_interval is None

    def test_exact_fields_have_no_accuracy(self):
        results = run_query(
            "SELECT k FROM s",
            [UncertainTuple({"k": 5.0})],
            config=ExecutorConfig(seed=0),
        )
        assert results[0].accuracy == {}

    def test_tuple_probability_interval_example5(self):
        """Example 5: P=0.6 at n=20 -> 90% interval [0.42, 0.78]."""
        # A Gaussian with P[X > 80] = 0.6 exactly.
        from scipy import stats

        mu = 80 - stats.norm.ppf(0.4) * 2.0  # sd 2
        tup = UncertainTuple({"c": DfSized(GaussianDistribution(mu, 4.0), 20)})
        results = run_query(
            "SELECT c FROM s WHERE c > 80", [tup],
            config=ExecutorConfig(seed=0, confidence=0.9),
        )
        interval = results[0].probability_interval.interval
        assert interval.low == pytest.approx(0.42, abs=0.01)
        assert interval.high == pytest.approx(0.78, abs=0.01)

    def test_describe_renders(self):
        results = run_query(
            "SELECT speed FROM s WHERE speed > 40",
            [_gaussian_tuple("speed", 50, 4, 20)],
            config=ExecutorConfig(seed=0),
        )
        text = results[0].describe()
        assert "probability" in text
        assert "speed" in text


class TestExecutorConfig:
    def test_rejects_bad_method(self):
        with pytest.raises(QueryError):
            ExecutorConfig(accuracy_method="quantum")

    def test_rejects_bad_confidence(self):
        with pytest.raises(QueryError):
            ExecutorConfig(confidence=0.0)

    def test_rejects_bad_resamples(self):
        with pytest.raises(QueryError):
            ExecutorConfig(bootstrap_resamples=1)

    def test_schema_checked_at_construction(self):
        schema = Schema(["a"])
        with pytest.raises(QueryError):
            QueryExecutor("SELECT z FROM s", schema=schema)

    def test_seeded_runs_are_reproducible(self):
        tup = _gaussian_tuple("a", 5, 4, 10)
        first = run_query(
            "SELECT a * a AS sq FROM s", [tup],
            config=ExecutorConfig(seed=42),
        )
        second = run_query(
            "SELECT a * a AS sq FROM s", [tup],
            config=ExecutorConfig(seed=42),
        )
        assert first[0].value("sq").distribution.mean() == pytest.approx(
            second[0].value("sq").distribution.mean()
        )


class TestAdaptiveBootstrapConfig:
    def test_rejects_bad_targets(self):
        with pytest.raises(QueryError):
            ExecutorConfig(target_ci_width=0.0)
        with pytest.raises(QueryError):
            ExecutorConfig(target_relative_width=-1.0)
        with pytest.raises(QueryError):
            ExecutorConfig(bootstrap_initial_resamples=1)
        with pytest.raises(QueryError):
            ExecutorConfig(bootstrap_growth=1.0)

    def test_fixed_budget_is_multiple_of_n(self):
        # mc_samples=1000, n=300 -> rounded up to 1200, nothing dropped.
        results = run_query(
            "SELECT speed + speed AS s2 FROM s",
            [_gaussian_tuple("speed", 50, 4, 300)],
            config=ExecutorConfig(
                seed=0, accuracy_method="bootstrap", mc_samples=1000,
                bootstrap_resamples=2,
            ),
        )
        info = results[0].accuracy["s2"]
        assert info.values_dropped == 0
        assert info.values_used == 1200
        assert info.values_used % 300 == 0

    def test_budget_floor_is_two_chunks(self):
        # n so large that mc_samples < 2n: budget rises to 2n.
        results = run_query(
            "SELECT speed FROM s",
            [_gaussian_tuple("speed", 50, 4, 900)],
            config=ExecutorConfig(
                seed=0, accuracy_method="bootstrap", mc_samples=100,
                bootstrap_resamples=2,
            ),
        )
        info = results[0].accuracy["speed"]
        assert info.values_used == 1800
        assert info.values_dropped == 0

    def test_adaptive_target_stops_early_and_records_rounds(self):
        fixed = run_query(
            "SELECT speed + speed AS s2 FROM s",
            [_gaussian_tuple("speed", 50, 4, 20)],
            config=ExecutorConfig(
                seed=0, accuracy_method="bootstrap",
                bootstrap_resamples=100,
            ),
        )[0].accuracy["s2"]
        adaptive = run_query(
            "SELECT speed + speed AS s2 FROM s",
            [_gaussian_tuple("speed", 50, 4, 20)],
            config=ExecutorConfig(
                seed=0, accuracy_method="bootstrap",
                bootstrap_resamples=100,
                target_ci_width=10.0 * fixed.mean.length,
            ),
        )[0].accuracy["s2"]
        assert fixed.draws_used == 100 * 20
        assert adaptive.draws_used < fixed.draws_used
        assert adaptive.draws_used % 20 == 0
        assert adaptive.rounds >= 1
        assert adaptive.method == "bootstrap"

    def test_unreachable_target_runs_full_budget(self):
        info = run_query(
            "SELECT speed FROM s",
            [_gaussian_tuple("speed", 50, 4, 20)],
            config=ExecutorConfig(
                seed=0, accuracy_method="bootstrap",
                bootstrap_resamples=50, target_ci_width=1e-12,
            ),
        )[0].accuracy["speed"]
        assert info.draws_used == 50 * 20
