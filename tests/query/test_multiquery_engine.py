"""Unit tests of the shared-subplan engine internals.

The end-to-end byte-identity contract lives in
``tests/test_db_multiquery.py`` and the property suite; these pin the
pieces the contract rests on — residual vectorizability detection, the
conservative candidate screen, and the RNG guard.
"""

import numpy as np
import pytest

from repro.query.executor import ExecutorConfig, QueryExecutor
from repro.query.multiquery import (
    MultiQueryEngine,
    PrefixNeedsRng,
    _candidate_z_bound,
    _GuardRng,
    VecConjunct,
    vectorizable_conjuncts,
)
from repro.query.planner import compile_query


def _specs(text: str):
    return vectorizable_conjuncts(compile_query(text))


class TestVectorizableConjuncts:
    def test_column_op_literal(self):
        specs = _specs("SELECT a FROM s WHERE a > 5 PROB 0.7")
        assert specs == (VecConjunct("a", ">", 5.0, 0.7),)

    def test_literal_op_column_flips(self):
        specs = _specs("SELECT a FROM s WHERE 5 < a PROB 0.7")
        assert specs == (VecConjunct("a", ">", 5.0, 0.7),)

    def test_bare_comparison_has_no_threshold(self):
        specs = _specs("SELECT a FROM s WHERE a <= 3")
        assert specs == (VecConjunct("a", "<=", 3.0, None),)

    def test_multi_conjunct(self):
        specs = _specs("SELECT a FROM s WHERE a > 1 AND b < 2 PROB 0.5")
        assert specs is not None and len(specs) == 2

    def test_no_where_is_empty_tuple(self):
        assert _specs("SELECT a FROM s") == ()

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT a FROM s WHERE a = 5",  # equality: branch-order trap
            "SELECT a FROM s WHERE a <> 5",
            "SELECT a FROM s WHERE a + b > 5",  # expression arithmetic
            "SELECT a FROM s WHERE mTest(a, '>', 0, 0.05)",
            "SELECT a FROM s WHERE a > 1 OR b > 2",
            "SELECT a FROM s WHERE a > 1 ORDER BY a",
            "SELECT AVG(a) FROM s",
        ],
    )
    def test_non_vectorizable_shapes(self, text):
        assert _specs(text) is None


class TestCandidateZBound:
    def test_no_threshold_uses_underflow_bound(self):
        bound = _candidate_z_bound(VecConjunct("a", ">", 0.0, None))
        assert bound == 38.0

    def test_tiny_tau_accepts_everything(self):
        bound = _candidate_z_bound(VecConjunct("a", ">", 0.0, 1e-13))
        assert bound == np.inf

    def test_tau_above_one_rejects_everything(self):
        bound = _candidate_z_bound(VecConjunct("a", ">", 0.0, 1.0 + 1e-9))
        assert bound == -np.inf

    def test_midrange_tau_bounds_are_banded(self):
        # q >= tau  <=>  z <= erfcinv(2 tau); the screen's bound must
        # sit strictly above the exact inversion point.
        from scipy import special

        for tau in (0.1, 0.5, 0.9, 0.99):
            bound = _candidate_z_bound(VecConjunct("a", ">", 0.0, tau))
            exact = float(special.erfcinv(2.0 * tau))
            assert bound > exact
            assert bound - exact < 0.01

    def test_screen_never_rejects_a_qualifying_row(self):
        # Exhaustive scalar cross-check on a grid: every row the
        # executor accepts must be a screen candidate.
        import math

        rng = np.random.default_rng(0)
        taus = [1e-12, 0.01, 0.5, 0.9, 0.999999, 1.0]
        for tau in taus:
            bound = _candidate_z_bound(VecConjunct("a", ">", 0.0, tau))
            for _ in range(200):
                mu = float(rng.normal(0.0, 5.0))
                sigma2 = float(rng.uniform(0.0, 10.0))
                c = float(rng.normal(0.0, 5.0))
                if sigma2 > 0.0:
                    z = (c - mu) / math.sqrt(2.0 * sigma2)
                    q = 0.5 * math.erfc(z)
                    candidate = (
                        bool(bound > 0) if not np.isfinite(bound)
                        else (c - mu) <= bound * math.sqrt(2.0 * sigma2)
                    )
                else:
                    q = 1.0 if c < mu else 0.0  # step tail, > operator
                    candidate = (
                        bool(bound > 0) if not np.isfinite(bound)
                        else c <= mu
                    )
                if q >= tau:
                    assert candidate, (tau, mu, sigma2, c)


class TestGuardRng:
    def test_any_method_raises(self):
        guard = _GuardRng()
        with pytest.raises(PrefixNeedsRng):
            guard.normal(0.0, 1.0)
        with pytest.raises(PrefixNeedsRng):
            guard.choice([1, 2])

    def test_analytic_prefix_is_rng_free(self):
        executor = QueryExecutor("SELECT a FROM s")
        from repro.core.dfsample import DfSized
        from repro.distributions.gaussian import GaussianDistribution
        from repro.streams.tuples import UncertainTuple

        tup = UncertainTuple(
            {"a": DfSized(GaussianDistribution(1.0, 2.0), 10)}
        )
        attrs, acc = executor.evaluate_prefix(tup, rng=_GuardRng())
        assert set(attrs) == {"a"}
        assert acc["a"].method == "analytic"

    def test_bootstrap_prefix_trips_guard(self):
        executor = QueryExecutor(
            "SELECT a FROM s",
            config=ExecutorConfig(
                accuracy_method="bootstrap", bootstrap_resamples=4
            ),
        )
        from repro.core.dfsample import DfSized
        from repro.distributions.gaussian import GaussianDistribution
        from repro.streams.tuples import UncertainTuple

        tup = UncertainTuple(
            {"a": DfSized(GaussianDistribution(1.0, 2.0), 10)}
        )
        with pytest.raises(PrefixNeedsRng):
            executor.evaluate_prefix(tup, rng=_GuardRng())


class TestEngineBookkeeping:
    def test_groups_gauge_counts_multi_member_groups(self):
        engine = MultiQueryEngine()
        cfg = ExecutorConfig()
        for i, text in enumerate(
            [
                "SELECT a FROM s WHERE a > 1",
                "SELECT a FROM s WHERE a > 2",
                "SELECT b FROM s WHERE b > 1",
            ]
        ):
            engine.add(f"q{i}", "s", QueryExecutor(text, config=cfg), object())
        assert engine.shared_group_count() == 1
        engine.remove("q1")
        assert engine.shared_group_count() == 0
        engine.remove_source("s")
        assert engine._entries == {}

    def test_aggregate_queries_never_group(self):
        engine = MultiQueryEngine()
        engine.add(
            "agg", "s", QueryExecutor("SELECT AVG(a) FROM s"), object()
        )
        assert engine.group_size("agg") == 1


def _gaussian_tuple(mean):
    from repro.core.dfsample import DfSized
    from repro.distributions.gaussian import GaussianDistribution
    from repro.streams.tuples import UncertainTuple

    return UncertainTuple(
        {
            "a": DfSized(GaussianDistribution(mean, 1.0), 10),
            "b": DfSized(GaussianDistribution(mean, 1.0), 10),
        }
    )


def _shared_engine():
    """Two queries sharing a prefix group plus one solo query."""
    engine = MultiQueryEngine()
    cfg = ExecutorConfig()
    engine.add(
        "q0", "s",
        QueryExecutor("SELECT a FROM s WHERE a > 1 PROB 0.5", config=cfg),
        "h0",
    )
    engine.add(
        "q1", "s",
        QueryExecutor("SELECT a FROM s WHERE a > 100 PROB 0.5", config=cfg),
        "h1",
    )
    # Selects a different attribute, so it shares no prefix group.
    engine.add(
        "solo", "s",
        QueryExecutor("SELECT b FROM s WHERE b < 0 PROB 0.5", config=cfg),
        "h2",
    )
    return engine


class TestResultAttribution:
    """Per-query and per-group ``multiquery.*.results`` counters: the
    series SLO rules and frame deltas attribute load to."""

    def test_iter_results_counts_per_query_and_per_group(self):
        engine = _shared_engine()
        emitted = []
        for mean in (5.0, 5.0, -5.0):
            emitted.extend(
                handle
                for handle, _ in engine.iter_results(
                    "s", _gaussian_tuple(mean)
                )
            )
        snap = engine.metrics.snapshot()
        per_query = {
            name: snap[f"multiquery.query.{name}.results"]["value"]
            for name in ("q0", "q1", "solo")
        }
        assert per_query == {
            "q0": emitted.count("h0"),
            "q1": emitted.count("h1"),
            "solo": emitted.count("h2"),
        }
        assert per_query["q0"] == 2  # a ~ N(5,1) clears > 1, not > 100
        assert per_query["solo"] == 1
        gid = engine._entries["q0"].group.gid
        assert snap[f"multiquery.group.{gid}.results"]["value"] == (
            per_query["q0"] + per_query["q1"]
        )

    def test_group_id_is_stable_across_engines(self):
        first = _shared_engine()
        second = _shared_engine()
        assert (
            first._entries["q0"].group.gid
            == second._entries["q0"].group.gid
        )

    def test_execute_batch_matches_iter_results_counts(self):
        tuples = [_gaussian_tuple(m) for m in (5.0, -5.0, 5.0, 200.0)]
        batched = _shared_engine()
        batched.execute_batch("s", tuples)
        serial = _shared_engine()
        for tup in tuples:
            list(serial.iter_results("s", tup))
        names = [
            name
            for name in batched.metrics.snapshot()
            if name.startswith("multiquery.")
        ]
        batched_snap = batched.metrics.snapshot()
        serial_snap = serial.metrics.snapshot()
        for name in names:
            assert batched_snap[name] == serial_snap[name], name


class TestEngineTelemetry:
    def _recorder(self, engine, interval=2):
        from repro.obs.timeseries import TelemetryConfig, TelemetryRecorder

        return engine.attach_telemetry(
            TelemetryRecorder(
                TelemetryConfig(frame_interval=interval),
                registry=engine.metrics,
            )
        )

    def test_recorder_over_foreign_registry_is_rejected(self):
        from repro.errors import ObservabilityError
        from repro.obs.timeseries import TelemetryRecorder

        engine = _shared_engine()
        with pytest.raises(ObservabilityError, match="engine's metrics"):
            engine.attach_telemetry(TelemetryRecorder())
        assert engine.telemetry is None

    def test_iter_results_advances_one_position_per_tuple(self):
        engine = _shared_engine()
        recorder = self._recorder(engine, interval=2)
        for mean in (5.0, -5.0, 5.0, 5.0):
            list(engine.iter_results("s", _gaussian_tuple(mean)))
        assert recorder.position == 4
        assert len(recorder.series) == 2
        gid = engine._entries["q0"].group.gid
        name = f"multiquery.group.{gid}.results"
        # Frame deltas split the group's results by stream position.
        assert [
            frame.metrics.get(name, {"value": 0})["value"]
            for frame in recorder.series
        ] == [1, 2]

    def test_execute_batch_advances_by_batch_size(self):
        engine = _shared_engine()
        recorder = self._recorder(engine, interval=4)
        engine.execute_batch(
            "s", [_gaussian_tuple(m) for m in (5.0, -5.0, 5.0)]
        )
        assert recorder.position == 3
        assert len(recorder.series) == 0  # below the frame boundary
        engine.execute_batch("s", [_gaussian_tuple(5.0)])
        recorder.finalize()
        assert recorder.position == 4
        assert len(recorder.series) == 1

    def test_detach_stops_advancing(self):
        engine = _shared_engine()
        recorder = self._recorder(engine)
        list(engine.iter_results("s", _gaussian_tuple(5.0)))
        engine.detach_telemetry()
        list(engine.iter_results("s", _gaussian_tuple(5.0)))
        assert recorder.position == 1
