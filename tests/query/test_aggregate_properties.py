"""Property-based tests for aggregate-query invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.query.executor import ExecutorConfig, run_query
from repro.streams.tuples import UncertainTuple


@st.composite
def tuple_sets(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    tuples = []
    for _ in range(count):
        mean = draw(st.floats(min_value=-50, max_value=50))
        var = draw(st.floats(min_value=0.0, max_value=25.0))
        n = draw(st.integers(min_value=2, max_value=40))
        p = draw(st.floats(min_value=0.05, max_value=1.0))
        group = draw(st.sampled_from([1.0, 2.0, 3.0]))
        tuples.append(
            UncertainTuple(
                {"g": group, "v": DfSized(GaussianDistribution(mean, var), n)},
                probability=p,
            )
        )
    return tuples


@given(tuples=tuple_sets())
@settings(max_examples=100, deadline=None)
def test_count_within_bounds_and_sum_variance_non_negative(tuples):
    rows = run_query(
        "SELECT COUNT(*) AS c, SUM(v) AS s FROM t", tuples,
        config=ExecutorConfig(seed=1),
    )
    assert len(rows) == 1
    count = rows[0].value("c").distribution
    assert 0.0 <= count.mean() <= len(tuples)
    assert count.variance() >= 0.0
    assert rows[0].value("s").distribution.variance() >= 0.0


@given(tuples=tuple_sets())
@settings(max_examples=100, deadline=None)
def test_groups_partition_the_count(tuples):
    total = run_query(
        "SELECT COUNT(*) AS c FROM t", tuples,
        config=ExecutorConfig(seed=1),
    )[0].value("c").distribution.mean()
    grouped = run_query(
        "SELECT COUNT(*) AS c FROM t GROUP BY g", tuples,
        config=ExecutorConfig(seed=1),
    )
    partitioned = sum(
        row.value("c").distribution.mean() for row in grouped
    )
    assert abs(partitioned - total) < 1e-9


@given(tuples=tuple_sets())
@settings(max_examples=100, deadline=None)
def test_sum_decomposes_over_groups(tuples):
    total = run_query(
        "SELECT SUM(v) AS s FROM t", tuples,
        config=ExecutorConfig(seed=1),
    )[0].value("s").distribution
    grouped = run_query(
        "SELECT SUM(v) AS s FROM t GROUP BY g", tuples,
        config=ExecutorConfig(seed=1),
    )
    mean_sum = sum(r.value("s").distribution.mean() for r in grouped)
    var_sum = sum(r.value("s").distribution.variance() for r in grouped)
    assert abs(mean_sum - total.mean()) < 1e-6 * max(1, abs(total.mean()))
    assert abs(var_sum - total.variance()) < 1e-6 * max(1, total.variance())


@given(tuples=tuple_sets())
@settings(max_examples=75, deadline=None)
def test_avg_between_min_and_max_field_mean(tuples):
    rows = run_query(
        "SELECT AVG(v) AS m FROM t", tuples,
        config=ExecutorConfig(seed=1),
    )
    means = [t.dfsized("v").distribution.mean() for t in tuples]
    avg = rows[0].value("m").distribution.mean()
    assert min(means) - 1e-9 <= avg <= max(means) + 1e-9
