"""Tests for ORDER BY / LIMIT in the query layer."""

import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import ParseError, QueryError
from repro.query.executor import ExecutorConfig, run_query
from repro.query.parser import parse_query
from repro.query.planner import compile_query
from repro.streams.tuples import Schema, UncertainTuple


def _tuples(means):
    return [
        UncertainTuple(
            {"id": float(i), "v": DfSized(GaussianDistribution(m, 1.0), 10)}
        )
        for i, m in enumerate(means)
    ]


class TestParsing:
    def test_order_by_default_ascending(self):
        query = parse_query("SELECT v FROM s ORDER BY v")
        assert query.order_by is not None
        assert not query.descending
        assert query.limit is None

    def test_order_by_desc_and_limit(self):
        query = parse_query("SELECT v FROM s ORDER BY v + 1 DESC LIMIT 5")
        assert query.descending
        assert query.limit == 5

    def test_limit_without_order(self):
        query = parse_query("SELECT v FROM s LIMIT 3")
        assert query.order_by is None
        assert query.limit == 3

    def test_order_after_where(self):
        query = parse_query(
            "SELECT v FROM s WHERE v > 0 ORDER BY v ASC LIMIT 1"
        )
        assert query.where is not None
        assert query.limit == 1

    def test_rejects_fractional_limit(self):
        with pytest.raises(ParseError):
            parse_query("SELECT v FROM s LIMIT 2.5")

    def test_rejects_order_without_by(self):
        with pytest.raises(ParseError):
            parse_query("SELECT v FROM s ORDER v")


class TestPlanner:
    def test_order_columns_validated(self):
        schema = Schema(["v"])
        with pytest.raises(QueryError):
            compile_query("SELECT v FROM s ORDER BY missing", schema)

    def test_order_passed_through(self):
        compiled = compile_query("SELECT v FROM s ORDER BY v DESC LIMIT 2")
        assert compiled.order_by is not None
        assert compiled.descending
        assert compiled.limit == 2


class TestExecution:
    def test_ascending_order_by_expected_value(self):
        results = run_query(
            "SELECT id FROM s ORDER BY v",
            _tuples([5.0, 1.0, 9.0]),
            config=ExecutorConfig(seed=0),
        )
        ids = [r.value("id").distribution.mean() for r in results]
        assert ids == [1.0, 0.0, 2.0]

    def test_descending_with_limit(self):
        results = run_query(
            "SELECT id FROM s ORDER BY v DESC LIMIT 2",
            _tuples([5.0, 1.0, 9.0, 3.0]),
            config=ExecutorConfig(seed=0),
        )
        ids = [r.value("id").distribution.mean() for r in results]
        assert ids == [2.0, 0.0]

    def test_order_by_expression(self):
        # ORDER BY -v reverses the v ordering.
        results = run_query(
            "SELECT id FROM s ORDER BY 0 - v",
            _tuples([5.0, 1.0, 9.0]),
            config=ExecutorConfig(seed=0),
        )
        ids = [r.value("id").distribution.mean() for r in results]
        assert ids == [2.0, 0.0, 1.0]

    def test_limit_without_order_truncates_arrival_order(self):
        results = run_query(
            "SELECT id FROM s LIMIT 2",
            _tuples([5.0, 1.0, 9.0]),
            config=ExecutorConfig(seed=0),
        )
        ids = [r.value("id").distribution.mean() for r in results]
        assert ids == [0.0, 1.0]

    def test_limit_zero(self):
        results = run_query(
            "SELECT id FROM s LIMIT 0",
            _tuples([5.0]),
            config=ExecutorConfig(seed=0),
        )
        assert results == []

    def test_order_with_where_filters_first(self):
        results = run_query(
            "SELECT id FROM s WHERE v > 4 PROB 0.5 ORDER BY v DESC",
            _tuples([5.0, 1.0, 9.0]),
            config=ExecutorConfig(seed=0),
        )
        ids = [r.value("id").distribution.mean() for r in results]
        assert ids == [2.0, 0.0]
