"""End-to-end integration tests: raw reports -> learning -> queries.

These recreate the paper's running scenario (Example 1/8/9): raw
road-delay reports stream in, distributions are learned per road with
heterogeneous sample sizes, and accuracy-aware queries separate reliable
answers from unreliable ones.
"""

import numpy as np
import pytest

from repro.core.coupled import ThreeValued
from repro.learning.histogram_learner import HistogramLearner
from repro.query.executor import ExecutorConfig, run_query
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, Derive, SignificanceFilter
from repro.streams.tuples import Schema, UncertainTuple
from repro.workloads.cartel import CarTelSimulator


def _learn_road_tuples(sim, sizes, learner=None, rng=None):
    """One uncertain tuple per road, learned from `sizes[road]` reports."""
    learner = learner or HistogramLearner(bucket_count=8)
    tuples = []
    for segment_id, n in sizes.items():
        observations = sim.observations(segment_id, n)
        fitted = learner.learn(observations)
        tuples.append(
            UncertainTuple(
                {
                    "road_id": float(segment_id),
                    "delay": fitted.as_dfsized(),
                }
            )
        )
    return tuples


class TestExample1Pipeline:
    """Example 1: 3 observations for road 19, 50 for road 20."""

    def test_accuracy_reflects_sample_size(self, small_sim):
        # The same road observed 3 times versus 50 times (scales match,
        # so interval lengths are directly comparable).
        road = 19
        tuples = _learn_road_tuples(small_sim, {road: 3})
        sparse_tuple = tuples[0]
        dense_tuple = _learn_road_tuples(small_sim, {road: 50})[0]
        results = run_query(
            "SELECT road_id, delay FROM roads",
            [sparse_tuple, dense_tuple],
            config=ExecutorConfig(seed=0, confidence=0.9),
        )
        sparse = results[0].accuracy["delay"]
        dense = results[1].accuracy["delay"]
        # The sparse road's intervals are much wider: same query, very
        # different reliability — the paper's core motivation.
        assert sparse.mean.length > dense.mean.length
        assert sparse.sample_size == 3 and dense.sample_size == 50

    def test_threshold_query_reports_probability_interval(self, small_sim):
        sizes = {19: 5, 20: 50}
        tuples = _learn_road_tuples(small_sim, sizes)
        threshold = small_sim.true_mean(19)
        results = run_query(
            f"SELECT road_id FROM roads WHERE delay > {threshold:.1f} "
            "PROB 0.1",
            tuples,
            config=ExecutorConfig(seed=0, confidence=0.9),
        )
        for result in results:
            interval = result.probability_interval.interval
            assert 0.0 <= interval.low <= result.probability <= interval.high


class TestExample9Significance:
    def test_mtest_separates_by_sample_size(self, small_sim, rng):
        # Two roads with identical true distributions but very different
        # report counts; the predicate threshold sits below the true mean.
        sid = small_sim.segment_ids()[0]
        true_mean = small_sim.true_mean(sid)
        threshold = 0.85 * true_mean
        sizes = {sid: 200}
        dense = _learn_road_tuples(small_sim, sizes)[0]
        sparse_obs = small_sim.observations(sid, 4)
        sparse = UncertainTuple(
            {
                "road_id": -1.0,
                "delay": HistogramLearner(bucket_count=8)
                .learn(sparse_obs)
                .as_dfsized(),
            }
        )
        query = (
            f"SELECT road_id FROM roads "
            f"WHERE mTest(delay, '>', {threshold:.2f}, 0.05)"
        )
        dense_results = run_query(
            query, [dense], config=ExecutorConfig(seed=0)
        )
        assert len(dense_results) == 1  # large sample: significant

    def test_coupled_query_three_outcomes(self, small_sim):
        sid = small_sim.segment_ids()[1]
        true_mean = small_sim.true_mean(sid)
        tuples = _learn_road_tuples(small_sim, {sid: 100})
        clearly_true = run_query(
            f"SELECT road_id FROM r WHERE "
            f"mTest(delay, '>', {0.5 * true_mean:.2f}, 0.05, 0.05)",
            tuples, config=ExecutorConfig(seed=0),
        )
        clearly_false = run_query(
            f"SELECT road_id FROM r WHERE "
            f"mTest(delay, '>', {2.0 * true_mean:.2f}, 0.05, 0.05)",
            tuples, config=ExecutorConfig(seed=0),
        )
        assert len(clearly_true) == 1
        assert clearly_true[0].decisions == (ThreeValued.TRUE,)
        assert clearly_false == []


class TestStreamToQueryBridge:
    def test_report_stream_grouped_and_learned(self, small_sim):
        """Full ingestion: raw reports -> per-road samples -> query."""
        reports = list(small_sim.report_stream(window_minutes=10))
        by_road: dict[int, list[float]] = {}
        for report in reports:
            by_road.setdefault(report.segment_id, []).append(report.delay)
        learner = HistogramLearner(bucket_count=6)
        tuples = []
        for road, delays in by_road.items():
            if len(delays) < 2:
                continue
            tuples.append(
                UncertainTuple(
                    {
                        "road_id": float(road),
                        "delay": learner.learn(delays).as_dfsized(),
                    }
                )
            )
        assert len(tuples) > 10
        results = run_query(
            "SELECT road_id, delay FROM window WHERE delay > 0 PROB 0.99",
            tuples,
            config=ExecutorConfig(seed=0, confidence=0.9),
        )
        assert len(results) == len(tuples)  # delays are all positive
        # Every result's mean interval matches Lemma 2 applied to the
        # road's raw sample — accuracy genuinely flowed from ingestion.
        from repro.core.analytic import mean_interval

        sizes = {float(road): len(delays) for road, delays in by_road.items()}
        for result in results:
            road = result.value("road_id").distribution.mean()
            info = result.accuracy["delay"]
            assert info.sample_size == sizes[road]
            delays = np.asarray(by_road[int(road)], dtype=float)
            # The executor derives intervals from the learned histogram's
            # moments; the lengths must scale like s/sqrt(n).
            reference = mean_interval(
                float(delays.mean()), float(delays.std(ddof=1)),
                len(delays), 0.9,
            )
            assert info.mean.length == pytest.approx(
                reference.length, rel=0.75
            )

    def test_significance_filter_in_stream_pipeline(self, small_sim, rng):
        """The operator pipeline applies coupled tests on the fly."""
        from repro.core.predicates import FieldStats, MTest

        sid = small_sim.segment_ids()[2]
        true_mean = small_sim.true_mean(sid)
        learner = HistogramLearner(bucket_count=6)
        tuples = []
        for n in (3, 5, 100, 150):
            fitted = learner.learn(small_sim.observations(sid, n))
            tuples.append(UncertainTuple({"delay": fitted.as_dfsized()}))

        def factory(tup):
            return MTest(
                FieldStats.from_dfsized(tup.dfsized("delay")),
                ">", 0.8 * true_mean, 0.05,
            )

        sig = SignificanceFilter(factory, 0.05, 0.05)
        sink = Pipeline([sig, CollectSink()]).run(tuples)
        total = sum(sig.decisions.values())
        assert total == 4
        # Large samples decide; the 3-observation tuple mostly cannot.
        assert sig.decisions[ThreeValued.TRUE] >= 1
