"""Fuzz tests: random queries over random uncertain tuples never break
the executor's invariants.

Whatever the query and data, every produced result must have a
membership probability in [0, 1], a well-ordered probability interval
containing the point probability, internally consistent accuracy
records, and deterministic behaviour under a fixed seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dfsample import DfSized
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.query.executor import ExecutorConfig, QueryExecutor
from repro.query.expressions import BinaryOp, Column, UnaryOp
from repro.query.parser import parse_query
from repro.streams.tuples import UncertainTuple
from repro.workloads.queries import random_expression

_COLUMNS = ["a", "b", "c"]


@st.composite
def uncertain_tuples(draw) -> UncertainTuple:
    attributes: dict[str, object] = {}
    for name in _COLUMNS:
        kind = draw(st.sampled_from(["gauss", "emp", "number"]))
        n = draw(st.integers(min_value=2, max_value=60))
        if kind == "gauss":
            mu = draw(st.floats(min_value=-100, max_value=100))
            sigma2 = draw(st.floats(min_value=0.0, max_value=100))
            attributes[name] = DfSized(GaussianDistribution(mu, sigma2), n)
        elif kind == "emp":
            values = draw(
                st.lists(
                    st.floats(min_value=-100, max_value=100),
                    min_size=2, max_size=12,
                )
            )
            attributes[name] = DfSized(EmpiricalDistribution(values), n)
        else:
            attributes[name] = draw(
                st.floats(min_value=-100, max_value=100)
            )
    probability = draw(st.floats(min_value=0.01, max_value=1.0))
    return UncertainTuple(attributes, probability=probability)


@st.composite
def query_texts(draw) -> str:
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    select = random_expression(
        rng, list(_COLUMNS), draw(st.integers(0, 3))
    )
    where = ""
    if draw(st.booleans()):
        column = draw(st.sampled_from(_COLUMNS))
        constant = draw(st.integers(-50, 50))
        op = draw(st.sampled_from(["<", ">", "<=", ">="]))
        where = f" WHERE {column} {op} {constant}"
        if draw(st.booleans()):
            threshold = draw(st.sampled_from(["0.25", "0.5", "2/3"]))
            where += f" PROB {threshold}"
    return f"SELECT {_render(select)} AS out FROM s{where}"


def _render(expr) -> str:
    if isinstance(expr, Column):
        return expr.name
    if isinstance(expr, BinaryOp):
        return f"({_render(expr.left)} {expr.op} {_render(expr.right)})"
    assert isinstance(expr, UnaryOp)
    keyword = {
        "sqrtabs": "SQRT", "square": "SQUARE", "abs": "ABS", "neg": "-",
    }[expr.op]
    if expr.op == "neg":
        return f"(-{_render(expr.operand)})"
    return f"{keyword}({_render(expr.operand)})"


@given(text=query_texts(), tup=uncertain_tuples(), seed=st.integers(0, 1000))
@settings(max_examples=150, deadline=None)
def test_executor_invariants_hold(text, tup, seed):
    parse_query(text)  # the generator must emit valid dialect
    executor = QueryExecutor(
        text, config=ExecutorConfig(seed=seed, mc_samples=200)
    )
    result = executor.execute_one(tup)
    if result is None:
        return
    assert 0.0 <= result.probability <= 1.0
    if result.probability_interval is not None:
        interval = result.probability_interval.interval
        assert 0.0 <= interval.low <= interval.high <= 1.0
        assert interval.low - 1e-9 <= result.probability <= interval.high + 1e-9
    field = result.value("out")
    for info in result.accuracy.values():
        assert info.mean.low <= info.mean.high
        assert info.variance.low <= info.variance.high
        assert info.sample_size >= 2
    assert np.isfinite(field.distribution.mean())


@given(text=query_texts(), tup=uncertain_tuples())
@settings(max_examples=50, deadline=None)
def test_seeded_executions_are_deterministic(text, tup):
    first = QueryExecutor(
        text, config=ExecutorConfig(seed=99, mc_samples=200)
    ).execute_one(tup)
    second = QueryExecutor(
        text, config=ExecutorConfig(seed=99, mc_samples=200)
    ).execute_one(tup)
    assert (first is None) == (second is None)
    if first is not None:
        assert first.probability == second.probability
        assert first.value("out").distribution.mean() == second.value(
            "out"
        ).distribution.mean()
