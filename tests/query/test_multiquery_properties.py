"""Property suite: shared-subplan execution is byte-identical to naive.

The acceptance contract of the multi-query engine, under randomized
query mixes sharing anywhere from 0% to 100% of their prefix: for every
insert order (one-at-a-time and batched), the shared path must produce

* the same callback order — ``(query, result)`` events in sequence,
* per-result ``pickle`` bytes identical to the naive per-query loop
  (covering attribute aliasing, accuracy intervals, decisions,
  probability intervals, sort keys, and the source tuple),
* the same per-query ``matches`` counters, and
* the same ``describe()`` renderings.

Query shapes deliberately cover every dispatch class: vectorizable
threshold residuals (both operand orders), scalar residuals (equality,
OR trees, significance tests, ORDER BY sort keys), star and aliased
projections, zero-variance and exact-sample-size fields, sub-unit
membership probabilities, and per-query config overrides that split
fingerprint groups.
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dfsample import DfSized
from repro.db import StreamDatabase
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import ReproError
from repro.query.executor import ExecutorConfig
from repro.streams.tuples import UncertainTuple

_SELECTS = (
    "a, b",
    "*",
    "a",
    "b AS bee, a",
    "a AS first, b AS second, c",
)

_WHERES = (
    "",
    "WHERE a > {c1} PROB {tau}",
    "WHERE {c1} < a PROB {tau}",
    "WHERE a <= {c1}",
    "WHERE a >= {c1} PROB {tau} AND c > {c2}",
    "WHERE b < {c1}",
    "WHERE a = {c1}",
    "WHERE a > {c1} OR b > {c2}",
    "WHERE mTest(a, '>', {c1}, 0.05)",
    "WHERE a > {c1} ORDER BY a",
)

_TAUS = (0.0000000001, 0.25, 0.5, 0.75, 0.9999, 1.0)

_CONFIGS = (
    None,  # inherit the db default (analytic)
    ExecutorConfig(confidence=0.8),
    ExecutorConfig(accuracy_method="none"),
    ExecutorConfig(
        accuracy_method="bootstrap",
        seed=5,
        mc_samples=32,
        bootstrap_resamples=4,
    ),
)


@st.composite
def query_mixes(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    queries = []
    for _ in range(count):
        select = draw(st.sampled_from(_SELECTS))
        where = draw(st.sampled_from(_WHERES))
        tau = draw(st.sampled_from(_TAUS))
        c1 = draw(st.integers(min_value=-3, max_value=6))
        c2 = draw(st.integers(min_value=-3, max_value=6))
        text = f"SELECT {select} FROM t " + where.format(
            c1=c1, c2=c2, tau=tau
        )
        config = draw(st.sampled_from(_CONFIGS))
        queries.append((text.strip(), config))
    return queries


@st.composite
def tuple_batches(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    batch = []
    for _ in range(count):
        sigma2 = float(rng.uniform(0.0, 9.0))
        if rng.random() < 0.2:
            sigma2 = 0.0  # deterministic-in-disguise Gaussian
        n = int(rng.integers(1, 30))
        if rng.random() < 0.15:
            n = None  # exact sample size: no accuracy attaches
        batch.append(
            UncertainTuple(
                {
                    "a": DfSized(
                        GaussianDistribution(
                            float(rng.normal(1.0, 3.0)), sigma2
                        ),
                        n,
                    ),
                    "b": float(rng.normal(0.0, 3.0)),
                    "c": int(rng.integers(-5, 10)),
                },
                probability=float(rng.uniform(0.4, 1.0)),
            )
        )
    return batch


def _run(queries, batch, shared, batched):
    db = StreamDatabase(
        config=ExecutorConfig(seed=9, confidence=0.9),
        shared_subplans=shared,
    )
    db.create_stream("t")
    events = []
    for i, (text, config) in enumerate(queries):
        db.register_continuous(
            f"q{i}",
            text,
            lambda r, i=i: events.append(
                (i, pickle.dumps(r), r.describe())
            ),
            config=config,
        )
    # Executor errors (e.g. mTest on an exact-sample-size field) are
    # part of the observable behaviour: record them as a terminal
    # event instead of aborting the property.
    error = None
    try:
        if batched:
            db.insert_many("t", batch)
        else:
            for tup in batch:
                db.insert("t", tup)
    except ReproError as exc:
        error = (type(exc).__name__, str(exc))
    matches = tuple(
        db._continuous[f"q{i}"].matches for i in range(len(queries))
    )
    return events, matches, error


@settings(max_examples=40, deadline=None)
@given(queries=query_mixes(), batch=tuple_batches())
def test_shared_subplans_byte_identical_to_naive(queries, batch):
    naive = _run(queries, batch, False, False)
    # Per-tuple shared dispatch: identical events, matches, and error
    # (same type, same message, raised at the same point).
    assert _run(queries, batch, True, False) == naive
    events, matches, error = _run(queries, batch, True, True)
    naive_events, naive_matches, naive_error = naive
    if naive_error is None:
        assert (events, matches, error) == naive
    else:
        # Documented batch-path divergence: executor errors surface
        # before any of the batch's emissions, so the event stream
        # stops early — but an error must still be raised and no
        # spurious emissions may appear.
        assert error is not None
        assert events == naive_events[: len(events)]


@settings(max_examples=15, deadline=None)
@given(batch=tuple_batches())
def test_identical_queries_full_prefix_share(batch):
    # 100% prefix overlap: five copies of the same query must still
    # produce five independent, identical event streams.
    queries = [("SELECT a, b FROM t WHERE a > 0 PROB 0.5", None)] * 5
    naive_events, naive_matches, naive_error = _run(
        queries, batch, False, False
    )
    events, matches, error = _run(queries, batch, True, True)
    assert naive_error is None and error is None
    assert matches == naive_matches
    assert events == naive_events
