"""Tests for the streaming execute_iter API and histogram quantiles."""

import numpy as np
import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import DistributionError, QueryError
from repro.query.executor import ExecutorConfig, QueryExecutor
from repro.streams.tuples import UncertainTuple


def _tuples(means):
    return [
        UncertainTuple(
            {"id": float(i), "v": DfSized(GaussianDistribution(m, 1.0), 10)}
        )
        for i, m in enumerate(means)
    ]


class TestExecuteIter:
    def test_streams_matching_results(self):
        executor = QueryExecutor(
            "SELECT id FROM s WHERE v > 3 PROB 0.5",
            config=ExecutorConfig(seed=0),
        )
        iterator = executor.execute_iter(_tuples([5.0, 1.0, 9.0]))
        first = next(iterator)
        assert first.value("id").distribution.mean() == 0.0
        rest = list(iterator)
        assert len(rest) == 1

    def test_lazy_consumption(self):
        executor = QueryExecutor(
            "SELECT id FROM s", config=ExecutorConfig(seed=0)
        )
        consumed = []

        def source():
            for tup in _tuples([1.0, 2.0, 3.0]):
                consumed.append(tup)
                yield tup

        iterator = executor.execute_iter(source())
        next(iterator)
        assert len(consumed) == 1  # nothing pre-buffered

    def test_rejects_order_by(self):
        executor = QueryExecutor(
            "SELECT id FROM s ORDER BY v", config=ExecutorConfig(seed=0)
        )
        with pytest.raises(QueryError):
            next(executor.execute_iter(_tuples([1.0])))

    def test_rejects_limit(self):
        executor = QueryExecutor(
            "SELECT id FROM s LIMIT 1", config=ExecutorConfig(seed=0)
        )
        with pytest.raises(QueryError):
            next(executor.execute_iter(_tuples([1.0])))

    def test_matches_execute(self):
        text = "SELECT id FROM s WHERE v > 2"
        eager = QueryExecutor(text, config=ExecutorConfig(seed=7)).execute(
            _tuples([1.0, 5.0])
        )
        lazy = list(
            QueryExecutor(text, config=ExecutorConfig(seed=7)).execute_iter(
                _tuples([1.0, 5.0])
            )
        )
        assert len(eager) == len(lazy)
        assert eager[-1].probability == pytest.approx(lazy[-1].probability)


class TestHistogramQuantile:
    def test_inverts_cdf(self):
        h = HistogramDistribution([0, 10, 20, 30], [0.2, 0.5, 0.3])
        for q in (0.05, 0.2, 0.45, 0.7, 0.95):
            assert h.cdf(h.quantile(q)) == pytest.approx(q)

    def test_endpoints(self):
        h = HistogramDistribution([0, 10], [1.0])
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 10.0

    def test_skips_zero_mass_buckets(self):
        h = HistogramDistribution([0, 1, 2, 3], [0.5, 0.0, 0.5])
        # q = 0.5 sits exactly at the boundary; quantiles past it land
        # in the third bucket.
        assert h.quantile(0.75) == pytest.approx(2.5)

    def test_median_of_uniform(self):
        h = HistogramDistribution([4, 8], [1.0])
        assert h.quantile(0.5) == pytest.approx(6.0)

    def test_rejects_out_of_range(self):
        h = HistogramDistribution([0, 1], [1.0])
        with pytest.raises(DistributionError):
            h.quantile(1.5)
