"""Tests for SQL aggregate queries (AVG / SUM / COUNT)."""

import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import ParseError, QueryError
from repro.query.executor import ExecutorConfig, QueryExecutor, run_query
from repro.query.parser import parse_query
from repro.query.planner import compile_query
from repro.streams.tuples import UncertainTuple


def _tuples(means, n=20, probability=1.0):
    return [
        UncertainTuple(
            {"v": DfSized(GaussianDistribution(m, 4.0), n)},
            probability=probability,
        )
        for m in means
    ]


class TestParsing:
    def test_aggregate_flags(self):
        query = parse_query("SELECT AVG(v) FROM s")
        assert query.is_aggregate
        assert query.aggregates == ("avg",)
        assert query.select_items[0][1] == "avg_v"

    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) AS c FROM s")
        assert query.aggregates == ("count",)
        assert query.select_items[0][1] == "c"

    def test_aggregate_over_expression(self):
        query = parse_query("SELECT SUM(v * 2 + 1) AS total FROM s")
        assert query.aggregates == ("sum",)

    def test_plain_query_has_no_aggregates(self):
        query = parse_query("SELECT v FROM s")
        assert not query.is_aggregate
        assert query.aggregates == (None,)


class TestPlanning:
    def test_rejects_mixed_select(self):
        with pytest.raises(QueryError, match="mix aggregate"):
            compile_query("SELECT AVG(v), v FROM s")

    def test_rejects_order_by_on_aggregate(self):
        with pytest.raises(QueryError, match="ORDER BY"):
            compile_query("SELECT AVG(v) FROM s ORDER BY v")

    def test_rejects_limit_on_aggregate(self):
        with pytest.raises(QueryError):
            compile_query("SELECT COUNT(*) FROM s LIMIT 1")

    def test_multiple_aggregates_fine(self):
        compiled = compile_query("SELECT AVG(v), SUM(v), COUNT(*) FROM s")
        assert compiled.is_aggregate


class TestExecution:
    def test_avg_of_gaussians(self):
        results = run_query(
            "SELECT AVG(v) AS m FROM s",
            _tuples([10.0, 20.0]),
            config=ExecutorConfig(seed=0),
        )
        assert len(results) == 1
        dist = results[0].value("m").distribution
        assert dist.mean() == pytest.approx(15.0)
        assert dist.variance() == pytest.approx(2.0)  # (4+4)/4

    def test_sum_moments(self):
        results = run_query(
            "SELECT SUM(v) AS total FROM s",
            _tuples([10.0, 20.0, 30.0]),
            config=ExecutorConfig(seed=0),
        )
        dist = results[0].value("total").distribution
        assert dist.mean() == pytest.approx(60.0)
        assert dist.variance() == pytest.approx(12.0)

    def test_count_certain_tuples_is_exact(self):
        results = run_query(
            "SELECT COUNT(*) AS c FROM s",
            _tuples([1.0] * 5),
            config=ExecutorConfig(seed=0),
        )
        dist = results[0].value("c").distribution
        assert dist.mean() == pytest.approx(5.0)
        assert dist.variance() == pytest.approx(0.0)

    def test_count_uncertain_membership(self):
        results = run_query(
            "SELECT COUNT(*) AS c FROM s",
            _tuples([1.0] * 4, probability=0.5),
            config=ExecutorConfig(seed=0),
        )
        dist = results[0].value("c").distribution
        assert dist.mean() == pytest.approx(2.0)
        assert dist.variance() == pytest.approx(1.0)  # 4 * 0.25

    def test_sum_includes_membership_variance(self):
        # One tuple with value 10 and p = 0.5: E = 5, Var = 0.5*(4+100)
        # - 0.25*100 = 27.
        results = run_query(
            "SELECT SUM(v) AS total FROM s",
            _tuples([10.0], probability=0.5),
            config=ExecutorConfig(seed=0),
        )
        dist = results[0].value("total").distribution
        assert dist.mean() == pytest.approx(5.0)
        assert dist.variance() == pytest.approx(27.0)

    def test_where_filters_before_aggregating(self):
        results = run_query(
            "SELECT COUNT(*) AS c FROM s WHERE v > 15 PROB 0.5",
            _tuples([10.0, 20.0, 30.0]),
            config=ExecutorConfig(seed=0),
        )
        dist = results[0].value("c").distribution
        # Tuples at 20 and 30 qualify; their membership carries the
        # predicate probabilities (P[N(20,4) > 15] ~ .994, ~1).
        assert dist.mean() == pytest.approx(2.0, abs=0.02)

    def test_df_sample_size_is_minimum(self):
        tuples = [
            UncertainTuple({"v": DfSized(GaussianDistribution(1, 1), 50)}),
            UncertainTuple({"v": DfSized(GaussianDistribution(2, 1), 10)}),
        ]
        results = run_query(
            "SELECT AVG(v) AS m FROM s", tuples,
            config=ExecutorConfig(seed=0),
        )
        assert results[0].value("m").sample_size == 10

    def test_accuracy_attached_to_aggregate(self):
        results = run_query(
            "SELECT AVG(v) AS m FROM s",
            _tuples([10.0, 20.0], n=25),
            config=ExecutorConfig(seed=0, confidence=0.9),
        )
        info = results[0].accuracy["m"]
        assert info.mean.contains(15.0)
        assert info.sample_size == 25

    def test_empty_input_gives_empty_result(self):
        results = run_query(
            "SELECT AVG(v) AS m FROM s", [],
            config=ExecutorConfig(seed=0),
        )
        assert results == []

    def test_nothing_qualifies_gives_empty_result(self):
        results = run_query(
            "SELECT COUNT(*) AS c FROM s WHERE v > 1000 PROB 0.5",
            _tuples([1.0, 2.0]),
            config=ExecutorConfig(seed=0),
        )
        assert results == []

    def test_execute_one_rejected(self):
        executor = QueryExecutor(
            "SELECT AVG(v) FROM s", config=ExecutorConfig(seed=0)
        )
        with pytest.raises(QueryError, match="whole stream"):
            executor.execute_one(_tuples([1.0])[0])

    def test_execute_iter_rejected(self):
        executor = QueryExecutor(
            "SELECT AVG(v) FROM s", config=ExecutorConfig(seed=0)
        )
        with pytest.raises(QueryError):
            next(executor.execute_iter(_tuples([1.0])))

    def test_matches_sliding_window_operator(self):
        """The SQL AVG agrees with the stream operator's closed form."""
        from repro.streams.engine import Pipeline
        from repro.streams.operators import CollectSink, SlidingGaussianAverage

        tuples = _tuples([5.0, 15.0, 25.0], n=20)
        sql = run_query(
            "SELECT AVG(v) AS m FROM s", tuples,
            config=ExecutorConfig(seed=0),
        )[0].value("m").distribution
        sink = Pipeline(
            [SlidingGaussianAverage("v", 10), CollectSink()]
        ).run(tuples)
        stream = sink.results[-1].value("avg").distribution
        assert sql.mean() == pytest.approx(stream.mean())
        assert sql.variance() == pytest.approx(stream.variance())


class TestGroupBy:
    def _grouped_tuples(self):
        return [
            UncertainTuple(
                {"road": road,
                 "v": DfSized(GaussianDistribution(mean, 4.0), n)}
            )
            for road, mean, n in [
                (1.0, 10.0, 20), (2.0, 30.0, 10), (1.0, 20.0, 30),
            ]
        ]

    def test_one_row_per_group_in_key_order(self):
        rows = run_query(
            "SELECT AVG(v) AS m FROM t GROUP BY road",
            self._grouped_tuples(),
            config=ExecutorConfig(seed=0),
        )
        assert len(rows) == 2
        keys = [r.value("road").distribution.mean() for r in rows]
        assert keys == [1.0, 2.0]
        assert rows[0].value("m").distribution.mean() == pytest.approx(15.0)
        assert rows[1].value("m").distribution.mean() == pytest.approx(30.0)

    def test_group_sample_size_is_group_minimum(self):
        rows = run_query(
            "SELECT SUM(v) AS s FROM t GROUP BY road",
            self._grouped_tuples(),
            config=ExecutorConfig(seed=0),
        )
        assert rows[0].value("s").sample_size == 20
        assert rows[1].value("s").sample_size == 10

    def test_text_keys_pass_through(self):
        tuples = [
            UncertainTuple(
                {"city": name,
                 "v": DfSized(GaussianDistribution(m, 1.0), 10)}
            )
            for name, m in [("boston", 5.0), ("nyc", 9.0), ("boston", 7.0)]
        ]
        rows = run_query(
            "SELECT COUNT(*) AS c FROM t GROUP BY city",
            tuples, config=ExecutorConfig(seed=0),
        )
        assert [r.value("city") for r in rows] == ["boston", "nyc"]
        assert rows[0].value("c").distribution.mean() == pytest.approx(2.0)

    def test_where_applies_before_grouping(self):
        rows = run_query(
            "SELECT COUNT(*) AS c FROM t WHERE v > 15 PROB 0.5 "
            "GROUP BY road",
            self._grouped_tuples(),
            config=ExecutorConfig(seed=0),
        )
        # Road 1 keeps only the mean-20 tuple; road 2 keeps its only one.
        assert len(rows) == 2
        assert rows[0].value("c").distribution.mean() == pytest.approx(
            1.0, abs=0.02
        )

    def test_rejects_group_by_without_aggregates(self):
        with pytest.raises(QueryError, match="GROUP BY requires"):
            compile_query("SELECT v FROM t GROUP BY road")

    def test_rejects_non_deterministic_key(self):
        tuples = [
            UncertainTuple(
                {"road": DfSized(GaussianDistribution(1, 1), 5),
                 "v": 1.0}
            )
        ]
        with pytest.raises(QueryError, match="deterministic key"):
            run_query(
                "SELECT COUNT(*) AS c FROM t GROUP BY road",
                tuples, config=ExecutorConfig(seed=0),
            )

    def test_group_key_validated_against_schema(self):
        from repro.streams.tuples import Schema

        with pytest.raises(QueryError, match="unknown attributes"):
            compile_query(
                "SELECT AVG(v) FROM t GROUP BY missing",
                Schema(["v"]),
            )
