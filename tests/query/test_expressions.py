"""Tests for expression evaluation over uncertain tuples."""

import numpy as np
import pytest

from repro.core.dfsample import DfSized
from repro.distributions.base import Deterministic
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import QueryError
from repro.query.expressions import (
    BinaryOp,
    Column,
    Comparison,
    EvalContext,
    Literal,
    UnaryOp,
    predicate_probability,
)
from repro.streams.tuples import UncertainTuple


@pytest.fixture
def ctx(rng) -> EvalContext:
    tup = UncertainTuple(
        {
            "g": DfSized(GaussianDistribution(10.0, 4.0), 15),
            "h": DfSized(GaussianDistribution(5.0, 1.0), 10),
            "e": DfSized(EmpiricalDistribution([1.0, 2.0, 3.0]), 3),
            "k": 7.0,
        }
    )
    return EvalContext(tup, rng, mc_samples=20_000)


class TestLeaves:
    def test_column_returns_dfsized(self, ctx):
        value = Column("g").evaluate(ctx)
        assert value.sample_size == 15
        assert value.distribution.mean() == 10.0

    def test_raw_number_column_is_exact(self, ctx):
        value = Column("k").evaluate(ctx)
        assert value.sample_size is None
        assert value.distribution == Deterministic(7.0)

    def test_literal_is_exact(self, ctx):
        value = Literal(3.0).evaluate(ctx)
        assert value.sample_size is None

    def test_columns_sets(self):
        expr = BinaryOp("+", Column("a"), UnaryOp("neg", Column("b")))
        assert expr.columns() == {"a", "b"}
        assert Literal(1.0).columns() == set()


class TestClosedFormArithmetic:
    def test_gaussian_plus_gaussian(self, ctx):
        value = BinaryOp("+", Column("g"), Column("h")).evaluate(ctx)
        dist = value.distribution
        assert isinstance(dist, GaussianDistribution)
        assert dist.mu == pytest.approx(15.0)
        assert dist.sigma2 == pytest.approx(5.0)
        assert value.sample_size == 10  # Lemma 3

    def test_gaussian_minus_constant(self, ctx):
        value = BinaryOp("-", Column("g"), Literal(4.0)).evaluate(ctx)
        dist = value.distribution
        assert isinstance(dist, GaussianDistribution)
        assert dist.mu == pytest.approx(6.0)
        assert value.sample_size == 15

    def test_constant_minus_gaussian(self, ctx):
        value = BinaryOp("-", Literal(0.0), Column("g")).evaluate(ctx)
        dist = value.distribution
        assert isinstance(dist, GaussianDistribution)
        assert dist.mu == pytest.approx(-10.0)
        assert dist.sigma2 == pytest.approx(4.0)

    def test_gaussian_scaled_by_constant(self, ctx):
        value = BinaryOp("/", Column("g"), Literal(2.0)).evaluate(ctx)
        dist = value.distribution
        assert isinstance(dist, GaussianDistribution)
        assert dist.mu == pytest.approx(5.0)
        assert dist.sigma2 == pytest.approx(1.0)

    def test_constant_folding(self, ctx):
        value = BinaryOp("*", Literal(3.0), Literal(4.0)).evaluate(ctx)
        assert value.distribution == Deterministic(12.0)
        assert value.sample_size is None

    def test_neg_gaussian_closed_form(self, ctx):
        value = UnaryOp("neg", Column("g")).evaluate(ctx)
        assert isinstance(value.distribution, GaussianDistribution)
        assert value.distribution.mu == pytest.approx(-10.0)


class TestMonteCarloFallback:
    def test_gaussian_product_is_empirical(self, ctx):
        value = BinaryOp("*", Column("g"), Column("h")).evaluate(ctx)
        assert isinstance(value.distribution, EmpiricalDistribution)
        assert value.distribution.mean() == pytest.approx(50.0, rel=0.05)
        assert value.sample_size == 10

    def test_square_matches_moments(self, ctx):
        value = UnaryOp("square", Column("h")).evaluate(ctx)
        # E[X^2] = var + mean^2 = 1 + 25.
        assert value.distribution.mean() == pytest.approx(26.0, rel=0.05)

    def test_sqrtabs(self, ctx):
        value = UnaryOp("sqrtabs", Literal(-9.0)).evaluate(ctx)
        assert value.distribution.mean() == pytest.approx(3.0)

    def test_mixed_exact_and_sampled_size(self, ctx):
        value = BinaryOp("*", Column("e"), Literal(2.0)).evaluate(ctx)
        assert value.sample_size == 3

    def test_gaussian_over_denormal_divisor_falls_back(self, ctx):
        # sigma^2 / c^2 overflows the closed form for a denormal-scale
        # c; the evaluator must fall back to Monte Carlo (which nudges
        # near-zero divisors) instead of raising.
        value = BinaryOp(
            "/", Column("h"), Literal(2.8e-242)
        ).evaluate(ctx)
        assert np.isfinite(value.distribution.mean())

    def test_deterministic_overflow_falls_back(self, ctx):
        value = BinaryOp(
            "/", Column("k"), Literal(2.8e-242)
        ).evaluate(ctx)
        assert np.isfinite(value.distribution.mean())

    def test_deterministic_divide_matches_safe_divide_nudge(self, ctx):
        # Fuzz-found: SQUARE(k / denormal) overflowed because the
        # deterministic fast path divided exactly while the Monte-Carlo
        # path nudges |b| < 1e-9 to +-1e-9.  Both paths must agree.
        expr = UnaryOp(
            "square", BinaryOp("/", Column("k"), Literal(3.4e-168))
        )
        value = expr.evaluate(ctx)
        assert value.distribution == Deterministic((7.0 / 1e-9) ** 2)

    def test_unary_overflow_raises_query_error(self, ctx):
        with pytest.raises(QueryError, match="overflows"):
            UnaryOp("square", Literal(1e200)).evaluate(ctx)


class TestValidation:
    def test_rejects_unknown_binary_op(self):
        with pytest.raises(QueryError):
            BinaryOp("%", Literal(1.0), Literal(2.0))

    def test_rejects_unknown_unary_op(self):
        with pytest.raises(QueryError):
            UnaryOp("log", Literal(1.0))

    def test_rejects_unknown_comparison(self):
        with pytest.raises(QueryError):
            Comparison("~", Literal(1.0), Literal(2.0))

    def test_rejects_tiny_mc_budget(self, rng):
        with pytest.raises(QueryError):
            EvalContext(UncertainTuple({}), rng, mc_samples=1)


class TestPredicateProbability:
    def test_cdf_fast_path(self, ctx):
        comparison = Comparison(">", Column("g"), Literal(10.0))
        p, n = predicate_probability(comparison, ctx)
        assert p == pytest.approx(0.5)
        assert n == 15

    def test_flipped_fast_path(self, ctx):
        comparison = Comparison("<", Literal(10.0), Column("g"))
        p, n = predicate_probability(comparison, ctx)
        assert p == pytest.approx(0.5)

    def test_monte_carlo_two_distributions(self, ctx):
        comparison = Comparison(">", Column("g"), Column("h"))
        p, n = predicate_probability(comparison, ctx)
        # P[N(10,4) > N(5,1)] = Phi(5 / sqrt(5)) ~ 0.987.
        assert p == pytest.approx(0.987, abs=0.01)
        assert n == 10

    def test_all_exact_gives_none_size(self, ctx):
        comparison = Comparison(">", Literal(2.0), Literal(1.0))
        p, n = predicate_probability(comparison, ctx)
        assert p == 1.0
        assert n is None

    def test_less_equal_cdf(self, ctx):
        comparison = Comparison("<=", Column("g"), Literal(10.0))
        p, _ = predicate_probability(comparison, ctx)
        assert p == pytest.approx(0.5)

    def test_probability_in_unit_interval(self, ctx):
        comparison = Comparison("<>", Column("e"), Column("h"))
        p, _ = predicate_probability(comparison, ctx)
        assert 0.0 <= p <= 1.0
