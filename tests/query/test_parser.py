"""Tests for the SQL-ish parser."""

import pytest

from repro.errors import ParseError
from repro.query.expressions import (
    BinaryOp,
    Column,
    Comparison,
    Literal,
    UnaryOp,
)
from repro.query.parser import (
    AndCondition,
    CompareCondition,
    NotCondition,
    OrCondition,
    SignificanceCondition,
    parse_expression,
    parse_query,
)


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(a + b) * c")
        assert isinstance(expr, BinaryOp) and expr.op == "*"
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "+"

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert isinstance(expr, BinaryOp)
        assert isinstance(expr.left, BinaryOp)
        assert str(expr) == "((a - b) - c)"

    def test_unary_minus(self):
        expr = parse_expression("-a + b")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.left, UnaryOp) and expr.left.op == "neg"

    def test_functions(self):
        assert parse_expression("SQRT(a)") == UnaryOp("sqrtabs", Column("a"))
        assert parse_expression("SQUARE(a)") == UnaryOp("square", Column("a"))
        assert parse_expression("ABS(a)") == UnaryOp("abs", Column("a"))
        assert parse_expression("sqrtabs(a)") == UnaryOp(
            "sqrtabs", Column("a")
        )

    def test_numbers(self):
        assert parse_expression("3.5") == Literal(3.5)
        assert parse_expression(".5") == Literal(0.5)
        assert parse_expression("42") == Literal(42.0)

    def test_rejects_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("a + b )")

    def test_rejects_incomplete(self):
        with pytest.raises(ParseError):
            parse_expression("a +")

    def test_rejects_bad_character(self):
        with pytest.raises(ParseError):
            parse_expression("a @ b")


class TestSelectList:
    def test_star(self):
        query = parse_query("SELECT * FROM s")
        assert query.star
        assert query.source == "s"

    def test_columns_and_aliases(self):
        query = parse_query("SELECT a, b AS bee, a + b FROM s")
        names = [alias for _, alias in query.select_items]
        assert names == ["a", "bee", "expr_2"]

    def test_case_insensitive_keywords(self):
        query = parse_query("select a from s where a > 1")
        assert query.source == "s"
        assert query.where is not None

    def test_rejects_missing_from(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a")

    def test_rejects_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM s extra")


class TestWhereConditions:
    def test_bare_comparison(self):
        query = parse_query("SELECT a FROM s WHERE a > 5")
        cond = query.where
        assert isinstance(cond, CompareCondition)
        assert cond.threshold is None
        assert cond.comparison.op == ">"

    def test_probability_threshold(self):
        query = parse_query("SELECT a FROM s WHERE a > 50 PROB 0.66")
        cond = query.where
        assert isinstance(cond, CompareCondition)
        assert cond.threshold == pytest.approx(0.66)

    def test_probability_threshold_fraction(self):
        # The paper's 'Delay >2/3 50' written as PROB 2/3.
        query = parse_query("SELECT a FROM s WHERE a > 50 PROB 2/3")
        assert query.where.threshold == pytest.approx(2 / 3)

    def test_rejects_probability_above_one(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM s WHERE a > 5 PROB 1.5")

    def test_and_or_not(self):
        query = parse_query(
            "SELECT a FROM s WHERE a > 1 AND (b < 2 OR NOT c > 3)"
        )
        cond = query.where
        assert isinstance(cond, AndCondition)
        assert isinstance(cond.parts[1], OrCondition)
        assert isinstance(cond.parts[1].parts[1], NotCondition)

    def test_comparison_operators(self):
        for op in ("<", "<=", ">", ">=", "=", "<>"):
            query = parse_query(f"SELECT a FROM s WHERE a {op} 1")
            assert query.where.comparison.op == op

    def test_comparison_between_expressions(self):
        query = parse_query("SELECT a FROM s WHERE a + b > c * 2")
        comparison = query.where.comparison
        assert isinstance(comparison, Comparison)
        assert comparison.columns() == {"a", "b", "c"}


class TestSignificanceCalls:
    def test_mtest(self):
        query = parse_query(
            "SELECT a FROM s WHERE mTest(a, '>', 97, 0.05)"
        )
        cond = query.where
        assert isinstance(cond, SignificanceCondition)
        assert cond.kind == "mtest"
        assert cond.op == ">"
        assert cond.constant == 97.0
        assert cond.alpha1 == 0.05
        assert cond.alpha2 is None  # single test

    def test_mtest_coupled(self):
        query = parse_query(
            "SELECT a FROM s WHERE mTest(a, '<>', 0, 0.05, 0.01)"
        )
        assert query.where.alpha2 == 0.01
        assert query.where.op == "<>"

    def test_mtest_negative_constant(self):
        query = parse_query("SELECT a FROM s WHERE mTest(a, '<', -5, 0.05)")
        assert query.where.constant == -5.0

    def test_mdtest(self):
        query = parse_query(
            "SELECT a FROM s WHERE mdTest(a, b, '>', 0, 0.05, 0.05)"
        )
        cond = query.where
        assert cond.kind == "mdtest"
        assert cond.expr_x == Column("a")
        assert cond.expr_y == Column("b")

    def test_ptest(self):
        query = parse_query(
            "SELECT a FROM s WHERE pTest(a > 100, 0.5, 0.05)"
        )
        cond = query.where
        assert cond.kind == "ptest"
        assert cond.tau == 0.5
        assert cond.comparison.op == ">"

    def test_ptest_with_fraction_tau(self):
        query = parse_query(
            "SELECT a FROM s WHERE pTest(a > 1, 2/3, 0.05, 0.05)"
        )
        assert query.where.tau == pytest.approx(2 / 3)
        assert query.where.alpha2 == 0.05

    def test_sig_call_composes_with_and(self):
        query = parse_query(
            "SELECT a FROM s WHERE mTest(a, '>', 0, 0.05) AND a > 1"
        )
        assert isinstance(query.where, AndCondition)

    def test_rejects_bad_test_op(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM s WHERE mTest(a, '>=', 0, 0.05)")

    def test_rejects_unquoted_op(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM s WHERE mTest(a, >, 0, 0.05)")


class TestErrorPositions:
    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("SELECT a FROM s WHERE a @ 5")
        assert excinfo.value.position is not None
