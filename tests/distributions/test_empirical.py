"""Tests for the sample-backed empirical distribution."""

import numpy as np
import pytest

from repro.distributions.empirical import EmpiricalDistribution
from repro.errors import DistributionError


class TestBasics:
    def test_moments(self):
        e = EmpiricalDistribution([1.0, 2.0, 3.0])
        assert e.mean() == pytest.approx(2.0)
        assert e.variance() == pytest.approx(2.0 / 3.0)  # population
        assert e.sample_variance() == pytest.approx(1.0)  # unbiased

    def test_size_and_len(self):
        e = EmpiricalDistribution([5.0, 6.0])
        assert e.size == 2
        assert len(e) == 2

    def test_single_value(self):
        e = EmpiricalDistribution([4.0])
        assert e.mean() == 4.0
        assert e.variance() == 0.0
        assert e.sample_variance() == 0.0

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            EmpiricalDistribution([])

    def test_rejects_non_finite(self):
        with pytest.raises(DistributionError):
            EmpiricalDistribution([1.0, float("inf")])


class TestCdfAndQuantiles:
    def test_cdf_step_function(self):
        e = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert e.cdf(0.5) == 0.0
        assert e.cdf(1.0) == 0.25
        assert e.cdf(2.5) == 0.5
        assert e.cdf(4.0) == 1.0

    def test_quantile_endpoints(self):
        e = EmpiricalDistribution([3.0, 1.0, 2.0])
        assert e.quantile(0.0) == 1.0
        assert e.quantile(1.0) == 3.0

    def test_quantile_rejects_out_of_range(self):
        e = EmpiricalDistribution([1.0])
        with pytest.raises(DistributionError):
            e.quantile(1.1)

    def test_prob_greater(self):
        e = EmpiricalDistribution([1, 2, 3, 4, 5])
        assert e.prob_greater(3.0) == pytest.approx(0.4)


class TestSampling:
    def test_samples_come_from_values(self, rng):
        e = EmpiricalDistribution([1.0, 2.0, 3.0])
        samples = e.sample(rng, 100)
        assert set(np.unique(samples)).issubset({1.0, 2.0, 3.0})

    def test_resample_same_size_by_default(self, rng):
        e = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        r = e.resample(rng)
        assert r.size == 4

    def test_resample_explicit_size(self, rng):
        e = EmpiricalDistribution([1.0, 2.0])
        assert e.resample(rng, 10).size == 10

    def test_sampling_mean_converges(self, rng):
        e = EmpiricalDistribution(rng.normal(7, 2, 500))
        samples = e.sample(rng, 100_000)
        assert samples.mean() == pytest.approx(e.mean(), abs=0.05)
