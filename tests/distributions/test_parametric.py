"""Tests for the parametric families (§V-A parameterisations)."""

import pytest

from repro.distributions.parametric import (
    ExponentialDistribution,
    GammaDistribution,
    UniformDistribution,
    WeibullDistribution,
)
from repro.errors import DistributionError


class TestUniform:
    def test_paper_parameterisation(self):
        u = UniformDistribution(0.0, 1.0)
        assert u.mean() == pytest.approx(0.5)
        assert u.variance() == pytest.approx(1.0 / 12.0)

    def test_cdf(self):
        u = UniformDistribution(2.0, 4.0)
        assert u.cdf(2.0) == 0.0
        assert u.cdf(3.0) == pytest.approx(0.5)
        assert u.cdf(4.0) == 1.0

    def test_quantile(self):
        u = UniformDistribution(0.0, 10.0)
        assert u.quantile(0.3) == pytest.approx(3.0)

    def test_rejects_bad_range(self):
        with pytest.raises(DistributionError):
            UniformDistribution(1.0, 1.0)


class TestExponential:
    def test_paper_parameterisation(self):
        e = ExponentialDistribution(1.0)
        assert e.mean() == pytest.approx(1.0)
        assert e.variance() == pytest.approx(1.0)

    def test_rate_two(self):
        e = ExponentialDistribution(2.0)
        assert e.mean() == pytest.approx(0.5)

    def test_cdf(self):
        import math

        e = ExponentialDistribution(1.0)
        assert e.cdf(1.0) == pytest.approx(1 - math.exp(-1))

    def test_rejects_bad_rate(self):
        with pytest.raises(DistributionError):
            ExponentialDistribution(0.0)


class TestGamma:
    def test_paper_parameterisation(self):
        g = GammaDistribution(2.0, 2.0)
        assert g.mean() == pytest.approx(4.0)  # k * theta
        assert g.variance() == pytest.approx(8.0)  # k * theta^2

    def test_rejects_bad_params(self):
        with pytest.raises(DistributionError):
            GammaDistribution(-1.0, 2.0)


class TestWeibull:
    def test_paper_parameterisation_equals_exponential(self):
        # Weibull(lam=1, k=1) is exponential(1).
        w = WeibullDistribution(1.0, 1.0)
        assert w.mean() == pytest.approx(1.0)
        assert w.variance() == pytest.approx(1.0)
        e = ExponentialDistribution(1.0)
        for x in (0.5, 1.0, 2.0):
            assert w.cdf(x) == pytest.approx(e.cdf(x))

    def test_rejects_bad_params(self):
        with pytest.raises(DistributionError):
            WeibullDistribution(1.0, 0.0)


class TestSamplingMoments:
    @pytest.mark.parametrize(
        "dist",
        [
            UniformDistribution(0, 1),
            ExponentialDistribution(1.0),
            GammaDistribution(2.0, 2.0),
            WeibullDistribution(1.0, 1.0),
        ],
        ids=["uniform", "exponential", "gamma", "weibull"],
    )
    def test_sample_mean_matches(self, dist, rng):
        samples = dist.sample(rng, 100_000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.03)

    def test_quantile_inverts_cdf(self):
        g = GammaDistribution(2.0, 2.0)
        for q in (0.1, 0.5, 0.9):
            assert g.cdf(g.quantile(q)) == pytest.approx(q)
