"""Tests for exact histogram convolution."""

import numpy as np
import pytest

from repro.distributions.convolution import convolve_histograms, trapezoid_cdf
from repro.distributions.histogram import HistogramDistribution
from repro.errors import DistributionError


class TestTrapezoidCdf:
    def test_boundaries(self):
        values = trapezoid_cdf(np.array([0.0, 3.0]), 0.0, 1.0, 2.0)
        assert values[0] == 0.0
        assert values[1] == 1.0

    def test_symmetric_case_is_triangular(self):
        # w1 = w2 = 1: the sum of two U(0,1) is triangular on [0,2].
        xs = np.array([0.5, 1.0, 1.5])
        values = trapezoid_cdf(xs, 0.0, 1.0, 1.0)
        assert values[0] == pytest.approx(0.125)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(0.875)

    def test_flat_region_is_linear(self):
        # w1=1, w2=3: density is flat on [1, 3].
        xs = np.array([1.0, 2.0, 3.0])
        values = trapezoid_cdf(xs, 0.0, 1.0, 3.0)
        assert values[1] - values[0] == pytest.approx(values[2] - values[1])

    def test_monotone(self):
        xs = np.linspace(-1, 6, 100)
        values = trapezoid_cdf(xs, 0.5, 0.7, 2.3)
        assert np.all(np.diff(values) >= -1e-12)

    def test_shift(self):
        base = trapezoid_cdf(np.array([1.0]), 0.0, 1.0, 1.0)
        shifted = trapezoid_cdf(np.array([11.0]), 10.0, 1.0, 1.0)
        assert base[0] == pytest.approx(shifted[0])

    def test_rejects_bad_widths(self):
        with pytest.raises(DistributionError):
            trapezoid_cdf(np.array([0.0]), 0.0, 2.0, 1.0)
        with pytest.raises(DistributionError):
            trapezoid_cdf(np.array([0.0]), 0.0, 0.0, 1.0)


class TestConvolveHistograms:
    def test_sum_of_uniform_histograms(self):
        u = HistogramDistribution([0, 1], [1.0])
        total = convolve_histograms(u, u, bucket_count=16)
        # Triangular on [0, 2]: mean 1, variance 1/6.
        assert total.mean() == pytest.approx(1.0, abs=0.01)
        assert total.variance() == pytest.approx(1 / 6, rel=0.05)
        assert total.edges[0] == pytest.approx(0.0)
        assert total.edges[-1] == pytest.approx(2.0)

    def test_matches_monte_carlo(self, rng):
        a = HistogramDistribution([0, 2, 5, 9], [0.2, 0.5, 0.3])
        b = HistogramDistribution([1, 4, 6], [0.6, 0.4])
        exact = convolve_histograms(a, b, bucket_count=12)
        mc = a.sample(rng, 200_000) + b.sample(rng, 200_000)
        counts, _ = np.histogram(mc, bins=exact.edges)
        assert np.allclose(
            exact.probabilities, counts / counts.sum(), atol=0.01
        )

    def test_subtraction(self, rng):
        a = HistogramDistribution([0, 2, 5], [0.5, 0.5])
        b = HistogramDistribution([1, 3], [1.0])
        exact = convolve_histograms(a, b, subtract=True, bucket_count=12)
        mc = a.sample(rng, 200_000) - b.sample(rng, 200_000)
        assert exact.mean() == pytest.approx(float(mc.mean()), abs=0.03)
        assert exact.edges[0] == pytest.approx(-3.0)
        assert exact.edges[-1] == pytest.approx(4.0)

    def test_mean_additivity(self):
        # Bucket masses are exact; the midpoint-based mean converges to
        # the true sum as the output grid refines.
        a = HistogramDistribution([0, 1, 3], [0.25, 0.75])
        b = HistogramDistribution([2, 4, 8], [0.6, 0.4])
        total = convolve_histograms(a, b, bucket_count=400)
        assert total.mean() == pytest.approx(a.mean() + b.mean(), rel=1e-4)

    def test_variance_additivity_close(self):
        # Bucket re-flattening perturbs variance slightly; with fine
        # output buckets it converges to the exact sum.
        a = HistogramDistribution([0, 1, 3], [0.25, 0.75])
        b = HistogramDistribution([2, 4, 8], [0.6, 0.4])
        total = convolve_histograms(a, b, bucket_count=400)
        assert total.variance() == pytest.approx(
            a.variance() + b.variance(), rel=0.01
        )

    def test_zero_probability_buckets_skipped(self):
        a = HistogramDistribution([0, 1, 2], [1.0, 0.0])
        b = HistogramDistribution([0, 1], [1.0])
        # 12 buckets over [0, 3] puts an output edge exactly at 2.0, so
        # the "no mass beyond 2" claim is testable without re-flattening
        # artifacts.
        total = convolve_histograms(a, b, bucket_count=12)
        assert total.edges[-1] == pytest.approx(3.0)
        assert total.cdf(2.0) == pytest.approx(1.0, abs=1e-9)

    def test_rejects_bad_bucket_count(self):
        u = HistogramDistribution([0, 1], [1.0])
        with pytest.raises(DistributionError):
            convolve_histograms(u, u, bucket_count=0)


class TestQueryIntegration:
    def test_histogram_sum_in_expressions_is_exact(self, rng):
        from repro.core.dfsample import DfSized
        from repro.query.expressions import BinaryOp, Column, EvalContext
        from repro.streams.tuples import UncertainTuple

        a = HistogramDistribution([0, 2, 4], [0.5, 0.5])
        b = HistogramDistribution([1, 2, 3], [0.3, 0.7])
        tup = UncertainTuple(
            {"a": DfSized(a, 20), "b": DfSized(b, 30)}
        )
        ctx = EvalContext(tup, rng, 100)
        value = BinaryOp("+", Column("a"), Column("b")).evaluate(ctx)
        assert isinstance(value.distribution, HistogramDistribution)
        assert value.sample_size == 20
        # Masses are exact; the midpoint mean carries a small grid bias.
        assert value.distribution.mean() == pytest.approx(
            a.mean() + b.mean(), rel=1e-3
        )
