"""Tests for Monte-Carlo arithmetic on random variables."""

import numpy as np
import pytest

from repro.distributions.arithmetic import (
    BINARY_OPERATORS,
    UNARY_OPERATORS,
    apply_unary,
    combine,
    safe_divide,
)
from repro.distributions.base import Deterministic
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import DistributionError


class TestSafeDivide:
    def test_normal_division(self):
        out = safe_divide(np.array([6.0]), np.array([2.0]))
        assert out[0] == 3.0

    def test_near_zero_denominator_clamped(self):
        out = safe_divide(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(out[0])
        assert out[0] > 0

    def test_sign_preserved_for_tiny_negatives(self):
        out = safe_divide(np.array([1.0]), np.array([-1e-15]))
        assert out[0] < 0


class TestCombine:
    def test_operator_registry_is_papers_set(self):
        assert set(BINARY_OPERATORS) == {"+", "-", "*", "/"}
        assert {"sqrtabs", "square"} <= set(UNARY_OPERATORS)

    def test_addition_of_constants(self, rng):
        result = combine("+", Deterministic(2.0), Deterministic(3.0), rng, 100)
        assert isinstance(result, EmpiricalDistribution)
        assert np.all(result.values == 5.0)

    def test_sum_of_gaussians_matches_closed_form(self, rng):
        a = GaussianDistribution(1.0, 1.0)
        b = GaussianDistribution(2.0, 2.0)
        result = combine("+", a, b, rng, 50_000)
        assert result.mean() == pytest.approx(3.0, abs=0.05)
        assert result.variance() == pytest.approx(3.0, rel=0.1)

    def test_product_mean_of_independents(self, rng):
        a = GaussianDistribution(2.0, 0.5)
        b = GaussianDistribution(3.0, 0.5)
        result = combine("*", a, b, rng, 50_000)
        assert result.mean() == pytest.approx(6.0, abs=0.1)

    def test_result_size_matches_request(self, rng):
        result = combine(
            "-", Deterministic(1.0), Deterministic(0.0), rng, 123
        )
        assert result.size == 123

    def test_rejects_unknown_operator(self, rng):
        with pytest.raises(DistributionError):
            combine("%", Deterministic(1.0), Deterministic(1.0), rng)


class TestApplyUnary:
    def test_square(self, rng):
        result = apply_unary("square", Deterministic(3.0), rng, 10)
        assert np.all(result.values == 9.0)

    def test_sqrtabs_of_negative(self, rng):
        result = apply_unary("sqrtabs", Deterministic(-4.0), rng, 10)
        assert np.all(result.values == 2.0)

    def test_neg(self, rng):
        result = apply_unary("neg", Deterministic(5.0), rng, 10)
        assert np.all(result.values == -5.0)

    def test_abs(self, rng):
        result = apply_unary("abs", Deterministic(-2.5), rng, 10)
        assert np.all(result.values == 2.5)

    def test_square_of_standard_normal_is_chi2(self, rng):
        result = apply_unary(
            "square", GaussianDistribution(0, 1), rng, 100_000
        )
        # Chi-square with 1 dof: mean 1, variance 2.
        assert result.mean() == pytest.approx(1.0, abs=0.03)
        assert result.variance() == pytest.approx(2.0, rel=0.1)

    def test_rejects_unknown_operator(self, rng):
        with pytest.raises(DistributionError):
            apply_unary("log", Deterministic(1.0), rng)
