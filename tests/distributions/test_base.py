"""Tests for the Distribution base and the Deterministic degenerate case."""

import numpy as np
import pytest

from repro.distributions.base import Deterministic, as_distribution
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import DistributionError


class TestDeterministic:
    def test_moments(self):
        d = Deterministic(5.0)
        assert d.mean() == 5.0
        assert d.variance() == 0.0
        assert d.std() == 0.0

    def test_sampling_is_constant(self, rng):
        d = Deterministic(3.0)
        assert np.all(d.sample(rng, 10) == 3.0)

    def test_cdf_is_step_function(self):
        d = Deterministic(2.0)
        assert d.cdf(1.999) == 0.0
        assert d.cdf(2.0) == 1.0
        assert d.cdf(3.0) == 1.0

    def test_tail_probabilities(self):
        d = Deterministic(2.0)
        assert d.prob_greater(1.0) == 1.0
        assert d.prob_greater(2.0) == 0.0
        assert d.prob_less(3.0) == 1.0

    def test_is_deterministic_flag(self):
        assert Deterministic(1.0).is_deterministic()
        assert not GaussianDistribution(0, 1).is_deterministic()

    def test_equality_and_hash(self):
        assert Deterministic(1.0) == Deterministic(1.0)
        assert Deterministic(1.0) != Deterministic(2.0)
        assert hash(Deterministic(1.0)) == hash(Deterministic(1.0))

    def test_rejects_non_finite(self):
        with pytest.raises(DistributionError):
            Deterministic(float("inf"))
        with pytest.raises(DistributionError):
            Deterministic(float("nan"))


class TestAsDistribution:
    def test_passes_distributions_through(self):
        g = GaussianDistribution(0, 1)
        assert as_distribution(g) is g

    def test_coerces_numbers(self):
        assert as_distribution(5) == Deterministic(5.0)
        assert as_distribution(2.5) == Deterministic(2.5)
        assert as_distribution(np.float64(1.5)) == Deterministic(1.5)

    def test_rejects_other_types(self):
        with pytest.raises(DistributionError):
            as_distribution("hello")  # type: ignore[arg-type]
        with pytest.raises(DistributionError):
            as_distribution([1, 2])  # type: ignore[arg-type]
