"""Tests for the histogram distribution."""

import numpy as np
import pytest

from repro.distributions.histogram import HistogramDistribution
from repro.errors import DistributionError


@pytest.fixture
def simple() -> HistogramDistribution:
    """Three buckets on [0, 30) with probabilities .2, .5, .3."""
    return HistogramDistribution([0, 10, 20, 30], [0.2, 0.5, 0.3])


class TestConstruction:
    def test_probabilities_normalised(self):
        h = HistogramDistribution([0, 1, 2], [2.0, 2.0])
        assert np.allclose(h.probabilities, [0.5, 0.5])

    def test_from_counts(self):
        h = HistogramDistribution.from_counts([0, 1, 2], [30, 10])
        assert np.allclose(h.probabilities, [0.75, 0.25])

    def test_zero_probability_bucket_allowed(self):
        h = HistogramDistribution([0, 1, 2, 3], [0.5, 0.0, 0.5])
        assert h.probabilities[1] == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DistributionError):
            HistogramDistribution([0, 1], [0.5, 0.5])

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(DistributionError):
            HistogramDistribution([0, 0, 1], [0.5, 0.5])
        with pytest.raises(DistributionError):
            HistogramDistribution([1, 0], [1.0])

    def test_rejects_negative_probabilities(self):
        with pytest.raises(DistributionError):
            HistogramDistribution([0, 1, 2], [-0.5, 1.5])

    def test_rejects_all_zero(self):
        with pytest.raises(DistributionError):
            HistogramDistribution([0, 1, 2], [0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            HistogramDistribution([0], [])

    def test_rejects_negative_counts(self):
        with pytest.raises(DistributionError):
            HistogramDistribution.from_counts([0, 1], [-1])


class TestMoments:
    def test_mean_is_weighted_midpoint(self, simple):
        expected = 5 * 0.2 + 15 * 0.5 + 25 * 0.3
        assert simple.mean() == pytest.approx(expected)

    def test_variance_matches_monte_carlo(self, simple, rng):
        samples = simple.sample(rng, 200_000)
        assert simple.variance() == pytest.approx(
            float(samples.var()), rel=0.02
        )

    def test_single_bucket_is_uniform(self):
        h = HistogramDistribution([0, 12], [1.0])
        assert h.mean() == pytest.approx(6.0)
        assert h.variance() == pytest.approx(12.0**2 / 12.0)


class TestCdf:
    def test_boundaries(self, simple):
        assert simple.cdf(-1) == 0.0
        assert simple.cdf(0) == 0.0
        assert simple.cdf(30) == 1.0
        assert simple.cdf(100) == 1.0

    def test_bucket_interiors_interpolate(self, simple):
        assert simple.cdf(5) == pytest.approx(0.1)
        assert simple.cdf(10) == pytest.approx(0.2)
        assert simple.cdf(15) == pytest.approx(0.45)
        assert simple.cdf(20) == pytest.approx(0.7)

    def test_monotone(self, simple):
        xs = np.linspace(-5, 35, 200)
        cdfs = [simple.cdf(float(x)) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))

    def test_prob_greater_complement(self, simple):
        assert simple.prob_greater(15) == pytest.approx(1 - simple.cdf(15))


class TestSampling:
    def test_samples_within_support(self, simple, rng):
        samples = simple.sample(rng, 1000)
        assert samples.min() >= 0.0
        assert samples.max() < 30.0

    def test_bucket_frequencies_match(self, simple, rng):
        samples = simple.sample(rng, 50_000)
        counts, _ = np.histogram(samples, bins=simple.edges)
        assert np.allclose(counts / 50_000, simple.probabilities, atol=0.01)


class TestBucketHelpers:
    def test_bucket_bounds(self, simple):
        assert simple.bucket_bounds(0) == (0.0, 10.0)
        assert simple.bucket_bounds(2) == (20.0, 30.0)

    def test_bucket_index(self, simple):
        assert simple.bucket_index(0.0) == 0
        assert simple.bucket_index(9.99) == 0
        assert simple.bucket_index(10.0) == 1
        assert simple.bucket_index(29.9) == 2

    def test_bucket_index_clamps_out_of_range(self, simple):
        assert simple.bucket_index(-5.0) == 0
        assert simple.bucket_index(35.0) == 2

    def test_bucket_count(self, simple):
        assert simple.bucket_count == 3

    def test_equality(self, simple):
        same = HistogramDistribution([0, 10, 20, 30], [0.2, 0.5, 0.3])
        assert simple == same
        different = HistogramDistribution([0, 10, 20, 30], [0.3, 0.4, 0.3])
        assert simple != different
