"""Tests for finite mixture distributions."""

import numpy as np
import pytest

from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.mixture import MixtureDistribution
from repro.errors import DistributionError


class TestConstruction:
    def test_default_equal_weights(self):
        m = MixtureDistribution(
            [GaussianDistribution(0, 1), GaussianDistribution(10, 1)]
        )
        assert np.allclose(m.weights, [0.5, 0.5])

    def test_weights_normalised(self):
        m = MixtureDistribution(
            [GaussianDistribution(0, 1), GaussianDistribution(1, 1)],
            [1.0, 3.0],
        )
        assert np.allclose(m.weights, [0.25, 0.75])

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            MixtureDistribution([])

    def test_rejects_weight_mismatch(self):
        with pytest.raises(DistributionError):
            MixtureDistribution([GaussianDistribution(0, 1)], [0.5, 0.5])

    def test_rejects_negative_weights(self):
        with pytest.raises(DistributionError):
            MixtureDistribution(
                [GaussianDistribution(0, 1), GaussianDistribution(1, 1)],
                [-1.0, 2.0],
            )


class TestMoments:
    def test_mean_is_weighted(self):
        m = MixtureDistribution(
            [GaussianDistribution(0, 1), GaussianDistribution(10, 1)],
            [0.3, 0.7],
        )
        assert m.mean() == pytest.approx(7.0)

    def test_variance_law_of_total_variance(self):
        m = MixtureDistribution(
            [GaussianDistribution(0, 1), GaussianDistribution(10, 4)],
            [0.5, 0.5],
        )
        expected = 0.5 * 1 + 0.5 * 4 + 0.5 * 25 + 0.5 * 25
        assert m.variance() == pytest.approx(expected)

    def test_single_component_passthrough(self):
        g = GaussianDistribution(3, 2)
        m = MixtureDistribution([g])
        assert m.mean() == g.mean()
        assert m.variance() == g.variance()
        assert m.cdf(3.5) == pytest.approx(g.cdf(3.5))


class TestCdfAndSampling:
    def test_cdf_is_weighted_sum(self):
        a = GaussianDistribution(0, 1)
        b = GaussianDistribution(5, 1)
        m = MixtureDistribution([a, b], [0.4, 0.6])
        assert m.cdf(2.0) == pytest.approx(0.4 * a.cdf(2.0) + 0.6 * b.cdf(2.0))

    def test_bimodal_sampling(self, rng):
        m = MixtureDistribution(
            [GaussianDistribution(0, 0.01), GaussianDistribution(10, 0.01)],
            [0.5, 0.5],
        )
        samples = m.sample(rng, 10_000)
        near_zero = np.mean(np.abs(samples) < 1)
        near_ten = np.mean(np.abs(samples - 10) < 1)
        assert near_zero == pytest.approx(0.5, abs=0.03)
        assert near_ten == pytest.approx(0.5, abs=0.03)

    def test_sampling_moments(self, rng):
        m = MixtureDistribution(
            [GaussianDistribution(0, 1), GaussianDistribution(4, 2)],
            [0.25, 0.75],
        )
        samples = m.sample(rng, 100_000)
        assert samples.mean() == pytest.approx(m.mean(), abs=0.05)
        assert samples.var() == pytest.approx(m.variance(), rel=0.05)
