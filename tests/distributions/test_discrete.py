"""Tests for finite discrete distributions."""

import numpy as np
import pytest

from repro.distributions.discrete import DiscreteDistribution
from repro.errors import DistributionError


class TestConstruction:
    def test_sorted_and_normalised(self):
        d = DiscreteDistribution([3.0, 1.0], [2.0, 6.0])
        assert np.allclose(d.support, [1.0, 3.0])
        assert np.allclose(d.probabilities, [0.75, 0.25])

    def test_duplicate_support_merged(self):
        d = DiscreteDistribution([1.0, 1.0, 2.0], [0.25, 0.25, 0.5])
        assert np.allclose(d.support, [1.0, 2.0])
        assert np.allclose(d.probabilities, [0.5, 0.5])

    def test_rejects_length_mismatch(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution([1.0], [0.5, 0.5])

    def test_rejects_negative_probability(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution([1.0, 2.0], [-0.5, 1.5])

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution([], [])


class TestMomentsAndCdf:
    def test_moments(self):
        d = DiscreteDistribution([0.0, 10.0], [0.5, 0.5])
        assert d.mean() == 5.0
        assert d.variance() == 25.0

    def test_cdf_steps(self):
        d = DiscreteDistribution([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert d.cdf(0.9) == 0.0
        assert d.cdf(1.0) == pytest.approx(0.2)
        assert d.cdf(2.5) == pytest.approx(0.5)
        assert d.cdf(3.0) == pytest.approx(1.0)

    def test_prob_of(self):
        d = DiscreteDistribution([1.0, 2.0], [0.3, 0.7])
        assert d.prob_of(2.0) == pytest.approx(0.7)
        assert d.prob_of(5.0) == 0.0


class TestBernoulli:
    def test_construction(self):
        b = DiscreteDistribution.bernoulli(0.3)
        assert b.mean() == pytest.approx(0.3)
        assert b.variance() == pytest.approx(0.21)

    def test_rejects_bad_p(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution.bernoulli(1.5)


class TestSampling:
    def test_frequencies(self, rng):
        d = DiscreteDistribution([0.0, 1.0], [0.25, 0.75])
        samples = d.sample(rng, 40_000)
        assert samples.mean() == pytest.approx(0.75, abs=0.01)
