"""Property-based tests (hypothesis) for the distribution substrate.

These check structural invariants every distribution must satisfy:
cdf monotonicity and range, probability normalisation, and consistency
between analytic moments and the sampling path.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.base import Deterministic
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.mixture import MixtureDistribution

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(min_value=1e-6, max_value=1e6)


@st.composite
def histograms(draw) -> HistogramDistribution:
    b = draw(st.integers(min_value=1, max_value=8))
    start = draw(st.floats(min_value=-1e3, max_value=1e3))
    widths = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0),
            min_size=b, max_size=b,
        )
    )
    edges = np.concatenate(([start], start + np.cumsum(widths)))
    probs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=b, max_size=b,
        ).filter(lambda ps: sum(ps) > 1e-9)
    )
    return HistogramDistribution(edges, probs)


@st.composite
def gaussians(draw) -> GaussianDistribution:
    mu = draw(st.floats(min_value=-1e4, max_value=1e4))
    sigma2 = draw(st.floats(min_value=0.0, max_value=1e4))
    return GaussianDistribution(mu, sigma2)


@st.composite
def empiricals(draw) -> EmpiricalDistribution:
    values = draw(
        st.lists(finite_floats, min_size=1, max_size=50)
    )
    return EmpiricalDistribution(values)


@st.composite
def discretes(draw) -> DiscreteDistribution:
    k = draw(st.integers(min_value=1, max_value=10))
    support = draw(
        st.lists(finite_floats, min_size=k, max_size=k, unique=True)
    )
    probs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=k, max_size=k,
        ).filter(lambda ps: sum(ps) > 1e-9)
    )
    return DiscreteDistribution(support, probs)


@st.composite
def any_distribution(draw):
    kind = draw(st.sampled_from(["hist", "gauss", "emp", "disc", "det"]))
    if kind == "hist":
        return draw(histograms())
    if kind == "gauss":
        return draw(gaussians())
    if kind == "emp":
        return draw(empiricals())
    if kind == "disc":
        return draw(discretes())
    return Deterministic(draw(finite_floats))


@given(dist=any_distribution(), x=finite_floats)
@settings(max_examples=200, deadline=None)
def test_cdf_in_unit_interval(dist, x):
    value = dist.cdf(x)
    assert 0.0 <= value <= 1.0 + 1e-12


@given(dist=any_distribution(), a=finite_floats, b=finite_floats)
@settings(max_examples=200, deadline=None)
def test_cdf_monotone(dist, a, b):
    lo, hi = min(a, b), max(a, b)
    assert dist.cdf(lo) <= dist.cdf(hi) + 1e-12


@given(dist=any_distribution(), x=finite_floats)
@settings(max_examples=100, deadline=None)
def test_tail_probabilities_complement(dist, x):
    assert dist.prob_greater(x) == 1.0 - dist.cdf(x)


@given(dist=any_distribution())
@settings(max_examples=100, deadline=None)
def test_variance_non_negative(dist):
    assert dist.variance() >= -1e-9
    assert dist.std() >= 0.0


@given(hist=histograms())
@settings(max_examples=100, deadline=None)
def test_histogram_probabilities_normalised(hist):
    assert abs(hist.probabilities.sum() - 1.0) < 1e-9


@given(hist=histograms())
@settings(max_examples=100, deadline=None)
def test_histogram_mean_within_support(hist):
    assert hist.edges[0] - 1e-9 <= hist.mean() <= hist.edges[-1] + 1e-9


@given(disc=discretes())
@settings(max_examples=100, deadline=None)
def test_discrete_mean_within_support(disc):
    assert disc.support.min() - 1e-6 <= disc.mean() <= disc.support.max() + 1e-6


@given(dist=any_distribution(), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_samples_are_finite_and_sized(dist, seed):
    rng = np.random.default_rng(seed)
    samples = dist.sample(rng, 16)
    assert samples.shape == (16,)
    assert np.all(np.isfinite(samples))


@given(
    mu=st.floats(min_value=-100, max_value=100),
    sigma2=st.floats(min_value=0.01, max_value=100),
    shift=st.floats(min_value=-100, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_gaussian_shift_preserves_shape(mu, sigma2, shift):
    g = GaussianDistribution(mu, sigma2)
    shifted = g.shifted(shift)
    assert shifted.variance() == g.variance()
    assert shifted.mean() == mu + shift


@given(
    components=st.lists(gaussians(), min_size=1, max_size=5),
)
@settings(max_examples=100, deadline=None)
def test_mixture_mean_within_component_range(components):
    m = MixtureDistribution(components)
    means = [c.mean() for c in components]
    assert min(means) - 1e-6 <= m.mean() <= max(means) + 1e-6


@given(emp=empiricals(), q=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_empirical_quantile_within_range(emp, q):
    value = emp.quantile(q)
    assert emp.values.min() <= value <= emp.values.max()
