"""Tests for the Gaussian distribution and its closed-form arithmetic."""

import numpy as np
import pytest
from scipy import stats

from repro.distributions.gaussian import GaussianDistribution
from repro.errors import DistributionError


class TestBasics:
    def test_moments(self):
        g = GaussianDistribution(3.0, 4.0)
        assert g.mean() == 3.0
        assert g.variance() == 4.0
        assert g.std() == 2.0

    def test_cdf_matches_scipy(self):
        g = GaussianDistribution(1.0, 2.25)
        for x in (-2.0, 0.0, 1.0, 3.5):
            assert g.cdf(x) == pytest.approx(
                float(stats.norm.cdf(x, 1.0, 1.5))
            )

    def test_quantile_inverts_cdf(self):
        g = GaussianDistribution(5.0, 9.0)
        for q in (0.05, 0.5, 0.95):
            assert g.cdf(g.quantile(q)) == pytest.approx(q)

    def test_zero_variance_degenerates(self):
        g = GaussianDistribution(2.0, 0.0)
        assert g.cdf(1.9) == 0.0
        assert g.cdf(2.0) == 1.0

    def test_sampling_moments(self, rng):
        g = GaussianDistribution(-1.0, 4.0)
        samples = g.sample(rng, 100_000)
        assert samples.mean() == pytest.approx(-1.0, abs=0.05)
        assert samples.var() == pytest.approx(4.0, rel=0.05)

    def test_rejects_negative_variance(self):
        with pytest.raises(DistributionError):
            GaussianDistribution(0.0, -1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(DistributionError):
            GaussianDistribution(float("nan"), 1.0)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(DistributionError):
            GaussianDistribution(0, 1).quantile(1.5)


class TestArithmetic:
    def test_shift(self):
        g = GaussianDistribution(1.0, 2.0).shifted(3.0)
        assert g == GaussianDistribution(4.0, 2.0)

    def test_scale(self):
        g = GaussianDistribution(1.0, 2.0).scaled(-2.0)
        assert g == GaussianDistribution(-2.0, 8.0)

    def test_plus_independent(self):
        a = GaussianDistribution(1.0, 2.0)
        b = GaussianDistribution(3.0, 4.0)
        assert a.plus(b) == GaussianDistribution(4.0, 6.0)

    def test_minus_adds_variances(self):
        a = GaussianDistribution(1.0, 2.0)
        b = GaussianDistribution(3.0, 4.0)
        assert a.minus(b) == GaussianDistribution(-2.0, 6.0)

    def test_average(self):
        gs = [GaussianDistribution(2.0, 1.0), GaussianDistribution(4.0, 3.0)]
        avg = GaussianDistribution.average(gs)
        assert avg.mu == pytest.approx(3.0)
        assert avg.sigma2 == pytest.approx(1.0)  # (1+3)/4

    def test_average_single(self):
        g = GaussianDistribution(5.0, 2.0)
        assert GaussianDistribution.average([g]) == g

    def test_average_empty_rejected(self):
        with pytest.raises(DistributionError):
            GaussianDistribution.average([])

    def test_sum_matches_sampling(self, rng):
        a = GaussianDistribution(1.0, 2.0)
        b = GaussianDistribution(-2.0, 0.5)
        combined = a.plus(b)
        samples = a.sample(rng, 50_000) + b.sample(rng, 50_000)
        assert combined.mean() == pytest.approx(samples.mean(), abs=0.05)
        assert combined.variance() == pytest.approx(samples.var(), rel=0.05)
