"""Shared-subplan dispatch through the StreamDatabase facade.

The contract under test: with ``shared_subplans`` enabled (the
default), standing-query dispatch — single inserts and batched
``insert_many`` — produces byte-identical results, match counts, and
callback order to the naive one-full-pipeline-per-query loop
(``shared_subplans=False``), while the obs registry shows the sharing
actually happened.
"""

import pickle

import numpy as np
import pytest

from repro.core.dfsample import DfSized
from repro.db import StreamDatabase
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import CallbackError, SchemaError
from repro.query.executor import ExecutorConfig
from repro.streams.tuples import Schema, UncertainTuple


def _delay_tuples(seed: int, n: int) -> list[UncertainTuple]:
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "road_id": float(i),
                "delay": DfSized(
                    GaussianDistribution(
                        float(rng.normal(60.0, 15.0)),
                        float(rng.uniform(1.0, 30.0)),
                    ),
                    int(rng.integers(2, 40)),
                ),
            }
        )
        for i in range(n)
    ]


QUERIES = [
    "SELECT road_id, delay FROM t WHERE delay > 55 PROB 0.7",
    "SELECT road_id, delay FROM t WHERE delay > 65 PROB 0.7",
    "SELECT road_id, delay FROM t WHERE 50 < delay PROB 0.6",
    "SELECT road_id, delay FROM t WHERE delay <= 60",
]


def _run(shared: bool, batched: bool, config=None, queries=QUERIES):
    db = StreamDatabase(config=config, shared_subplans=shared)
    db.create_stream("t")
    events: list[tuple[int, bytes]] = []
    for i, text in enumerate(queries):
        db.register_continuous(
            f"q{i}",
            text,
            lambda r, i=i: events.append((i, pickle.dumps(r))),
        )
    tuples = _delay_tuples(11, 120)
    if batched:
        db.insert_many("t", tuples)
    else:
        for tup in tuples:
            db.insert("t", tup)
    matches = [db._continuous[f"q{i}"].matches for i in range(len(queries))]
    return events, matches, db


class TestByteIdentity:
    def test_single_insert_matches_naive(self):
        naive, m_naive, _ = _run(shared=False, batched=False)
        shared, m_shared, _ = _run(shared=True, batched=False)
        assert m_shared == m_naive
        assert shared == naive  # same callback order, same pickle bytes

    def test_batched_insert_matches_naive(self):
        naive, m_naive, _ = _run(shared=False, batched=False)
        shared, m_shared, _ = _run(shared=True, batched=True)
        assert m_shared == m_naive
        assert shared == naive

    def test_bootstrap_prefix_falls_back_identically(self):
        # Bootstrap accuracy draws from each query's own generator, so
        # the prefix is NOT shareable; the guard must detect that and
        # the fallback must reproduce the naive draw sequence exactly.
        config = ExecutorConfig(
            accuracy_method="bootstrap",
            seed=3,
            mc_samples=64,
            bootstrap_resamples=4,
        )
        naive, m_naive, _ = _run(False, False, config)
        shared, m_shared, db = _run(True, True, config)
        assert m_shared == m_naive
        assert shared == naive
        fallbacks = db.metrics.counter("multiquery.prefix_fallbacks").value
        assert fallbacks >= 1

    def test_shared_flag_off_uses_naive_loop(self):
        _events, matches, db = _run(shared=False, batched=True)
        assert sum(matches) > 0
        assert db.metrics.counter("multiquery.shared_hits").value == 0


class TestEngineRegistry:
    def test_same_prefix_queries_form_one_group(self):
        _events, _matches, db = _run(shared=True, batched=False)
        assert db.metrics.gauge("multiquery.groups").value == 1.0
        assert db._engine.group_size("q0") == len(QUERIES)

    def test_shared_hits_recorded(self):
        _events, matches, db = _run(shared=True, batched=True)
        hits = db.metrics.counter("multiquery.shared_hits").value
        # Every result beyond the first per (tuple, group) rode a
        # shared prefix; with four same-prefix queries there are many.
        assert hits > 0
        assert hits < sum(matches)

    def test_different_configs_do_not_share(self):
        db = StreamDatabase(shared_subplans=True)
        db.create_stream("t")
        db.register_continuous(
            "a", "SELECT delay FROM t WHERE delay > 50", lambda r: None
        )
        db.register_continuous(
            "b",
            "SELECT delay FROM t WHERE delay > 60",
            lambda r: None,
            config=ExecutorConfig(confidence=0.8),
        )
        assert db._engine.group_size("a") == 1
        assert db._engine.group_size("b") == 1
        assert db.metrics.gauge("multiquery.groups").value == 0.0

    def test_unregister_leaves_group(self):
        _events, _matches, db = _run(shared=True, batched=False)
        db.unregister_continuous("q0")
        assert db._engine.group_size("q1") == len(QUERIES) - 1
        events: list[int] = []
        db._continuous["q1"].callback = lambda r: events.append(1)
        db.insert("t", _delay_tuples(5, 1)[0])
        assert "q0" not in db._engine._entries

    def test_drop_stream_clears_engine(self):
        _events, _matches, db = _run(shared=True, batched=False)
        db.drop_stream("t")
        assert db._engine._entries == {}

    def test_plan_cache_counters(self):
        from repro.query.planner import clear_plan_cache

        clear_plan_cache()
        db = StreamDatabase()
        db.create_stream("t")
        db.register_continuous(
            "a", "SELECT delay FROM t WHERE delay > 50", lambda r: None
        )
        db.register_continuous(
            "b", "SELECT  delay  FROM t WHERE delay > 50", lambda r: None
        )
        assert db.metrics.counter("plan_cache.misses").value == 1
        assert db.metrics.counter("plan_cache.hits").value == 1
        # One immutable plan object shared by both executors.
        assert (
            db._continuous["a"].executor.query
            is db._continuous["b"].executor.query
        )


class TestCallbackFaultIsolation:
    def _db_with_bomb(self, shared: bool):
        db = StreamDatabase(shared_subplans=shared)
        db.create_stream("t")
        seen: dict[str, list[float]] = {"early": [], "late": []}

        def early(result):
            seen["early"].append(result.value("x").distribution.mean())
            raise RuntimeError("subscriber bug")

        db.register_continuous("early", "SELECT x FROM t", early)
        db.register_continuous(
            "late",
            "SELECT x FROM t",
            lambda r: seen["late"].append(r.value("x").distribution.mean()),
        )
        return db, seen

    @pytest.mark.parametrize("shared", [False, True])
    def test_later_queries_still_dispatch(self, shared):
        db, seen = self._db_with_bomb(shared)
        with pytest.raises(CallbackError) as excinfo:
            db.insert("t", {"x": 1.0})
        assert excinfo.value.query_name == "early"
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        # The query registered after the bomb saw the tuple.
        assert seen["late"] == [1.0]
        assert db._continuous["late"].matches == 1

    def test_batched_aborts_after_failing_row(self):
        db, seen = self._db_with_bomb(shared=True)
        with pytest.raises(CallbackError):
            db.insert_many("t", [{"x": 1.0}, {"x": 2.0}, {"x": 3.0}])
        # The failing row completed its fan-out; later rows did not run.
        assert seen["early"] == [1.0]
        assert seen["late"] == [1.0]
        assert db.count("t") == 1


class TestInsertManyFastPaths:
    def test_no_watchers_extends_buffer(self):
        db = StreamDatabase()
        db.create_stream("s")
        inserted = db.insert_many("s", [{"x": float(i)} for i in range(10)])
        assert inserted == 10
        assert db.count("s") == 10
        assert db.stats("s")["inserted"] == 10

    def test_batch_validation_is_atomic(self):
        db = StreamDatabase()
        db.create_stream("s", Schema([("x", "number")]))
        with pytest.raises(SchemaError):
            db.insert_many("s", [{"x": 1.0}, {"x": "bad"}, {"x": 3.0}])
        assert db.count("s") == 0

    def test_mappings_accepted_in_batch(self):
        db = StreamDatabase()
        db.create_stream("s")
        hits: list[float] = []
        db.register_continuous(
            "w",
            "SELECT x FROM s WHERE x > 1",
            lambda r: hits.append(r.value("x").distribution.mean()),
        )
        db.insert_many("s", [{"x": 1.0}, {"x": 2.0}, {"x": 3.0}])
        assert hits == [2.0, 3.0]
