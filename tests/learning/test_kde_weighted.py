"""Tests for the KDE learner and the weighted (decay) learner."""

import numpy as np
import pytest

from repro.errors import LearningError
from repro.learning.kde_learner import (
    KdeDistribution,
    KdeLearner,
    silverman_bandwidth,
)
from repro.learning.weighted import WeightedLearner


class TestKdeDistribution:
    def test_moments(self, rng):
        points = rng.normal(5, 2, 100)
        kde = KdeDistribution(points, 0.5)
        assert kde.mean() == pytest.approx(float(points.mean()))
        assert kde.variance() == pytest.approx(
            float(points.var()) + 0.25
        )

    def test_cdf_monotone_and_bounded(self, rng):
        kde = KdeDistribution(rng.normal(0, 1, 50), 0.3)
        xs = np.linspace(-5, 5, 50)
        cdfs = [kde.cdf(float(x)) for x in xs]
        assert all(0 <= v <= 1 for v in cdfs)
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))

    def test_pdf_integrates_to_one(self, rng):
        kde = KdeDistribution(rng.normal(0, 1, 30), 0.4)
        xs = np.linspace(-8, 8, 2000)
        total = np.trapezoid([kde.pdf(float(x)) for x in xs], xs)
        assert total == pytest.approx(1.0, abs=0.01)

    def test_sampling_moments(self, rng):
        kde = KdeDistribution(rng.normal(3, 1, 200), 0.2)
        samples = kde.sample(rng, 50_000)
        assert samples.mean() == pytest.approx(kde.mean(), abs=0.05)

    def test_rejects_bad_bandwidth(self, rng):
        with pytest.raises(LearningError):
            KdeDistribution(rng.normal(0, 1, 10), 0.0)

    def test_rejects_empty(self):
        with pytest.raises(LearningError):
            KdeDistribution(np.array([]), 1.0)


class TestKdeLearner:
    def test_silverman_default(self, rng):
        sample = rng.normal(0, 1, 100)
        fitted = KdeLearner().learn(sample)
        assert fitted.distribution.bandwidth == pytest.approx(
            silverman_bandwidth(sample)
        )

    def test_explicit_bandwidth(self, rng):
        fitted = KdeLearner(bandwidth=0.7).learn(rng.normal(0, 1, 20))
        assert fitted.distribution.bandwidth == 0.7

    def test_degenerate_sample_still_learns(self):
        fitted = KdeLearner().learn([2.0, 2.0, 2.0])
        assert fitted.distribution.mean() == pytest.approx(2.0)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(LearningError):
            KdeLearner(bandwidth=-1.0)


class TestWeightedLearner:
    def test_equal_ages_match_plain_fit(self, rng):
        values = rng.normal(10, 2, 40)
        fitted = WeightedLearner(half_life=5.0).learn(
            values, np.zeros(40)
        )
        assert fitted.distribution.mean() == pytest.approx(
            float(values.mean())
        )
        assert fitted.effective_size == pytest.approx(40.0)

    def test_decay_shrinks_effective_size(self, rng):
        values = rng.normal(0, 1, 40)
        ages = np.arange(40, dtype=float)
        fitted = WeightedLearner(half_life=3.0).learn(values, ages)
        assert fitted.effective_size < 40.0

    def test_fresh_observations_dominate(self):
        # Two stale outliers, two fresh values: mean stays near fresh.
        values = [100.0, 100.0, 1.0, 1.0]
        ages = [50.0, 50.0, 0.0, 0.0]
        fitted = WeightedLearner(half_life=2.0).learn(values, ages)
        assert fitted.distribution.mean() == pytest.approx(1.0, abs=0.01)

    def test_accuracy_uses_effective_size(self, rng):
        values = rng.normal(0, 1, 60)
        fresh = WeightedLearner(half_life=100.0).learn(
            values, np.zeros(60)
        )
        decayed = WeightedLearner(half_life=2.0).learn(
            values, np.arange(60, dtype=float)
        )
        assert (
            decayed.accuracy(0.9).sample_size
            < fresh.accuracy(0.9).sample_size
        )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(LearningError):
            WeightedLearner(half_life=1.0).learn([1.0, 2.0], [0.0])

    def test_rejects_bad_half_life(self):
        with pytest.raises(LearningError):
            WeightedLearner(half_life=0.0)

    def test_rejects_tiny_sample(self):
        with pytest.raises(LearningError):
            WeightedLearner(half_life=1.0).learn([1.0], [0.0])
