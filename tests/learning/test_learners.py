"""Tests for the distribution learners."""

import numpy as np
import pytest

from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import LearningError
from repro.learning.base import LearnedDistribution
from repro.learning.empirical_learner import EmpiricalLearner
from repro.learning.gaussian_learner import GaussianLearner
from repro.learning.histogram_learner import (
    HistogramLearner,
    equi_depth_edges,
    equi_width_edges,
)


class TestLearnedDistribution:
    def test_keeps_sample(self, rng):
        sample = rng.normal(0, 1, 25)
        fitted = GaussianLearner().learn(sample)
        assert fitted.sample_size == 25
        assert np.array_equal(fitted.sample, sample)

    def test_as_dfsized(self, rng):
        fitted = GaussianLearner().learn(rng.normal(0, 1, 30))
        value = fitted.as_dfsized()
        assert value.sample_size == 30
        assert value.distribution is fitted.distribution

    def test_accuracy_from_backing_sample(self, paper_example3_sample):
        fitted = GaussianLearner().learn(paper_example3_sample)
        info = fitted.accuracy(0.9)
        # Must match the paper's Example 3 (driven by the raw sample).
        assert info.mean.low == pytest.approx(65.97, abs=0.02)
        assert info.mean.high == pytest.approx(76.23, abs=0.02)

    def test_accuracy_includes_bins_for_histograms(self, rng):
        fitted = HistogramLearner(bucket_count=4).learn(rng.normal(0, 1, 50))
        info = fitted.accuracy(0.9)
        assert len(info.bins) == 4

    def test_accuracy_rejects_single_observation(self):
        fitted = EmpiricalLearner().learn([1.0])
        with pytest.raises(LearningError):
            fitted.accuracy()

    def test_accuracy_from_distribution_moments(self, rng):
        fitted = GaussianLearner().learn(rng.normal(5, 1, 40))
        info = fitted.accuracy_from_distribution(0.9)
        assert info.mean.contains(fitted.distribution.mean())

    def test_rejects_empty_sample(self):
        with pytest.raises(LearningError):
            LearnedDistribution(GaussianDistribution(0, 1), np.array([]))


class TestGaussianLearner:
    def test_fits_sample_moments(self, rng):
        sample = rng.normal(10, 3, 100)
        fitted = GaussianLearner().learn(sample)
        dist = fitted.distribution
        assert isinstance(dist, GaussianDistribution)
        assert dist.mean() == pytest.approx(float(sample.mean()))
        assert dist.variance() == pytest.approx(float(sample.var(ddof=1)))

    def test_needs_two_observations(self):
        with pytest.raises(LearningError):
            GaussianLearner().learn([1.0])

    def test_rejects_non_finite(self):
        with pytest.raises(LearningError):
            GaussianLearner().learn([1.0, float("nan")])


class TestEmpiricalLearner:
    def test_distribution_is_the_sample(self, rng):
        sample = rng.normal(0, 1, 20)
        fitted = EmpiricalLearner().learn(sample)
        assert fitted.distribution.mean() == pytest.approx(
            float(sample.mean())
        )
        assert fitted.sample_size == 20


class TestEquiWidthEdges:
    def test_spans_sample_range(self, rng):
        sample = rng.uniform(3, 9, 100)
        edges = equi_width_edges(sample, 5)
        assert edges[0] == pytest.approx(sample.min())
        assert edges[-1] == pytest.approx(sample.max())
        assert len(edges) == 6
        assert np.allclose(np.diff(edges), np.diff(edges)[0])

    def test_explicit_range(self, rng):
        edges = equi_width_edges(rng.uniform(0, 1, 10), 4, (0.0, 100.0))
        assert edges[0] == 0.0 and edges[-1] == 100.0

    def test_degenerate_range_widened(self):
        edges = equi_width_edges(np.array([5.0, 5.0]), 2)
        assert edges[-1] > edges[0]

    def test_rejects_zero_buckets(self, rng):
        with pytest.raises(LearningError):
            equi_width_edges(rng.normal(0, 1, 10), 0)


class TestEquiDepthEdges:
    def test_buckets_hold_equal_mass(self, rng):
        sample = rng.exponential(1.0, 10_000)
        edges = equi_depth_edges(sample, 4)
        counts, _ = np.histogram(sample, bins=edges)
        assert np.allclose(counts / counts.sum(), 0.25, atol=0.02)

    def test_heavy_ties_collapse(self):
        edges = equi_depth_edges(np.array([1.0] * 50), 4)
        assert len(edges) >= 2
        assert edges[-1] > edges[0]


class TestHistogramLearner:
    def test_learns_frequencies(self, rng):
        learner = HistogramLearner(edges=[0, 1, 2, 3])
        fitted = learner.learn([0.5, 0.6, 1.5, 2.5])
        hist = fitted.distribution
        assert isinstance(hist, HistogramDistribution)
        assert np.allclose(hist.probabilities, [0.5, 0.25, 0.25])

    def test_out_of_range_clamped_into_boundary_buckets(self):
        learner = HistogramLearner(edges=[0, 1, 2])
        fitted = learner.learn([-5.0, 0.5, 5.0])
        hist = fitted.distribution
        assert hist.probabilities[0] == pytest.approx(2 / 3)
        assert hist.probabilities[1] == pytest.approx(1 / 3)

    def test_equi_depth_strategy(self, rng):
        learner = HistogramLearner(bucket_count=4, strategy="equi_depth")
        fitted = learner.learn(rng.exponential(1, 400))
        hist = fitted.distribution
        assert np.allclose(hist.probabilities, 0.25, atol=0.05)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(LearningError):
            HistogramLearner(strategy="magic")

    def test_value_range_shares_bucketisation(self, rng):
        learner = HistogramLearner(bucket_count=4, value_range=(0.0, 8.0))
        a = learner.learn(rng.uniform(0, 8, 50))
        b = learner.learn(rng.uniform(0, 8, 70))
        assert np.array_equal(a.distribution.edges, b.distribution.edges)
