"""Conformance of the sketch learners to the Learner contract.

The sketch learners (``repro.learning.sketch``) must be drop-in registry
entries: ABC conformance, registry resolution, ``make_rolling_learner``
acceptance, batch/partial agreement on the moments, the canonical
NaN/inf rejection, operator plumbing (``set_metrics`` no-op), and —
their reason to exist — bounded retained bytes for any window size.
"""

import pickle

import numpy as np
import pytest

from repro.core.accuracy import AccuracyInfo
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import LearningError
from repro.learning.base import LearnedDistribution, Learner
from repro.learning.registry import LEARNERS, make_rolling_learner
from repro.learning.sketch import (
    FrequencySketchLearner,
    HistogramSynopsisLearner,
    QuantileSketchLearner,
)

EDGES = np.linspace(-4.0, 4.0, 9)

LEARNER_FACTORIES = {
    "sketch-quantile": lambda: QuantileSketchLearner(k=64, chunk_size=64),
    "sketch-frequency": lambda: FrequencySketchLearner(
        cm_width=128, support_size=16, chunk_size=64
    ),
    "sketch-histogram": lambda: HistogramSynopsisLearner(
        EDGES, chunk_size=64
    ),
}


@pytest.fixture(params=sorted(LEARNER_FACTORIES))
def named_learner(request):
    return request.param, LEARNER_FACTORIES[request.param]()


class TestLearnerConformance:
    def test_is_a_learner(self, named_learner):
        _, learner = named_learner
        assert isinstance(learner, Learner)
        assert learner.supports_partial
        assert learner.partial_self_evicting

    def test_registered(self):
        assert LEARNERS["sketch-quantile"] is QuantileSketchLearner
        assert LEARNERS["sketch-frequency"] is FrequencySketchLearner
        assert LEARNERS["sketch-histogram"] is HistogramSynopsisLearner

    def test_make_rolling_learner_accepts(self):
        learner = make_rolling_learner("sketch-quantile", k=32)
        assert isinstance(learner, QuantileSketchLearner)
        assert learner.k == 32
        learner = make_rolling_learner(
            "sketch-histogram", edges=[0.0, 1.0, 2.0]
        )
        assert isinstance(learner, HistogramSynopsisLearner)

    def test_batch_learn(self, named_learner, rng):
        name, learner = named_learner
        sample = (
            rng.integers(0, 8, 200).astype(float)
            if name == "sketch-frequency"
            else rng.normal(0.0, 1.0, 200)
        )
        fitted = learner.learn(sample)
        assert isinstance(fitted, LearnedDistribution)
        assert fitted.sample_size == 200
        expected = (
            DiscreteDistribution
            if name == "sketch-frequency"
            else HistogramDistribution
        )
        assert isinstance(fitted.distribution, expected)
        assert fitted.distribution.mean() == pytest.approx(
            sample.mean(), abs=0.5 + abs(sample.mean()) * 0.1
        )

    def test_rejects_non_finite(self, named_learner):
        _, learner = named_learner
        state = learner.partial_begin()
        for bad in (float("nan"), float("inf"), float("-inf"), "x", True):
            with pytest.raises(LearningError):
                learner.partial_add(state, bad)
        with pytest.raises(LearningError):
            learner.learn([1.0, float("nan"), 2.0])

    def test_partial_matches_batch_moments(self, named_learner, rng):
        _, learner = named_learner
        sample = rng.normal(2.0, 1.5, 500)
        state = learner.partial_begin()
        for x in sample.tolist():
            learner.partial_add(state, x)
        mean, variance, n = learner.partial_moments(state)
        assert n == 500
        assert mean == pytest.approx(sample.mean(), rel=1e-9)
        assert variance == pytest.approx(sample.var(ddof=1), rel=1e-9)

    def test_partial_accuracy_records_synopsis_error(
        self, named_learner, rng
    ):
        _, learner = named_learner
        state = learner.partial_begin()
        for x in rng.normal(0.0, 1.0, 400).tolist():
            learner.partial_add(state, x)
        for _ in range(100):
            learner.partial_evict(state, None)
        info = learner.partial_accuracy(state, 0.9)
        assert isinstance(info, AccuracyInfo)
        assert info.sample_size == 300
        # Evictions leave a stale retained tail, so the record must
        # carry a positive, bounded synopsis error.
        assert 0.0 < info.synopsis_error <= 1.0
        assert info.mean.confidence == pytest.approx(0.9)

    def test_set_metrics_noop(self, named_learner):
        _, learner = named_learner
        state = learner.partial_begin()
        state.set_metrics(None, None)  # must exist and not raise
        state.set_metrics(object(), object())

    def test_state_pickles(self, named_learner, rng):
        _, learner = named_learner
        state = learner.partial_begin()
        for x in rng.normal(0.0, 1.0, 300).tolist():
            learner.partial_add(state, x)
        clone = pickle.loads(pickle.dumps(state))
        assert clone.count == state.count
        assert clone.moments() == state.moments()

    def test_memory_bounded_for_growing_windows(self, named_learner, rng):
        """The tentpole: retained bytes must not scale with the window."""
        _, learner = named_learner
        state = learner.partial_begin()
        values = rng.normal(0.0, 1.0, 3000)
        for x in values[:1500].tolist():
            learner.partial_add(state, x)
        bytes_small = state.nbytes
        for x in values[1500:].tolist():
            learner.partial_add(state, x)
        bytes_large = state.nbytes
        # Doubling the unevicted window must not double the state: the
        # chunk ring pair-merges instead of growing.
        assert bytes_large < bytes_small * 1.75


class TestSlidingSemantics:
    def test_quantile_distribution_tracks_window(self, rng):
        learner = QuantileSketchLearner(k=128, chunk_size=32)
        state = learner.partial_begin()
        window = 400
        # Phase 1 centered at 0, phase 2 centered at 10: after the
        # window slides fully into phase 2, the old mass must be gone.
        stream = np.concatenate(
            [rng.normal(0.0, 1.0, 600), rng.normal(10.0, 1.0, 1400)]
        )
        fill = 0
        for x in stream.tolist():
            learner.partial_add(state, x)
            if fill >= window:
                learner.partial_evict(state, None)
            else:
                fill += 1
        dist = learner.partial_distribution(state)
        assert dist.mean() == pytest.approx(10.0, abs=1.0)
        mean, _, _ = learner.partial_moments(state)
        assert mean == pytest.approx(10.0, abs=0.5)

    def test_histogram_learner_counts_are_exact_unevicted(self, rng):
        learner = HistogramSynopsisLearner(EDGES, chunk_size=64)
        state = learner.partial_begin()
        sample = rng.normal(0.0, 1.0, 512)
        for x in sample.tolist():
            learner.partial_add(state, x)
        dist = learner.partial_distribution(state)
        expected, _ = np.histogram(np.clip(sample, -4.0, 4.0), bins=EDGES)
        assert np.allclose(
            dist.probabilities, expected / expected.sum(), atol=1e-12
        )
        # No evictions, nothing clamped: zero synopsis error.
        info = learner.partial_accuracy(state)
        assert info.synopsis_error == 0.0

    def test_frequency_learner_heavy_hitters(self, rng):
        learner = FrequencySketchLearner(
            cm_width=256, support_size=8, chunk_size=64
        )
        state = learner.partial_begin()
        values = rng.choice(
            [1.0, 2.0, 3.0], size=900, p=[0.6, 0.3, 0.1]
        )
        for x in values.tolist():
            learner.partial_add(state, x)
        dist = learner.partial_distribution(state)
        probs = dict(zip(dist.support.tolist(), dist.probabilities.tolist()))
        assert probs[1.0] == pytest.approx(0.6, abs=0.08)
        assert probs[2.0] == pytest.approx(0.3, abs=0.08)
        f2 = learner.partial_second_moment(state)
        truth = float(np.sum(np.unique(values, return_counts=True)[1] ** 2.0))
        assert f2 == pytest.approx(truth, rel=0.35)

    def test_empty_window_raises(self):
        learner = QuantileSketchLearner()
        state = learner.partial_begin()
        with pytest.raises(LearningError):
            learner.partial_distribution(state)
        with pytest.raises(LearningError):
            learner.partial_accuracy(state)
