"""Tests for the incremental-learning hooks (partial_add/partial_evict)."""

import math

import numpy as np
import pytest

from repro.errors import LearningError
from repro.learning.base import Learner
from repro.learning.empirical_learner import EmpiricalLearner
from repro.learning.gaussian_learner import GaussianLearner
from repro.learning.histogram_learner import HistogramLearner
from repro.learning.kde_learner import KdeLearner
from repro.learning.partial import DEFAULT_RESUM_INTERVAL, PartialFitState
from repro.learning.registry import make_rolling_learner


class TestPartialFitState:
    def test_welford_add_matches_numpy(self):
        state = PartialFitState()
        values = [3.0, 1.5, 9.0, 2.25, 7.0]
        for x in values:
            state.add(x)
        assert state.mean == pytest.approx(np.mean(values), rel=1e-12)
        assert state.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-12
        )
        assert state.std == pytest.approx(math.sqrt(state.variance))
        assert len(state) == 5

    def test_evict_any_order(self):
        state = PartialFitState()
        for x in (1.0, 2.0, 3.0, 4.0):
            state.add(x)
        state.evict(3.0)  # not FIFO
        state.evict(1.0)
        assert state.count == 2
        assert state.mean == pytest.approx(3.0, rel=1e-12)
        assert state.variance == pytest.approx(2.0, rel=1e-12)

    def test_evict_unknown_value_raises(self):
        state = PartialFitState()
        state.add(1.0)
        with pytest.raises(LearningError, match="not in the window"):
            state.evict(2.0)

    def test_evict_duplicate_respects_multiplicity(self):
        state = PartialFitState()
        state.add(5.0)
        state.add(5.0)
        state.evict(5.0)
        state.evict(5.0)
        with pytest.raises(LearningError, match="not in the window"):
            state.evict(5.0)

    def test_empty_statistics_raise(self):
        state = PartialFitState()
        with pytest.raises(LearningError, match="empty"):
            state.mean
        state.add(1.0)
        with pytest.raises(LearningError, match=">= 2"):
            state.variance

    def test_count_resets_cleanly_at_zero(self):
        state = PartialFitState()
        state.add(7.5)
        state.evict(7.5)
        assert state.count == 0
        state.add(2.0)
        assert state.mean == 2.0

    def test_resum_restores_exactness(self):
        state = PartialFitState(resum_interval=4)
        window = []
        # Unique values so fsum over the mirror == fsum over the window.
        stream = [float(i) * 1e8 + 1.0 / (i + 1) for i in range(40)]
        for x in stream:
            state.add(x)
            window.append(x)
            if len(window) > 6:
                state.evict(window.pop(0))
        assert state.resums == (40 - 6) // 4
        # 34 evictions, last re-sum at the 32nd: 2 evictions since.
        state.evict(window.pop(0))
        state.evict(window.pop(0))
        assert state.resums == 35 // 4 + 1  # wrapped to the next re-sum
        assert state.mean == math.fsum(window) / len(window)

    def test_bad_resum_interval(self):
        with pytest.raises(LearningError, match="resum interval"):
            PartialFitState(resum_interval=0)

    def test_default_interval_matches_rolling_module(self):
        from repro.streams.rolling import (
            DEFAULT_RESUM_INTERVAL as STREAM_INTERVAL,
        )

        assert DEFAULT_RESUM_INTERVAL == STREAM_INTERVAL == 4096


class TestLearnerHooks:
    def test_base_learner_defaults_raise(self):
        class Minimal(Learner):
            def learn(self, sample):  # pragma: no cover - unused
                raise NotImplementedError

        learner = Minimal()
        assert learner.supports_partial is False
        assert learner.partial_vectorizable is False
        with pytest.raises(LearningError, match="incremental"):
            learner.partial_begin()
        with pytest.raises(LearningError, match="incremental"):
            learner.partial_add(None, 1.0)
        with pytest.raises(LearningError, match="incremental"):
            learner.partial_evict(None, 1.0)
        with pytest.raises(LearningError, match="incremental"):
            learner.partial_distribution(None)
        with pytest.raises(LearningError, match="incremental"):
            learner.partial_accuracy(None)
        with pytest.raises(LearningError, match="incremental"):
            learner.partial_moments(None)

    def test_validated_observation(self):
        assert Learner._validated_observation(3) == 3.0
        with pytest.raises(LearningError):
            Learner._validated_observation(True)
        with pytest.raises(LearningError):
            Learner._validated_observation("x")
        with pytest.raises(LearningError):
            Learner._validated_observation(float("nan"))
        with pytest.raises(LearningError):
            Learner._validated_observation(float("inf"))


class TestGaussianPartial:
    def test_flags(self):
        learner = GaussianLearner()
        assert learner.supports_partial is True
        assert learner.partial_vectorizable is True

    def test_distribution_and_accuracy_match_learn(self):
        learner = GaussianLearner()
        state = learner.partial_begin()
        values = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0]
        for x in values:
            learner.partial_add(state, x)
        ref = learner.learn(values)
        dist = learner.partial_distribution(state)
        assert dist.mu == pytest.approx(ref.distribution.mu, rel=1e-12)
        assert dist.sigma2 == pytest.approx(
            ref.distribution.sigma2, rel=1e-12
        )
        info = learner.partial_accuracy(state, confidence=0.9)
        assert info.sample_size == 6
        assert info.mean.confidence == 0.9
        mean, variance, count = learner.partial_moments(state)
        assert (mean, count) == (dist.mu, 6)
        assert variance == pytest.approx(dist.sigma2, rel=1e-12)

    def test_needs_two_observations(self):
        learner = GaussianLearner()
        state = learner.partial_begin()
        learner.partial_add(state, 1.0)
        with pytest.raises(LearningError, match="at least 2"):
            learner.partial_distribution(state)

    def test_rejects_invalid_observations(self):
        learner = GaussianLearner()
        state = learner.partial_begin()
        with pytest.raises(LearningError):
            learner.partial_add(state, float("nan"))
        with pytest.raises(LearningError):
            learner.partial_evict(state, True)


class TestHistogramPartial:
    def test_requires_fixed_edges(self):
        free = HistogramLearner()  # data-dependent equi-width
        assert free.supports_partial is False
        with pytest.raises(LearningError, match="fixed bucket edges"):
            free.partial_begin()
        depth = HistogramLearner(strategy="equi_depth")
        assert depth.supports_partial is False

    def test_value_range_pins_edges(self):
        learner = HistogramLearner(
            bucket_count=4, value_range=(0.0, 8.0)
        )
        assert learner.supports_partial is True
        state = learner.partial_begin()
        assert list(state.edges) == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_counts_and_clamping_match_learn(self):
        edges = [0.0, 1.0, 2.0, 3.0]
        learner = HistogramLearner(edges=edges)
        state = learner.partial_begin()
        values = [-5.0, 0.5, 1.0, 2.0, 3.0, 99.0]  # under/overflow clamp
        for x in values:
            learner.partial_add(state, x)
        ref = learner.learn(values).distribution
        dist = learner.partial_distribution(state)
        assert list(dist.probabilities) == list(ref.probabilities)
        assert state.counts == [2, 1, 3]

    def test_evict_updates_counts(self):
        learner = HistogramLearner(edges=[0.0, 1.0, 2.0])
        state = learner.partial_begin()
        learner.partial_add(state, 0.5)
        learner.partial_add(state, 1.5)
        learner.partial_evict(state, 0.5)
        assert state.counts == [0, 1]
        with pytest.raises(LearningError, match="not in the window"):
            learner.partial_evict(state, 0.5)

    def test_accuracy_includes_bin_intervals(self):
        learner = HistogramLearner(edges=[0.0, 5.0, 10.0])
        state = learner.partial_begin()
        for x in (1.0, 2.0, 6.0, 7.0, 9.0):
            learner.partial_add(state, x)
        info = learner.partial_accuracy(state)
        assert len(info.bins) == 2
        assert info.sample_size == 5

    def test_empty_distribution_raises(self):
        learner = HistogramLearner(edges=[0.0, 1.0])
        state = learner.partial_begin()
        with pytest.raises(LearningError, match="at least 1"):
            learner.partial_distribution(state)


class TestMakeRollingLearner:
    def test_gaussian_accepted(self):
        learner = make_rolling_learner("gaussian")
        assert isinstance(learner, GaussianLearner)

    def test_histogram_needs_edges(self):
        with pytest.raises(LearningError, match="incremental"):
            make_rolling_learner("histogram")
        learner = make_rolling_learner("histogram", edges=[0.0, 1.0, 2.0])
        assert isinstance(learner, HistogramLearner)

    def test_non_incremental_learners_rejected(self):
        for name in ("empirical", "kde"):
            with pytest.raises(LearningError, match="incremental"):
                make_rolling_learner(name)
        assert EmpiricalLearner().supports_partial is False
        assert KdeLearner().supports_partial is False

    def test_unknown_name(self):
        with pytest.raises(LearningError, match="unknown learner"):
            make_rolling_learner("nope")
