"""Tests for the learner registry."""

import pytest

from repro.errors import LearningError
from repro.learning.base import Learner, LearnedDistribution
from repro.learning.gaussian_learner import GaussianLearner
from repro.learning.histogram_learner import HistogramLearner
from repro.learning.registry import LEARNERS, make_learner, register_learner


class TestMakeLearner:
    def test_builtin_names(self):
        assert isinstance(make_learner("histogram"), HistogramLearner)
        assert isinstance(make_learner("gaussian"), GaussianLearner)
        assert "empirical" in LEARNERS and "kde" in LEARNERS

    def test_kwargs_forwarded(self):
        learner = make_learner("histogram", bucket_count=13)
        assert learner.bucket_count == 13

    def test_unknown_name(self):
        with pytest.raises(LearningError, match="unknown learner"):
            make_learner("magic")


class TestRegisterLearner:
    def test_register_and_use(self):
        class MyLearner(Learner):
            def learn(self, sample) -> LearnedDistribution:
                return GaussianLearner().learn(sample)

        register_learner("custom-test", MyLearner)
        try:
            assert isinstance(make_learner("custom-test"), MyLearner)
        finally:
            del LEARNERS["custom-test"]

    def test_no_silent_overwrite(self):
        with pytest.raises(LearningError, match="already registered"):
            register_learner("gaussian", GaussianLearner)

    def test_explicit_replace(self):
        original = LEARNERS["gaussian"]
        try:
            register_learner("gaussian", GaussianLearner, replace=True)
        finally:
            LEARNERS["gaussian"] = original

    def test_rejects_empty_name(self):
        with pytest.raises(LearningError):
            register_learner("", GaussianLearner)


class TestDbIntegration:
    def test_string_learner_in_ingest(self, rng):
        from repro.db import StreamDatabase
        from repro.distributions.empirical import EmpiricalDistribution

        db = StreamDatabase()
        db.create_stream("s")
        db.ingest_observations(
            "s",
            [{"g": 1, "v": float(x)} for x in rng.normal(0, 1, 15)],
            group_by="g", value="v", learner="empirical",
        )
        result = db.query("SELECT v FROM s")[0]
        assert isinstance(
            result.value("v").distribution, EmpiricalDistribution
        )
