"""Property-based guarantees of the sketch synopses.

Three families, per the subsystem's contract (docs/SKETCHES.md):

* **Error bounds** — every estimate stays within the synopsis' own
  advertised epsilon, including on adversarial streams (sorted runs,
  duplicate-heavy pools, mixed magnitudes).  The KLL bound checked here
  is the *self-reported* certificate, not the asymptotic constant.
* **Merge algebra** — Count-Min/AMS/histogram merges are exactly
  associative and commutative (byte-identical under pickle); the KLL
  merge is byte-identical under operand swap and keeps its certificate
  valid under any grouping.
* **Determinism** — a sketch is a pure function of its input sequence
  (seed-stable internals), and a pinned shard decomposition folds to
  byte-identical results however often it is replayed.
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning.sketch import (
    AmsSketch,
    CountMinSketch,
    HistogramSynopsis,
    KllSketch,
)
from repro.learning.sketch.window import SketchWindowState

finite = st.floats(
    allow_nan=False,
    allow_infinity=False,
    width=64,
    min_value=-1e9,
    max_value=1e9,
)
streams = st.lists(finite, min_size=1, max_size=250)
# Duplicate-heavy: values drawn from a tiny pool, the worst case for
# rank queries (huge ties) and the best case for frequency sketches.
dup_streams = st.lists(
    st.sampled_from([-2.5, -1.0, -0.0, 0.0, 1.0, 3.5]),
    min_size=1,
    max_size=250,
)


def _build_kll(values, k=32):
    sketch = KllSketch(k)
    for x in values:
        sketch.update(x)
    return sketch


def _assert_kll_within_epsilon(sketch, values):
    arr = np.asarray(values, dtype=float)
    n = arr.size
    budget = sketch.epsilon * n + 1e-6
    for probe in np.unique(arr):
        true_rank = float(np.sum(arr <= probe))
        assert abs(sketch.rank(probe) - true_rank) <= budget


class TestKllErrorBounds:
    @given(values=streams)
    @settings(max_examples=60, deadline=None)
    def test_rank_within_certificate(self, values):
        _assert_kll_within_epsilon(_build_kll(values), values)

    @given(values=streams)
    @settings(max_examples=40, deadline=None)
    def test_rank_within_certificate_sorted(self, values):
        ordered = sorted(values)
        _assert_kll_within_epsilon(_build_kll(ordered), ordered)

    @given(values=dup_streams)
    @settings(max_examples=40, deadline=None)
    def test_rank_within_certificate_duplicates(self, values):
        _assert_kll_within_epsilon(_build_kll(values), values)

    @given(values=streams)
    @settings(max_examples=40, deadline=None)
    def test_extrema_and_count_exact(self, values):
        sketch = _build_kll(values)
        assert sketch.n == len(values)
        assert sketch.minimum == min(values)
        assert sketch.maximum == max(values)
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)

    @given(values=streams, split=st.integers(min_value=0, max_value=250))
    @settings(max_examples=60, deadline=None)
    def test_merge_certificate_still_valid(self, values, split):
        split = min(split, len(values))
        merged = _build_kll(values[:split]).merge(
            _build_kll(values[split:])
        )
        assert merged.n == len(values)
        _assert_kll_within_epsilon(merged, values)


class TestMergeAlgebra:
    @given(values=streams, split=st.integers(min_value=0, max_value=250))
    @settings(max_examples=60, deadline=None)
    def test_kll_merge_commutative_bytes(self, values, split):
        split = min(split, len(values))
        a = _build_kll(values[:split])
        b = _build_kll(values[split:])
        assert pickle.dumps(a.merge(b)) == pickle.dumps(b.merge(a))

    @given(
        values=dup_streams,
        cut1=st.integers(min_value=0, max_value=250),
        cut2=st.integers(min_value=0, max_value=250),
    )
    @settings(max_examples=60, deadline=None)
    def test_count_min_merge_associative_commutative_bytes(
        self, values, cut1, cut2
    ):
        lo, hi = sorted((min(cut1, len(values)), min(cut2, len(values))))
        parts = [values[:lo], values[lo:hi], values[hi:]]
        sketches = []
        for part in parts:
            sketch = CountMinSketch(width=64, depth=3)
            for x in part:
                sketch.update(x)
            sketches.append(sketch)
        a, b, c = sketches
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a.merge(b))
        assert pickle.dumps(left) == pickle.dumps(right)
        assert pickle.dumps(left) == pickle.dumps(swapped)

    @given(values=dup_streams, cut=st.integers(min_value=0, max_value=250))
    @settings(max_examples=40, deadline=None)
    def test_ams_merge_matches_single_pass_bytes(self, values, cut):
        cut = min(cut, len(values))
        a = AmsSketch(width=32, depth=3)
        b = AmsSketch(width=32, depth=3)
        whole = AmsSketch(width=32, depth=3)
        for x in values[:cut]:
            a.update(x)
        for x in values[cut:]:
            b.update(x)
        for x in values:
            whole.update(x)
        merged = a.merge(b)
        # Integer counters: merging shards equals one pass, exactly.
        assert pickle.dumps(merged) == pickle.dumps(whole)
        assert pickle.dumps(merged) == pickle.dumps(b.merge(a))

    @given(values=streams, cut=st.integers(min_value=0, max_value=250))
    @settings(max_examples=40, deadline=None)
    def test_histogram_merge_matches_single_pass_bytes(self, values, cut):
        cut = min(cut, len(values))
        edges = np.linspace(-1e9, 1e9, 9)
        a, b, whole = (HistogramSynopsis(edges) for _ in range(3))
        for x in values[:cut]:
            a.update(x)
        for x in values[cut:]:
            b.update(x)
        for x in values:
            whole.update(x)
        assert pickle.dumps(a.merge(b)) == pickle.dumps(whole)
        assert pickle.dumps(a.merge(b)) == pickle.dumps(b.merge(a))


class TestFrequencyBounds:
    @given(values=dup_streams)
    @settings(max_examples=60, deadline=None)
    def test_count_min_one_sided_within_epsilon(self, values):
        sketch = CountMinSketch(width=64, depth=3)
        for x in values:
            sketch.update(x)
        arr = np.asarray(values, dtype=float)
        budget = sketch.epsilon * len(values) + 1e-9
        for probe in np.unique(arr):
            true = float(np.sum(arr == probe))
            estimate = sketch.estimate(probe)
            assert estimate >= true  # never under-counts
            assert estimate <= true + budget

    def test_negative_zero_canonicalized(self):
        sketch = CountMinSketch(width=64, depth=3)
        sketch.update(-0.0)
        sketch.update(0.0)
        assert sketch.estimate(0.0) == sketch.estimate(-0.0) == 2

    @given(values=streams)
    @settings(max_examples=40, deadline=None)
    def test_histogram_counts_exact(self, values):
        edges = np.linspace(-1e9, 1e9, 9)
        synopsis = HistogramSynopsis(edges)
        for x in values:
            synopsis.update(x)
        assert synopsis.n == len(values)
        assert int(synopsis.counts.sum()) == len(values)
        assert synopsis.epsilon == 0.0  # nothing outside the range


class TestDeterminism:
    @given(values=streams)
    @settings(max_examples=40, deadline=None)
    def test_rebuild_is_byte_identical(self, values):
        assert pickle.dumps(_build_kll(values)) == pickle.dumps(
            _build_kll(values)
        )

    @given(values=streams, n_shards=st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_pinned_shard_fold_is_replayable(self, values, n_shards):
        """Fixed decomposition + fixed fold order => byte-stable result.

        This is the merge-side half of the sharded contract: worker
        count never changes which shard holds what, so folding the
        pinned shards in order must be a pure function.
        """

        def fold():
            shards = [
                _build_kll(values[i::n_shards]) for i in range(n_shards)
            ]
            merged = shards[0]
            for shard in shards[1:]:
                merged = merged.merge(shard)
            return pickle.dumps(merged)

        assert fold() == fold()

    @given(
        values=st.lists(finite, min_size=4, max_size=250),
        evictions=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_state_accounting(self, values, evictions):
        state = SketchWindowState(
            lambda: KllSketch(16), chunk_count=2, chunk_size=4
        )
        evictions = min(evictions, len(values) - 2)
        for x in values:
            state.add(x)
        for _ in range(evictions):
            state.evict()
        assert state.count == len(values) - evictions
        assert 0.0 <= state.staleness < 1.0
        merged = state.merged()
        assert merged.n >= state.count
        mean, variance, retained = state.moments()
        assert retained >= state.count
        assert variance >= 0.0
        # The ring stays bounded no matter the add/evict pattern.
        assert len(state._chunks) <= 2 * state.chunk_count + 1
