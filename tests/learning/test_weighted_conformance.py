"""Regression: WeightedLearner is a full Learner (ABC + registry).

It used to be a standalone class that only *looked* like a learner;
these tests pin the contract that lets it drop into any ingestion path
that picks learners by name.
"""

import numpy as np
import pytest

from repro.errors import LearningError
from repro.learning.base import LearnedDistribution, Learner
from repro.learning.registry import LEARNERS, make_learner
from repro.learning.weighted import (
    WeightedLearnedDistribution,
    WeightedLearner,
)


class TestLearnerConformance:
    def test_is_a_learner(self):
        assert issubclass(WeightedLearner, Learner)
        assert isinstance(WeightedLearner(), Learner)

    def test_registered(self):
        assert LEARNERS["weighted"] is WeightedLearner

    def test_make_learner(self):
        learner = make_learner("weighted", half_life=2.0)
        assert isinstance(learner, WeightedLearner)
        assert learner.half_life == 2.0

    def test_learn_without_ages(self, rng):
        sample = rng.normal(10.0, 2.0, 30)
        fitted = WeightedLearner().learn(sample)
        assert isinstance(fitted, WeightedLearnedDistribution)
        assert isinstance(fitted, LearnedDistribution)
        # Unit weights: the fit is the plain weighted-stats Gaussian.
        assert np.array_equal(fitted.weights, np.ones(30))
        assert fitted.effective_size == pytest.approx(30.0)
        assert fitted.distribution.mean() == pytest.approx(sample.mean())

    def test_learned_distribution_api(self, rng):
        fitted = WeightedLearner(half_life=5.0).learn(
            rng.normal(0.0, 1.0, 25), ages=np.arange(25.0)
        )
        assert fitted.sample_size == 25
        assert fitted.as_dfsized().sample_size == 25
        info = fitted.accuracy(0.9)
        assert info.mean.low < info.mean.high
        # Decayed weights shrink the effective sample size.
        assert fitted.effective_size < 25.0

    def test_input_validation_via_abc_helper(self):
        with pytest.raises(LearningError):
            WeightedLearner().learn([1.0])  # minimum 2 observations

    def test_mismatched_ages(self):
        with pytest.raises(LearningError, match="ages"):
            WeightedLearner().learn([1.0, 2.0, 3.0], ages=[0.0, 1.0])

    def test_bad_half_life(self):
        with pytest.raises(LearningError, match="half-life"):
            WeightedLearner(half_life=0.0)
