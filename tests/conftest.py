"""Shared fixtures for the test suite.

Every statistical test is seeded so the suite is deterministic; tolerance
thresholds are chosen so that seeds far from the fixed ones would pass
too (no seed-hunting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.cartel import CarTelSimulator


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_sim() -> CarTelSimulator:
    """A small road network shared across tests (read-only use)."""
    return CarTelSimulator(n_segments=60, seed=7)


@pytest.fixture
def paper_example3_sample() -> list[float]:
    """The 10 traffic-delay observations of the paper's Example 3."""
    return [71, 56, 82, 74, 69, 77, 65, 78, 59, 80]
