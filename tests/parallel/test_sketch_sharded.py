"""Determinism of the sketch synopses under sharded execution.

The sketch acceptance contract (docs/SKETCHES.md): every sketch is
seed-stable — the KLL compaction coin is an internal splitmix64 chain,
the Count-Min/AMS row seeds are fixed constants — so with a fixed seed
and pinned ``n_shards`` a sketch-backed pipeline emits byte-identical
sink contents at any worker count.  Worker scheduling must never shape
the output; only the shard decomposition may.
"""

import pickle

import numpy as np

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.streams.engine import Pipeline
from repro.streams.groupby import GroupedAggregate
from repro.streams.operators import CollectSink, RollingLearnOperator
from repro.streams.tuples import UncertainTuple

N_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)


def _raw_tuples(n=200, seed=7):
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "sensor": int(rng.integers(5)),
                # Mixed magnitudes + ties: the adversarial cases for
                # rank and frequency sketches.
                "obs": float(
                    round(rng.normal(0.0, 1.0), 1) * 10.0 ** rng.integers(3)
                ),
                "seq": i,
            }
        )
        for i in range(n)
    ]


def _dist_tuples(n=200, seed=7):
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "sensor": int(rng.integers(5)),
                "reading": DfSized(
                    GaussianDistribution(
                        float(rng.normal(100.0, 40.0)),
                        float(rng.uniform(0.5, 4.0)),
                    ),
                    int(rng.integers(5, 50)),
                ),
                "seq": i,
            }
        )
        for i in range(n)
    ]


# Module-level factories so the pipelines pickle into spawn workers.
def _quantile_pipeline():
    return Pipeline(
        [
            RollingLearnOperator(
                "obs",
                window_size=24,
                learner="sketch-quantile",
                k=64,
                chunk_size=8,
            ),
            CollectSink(),
        ]
    )


def _frequency_pipeline():
    return Pipeline(
        [
            RollingLearnOperator(
                "obs",
                window_size=24,
                learner="sketch-frequency",
                cm_width=64,
                support_size=8,
                chunk_size=8,
            ),
            CollectSink(),
        ]
    )


def _chunked_groupby_pipeline():
    # No expire_after here: the TTL clock counts arrivals of *any* key,
    # so a key-partitioned shard (which only sees its own keys) expires
    # on a different schedule than a serial run.  Serial equality is a
    # property of the synopsis alone; TTL determinism is covered by the
    # worker-invariance test below.
    return Pipeline(
        [
            GroupedAggregate(
                key="sensor",
                attribute="reading",
                window_size=16,
                synopsis="chunked",
            ),
            CollectSink(),
        ]
    )


def _chunked_ttl_pipeline():
    return Pipeline(
        [
            GroupedAggregate(
                key="sensor",
                attribute="reading",
                window_size=16,
                synopsis="chunked",
                expire_after=64,
            ),
            CollectSink(),
        ]
    )


def _element_bytes(results):
    return [pickle.dumps(tup) for tup in results]


class TestSketchWorkerCountInvariance:
    def test_quantile_learner_invariant_across_workers(self):
        tuples = _raw_tuples()

        def run(workers):
            sink = _quantile_pipeline().run_sharded(
                tuples, n_workers=workers, n_shards=N_SHARDS, seed=42
            )
            return _element_bytes(sink.results)

        baseline = run(1)
        for workers in WORKER_COUNTS[1:]:
            assert run(workers) == baseline, (
                f"sketch-quantile diverged at n_workers={workers}"
            )

    def test_frequency_learner_invariant_across_workers(self):
        tuples = _raw_tuples()

        def run(workers):
            sink = _frequency_pipeline().run_sharded(
                tuples, n_workers=workers, n_shards=N_SHARDS, seed=42
            )
            return _element_bytes(sink.results)

        baseline = run(1)
        for workers in WORKER_COUNTS[1:]:
            assert run(workers) == baseline, (
                f"sketch-frequency diverged at n_workers={workers}"
            )

    def test_chunked_groupby_partitioned_matches_serial(self):
        # Partitioned by the group key, shard-local chunk rings equal the
        # global ones: the sharded run must equal the serial run.
        tuples = _dist_tuples()
        expected = _element_bytes(
            _chunked_groupby_pipeline().run_batched(tuples, 32).results
        )
        for workers in WORKER_COUNTS:
            sink = _chunked_groupby_pipeline().run_sharded(
                tuples,
                n_workers=workers,
                partition_by="sensor",
                n_shards=N_SHARDS,
                seed=42,
            )
            assert _element_bytes(sink.results) == expected, (
                f"chunked GROUP BY diverged at n_workers={workers}"
            )

    def test_chunked_groupby_with_ttl_invariant_across_workers(self):
        # With expire_after the output depends on the (pinned) shard
        # decomposition but never on how many workers execute it.
        tuples = _dist_tuples()

        def run(workers):
            sink = _chunked_ttl_pipeline().run_sharded(
                tuples,
                n_workers=workers,
                partition_by="sensor",
                n_shards=N_SHARDS,
                seed=42,
            )
            return _element_bytes(sink.results)

        baseline = run(1)
        for workers in WORKER_COUNTS[1:]:
            assert run(workers) == baseline, (
                f"TTL'd chunked GROUP BY diverged at n_workers={workers}"
            )

    def test_quantile_learner_batched_matches_serial_run(self):
        tuples = _raw_tuples()
        serial = _element_bytes(_quantile_pipeline().run(tuples).results)
        batched = _element_bytes(
            _quantile_pipeline().run_batched(tuples, 32).results
        )
        assert batched == serial
