"""Byte-identical sinks for the columnar sharded transport.

The tentpole contract: switching the sharded path from pickled tuple
lists to columnar shared-memory payloads changes *nothing* about sink
contents — fixed seed + pinned ``n_shards`` gives byte-identical
results (per-element ``pickle.dumps``) at 1, 2, and 4 workers, on the
Fig 5(c) accuracy workload and on a keyed :class:`GroupedAggregate`
workload, and identical to the legacy tuple-list transport.
"""

import pickle

import numpy as np

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.experiments.fig5_throughput import (
    _AnalyticAccuracy,
    _LearnGaussian,
    _make_stream,
)
from repro.streams.columnar import ColumnarBatch
from repro.streams.engine import Pipeline
from repro.streams.groupby import GroupedAggregate
from repro.streams.operators import CollectSink, SlidingGaussianAverage
from repro.streams.tuples import UncertainTuple

N_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)


def _fig5c_pipeline():
    # The Fig 5(c) "analytic" configuration, scaled down: learn a
    # Gaussian per item, slide a window average, attach Lemma-2
    # accuracy, collect.
    return Pipeline(
        [
            _LearnGaussian("points", "value"),
            SlidingGaussianAverage("value", window_size=40),
            _AnalyticAccuracy("avg"),
            CollectSink(),
        ]
    )


def _grouped_tuples(n=160, n_sensors=5, seed=7):
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "sensor": int(rng.integers(n_sensors)),
                "reading": DfSized(
                    GaussianDistribution(
                        float(rng.normal(50.0, 10.0)),
                        float(rng.uniform(1.0, 9.0)),
                    ),
                    int(rng.integers(10, 40)),
                ),
                "seq": i,
            }
        )
        for i in range(n)
    ]


def _grouped_pipeline():
    return Pipeline(
        [
            GroupedAggregate(
                key="sensor", attribute="reading", window_size=8, agg="avg"
            ),
            CollectSink(),
        ]
    )


def _element_bytes(results):
    return [pickle.dumps(tup) for tup in results]


class TestFig5cWorkload:
    def test_worker_count_invariant(self):
        # The 240x20 points matrix is large enough per shard to cross
        # the shared-memory threshold, so multi-worker rounds exercise
        # the SharedSpec transport end to end.
        tuples = _make_stream(240, seed=11)

        def run(workers):
            sink = _fig5c_pipeline().run_sharded(
                tuples, n_workers=workers, n_shards=N_SHARDS, seed=5
            )
            return _element_bytes(sink.results)

        baseline = run(1)
        assert baseline  # the window emits on every arrival
        for workers in WORKER_COUNTS[1:]:
            assert run(workers) == baseline, (
                f"fig5c sink diverged at n_workers={workers}"
            )

    def test_matches_legacy_tuple_transport(self, monkeypatch):
        # Forcing as_columnar to fail in the sharded driver reinstates
        # the pickled-tuple-list transport; sinks must not change.
        tuples = _make_stream(160, seed=2)
        columnar = _element_bytes(
            _fig5c_pipeline()
            .run_sharded(tuples, n_workers=1, n_shards=N_SHARDS, seed=5)
            .results
        )
        import repro.parallel.sharded as sharded_module

        monkeypatch.setattr(
            sharded_module, "as_columnar", lambda source: None
        )
        legacy = _element_bytes(
            _fig5c_pipeline()
            .run_sharded(tuples, n_workers=1, n_shards=N_SHARDS, seed=5)
            .results
        )
        assert columnar == legacy

    def test_merged_sink_stays_columnar(self):
        tuples = _make_stream(120, seed=3)
        pipeline = _fig5c_pipeline()
        sink = pipeline.run_sharded(
            tuples, n_workers=1, n_shards=N_SHARDS, seed=5
        )
        merged = sink.columnar_result()
        assert isinstance(merged, ColumnarBatch)
        assert len(merged) == len(sink.results)


class TestGroupedWorkload:
    def test_matches_per_tuple_serial_run(self):
        # Keyed partitioning makes shard-local group state equal global
        # group state, so the sharded columnar run must reproduce the
        # per-tuple serial path byte for byte — at every worker count.
        tuples = _grouped_tuples()
        expected = _element_bytes(_grouped_pipeline().run(tuples).results)
        assert len(expected) == len(tuples)
        for workers in WORKER_COUNTS:
            sink = _grouped_pipeline().run_sharded(
                tuples,
                n_workers=workers,
                partition_by="sensor",
                n_shards=N_SHARDS,
                seed=5,
            )
            assert _element_bytes(sink.results) == expected, (
                f"grouped sink diverged at n_workers={workers}"
            )

    def test_grouped_merge_is_columnar_interleave(self):
        tuples = _grouped_tuples(80)
        sink = _grouped_pipeline().run_sharded(
            tuples,
            n_workers=1,
            partition_by="sensor",
            n_shards=N_SHARDS,
            seed=5,
        )
        merged = sink.columnar_result()
        assert isinstance(merged, ColumnarBatch)
        assert [t.value("sensor") for t in merged] == [
            t.value("sensor") for t in tuples
        ]
