"""Determinism of the rolling operators under sharded execution.

The acceptance contract: with a fixed seed and pinned ``n_shards``, the
rolling operators (RollingLearnOperator, min/max WindowAggregate) emit
byte-identical sink contents at any worker count — the drift-guarded
kernels re-sum at deterministic slide counts, so shard decomposition,
not worker scheduling, is the only thing that may shape the output.
"""

import pickle

import numpy as np

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.streams.engine import Pipeline
from repro.streams.groupby import GroupedAggregate
from repro.streams.operators import (
    CollectSink,
    RollingLearnOperator,
    WindowAggregate,
)
from repro.streams.tuples import UncertainTuple

N_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)


def _raw_tuples(n=160, seed=7):
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "sensor": int(rng.integers(5)),
                # Mixed magnitudes so the compensated sums actually work.
                "obs": float(rng.normal(0.0, 1.0) * 10.0 ** rng.integers(6)),
                "seq": i,
            }
        )
        for i in range(n)
    ]


def _dist_tuples(n=160, seed=7):
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "sensor": int(rng.integers(5)),
                "reading": DfSized(
                    GaussianDistribution(
                        float(rng.normal(100.0, 40.0)),
                        float(rng.uniform(0.5, 4.0)),
                    ),
                    int(rng.integers(5, 50)),
                ),
                "seq": i,
            }
        )
        for i in range(n)
    ]


# Module-level factories so the pipelines pickle into spawn workers.
def _learn_pipeline():
    return Pipeline(
        [
            RollingLearnOperator("obs", window_size=12, resum_interval=16),
            CollectSink(),
        ]
    )


def _minmax_pipeline(agg):
    return Pipeline(
        [
            WindowAggregate("reading", 10, agg=agg, resum_interval=16),
            CollectSink(),
        ]
    )


def _grouped_min_pipeline():
    return Pipeline(
        [
            GroupedAggregate(
                key="sensor",
                attribute="reading",
                window_size=6,
                agg="min",
                resum_interval=16,
            ),
            CollectSink(),
        ]
    )


def _element_bytes(results):
    return [pickle.dumps(tup) for tup in results]


class TestRollingWorkerCountInvariance:
    def test_rolling_learn_invariant_across_workers(self):
        tuples = _raw_tuples()

        def run(workers):
            sink = _learn_pipeline().run_sharded(
                tuples, n_workers=workers, n_shards=N_SHARDS, seed=42
            )
            return _element_bytes(sink.results)

        baseline = run(1)
        for workers in WORKER_COUNTS[1:]:
            assert run(workers) == baseline, (
                f"RollingLearnOperator diverged at n_workers={workers}"
            )

    def test_minmax_aggregate_invariant_across_workers(self):
        tuples = _dist_tuples()
        for agg in ("min", "max"):
            def run(workers):
                sink = _minmax_pipeline(agg).run_sharded(
                    tuples, n_workers=workers, n_shards=N_SHARDS, seed=42
                )
                return _element_bytes(sink.results)

            baseline = run(1)
            for workers in WORKER_COUNTS[1:]:
                assert run(workers) == baseline, (
                    f"WindowAggregate({agg}) diverged at "
                    f"n_workers={workers}"
                )

    def test_grouped_min_partitioned_matches_serial(self):
        # Partitioned by the group key, shard-local rolling state equals
        # global state: the sharded run must equal the serial run.
        tuples = _dist_tuples()
        expected = _element_bytes(
            _grouped_min_pipeline().run_batched(tuples, 32).results
        )
        for workers in WORKER_COUNTS:
            sink = _grouped_min_pipeline().run_sharded(
                tuples,
                n_workers=workers,
                partition_by="sensor",
                n_shards=N_SHARDS,
                seed=42,
            )
            assert _element_bytes(sink.results) == expected, (
                f"grouped min diverged at n_workers={workers}"
            )

    def test_rolling_learn_batched_matches_serial_run(self):
        # run() (scalar accuracy path) vs run_batched() (vectorized
        # Theorem-1 path): byte-identical, so any sharded decomposition
        # built on run_batched inherits the scalar semantics.
        tuples = _raw_tuples()
        serial = _element_bytes(_learn_pipeline().run(tuples).results)
        batched = _element_bytes(
            _learn_pipeline().run_batched(tuples, 32).results
        )
        assert batched == serial
