"""Cross-worker trace merge determinism.

The tentpole contract: with a fixed seed and pinned ``n_shards``, the
merged span set — IDs, parentage, attributes, and provenance payloads;
wall-clock timestamps excluded — is identical at 1, 2, and 4 workers.
"""

import json
import pickle

import numpy as np

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.obs.export import spans_to_json
from repro.obs.trace import TraceConfig, Tracer
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, SlidingGaussianAverage
from repro.streams.tuples import UncertainTuple

N_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)
SEED = 3


def _tuples(n=96, seed=0):
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "reading": DfSized(
                    GaussianDistribution(
                        float(rng.normal(50.0, 10.0)),
                        float(rng.uniform(1.0, 9.0)),
                    ),
                    int(rng.integers(10, 40)),
                ),
                "seq": i,
            }
        )
        for i in range(n)
    ]


# Module-level so the pristine pipeline pickles into spawn workers.
def _pipeline(tracer=None):
    return Pipeline(
        [SlidingGaussianAverage("reading", window_size=10), CollectSink()],
        tracer=tracer,
    )


def _merged_deterministic_dump(workers, tuples, trace_config=None):
    tracer = Tracer(trace_config or TraceConfig(seed=SEED))
    pipeline = _pipeline(tracer)
    sink = pipeline.run_sharded(
        tuples, n_workers=workers, n_shards=N_SHARDS, seed=SEED
    )
    return tracer, sink, spans_to_json(tracer, deterministic=True)


class TestMergedTraceDeterminism:
    def test_identical_merged_trace_at_1_2_4_workers(self):
        tuples = _tuples()
        dumps = {}
        sinks = {}
        for workers in WORKER_COUNTS:
            tracer, sink, dump = _merged_deterministic_dump(workers, tuples)
            dumps[workers] = dump
            sinks[workers] = sink
            assert len(tracer) > 0
            assert len(tracer.provenance) > 0
        assert dumps[1] == dumps[2], "merged trace diverged at 2 workers"
        assert dumps[1] == dumps[4], "merged trace diverged at 4 workers"
        # The traced sharded output also matches the untraced one.
        plain = _pipeline().run_sharded(
            tuples, n_workers=2, n_shards=N_SHARDS, seed=SEED
        )
        assert [pickle.dumps(t) for t in sinks[2].results] == [
            pickle.dumps(t) for t in plain.results
        ]

    def test_every_shard_contributes_spans_and_records(self):
        tracer, _, dump = _merged_deterministic_dump(2, _tuples())
        payload = json.loads(dump)
        span_shards = {span["shard"] for span in payload["spans"]}
        record_shards = {
            record["shard"] for record in payload["provenance"]
        }
        expected = {f"shard{i}" for i in range(N_SHARDS)}
        assert span_shards == expected
        assert record_shards == expected
        # Each worker ran the batched path: one run span per shard with
        # its stage spans parented to it.
        runs = [s for s in tracer.spans if s.kind == "run"]
        assert len(runs) == N_SHARDS
        run_ids = {s.span_id for s in runs}
        stages = [s for s in tracer.spans if s.kind == "stage"]
        assert len(stages) == 2 * N_SHARDS
        assert all(s.parent_id in run_ids for s in stages)

    def test_span_ids_distinct_across_shards(self):
        tracer, _, _ = _merged_deterministic_dump(4, _tuples())
        ids = [span.span_id for span in tracer.spans]
        assert len(ids) == len(set(ids))

    def test_explain_works_on_merged_trace(self):
        # Worker payloads were re-pickled, so lookup relies on the
        # content-fingerprint fallback rather than object identity.
        tracer, sink, _ = _merged_deterministic_dump(2, _tuples())
        text = tracer.explain(sink.results[-1])
        assert "accuracy provenance" in text
        assert "SlidingGaussianAverage" in text

    def test_sampled_trace_is_still_worker_count_invariant(self):
        tuples = _tuples()
        config = TraceConfig(seed=SEED, sample_rate=0.3)
        dumps = [
            _merged_deterministic_dump(workers, tuples, config)[2]
            for workers in WORKER_COUNTS
        ]
        assert dumps[0] == dumps[1] == dumps[2]
        kept = len(json.loads(dumps[0])["provenance"])
        assert 0 < kept < len(tuples)

    def test_trace_seed_changes_ids_but_not_shape(self):
        tuples = _tuples()
        first, _, _ = _merged_deterministic_dump(
            2, tuples, TraceConfig(seed=1)
        )
        second, _, _ = _merged_deterministic_dump(
            2, tuples, TraceConfig(seed=2)
        )
        shape = lambda tracer: sorted(
            (s.shard, s.seq, s.name, s.kind) for s in tracer.spans
        )
        assert shape(first) == shape(second)
        assert {s.span_id for s in first.spans}.isdisjoint(
            {s.span_id for s in second.spans}
        )
