"""Worker-count invariance of the parallel Monte-Carlo drivers.

The determinism contract says a fixed seed produces bit-identical
sample arrays at any worker count.  These tests pin that down by
drawing the same work serially (``n_workers=1``) and through a real
2-worker spawn pool, with chunk sizes small enough to force multiple
pool tasks.
"""

import numpy as np
import pytest

from repro.core.bootstrap import (
    bootstrap_accuracy_batch,
    bootstrap_accuracy_info,
)
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import ParallelError
from repro.core.adaptive import resample_schedule
from repro.parallel import (
    ParallelConfig,
    WorkerPool,
    draw_mc_matrix,
    draw_mc_values,
    parallel_bootstrap_accuracy_batch,
    parallel_bootstrap_accuracy_info,
)
from repro.parallel.shm import SharedArray, attach_array, share_array

DIST = GaussianDistribution(100.0, 25.0)


@pytest.fixture(scope="module")
def pool2():
    """One real 2-worker spawn pool shared by the module (startup is slow)."""
    with WorkerPool(ParallelConfig(n_workers=2)) as pool:
        yield pool


def _config(workers, **kwargs):
    kwargs.setdefault("chunk_size", 64)
    return ParallelConfig(n_workers=workers, **kwargs)


class TestDrawMcValues:
    def test_pool_matches_serial_bitwise(self, pool2):
        serial = draw_mc_values(DIST, 300, seed=42, config=_config(1))
        pooled = draw_mc_values(
            DIST, 300, seed=42, config=_config(2), pool=pool2
        )
        assert not pool2.serial
        assert np.array_equal(serial, pooled)

    def test_shared_memory_off_same_values(self, pool2):
        with_shm = draw_mc_values(DIST, 300, seed=7, config=_config(2),
                                  pool=pool2)
        without = draw_mc_values(
            DIST, 300, seed=7,
            config=_config(2, use_shared_memory=False), pool=pool2,
        )
        assert np.array_equal(with_shm, without)

    def test_chunk_size_changes_values_but_not_validity(self):
        # Chunk layout is part of the seeding scheme: different layout,
        # different (still deterministic) stream.
        a = draw_mc_values(DIST, 300, seed=1, config=_config(1, chunk_size=64))
        b = draw_mc_values(DIST, 300, seed=1, config=_config(1, chunk_size=50))
        assert a.shape == b.shape == (300,)
        assert not np.array_equal(a, b)

    def test_empty_draw(self):
        assert draw_mc_values(DIST, 0, seed=3, config=_config(1)).size == 0

    def test_negative_m_raises(self):
        with pytest.raises(ParallelError, match="sample count"):
            draw_mc_values(DIST, -1, seed=3, config=_config(1))


class TestDrawMcMatrix:
    def test_pool_matches_serial_bitwise(self, pool2):
        dists = [GaussianDistribution(float(i), 1.0 + i) for i in range(5)]
        serial = draw_mc_matrix(dists, 64, seed=9, config=_config(1))
        pooled = draw_mc_matrix(
            dists, 64, seed=9, config=_config(2), pool=pool2
        )
        assert serial.shape == (5, 64)
        assert np.array_equal(serial, pooled)

    def test_row_grouping_invariance(self, pool2):
        # chunk_size controls how many rows ride in one task; the values
        # must not depend on that grouping (each row has its own seed).
        dists = [GaussianDistribution(float(i), 2.0) for i in range(6)]
        one_per_task = draw_mc_matrix(
            dists, 32, seed=5, config=_config(2, chunk_size=32), pool=pool2
        )
        three_per_task = draw_mc_matrix(
            dists, 32, seed=5, config=_config(2, chunk_size=96), pool=pool2
        )
        assert np.array_equal(one_per_task, three_per_task)

    def test_empty(self):
        assert draw_mc_matrix([], 16, seed=2, config=_config(1)).shape \
            == (0, 16)


class TestParallelBootstrap:
    def test_info_matches_serial_kernel(self, pool2):
        n, resamples = 30, 10
        values = draw_mc_values(
            DIST, resamples * n, seed=17, config=_config(2)
        )
        expected = bootstrap_accuracy_info(values, n, 0.95)
        got = parallel_bootstrap_accuracy_info(
            DIST, n, resamples, 0.95, seed=17, config=_config(2), pool=pool2
        )
        assert got == expected

    def test_batch_pool_matches_serial_path_bitwise(self, pool2):
        # Same slab decomposition serial and pooled => exact equality.
        rng = np.random.default_rng(3)
        matrix = rng.normal(50.0, 5.0, size=(6, 200))
        serial = parallel_bootstrap_accuracy_batch(
            matrix, 20, 0.9, config=_config(1, chunk_size=400)
        )
        pooled = parallel_bootstrap_accuracy_batch(
            matrix, 20, 0.9, config=_config(2, chunk_size=400), pool=pool2
        )
        assert pooled == serial

    def test_batch_matches_serial_kernel(self, pool2):
        # Against the one-shot kernel: equal to the last ulp (NumPy
        # reduction blocking varies with the reduced row count).
        rng = np.random.default_rng(3)
        matrix = rng.normal(50.0, 5.0, size=(6, 200))
        expected = bootstrap_accuracy_batch(matrix, 20, 0.9)
        got = parallel_bootstrap_accuracy_batch(
            matrix, 20, 0.9, config=_config(2, chunk_size=400), pool=pool2
        )
        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            assert a.mean.low == pytest.approx(b.mean.low, rel=1e-12)
            assert a.mean.high == pytest.approx(b.mean.high, rel=1e-12)
            assert a.variance.low == pytest.approx(b.variance.low, rel=1e-12)
            assert a.variance.high == pytest.approx(
                b.variance.high, rel=1e-12
            )
            assert a.sample_size == b.sample_size
            assert a.values_used == b.values_used

    def test_batch_shared_memory_off(self, pool2):
        rng = np.random.default_rng(4)
        matrix = rng.normal(0.0, 1.0, size=(4, 100))
        serial = parallel_bootstrap_accuracy_batch(
            matrix, 10, 0.95,
            config=_config(1, chunk_size=100, use_shared_memory=False),
        )
        got = parallel_bootstrap_accuracy_batch(
            matrix, 10, 0.95,
            config=_config(2, chunk_size=100, use_shared_memory=False),
            pool=pool2,
        )
        assert got == serial


class TestSharedMemory:
    def test_roundtrip(self):
        data = np.arange(12, dtype=float).reshape(3, 4)
        shared = share_array(data)
        if shared is None:
            pytest.skip("no usable shared memory on this platform")
        with shared:
            view, segment = attach_array(shared.spec)
            try:
                assert np.array_equal(view, data)
                view[0, 0] = -1.0
                assert shared.array[0, 0] == -1.0
            finally:
                del view
                segment.close()

    def test_allocate_and_release(self):
        try:
            shared = SharedArray.allocate((5,), np.dtype(float))
        except Exception:
            pytest.skip("no usable shared memory on this platform")
        shared.array[:] = 2.5
        assert shared.spec.shape == (5,)
        shared.release()

    def test_object_dtype_is_a_caller_bug(self):
        # An unshareable *input* is a ValueError that propagates — it
        # must not be mistaken for "platform has no shared memory" and
        # silently degraded to None by share_array.
        zero_dim = np.array(None, dtype=object)
        with pytest.raises(ValueError, match="object-dtype"):
            SharedArray.create(zero_dim)
        with pytest.raises(ValueError, match="object-dtype"):
            share_array(np.array([{}, {}], dtype=object))
        with pytest.raises(ValueError, match="object-dtype"):
            SharedArray.allocate((3,), np.dtype(object))

    def test_platform_failure_degrades_to_none(self, monkeypatch):
        from multiprocessing import shared_memory

        def broken(*args, **kwargs):
            raise OSError("no shm on this platform")

        monkeypatch.setattr(shared_memory, "SharedMemory", broken)
        assert share_array(np.zeros(4)) is None

    def test_failed_mapping_does_not_leak_segment(self, monkeypatch):
        # If ndarray mapping fails *after* SharedMemory(create=True),
        # the segment must be closed and unlinked, not leaked until
        # process exit (where the resource tracker complains).
        from multiprocessing import shared_memory

        created = []
        real = shared_memory.SharedMemory

        class Recording(real):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(self.name)

        monkeypatch.setattr(shared_memory, "SharedMemory", Recording)

        class FailingMap:
            def __call__(self, *args, **kwargs):
                raise MemoryError("mapping failed")

        import repro.parallel.shm as shm_module

        monkeypatch.setattr(
            shm_module.np,
            "ndarray",
            FailingMap(),
            raising=True,
        )
        try:
            with pytest.raises(MemoryError):
                SharedArray.create(np.zeros(64))
            with pytest.raises(MemoryError):
                SharedArray.allocate((64,), "f8")
        finally:
            monkeypatch.undo()
        assert len(created) == 2
        for name in created:
            with pytest.raises(FileNotFoundError):
                real(name=name)


class TestAdaptiveParallelBootstrap:
    """Adaptive escalation keeps the worker-count determinism contract."""

    def test_escalation_bitwise_at_1_2_4_workers(self, pool2):
        # An unreachable target forces every escalation round, so the
        # multi-round draw sequence itself is pinned across worker counts.
        kwargs = dict(
            resamples=64, confidence=0.9, seed=23,
            target_ci_width=1e-9, initial_resamples=8,
        )
        serial = parallel_bootstrap_accuracy_info(
            DIST, 25, config=_config(1), **kwargs
        )
        two = parallel_bootstrap_accuracy_info(
            DIST, 25, config=_config(2), pool=pool2, **kwargs
        )
        with WorkerPool(ParallelConfig(n_workers=4)) as pool4:
            four = parallel_bootstrap_accuracy_info(
                DIST, 25, config=_config(4), pool=pool4, **kwargs
            )
        assert serial == two == four
        assert serial.draws_used == 64 * 25
        assert serial.rounds == len(resample_schedule(8, 2.0, 64))

    def test_adaptive_early_stop_spends_fewer_draws(self, pool2):
        full = parallel_bootstrap_accuracy_info(
            DIST, 25, resamples=64, confidence=0.9, seed=23,
            config=_config(2), pool=pool2,
        )
        # Chunk means have std sigma/sqrt(n) = 1, so the calibrated 90%
        # width sits near 3.3; a target of 6 is met at the first round.
        adaptive = parallel_bootstrap_accuracy_info(
            DIST, 25, resamples=64, confidence=0.9, seed=23,
            config=_config(2), pool=pool2, target_ci_width=6.0,
        )
        assert full.draws_used == 64 * 25
        assert adaptive.draws_used < full.draws_used
        assert adaptive.draws_used % 25 == 0

    def test_no_target_path_unchanged(self, pool2):
        """Without a width target the one-shot fixed path still runs."""
        n, resamples = 30, 10
        values = draw_mc_values(
            DIST, resamples * n, seed=17, config=_config(2)
        )
        expected = bootstrap_accuracy_info(values, n, 0.95)
        got = parallel_bootstrap_accuracy_info(
            DIST, n, resamples, 0.95, seed=17, config=_config(2), pool=pool2
        )
        assert got == expected
        assert got.rounds == 1


class TestBatchWarningsAndVariants:
    def test_pooled_batch_surfaces_truncation_warning(self, pool2):
        # 200 mod 70 = 60 dropped per row: 30% > the 25% threshold.
        rng = np.random.default_rng(9)
        matrix = rng.normal(0.0, 1.0, size=(6, 200))
        with pytest.warns(UserWarning, match="bootstrap chunking dropped"):
            parallel_bootstrap_accuracy_batch(
                matrix, 70, 0.9, config=_config(2, chunk_size=400),
                pool=pool2,
            )

    def test_serial_slab_batch_surfaces_truncation_warning(self):
        rng = np.random.default_rng(9)
        matrix = rng.normal(0.0, 1.0, size=(6, 200))
        with pytest.warns(UserWarning, match="bootstrap chunking dropped"):
            parallel_bootstrap_accuracy_batch(
                matrix, 70, 0.9, config=_config(1, chunk_size=400)
            )

    def test_batch_below_threshold_is_silent(self, pool2):
        # 200 mod 30 = 20 dropped per row: 10% < the 25% threshold.
        import warnings as _warnings

        rng = np.random.default_rng(9)
        matrix = rng.normal(0.0, 1.0, size=(6, 200))
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            parallel_bootstrap_accuracy_batch(
                matrix, 30, 0.9, config=_config(2, chunk_size=400),
                pool=pool2,
            )

    def test_batch_edges_and_interval_thread_through(self, pool2):
        rng = np.random.default_rng(5)
        matrix = rng.normal(0.0, 1.0, size=(6, 200))
        edges = (-1.0, 0.0, 1.0)
        serial = parallel_bootstrap_accuracy_batch(
            matrix, 20, 0.9, edges=edges, interval="basic",
            config=_config(1, chunk_size=400),
        )
        pooled = parallel_bootstrap_accuracy_batch(
            matrix, 20, 0.9, edges=edges, interval="basic",
            config=_config(2, chunk_size=400), pool=pool2,
        )
        assert pooled == serial
        assert all(len(info.bins) == 2 for info in pooled)
