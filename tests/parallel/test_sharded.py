"""Seed-fixed equivalence of sharded vs. batched pipeline execution.

The ISSUE-level guarantee: for a fixed seed and pinned ``n_shards``,
``Pipeline.run_sharded`` produces sink contents identical to the serial
run at ANY worker count — 1 (in-process), 2, and 4 real spawn workers.

Tuples are compared by per-element ``pickle.dumps`` bytes.  Whole-list
pickles are NOT comparable across paths (pickle's memo shares objects
differently depending on how the list was assembled), but per-element
bytes are exact.
"""

import pickle
import zlib

import numpy as np
import pytest

from repro.core.adaptive import resample_schedule
from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import ParallelError, StreamError
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    ParallelConfig,
    WorkerPool,
    partition_indices,
    run_sharded,
    stable_key_hash,
)
from repro.streams.engine import Pipeline
from repro.streams.groupby import GroupedAggregate
from repro.streams.operators import (
    CollectSink,
    CountingSink,
    Derive,
    Select,
    SlidingGaussianAverage,
)
from repro.streams.tuples import UncertainTuple

N_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)


def _tuples(n=120, n_sensors=6, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        out.append(
            UncertainTuple(
                {
                    "sensor": int(rng.integers(n_sensors)),
                    "reading": DfSized(
                        GaussianDistribution(
                            float(rng.normal(50.0, 10.0)),
                            float(rng.uniform(1.0, 9.0)),
                        ),
                        int(rng.integers(10, 40)),
                    ),
                    "seq": i,
                }
            )
        )
    return out


# Module-level so the pipelines pickle into spawn workers.
def _double_seq(tup):
    return tup.value("seq") * 2


def _keep_even(tup):
    return tup.value("seq") % 2 == 0


def _stateless_pipeline():
    return Pipeline([Derive("twice", _double_seq), CollectSink()])


def _grouped_pipeline():
    return Pipeline(
        [
            GroupedAggregate(
                key="sensor", attribute="reading", window_size=8, agg="avg"
            ),
            CollectSink(),
        ]
    )


def _element_bytes(results):
    return [pickle.dumps(tup) for tup in results]


class TestStableKeyHash:
    def test_int_passthrough(self):
        assert stable_key_hash(17) == 17
        assert stable_key_hash(0) == 0

    def test_int_nonnegative(self):
        assert stable_key_hash(-5) >= 0

    def test_bool_as_int(self):
        assert stable_key_hash(True) == 1

    def test_str_is_crc32(self):
        assert stable_key_hash("abc") == zlib.crc32(b"'abc'")

    def test_stable_across_calls(self):
        assert stable_key_hash(("a", 3)) == stable_key_hash(("a", 3))


class TestPartitionIndices:
    def test_round_robin(self):
        tuples = _tuples(7)
        shards = partition_indices(tuples, 3, None)
        assert shards == [[0, 3, 6], [1, 4], [2, 5]]

    def test_attribute_key_groups_together(self):
        tuples = _tuples(60)
        shards = partition_indices(tuples, N_SHARDS, "sensor")
        assert sorted(i for shard in shards for i in shard) == list(range(60))
        for shard in shards:
            # Every index of a given sensor lands in exactly one shard.
            sensors = {tuples[i].value("sensor") for i in shard}
            for other in shards:
                if other is shard:
                    continue
                assert sensors.isdisjoint(
                    {tuples[i].value("sensor") for i in other}
                )

    def test_callable_key(self):
        tuples = _tuples(10)
        shards = partition_indices(
            tuples, 2, lambda tup: tup.value("seq") // 5
        )
        assert shards == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]

    def test_bad_shard_count(self):
        with pytest.raises(ParallelError, match="n_shards"):
            partition_indices([], 0, None)


class TestWorkerCountEquivalence:
    """The satellite (d) contract: 1 == 2 == 4 workers == serial run."""

    def test_stateless_pipeline_matches_run_batched(self):
        tuples = _tuples()
        expected = _element_bytes(
            _stateless_pipeline().run_batched(tuples, 32).results
        )
        for workers in WORKER_COUNTS:
            pipeline = _stateless_pipeline()
            sink = pipeline.run_sharded(
                tuples, n_workers=workers, n_shards=N_SHARDS, seed=123
            )
            assert _element_bytes(sink.results) == expected, (
                f"stateless sink diverged at n_workers={workers}"
            )

    def test_grouped_partition_by_matches_run_batched(self):
        # GroupedAggregate keyed by the partition attribute: shard-local
        # group state equals global group state, and emit-per-input lets
        # the interleave merge reconstruct the exact serial emit order.
        tuples = _tuples()
        expected = _element_bytes(
            _grouped_pipeline().run_batched(tuples, 32).results
        )
        assert len(expected) == len(tuples)
        for workers in WORKER_COUNTS:
            pipeline = _grouped_pipeline()
            sink = pipeline.run_sharded(
                tuples,
                n_workers=workers,
                partition_by="sensor",
                n_shards=N_SHARDS,
                seed=123,
            )
            assert _element_bytes(sink.results) == expected, (
                f"grouped sink diverged at n_workers={workers}"
            )

    def test_windowed_pipeline_worker_count_invariant(self):
        # An unkeyed window reshards semantically (one window per shard)
        # so it cannot equal the serial run — but it must still be
        # invariant across worker counts for a fixed decomposition.
        tuples = _tuples()

        def run(workers):
            pipeline = Pipeline(
                [
                    SlidingGaussianAverage("reading", window_size=10),
                    CollectSink(),
                ]
            )
            sink = pipeline.run_sharded(
                tuples, n_workers=workers, n_shards=N_SHARDS, seed=9
            )
            return _element_bytes(sink.results)

        baseline = run(1)
        assert run(2) == baseline
        assert run(4) == baseline


class TestSinkAndMetricsMerge:
    @pytest.fixture(scope="class")
    def pool2(self):
        with WorkerPool(ParallelConfig(n_workers=2)) as pool:
            yield pool

    def test_counting_sink_sums(self, pool2):
        tuples = _tuples(50)
        pipeline = Pipeline([Select(_keep_even), CountingSink()])
        sink = pipeline.run_sharded(
            tuples, n_workers=2, n_shards=N_SHARDS, pool=pool2
        )
        assert sink.count == 25

    def test_merged_metrics_counters(self, pool2):
        tuples = _tuples(80)
        registry = MetricsRegistry()
        pipeline = _stateless_pipeline()
        pipeline.attach_metrics(registry, prefix="eq")
        pipeline.run_sharded(
            tuples, n_workers=2, n_shards=N_SHARDS, pool=pool2
        )
        snapshot = registry.snapshot()
        # Every source tuple was pushed exactly once, across all shards.
        assert snapshot["eq.tuples"]["value"] == 80
        # One run_batched per shard.
        assert snapshot["eq.runs"]["value"] == N_SHARDS
        assert snapshot["eq.run_seconds"]["count"] == N_SHARDS

    def test_interleave_requires_one_to_one(self):
        tuples = _tuples(20)
        pipeline = Pipeline([Select(_keep_even), CollectSink()])
        with pytest.raises(ParallelError, match="interleave"):
            pipeline.run_sharded(
                tuples, n_workers=1, n_shards=2, merge="interleave"
            )

    def test_auto_falls_back_to_concat_for_filters(self):
        tuples = _tuples(20)
        pipeline = Pipeline([Select(_keep_even), CollectSink()])
        sink = pipeline.run_sharded(tuples, n_workers=1, n_shards=2)
        assert sorted(t.value("seq") for t in sink.results) == list(
            range(0, 20, 2)
        )

    def test_bad_merge_mode(self):
        with pytest.raises(ParallelError, match="merge"):
            _stateless_pipeline().run_sharded(
                _tuples(4), n_workers=1, merge="zip"
            )

    def test_unmergeable_sink_rejected(self):
        pipeline = Pipeline([SlidingGaussianAverage("reading", 4)])
        with pytest.raises(StreamError, match="CollectSink or CountingSink"):
            pipeline.run_sharded(_tuples(4), n_workers=1)

    def test_default_shards_follow_workers(self):
        tuples = _tuples(12)
        result = run_sharded(
            _stateless_pipeline(), tuples, n_workers=1
        )
        assert len(result.shards) == 1


class TestUnpicklableFallback:
    def test_parallel_degrades_with_warning(self):
        tuples = _tuples(24)
        expected = _element_bytes(
            _stateless_pipeline().run_batched(tuples, 32).results
        )
        # A lambda-bearing operator cannot pickle into spawn workers.
        pipeline = Pipeline(
            [Derive("twice", lambda t: t.value("seq") * 2), CollectSink()]
        )
        with pytest.warns(UserWarning, match="not picklable"):
            sink = pipeline.run_sharded(
                tuples, n_workers=2, n_shards=N_SHARDS, seed=123
            )
        assert _element_bytes(sink.results) == expected

    def test_no_fallback_raises(self):
        pipeline = Pipeline(
            [Derive("twice", lambda t: t.value("seq") * 2), CollectSink()]
        )
        with pytest.raises(ParallelError, match="not picklable"):
            pipeline.run_sharded(
                _tuples(8),
                n_workers=2,
                config=ParallelConfig(n_workers=2, fallback_serial=False),
            )

    def test_serial_fallback_does_not_warn(self):
        pipeline = Pipeline(
            [Derive("twice", lambda t: t.value("seq") * 2), CollectSink()]
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sink = pipeline.run_sharded(_tuples(8), n_workers=1, n_shards=2)
        assert len(sink.results) == 8


class TestAdaptiveBootstrapSharded:
    def test_adaptive_stage_worker_count_invariant(self):
        """Adaptive escalation state is per-shard: pinned n_shards makes
        the sharded sink byte-identical at 1, 2, and 4 workers."""
        from repro.experiments.fig5_throughput import _BootstrapAccuracy

        tuples = _tuples(n=96)

        def run(workers):
            pipeline = Pipeline(
                [
                    _BootstrapAccuracy(
                        "reading", resamples=32, seed=5,
                        target_ci_width=12.0, initial_resamples=8,
                    ),
                    CollectSink(),
                ]
            )
            sink = pipeline.run_sharded(
                tuples, n_workers=workers, n_shards=N_SHARDS, seed=9
            )
            return _element_bytes(sink.results)

        expected = run(1)
        assert len(expected) == len(tuples)
        for workers in WORKER_COUNTS[1:]:
            assert run(workers) == expected, (
                f"adaptive sharded sink diverged at {workers} workers"
            )

    def test_adaptive_draws_vary_per_tuple(self):
        from repro.experiments.fig5_throughput import _BootstrapAccuracy

        pipeline = Pipeline(
            [
                _BootstrapAccuracy(
                    "reading", resamples=32, seed=5,
                    target_ci_width=12.0, initial_resamples=8,
                ),
                CollectSink(),
            ]
        )
        sink = pipeline.run(_tuples(n=96))
        draws = {tup.value("accuracy").draws_used for tup in sink.results}
        budgets = {tup.value("accuracy").draws_used
                   // tup.value("accuracy").sample_size
                   for tup in sink.results}
        assert budgets <= set(resample_schedule(8, 2.0, 32))
        assert len(draws) > 1  # distribution-sensitive: not one budget
