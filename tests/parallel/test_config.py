"""ParallelConfig validation, env override, and chunking."""

import pytest

from repro.errors import ParallelError
from repro.parallel import (
    DEFAULT_CHUNK_SIZE,
    WORKERS_ENV_VAR,
    ParallelConfig,
    available_cpus,
    chunk_spans,
)


class TestParallelConfig:
    def test_defaults(self):
        config = ParallelConfig()
        assert config.n_workers is None
        assert config.chunk_size == DEFAULT_CHUNK_SIZE
        assert config.start_method == "spawn"
        assert config.use_shared_memory
        assert config.fallback_serial

    def test_negative_workers_rejected(self):
        with pytest.raises(ParallelError, match="n_workers"):
            ParallelConfig(n_workers=-1)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ParallelError, match="chunk_size"):
            ParallelConfig(chunk_size=0)

    def test_bad_start_method_rejected(self):
        with pytest.raises(ParallelError, match="start_method"):
            ParallelConfig(start_method="threads")

    def test_frozen(self):
        with pytest.raises(Exception):
            ParallelConfig().n_workers = 3  # type: ignore[misc]


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert ParallelConfig().resolve_workers() == 1
        assert not ParallelConfig().parallel

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        assert ParallelConfig(n_workers=3).resolve_workers() == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        config = ParallelConfig()
        assert config.resolve_workers() == 5
        assert config.parallel

    def test_env_blank_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "  ")
        assert ParallelConfig().resolve_workers() == 1

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ParallelError, match=WORKERS_ENV_VAR):
            ParallelConfig().resolve_workers()

    def test_env_negative_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "-2")
        with pytest.raises(ParallelError, match=WORKERS_ENV_VAR):
            ParallelConfig().resolve_workers()

    def test_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert ParallelConfig(n_workers=0).resolve_workers() == available_cpus()

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1


class TestChunkSpans:
    def test_covers_range_exactly(self):
        spans = chunk_spans(10, 4)
        assert spans == [(0, 4), (4, 8), (8, 10)]

    def test_exact_multiple(self):
        assert chunk_spans(8, 4) == [(0, 4), (4, 8)]

    def test_single_chunk(self):
        assert chunk_spans(3, 100) == [(0, 3)]

    def test_empty(self):
        assert chunk_spans(0, 4) == []

    def test_negative_total_raises(self):
        with pytest.raises(ParallelError, match="total"):
            chunk_spans(-1, 4)

    def test_independent_of_worker_count(self):
        # The chunk layout is a pure function of (total, chunk_size):
        # nothing else may enter, or per-chunk seeds would drift with
        # the machine the benchmark runs on.
        assert chunk_spans(1000, 64) == chunk_spans(1000, 64)
