"""Cross-worker telemetry merge determinism.

The tentpole contract: with a fixed seed and pinned ``n_shards``, the
merged frame series — and therefore every SLO evaluation and alert log
computed from it — is byte-identical at 1, 2, and 4 workers (wall-clock
timer seconds excluded via the deterministic view, exactly like span
timestamps in the trace contract).
"""

import json
import pickle

import numpy as np

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.obs.alerts import AlertLog
from repro.obs.slo import evaluate_rule, parse_rule
from repro.obs.timeseries import TelemetryConfig, TelemetryRecorder
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, SlidingGaussianAverage
from repro.streams.tuples import UncertainTuple

N_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)
SEED = 3
FRAME_INTERVAL = 8
BATCH_SIZE = 8


def _tuples(n=96, seed=0):
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "reading": DfSized(
                    GaussianDistribution(
                        float(rng.normal(50.0, 10.0)),
                        float(rng.uniform(1.0, 9.0)),
                    ),
                    int(rng.integers(10, 40)),
                ),
                "seq": i,
            }
        )
        for i in range(n)
    ]


# Module-level so the pristine pipeline pickles into spawn workers.
def _pipeline(telemetry=None):
    return Pipeline(
        [SlidingGaussianAverage("reading", window_size=10), CollectSink()],
        telemetry=telemetry,
    )


def _rules():
    return [
        parse_rule(
            "ci_width p95 <= 0.5", short_window=2, long_window=4,
        ),
        parse_rule(
            "de_facto_n p5 >= 4", short_window=2, long_window=4,
        ),
    ]


def _merged(workers, tuples):
    recorder = TelemetryRecorder(
        TelemetryConfig(frame_interval=FRAME_INTERVAL)
    )
    pipeline = _pipeline(recorder)
    sink = pipeline.run_sharded(
        tuples,
        n_workers=workers,
        n_shards=N_SHARDS,
        seed=SEED,
        batch_size=BATCH_SIZE,
    )
    return recorder, sink


class TestMergedTelemetryDeterminism:
    def test_identical_frame_series_at_1_2_4_workers(self):
        tuples = _tuples()
        dumps = {}
        sinks = {}
        for workers in WORKER_COUNTS:
            recorder, sink = _merged(workers, tuples)
            assert len(recorder.series) > 1
            dumps[workers] = json.dumps(
                recorder.series.deterministic_view(), sort_keys=True
            )
            sinks[workers] = sink
        assert dumps[1] == dumps[2], "frame series diverged at 2 workers"
        assert dumps[1] == dumps[4], "frame series diverged at 4 workers"
        # Telemetry never perturbs the merged output either.
        plain = _pipeline().run_sharded(
            tuples,
            n_workers=2,
            n_shards=N_SHARDS,
            seed=SEED,
            batch_size=BATCH_SIZE,
        )
        assert [pickle.dumps(t) for t in sinks[2].results] == [
            pickle.dumps(t) for t in plain.results
        ]

    def test_identical_slo_evaluations_at_any_worker_count(self):
        tuples = _tuples()
        dumps = []
        for workers in WORKER_COUNTS:
            recorder, _ = _merged(workers, tuples)
            dumps.append(
                json.dumps(
                    [
                        evaluate_rule(recorder.series, rule).to_dicts()
                        for rule in _rules()
                    ],
                    sort_keys=True,
                )
            )
        assert dumps[0] == dumps[1] == dumps[2]

    def test_identical_alert_logs_at_any_worker_count(self):
        tuples = _tuples()
        logs = []
        for workers in WORKER_COUNTS:
            recorder, _ = _merged(workers, tuples)
            log = AlertLog()
            log.evaluate(recorder.series, _rules())
            logs.append(log.to_jsonl())
        assert logs[0] == logs[1] == logs[2]

    def test_frames_fold_across_all_shards(self):
        tuples = _tuples()
        recorder, _ = _merged(2, tuples)
        # 96 tuples over 4 pinned shards at interval 8: 3 frames per
        # shard folding into 3 merged frames spanning 32 positions each.
        assert [f.index for f in recorder.series] == [0, 1, 2]
        assert [(f.start, f.end) for f in recorder.series] == [
            (0, 32),
            (32, 64),
            (64, 96),
        ]

    def test_merged_deltas_sum_to_registry_totals(self):
        tuples = _tuples()
        recorder, _ = _merged(2, tuples)
        name = "pipeline.00.SlidingGaussianAverage.interval_width"
        per_frame = sum(
            int(frame.metrics[name]["count"])
            for frame in recorder.series
            if name in frame.metrics
        )
        cumulative = recorder.registry.snapshot()[name]["count"]
        assert per_frame == cumulative > 0

    def test_parent_resync_keeps_later_frames_clean(self):
        tuples = _tuples()
        recorder, _ = _merged(2, tuples)
        frames_before = len(recorder.series)
        # A serial run on the same recorder after the sharded merge must
        # record only its own activity, not re-count merged history.
        pipeline = _pipeline(recorder)
        pipeline.run(_tuples(FRAME_INTERVAL, seed=1))
        new = recorder.series.frames[frames_before:]
        name = "pipeline.00.SlidingGaussianAverage.tuples_in"
        assert sum(
            int(f.metrics[name]["value"])
            for f in new
            if name in f.metrics
        ) == FRAME_INTERVAL
