"""Paper-conformance suite: every worked example in the paper, in order.

Each test reproduces one of the paper's numbered examples end to end and
asserts the numbers the paper prints (where it prints any).  This is the
quickest way for a reviewer to check the implementation against the
text.
"""

import math

import numpy as np
import pytest

from repro import (
    DfSized,
    ExecutorConfig,
    FieldStats,
    GaussianDistribution,
    HistogramLearner,
    MTest,
    ThreeValued,
    UncertainTuple,
    accuracy_from_sample,
    bin_height_interval,
    bootstrap_accuracy_info,
    coupled_tests,
    df_sample_count,
    df_sample_size,
    m_test,
    p_test,
    run_query,
    tuple_probability_interval,
)


class TestExample1:
    """Roads 19 and 20: 3 vs 50 observations of the Delay attribute."""

    def test_sparse_road_gets_wider_accuracy(self, rng):
        learner = HistogramLearner(bucket_count=8, value_range=(0, 150))
        sparse = learner.learn(rng.normal(60, 15, 3))
        dense = learner.learn(rng.normal(60, 15, 50))
        assert (
            sparse.accuracy(0.9).mean.length
            > dense.accuracy(0.9).mean.length
        )

    def test_threshold_query_selects_both_but_flags_reliability(self, rng):
        learner = HistogramLearner(bucket_count=8, value_range=(0, 150))
        tuples = [
            UncertainTuple(
                {"road_id": float(road),
                 "delay": learner.learn(rng.normal(70, 10, n)).as_dfsized()}
            )
            for road, n in [(19, 3), (20, 50)]
        ]
        # "SELECT Road_ID FROM t WHERE Delay >2/3 50"
        results = run_query(
            "SELECT road_id FROM t WHERE delay > 50 PROB 2/3",
            tuples, config=ExecutorConfig(seed=0, confidence=0.9),
        )
        assert len(results) == 2
        widths = [r.probability_interval.interval.length for r in results]
        assert widths[0] > widths[1]  # road 19's answer is less reliable


class TestExample2:
    """n=20, buckets with 3/4/8/5 observations, 90% intervals."""

    EXPECTED = {
        0.15: (0.062, 0.322),  # Wilson (np < 4)
        0.20: (0.05, 0.35),
        0.40: (0.22, 0.58),
        0.25: (0.09, 0.41),
    }

    @pytest.mark.parametrize("p,expected", sorted(EXPECTED.items()))
    def test_bucket_intervals(self, p, expected):
        ci = bin_height_interval(p, 20, 0.9)
        assert ci.low == pytest.approx(expected[0], abs=0.005)
        assert ci.high == pytest.approx(expected[1], abs=0.005)


class TestExample3:
    """10 delay observations -> mean CI [65.97, 76.23], var [41.66, 211.99]."""

    def test_printed_numbers(self, paper_example3_sample):
        info = accuracy_from_sample(paper_example3_sample, 0.9)
        assert info.mean.low == pytest.approx(65.97, abs=0.02)
        assert info.mean.high == pytest.approx(76.23, abs=0.02)
        assert info.variance.low == pytest.approx(41.66, abs=0.05)
        assert info.variance.high == pytest.approx(211.99, abs=0.5)


class TestExample4:
    """SELECT (A+B)/2 FROM S WHERE C > 80 with sizes 15/10/20."""

    def test_df_sample_sizes(self):
        assert df_sample_size([15, 10]) == 10   # the (A+B)/2 field
        assert df_sample_size([20]) == 20       # the membership boolean

    def test_through_the_query_engine(self, rng):
        tup = UncertainTuple(
            {
                "a": DfSized(GaussianDistribution(10, 1), 15),
                "b": DfSized(GaussianDistribution(20, 1), 10),
                "c": DfSized(GaussianDistribution(85, 25), 20),
            }
        )
        results = run_query(
            "SELECT (a + b) / 2 AS y FROM s WHERE c > 80",
            [tup], config=ExecutorConfig(seed=0, confidence=0.9),
        )
        assert results[0].value("y").sample_size == 10


class TestExample5:
    """Pr[C > 80] = 0.6 at n=20 -> tuple probability CI [0.42, 0.78]."""

    def test_printed_interval(self):
        interval = tuple_probability_interval(0.6, 20, 0.9).interval
        assert interval.low == pytest.approx(0.42, abs=0.005)
        assert interval.high == pytest.approx(0.78, abs=0.005)


class TestExample7:
    """n=15, m=300 -> r=20 resamples; percentile intervals at alpha=0.9."""

    def test_resample_structure(self, rng):
        values = rng.normal(50, 5, 300)
        info = bootstrap_accuracy_info(values, 15, 0.9)
        chunk_means = values.reshape(20, 15).mean(axis=1)
        lo, hi = np.percentile(chunk_means, [5, 95])
        assert info.mean.low == pytest.approx(float(lo))
        assert info.mean.high == pytest.approx(float(hi))


class TestExamples8And9:
    """Temperature fields X (n=5) and Y (n=100) with equal means."""

    X_SAMPLE = [82, 86, 105, 110, 119]

    def test_p1_probability_threshold_accepts_both(self):
        # Both have Pr[temp > 100] ~ 0.6 >= 0.5: the accuracy-oblivious
        # predicate cannot tell them apart (Example 8's complaint).
        assert 3 / 5 >= 0.5 and 60 / 100 >= 0.5

    def test_ptest_separates(self):
        # pTest("temperature > 100", 0.5, 0.05).
        assert p_test(0.6, 100, ">", 0.5, 0.05).reject      # Y passes
        assert not p_test(0.6, 5, ">", 0.5, 0.05).reject    # X does not

    def test_mtest_separates(self):
        x = FieldStats.from_sample(self.X_SAMPLE)
        assert not m_test(x, ">", 97, 0.05).reject          # X: not sig.
        y = FieldStats(mean=x.mean, std=x.std, n=100)
        assert m_test(y, ">", 97, 0.05).reject              # Y: significant

    def test_coupled_form_reports_unsure_for_x(self):
        x = FieldStats.from_sample(self.X_SAMPLE)
        outcome = coupled_tests(MTest(x, ">", 97, 0.05), 0.05, 0.05)
        assert outcome.value is ThreeValued.UNSURE


class TestLemma4Example:
    """c = prod P(n_i, n): two inputs 10 and 15 give 15!/5! d.f. samples."""

    def test_count(self):
        assert df_sample_count([10, 15]) == (
            math.factorial(15) // math.factorial(5)
        )
