"""Tests for the weighted-sample extension (effective sample size)."""

import numpy as np
import pytest

from repro.core.effective import (
    effective_sample_size,
    exponential_weights,
    weighted_accuracy,
    weighted_stats,
)
from repro.errors import AccuracyError


class TestExponentialWeights:
    def test_fresh_observation_weight_one(self):
        weights = exponential_weights([0.0, 1.0, 2.0], half_life=1.0)
        assert weights[0] == 1.0
        assert weights[1] == pytest.approx(0.5)
        assert weights[2] == pytest.approx(0.25)

    def test_half_life_scales_decay(self):
        slow = exponential_weights([10.0], half_life=10.0)
        fast = exponential_weights([10.0], half_life=1.0)
        assert slow[0] == pytest.approx(0.5)
        assert fast[0] == pytest.approx(2.0 ** -10)

    def test_rejects_negative_age(self):
        with pytest.raises(AccuracyError):
            exponential_weights([-1.0], half_life=1.0)

    def test_rejects_bad_half_life(self):
        with pytest.raises(AccuracyError):
            exponential_weights([1.0], half_life=0.0)


class TestEffectiveSampleSize:
    def test_equal_weights_give_n(self):
        assert effective_sample_size([1.0] * 7 ) == pytest.approx(7.0)
        assert effective_sample_size([0.3] * 7) == pytest.approx(7.0)

    def test_concentrated_weight_approaches_one(self):
        n_eff = effective_sample_size([1.0, 1e-9, 1e-9])
        assert n_eff == pytest.approx(1.0, abs=1e-6)

    def test_between_one_and_n(self, rng):
        weights = rng.uniform(0.1, 1.0, 30)
        n_eff = effective_sample_size(weights)
        assert 1.0 <= n_eff <= 30.0

    def test_rejects_bad_weights(self):
        with pytest.raises(AccuracyError):
            effective_sample_size([])
        with pytest.raises(AccuracyError):
            effective_sample_size([-1.0, 1.0])
        with pytest.raises(AccuracyError):
            effective_sample_size([0.0, 0.0])


class TestWeightedStats:
    def test_equal_weights_match_plain_statistics(self, rng):
        values = rng.normal(5, 2, 40)
        ws = weighted_stats(values, np.ones(40))
        assert ws.mean == pytest.approx(float(values.mean()))
        assert ws.variance == pytest.approx(float(values.var(ddof=1)))
        assert ws.n_eff == pytest.approx(40.0)

    def test_weighting_pulls_mean(self):
        ws = weighted_stats([0.0, 10.0], [3.0, 1.0])
        assert ws.mean == pytest.approx(2.5)

    def test_rejects_length_mismatch(self):
        with pytest.raises(AccuracyError):
            weighted_stats([1.0, 2.0], [1.0])


class TestWeightedAccuracy:
    def test_decay_widens_intervals(self, rng):
        values = rng.normal(10, 2, 50)
        fresh = weighted_accuracy(values, np.ones(50), 0.9)
        ages = np.arange(50, dtype=float)
        decayed_weights = exponential_weights(ages, half_life=5.0)
        decayed = weighted_accuracy(values, decayed_weights, 0.9)
        # Heavy decay -> smaller effective n -> wider mean interval.
        assert decayed.sample_size < fresh.sample_size

    def test_floors_effective_n_at_two(self):
        info = weighted_accuracy([1.0, 2.0, 3.0], [1.0, 1e-9, 1e-9], 0.9)
        assert info.sample_size == 2
