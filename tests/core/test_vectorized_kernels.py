"""Property tests: vectorized batch kernels vs. the scalar Lemma 1/2 path.

The scalar functions in :mod:`repro.core.analytic` and the scalar
:func:`repro.core.bootstrap.percentile_interval` are the reference
implementations of the paper's formulas; the array-in/array-out kernels
must match them element-wise (within 1e-12), including:

* the Wald/Wilson dispatch boundaries (``p`` in {0, 1}, ``n·p``
  straddling ``WALD_VALIDITY_COUNT``),
* the Student-t/z switch at ``n = SMALL_SAMPLE_MEAN_CUTOFF``,
* the per-row chunk statistics and percentile intervals of the
  bootstrap batch kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytic import (
    SMALL_SAMPLE_MEAN_CUTOFF,
    WALD_VALIDITY_COUNT,
    accuracy_from_moments,
    bin_height_interval,
    bin_height_intervals,
    distribution_accuracy,
    mean_interval,
    mean_intervals,
    proportion_interval_wald,
    proportion_interval_wilson,
    proportion_intervals_wald,
    proportion_intervals_wilson,
    tuple_probability_interval,
    tuple_probability_intervals,
    variance_interval,
    variance_intervals,
)
from repro.core.bootstrap import (
    bootstrap_accuracy_batch,
    bootstrap_accuracy_info,
    percentile_interval,
    percentile_intervals,
)
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import AccuracyError

TOL = 1e-12

proportions = st.floats(min_value=0.0, max_value=1.0)
confidences = st.floats(min_value=0.01, max_value=0.99)
sample_sizes = st.integers(min_value=2, max_value=10_000)


def assert_intervals_match(lows, highs, scalar_cis):
    for i, ci in enumerate(scalar_cis):
        assert abs(lows[i] - ci.low) <= TOL
        assert abs(highs[i] - ci.high) <= TOL


class TestProportionKernels:
    @given(
        p_vec=st.lists(proportions, min_size=1, max_size=40),
        n=sample_sizes,
        c=confidences,
    )
    @settings(max_examples=200, deadline=None)
    def test_wald_matches_scalar(self, p_vec, n, c):
        lows, highs = proportion_intervals_wald(p_vec, n, c)
        assert_intervals_match(
            lows, highs, [proportion_interval_wald(p, n, c) for p in p_vec]
        )

    @given(
        p_vec=st.lists(proportions, min_size=1, max_size=40),
        n=sample_sizes,
        c=confidences,
    )
    @settings(max_examples=200, deadline=None)
    def test_wilson_matches_scalar(self, p_vec, n, c):
        lows, highs = proportion_intervals_wilson(p_vec, n, c)
        assert_intervals_match(
            lows, highs, [proportion_interval_wilson(p, n, c) for p in p_vec]
        )

    @given(
        p_vec=st.lists(proportions, min_size=1, max_size=40),
        n=sample_sizes,
        c=confidences,
    )
    @settings(max_examples=300, deadline=None)
    def test_dispatch_matches_scalar(self, p_vec, n, c):
        lows, highs = bin_height_intervals(p_vec, n, c)
        assert_intervals_match(
            lows, highs, [bin_height_interval(p, n, c) for p in p_vec]
        )

    @given(n=sample_sizes, c=confidences)
    @settings(max_examples=150, deadline=None)
    def test_dispatch_boundaries(self, n, c):
        # p in {0, 1} plus proportions placing n*p exactly at, just
        # below, and just above the Wald validity count on both tails.
        boundary = WALD_VALIDITY_COUNT / n
        candidates = [
            0.0, 1.0,
            boundary, np.nextafter(boundary, 0), np.nextafter(boundary, 1),
            1.0 - boundary, 0.5,
        ]
        p_vec = [p for p in candidates if 0.0 <= p <= 1.0]
        lows, highs = bin_height_intervals(p_vec, n, c)
        assert_intervals_match(
            lows, highs, [bin_height_interval(p, n, c) for p in p_vec]
        )

    def test_rejects_out_of_range_proportions(self):
        with pytest.raises(AccuracyError):
            bin_height_intervals([0.5, 1.5], 10)
        with pytest.raises(AccuracyError):
            bin_height_intervals([-0.1], 10)

    def test_rejects_bad_sizes(self):
        with pytest.raises(AccuracyError):
            bin_height_intervals([0.5], 0)

    def test_vector_sample_sizes_broadcast(self):
        p_vec = [0.01, 0.5, 0.99]
        ns = [5, 50, 500]
        lows, highs = bin_height_intervals(p_vec, ns, 0.9)
        assert_intervals_match(
            lows,
            highs,
            [bin_height_interval(p, n, 0.9) for p, n in zip(p_vec, ns)],
        )


class TestMeanVarianceKernels:
    @given(
        stats=st.lists(
            st.tuples(
                st.floats(min_value=-1e6, max_value=1e6),
                st.floats(min_value=0.0, max_value=1e6),
                sample_sizes,
            ),
            min_size=1,
            max_size=30,
        ),
        c=confidences,
    )
    @settings(max_examples=200, deadline=None)
    def test_mean_intervals_match_scalar(self, stats, c):
        means = [m for m, _, _ in stats]
        stds = [s for _, s, _ in stats]
        ns = [n for _, _, n in stats]
        lows, highs = mean_intervals(means, stds, ns, c)
        assert_intervals_match(
            lows,
            highs,
            [mean_interval(m, s, n, c) for m, s, n in stats],
        )

    @given(c=confidences)
    @settings(max_examples=100, deadline=None)
    def test_mean_intervals_straddle_t_z_cutoff(self, c):
        ns = [
            SMALL_SAMPLE_MEAN_CUTOFF - 1,
            SMALL_SAMPLE_MEAN_CUTOFF,
            SMALL_SAMPLE_MEAN_CUTOFF + 1,
        ]
        lows, highs = mean_intervals([1.0] * 3, [2.0] * 3, ns, c)
        assert_intervals_match(
            lows, highs, [mean_interval(1.0, 2.0, n, c) for n in ns]
        )

    @given(
        stats=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6), sample_sizes
            ),
            min_size=1,
            max_size=30,
        ),
        c=confidences,
    )
    @settings(max_examples=200, deadline=None)
    def test_variance_intervals_match_scalar(self, stats, c):
        variances = [v for v, _ in stats]
        ns = [n for _, n in stats]
        lows, highs = variance_intervals(variances, ns, c)
        assert_intervals_match(
            lows, highs, [variance_interval(v, n, c) for v, n in stats]
        )

    def test_rejects_negative_std(self):
        with pytest.raises(AccuracyError):
            mean_intervals([0.0], [-1.0], 10)

    def test_rejects_negative_variance(self):
        with pytest.raises(AccuracyError):
            variance_intervals([-1e-9], 10)

    def test_rejects_undersized_samples(self):
        with pytest.raises(AccuracyError):
            mean_intervals([0.0], [1.0], 1)
        with pytest.raises(AccuracyError):
            variance_intervals([1.0], [5, 1])


class TestBatchedAccuracyInfo:
    def test_accuracy_from_moments_matches_distribution_accuracy(self):
        rng = np.random.default_rng(7)
        means = rng.normal(0, 50, 25)
        variances = rng.uniform(0.01, 20, 25)
        ns = rng.integers(2, 200, 25)
        infos = accuracy_from_moments(means, variances, ns, 0.9)
        for i, info in enumerate(infos):
            ref = distribution_accuracy(
                GaussianDistribution(float(means[i]), float(variances[i])),
                int(ns[i]),
                0.9,
            )
            assert abs(info.mean.low - ref.mean.low) <= TOL
            assert abs(info.mean.high - ref.mean.high) <= TOL
            assert abs(info.variance.low - ref.variance.low) <= TOL
            assert abs(info.variance.high - ref.variance.high) <= TOL
            assert info.sample_size == ref.sample_size
            assert info.method == "analytic"

    def test_accuracy_from_moments_rejects_shape_mismatch(self):
        with pytest.raises(AccuracyError):
            accuracy_from_moments([0.0, 1.0], [1.0], 10)

    def test_tuple_probability_intervals_match_scalar(self):
        probabilities = [0.0, 0.05, 0.5, 0.95, 1.0]
        batch = tuple_probability_intervals(probabilities, 40, 0.9)
        for p, tpi in zip(probabilities, batch):
            ref = tuple_probability_interval(p, 40, 0.9)
            assert abs(tpi.interval.low - ref.interval.low) <= TOL
            assert abs(tpi.interval.high - ref.interval.high) <= TOL


class TestPercentileIntervals:
    @given(
        r=st.integers(min_value=1, max_value=50),
        b=st.integers(min_value=1, max_value=12),
        c=confidences,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_columnwise(self, r, b, c, seed):
        matrix = np.random.default_rng(seed).normal(0, 3, (r, b))
        lows, highs = percentile_intervals(matrix, c)
        for k in range(b):
            ref = percentile_interval(matrix[:, k], c)
            assert abs(lows[k] - ref.low) <= TOL
            assert abs(highs[k] - ref.high) <= TOL

    def test_rejects_empty_and_1d(self):
        with pytest.raises(AccuracyError):
            percentile_intervals(np.empty((0, 3)), 0.9)
        with pytest.raises(AccuracyError):
            percentile_intervals(np.zeros(5), 0.9)

    def test_rejects_bad_confidence(self):
        with pytest.raises(AccuracyError):
            percentile_intervals(np.zeros((3, 2)), 1.0)


class TestBootstrapBatchKernel:
    @given(
        t=st.integers(min_value=1, max_value=10),
        n=st.integers(min_value=2, max_value=25),
        r=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_rows_match_per_tuple_algorithm(self, t, n, r, seed):
        matrix = np.random.default_rng(seed).normal(10, 4, (t, r * n))
        batch = bootstrap_accuracy_batch(matrix, n, 0.9)
        for i in range(t):
            ref = bootstrap_accuracy_info(matrix[i], n, 0.9)
            assert abs(batch[i].mean.low - ref.mean.low) <= TOL
            assert abs(batch[i].mean.high - ref.mean.high) <= TOL
            assert abs(batch[i].variance.low - ref.variance.low) <= TOL
            assert abs(batch[i].variance.high - ref.variance.high) <= TOL
            assert batch[i].values_used == ref.values_used
            assert batch[i].values_dropped == ref.values_dropped

    def test_truncation_recorded(self):
        matrix = np.random.default_rng(0).normal(0, 1, (3, 45))
        batch = bootstrap_accuracy_batch(matrix, 10, 0.9)
        assert all(info.values_used == 40 for info in batch)
        assert all(info.values_dropped == 5 for info in batch)

    def test_rejects_too_few_values(self):
        with pytest.raises(AccuracyError, match="m must be >= 2n"):
            bootstrap_accuracy_batch(np.zeros((2, 15)), 10, 0.9)

    def test_rejects_non_matrix(self):
        with pytest.raises(AccuracyError):
            bootstrap_accuracy_batch(np.zeros(30), 10, 0.9)


class TestChunkBinHeights:
    @given(
        n=st.integers(min_value=2, max_value=30),
        r=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_bins_match_np_histogram(self, n, r, seed):
        rng = np.random.default_rng(seed)
        edges = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
        # Mix continuous values with exact edge hits and out-of-range
        # values so every np.histogram corner case is exercised.
        values = rng.normal(0, 1.5, r * n)
        specials = rng.choice(
            [-4.0, -3.0, -1.0, 0.0, 1.0, 3.0, 4.0], size=max(1, r * n // 4)
        )
        values[: specials.size] = specials
        rng.shuffle(values)
        info = bootstrap_accuracy_info(values, n, 0.9, edges=edges)
        chunks = values[: r * n].reshape(r, n)
        heights = np.array(
            [np.histogram(c, bins=edges)[0] / n for c in chunks]
        )
        for k, bin_interval in enumerate(info.bins):
            ref = percentile_interval(heights[:, k], 0.9).clamped(0.0, 1.0)
            assert abs(bin_interval.interval.low - ref.low) <= TOL
            assert abs(bin_interval.interval.high - ref.high) <= TOL
