"""Tests for BOOTSTRAP-ACCURACY-INFO and the percentile machinery."""

import numpy as np
import pytest

from repro.core.bootstrap import (
    bootstrap_accuracy_info,
    classical_bootstrap_accuracy,
    percentile_interval,
)
from repro.errors import AccuracyError


class TestPercentileInterval:
    def test_matches_numpy_linear_percentiles(self, rng):
        values = rng.normal(0, 1, 137)
        ci = percentile_interval(values, 0.9)
        lo, hi = np.percentile(values, [5.0, 95.0])
        assert ci.low == pytest.approx(float(lo))
        assert ci.high == pytest.approx(float(hi))

    def test_full_confidence_approaches_min_max(self, rng):
        values = rng.normal(0, 1, 50)
        ci = percentile_interval(values, 0.999)
        assert ci.low >= values.min()
        assert ci.high <= values.max()

    def test_single_value(self):
        ci = percentile_interval(np.array([3.0]), 0.9)
        assert ci.low == ci.high == 3.0

    def test_constant_values_give_degenerate_interval(self):
        # Interpolating between equal endpoints must be exact: 0.2 is
        # not representable in binary and the old (1-f)*a + f*b form
        # rounded the two percentiles one ulp apart, inverting the
        # interval and raising.
        ci = percentile_interval(np.full(4, 0.2), 0.9)
        assert ci.low == ci.high == 0.2

    def test_rejects_empty(self):
        with pytest.raises(AccuracyError):
            percentile_interval(np.array([]), 0.9)

    def test_rejects_bad_confidence(self):
        with pytest.raises(AccuracyError):
            percentile_interval(np.array([1.0, 2.0]), 1.0)


class TestBootstrapAccuracyInfo:
    def test_paper_example7_shapes(self, rng):
        # Example 7: n=15, m=300 -> r=20 resamples.
        values = rng.normal(10, 2, 300)
        info = bootstrap_accuracy_info(values, 15, 0.9)
        assert info.sample_size == 15
        assert info.method == "bootstrap"
        assert info.mean.low < 10 < info.mean.high

    def test_interval_equals_chunk_mean_percentiles(self, rng):
        values = rng.normal(0, 1, 200)
        info = bootstrap_accuracy_info(values, 10, 0.9)
        chunk_means = values.reshape(20, 10).mean(axis=1)
        lo, hi = np.percentile(chunk_means, [5, 95])
        assert info.mean.low == pytest.approx(float(lo))
        assert info.mean.high == pytest.approx(float(hi))

    def test_variance_uses_unbiased_estimator(self, rng):
        values = rng.normal(0, 1, 200)
        info = bootstrap_accuracy_info(values, 10, 0.9)
        chunk_vars = values.reshape(20, 10).var(axis=1, ddof=1)
        lo, hi = np.percentile(chunk_vars, [5, 95])
        assert info.variance.low == pytest.approx(float(lo))
        assert info.variance.high == pytest.approx(float(hi))

    def test_partial_trailing_chunk_is_dropped(self, rng):
        # 205 values at n=10 -> r=20 resamples; the last 5 values unused.
        values = rng.normal(0, 1, 205)
        info = bootstrap_accuracy_info(values, 10, 0.9)
        reference = bootstrap_accuracy_info(values[:200], 10, 0.9)
        assert info.mean == reference.mean

    def test_bin_heights_when_edges_given(self, rng):
        values = rng.normal(0, 1, 400)
        edges = [-4, -1, 0, 1, 4]
        info = bootstrap_accuracy_info(values, 20, 0.9, edges)
        assert len(info.bins) == 4
        for bin_interval in info.bins:
            ci = bin_interval.interval
            assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_bin_heights_sum_is_about_one(self, rng):
        values = rng.normal(0, 1, 400)
        edges = [-5, -1, 1, 5]
        info = bootstrap_accuracy_info(values, 20, 0.9, edges)
        midpoints = sum(b.interval.midpoint for b in info.bins)
        assert midpoints == pytest.approx(1.0, abs=0.1)

    def test_mean_interval_narrows_with_n(self, rng):
        base = rng.normal(0, 1, 4000)
        narrow = bootstrap_accuracy_info(base, 100, 0.9)
        wide = bootstrap_accuracy_info(base, 10, 0.9)
        assert narrow.mean.length < wide.mean.length

    def test_needs_at_least_two_resamples(self, rng):
        with pytest.raises(AccuracyError):
            bootstrap_accuracy_info(rng.normal(0, 1, 15), 10, 0.9)

    def test_two_resample_error_hints_at_mc_samples(self, rng):
        # The default 1000 Monte-Carlo samples silently starve the
        # bootstrap at n > 500; the error must point the caller at the
        # m >= 2n requirement.
        with pytest.raises(AccuracyError, match="mc_samples >= 2n"):
            bootstrap_accuracy_info(rng.normal(0, 1, 1000), 600, 0.9)

    def test_records_values_used_and_dropped(self, rng):
        values = rng.normal(0, 1, 205)
        info = bootstrap_accuracy_info(values, 10, 0.9)
        assert info.values_used == 200
        assert info.values_dropped == 5
        exact = bootstrap_accuracy_info(values[:200], 10, 0.9)
        assert exact.values_used == 200
        assert exact.values_dropped == 0

    def test_warns_on_heavy_truncation(self, rng):
        # 290 values at n=100 -> r=2, 90 of 290 values (31%) dropped.
        values = rng.normal(0, 1, 290)
        with pytest.warns(UserWarning, match="dropped"):
            info = bootstrap_accuracy_info(values, 100, 0.9)
        assert info.values_used == 200
        assert info.values_dropped == 90

    def test_no_warning_below_threshold(self, rng, recwarn):
        values = rng.normal(0, 1, 205)  # ~2.4% dropped
        bootstrap_accuracy_info(values, 10, 0.9)
        assert not [w for w in recwarn if w.category is UserWarning]

    def test_rejects_bad_n(self, rng):
        with pytest.raises(AccuracyError):
            bootstrap_accuracy_info(rng.normal(0, 1, 100), 0, 0.9)

    def test_coverage_on_normal_data(self, rng):
        """Percentile intervals cover the true mean at a sane rate."""
        misses = 0
        trials = 200
        for _ in range(trials):
            sample = rng.normal(3.0, 1.0, 20)
            values = rng.choice(sample, size=100 * 20, replace=True)
            info = bootstrap_accuracy_info(values, 20, 0.9)
            misses += not info.mean.contains(3.0)
        assert misses / trials < 0.25  # center bias costs some coverage


class TestClassicalBootstrap:
    def test_basic_shapes(self, rng):
        sample = rng.normal(5, 2, 30)
        info = classical_bootstrap_accuracy(sample, rng, 0.9, 100)
        assert info.method == "bootstrap"
        assert info.sample_size == 30
        assert info.mean.low < info.mean.high

    def test_with_edges(self, rng):
        sample = rng.normal(0, 1, 40)
        info = classical_bootstrap_accuracy(
            sample, rng, 0.9, 50, edges=[-4, 0, 4]
        )
        assert len(info.bins) == 2

    def test_mean_interval_centred_near_sample_mean(self, rng):
        sample = rng.normal(10, 1, 50)
        info = classical_bootstrap_accuracy(sample, rng, 0.9, 400)
        assert info.mean.midpoint == pytest.approx(
            float(sample.mean()), abs=0.2
        )

    def test_rejects_tiny_sample(self, rng):
        with pytest.raises(AccuracyError):
            classical_bootstrap_accuracy([1.0], rng)

    def test_rejects_one_resample(self, rng):
        with pytest.raises(AccuracyError):
            classical_bootstrap_accuracy([1.0, 2.0], rng, n_resamples=1)
