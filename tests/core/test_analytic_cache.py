"""Memoized critical-value computations (the interval hot path)."""

import numpy as np
import pytest
from scipy import special

from repro.core.analytic import (
    SMALL_SAMPLE_MEAN_CUTOFF,
    critical_values,
    mean_interval,
    mean_intervals,
    variance_interval,
    variance_intervals,
)
from repro.errors import AccuracyError


class TestCriticalValues:
    def test_matches_scipy_small_sample(self):
        mean_q, chi2_hi, chi2_lo = critical_values(0.9, 19)
        assert mean_q == pytest.approx(float(special.stdtrit(19, 0.95)))
        assert chi2_hi == pytest.approx(float(special.chdtri(19, 0.05)))
        assert chi2_lo == pytest.approx(float(special.chdtri(19, 0.95)))

    def test_large_sample_uses_z(self):
        df = SMALL_SAMPLE_MEAN_CUTOFF  # n = df + 1 >= cutoff
        mean_q, _, _ = critical_values(0.95, df)
        assert mean_q == pytest.approx(float(special.ndtri(0.975)))

    def test_cache_hit(self):
        critical_values.cache_clear()
        first = critical_values(0.9, 19)
        hits_before = critical_values.cache_info().hits
        assert critical_values(0.9, 19) == first
        assert critical_values.cache_info().hits == hits_before + 1

    def test_bad_df(self):
        with pytest.raises(AccuracyError, match="degrees of freedom"):
            critical_values(0.9, 0)

    def test_bad_confidence(self):
        with pytest.raises(AccuracyError, match="confidence"):
            critical_values(1.0, 10)

    def test_consistent_with_scalar_intervals(self):
        mean_q, chi2_hi, chi2_lo = critical_values(0.9, 19)
        mi = mean_interval(10.0, 2.0, 20, 0.9)
        assert mi.high - mi.low == pytest.approx(
            2.0 * mean_q * 2.0 / np.sqrt(20)
        )
        vi = variance_interval(4.0, 20, 0.9)
        assert vi.low == pytest.approx(19 * 4.0 / chi2_hi)
        assert vi.high == pytest.approx(19 * 4.0 / chi2_lo)


class TestUniqueDfFastPath:
    """The memoized table path must equal the array scipy path exactly."""

    def test_mean_intervals_few_vs_many_unique_dfs(self):
        rng = np.random.default_rng(1)
        means = rng.normal(0.0, 1.0, 40)
        stds = rng.uniform(0.5, 2.0, 40)
        # > 16 unique small-sample sizes forces the array path ...
        many = np.arange(2, 2 + 20)
        ns_many = np.resize(many, 40)
        lo_a, hi_a = mean_intervals(means, stds, ns_many, 0.9)
        # ... which must agree element-wise with the per-df scalar path.
        for i in range(40):
            scalar = mean_interval(means[i], stds[i], int(ns_many[i]), 0.9)
            assert lo_a[i] == pytest.approx(scalar.low, abs=1e-12)
            assert hi_a[i] == pytest.approx(scalar.high, abs=1e-12)

    def test_variance_intervals_few_vs_many_unique_dfs(self):
        rng = np.random.default_rng(2)
        variances = rng.uniform(1.0, 9.0, 40)
        ns_many = np.resize(np.arange(5, 5 + 20), 40)
        lo_a, hi_a = variance_intervals(variances, ns_many, 0.95)
        for i in range(40):
            scalar = variance_interval(variances[i], int(ns_many[i]), 0.95)
            assert lo_a[i] == pytest.approx(scalar.low, rel=1e-12)
            assert hi_a[i] == pytest.approx(scalar.high, rel=1e-12)

    def test_constant_df_batch_uses_one_table_entry(self):
        # The stream case: one window size, one df, 256 tuples.
        means = np.linspace(-1.0, 1.0, 256)
        stds = np.full(256, 1.5)
        lo, hi = mean_intervals(means, stds, 20, 0.9)
        scalar = mean_interval(0.0, 1.5, 20, 0.9)
        mid = 128  # means[128] is not exactly 0; use widths instead
        assert hi[mid] - lo[mid] == pytest.approx(
            scalar.high - scalar.low, rel=1e-12
        )
