"""Adaptive early-stopping bootstrap: equivalence, determinism, coverage.

The adaptive engine must be an *optimisation*, never a different
estimator:

* given the same total draws, the incremental path is byte-identical to
  the one-shot BOOTSTRAP-ACCURACY-INFO kernel (percentile and basic
  intervals, histogram bins);
* the escalation schedule is a pure function of ``(r0, growth, r_max)``
  and always ends exactly at the budget;
* the small-``r`` width calibration is >= 1 and decays toward 1;
* early stopping at a width target keeps empirical coverage within the
  ablation harness's tolerance of the fixed-budget bootstrap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import (
    IncrementalBootstrap,
    adaptive_bootstrap_accuracy_info,
    adaptive_bootstrap_from_values,
    resample_schedule,
    width_calibration,
)
from repro.core.bootstrap import bootstrap_accuracy_info
from repro.errors import AccuracyError

chunk_sizes = st.integers(min_value=2, max_value=40)
resample_counts = st.integers(min_value=2, max_value=60)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


# ---------------------------------------------------------------------------
# Schedule purity
# ---------------------------------------------------------------------------


@given(
    r0=st.integers(min_value=2, max_value=64),
    growth=st.floats(min_value=1.01, max_value=8.0),
    r_max=st.integers(min_value=2, max_value=500),
)
@settings(max_examples=300, deadline=None)
def test_schedule_pure_monotone_and_capped(r0, growth, r_max):
    schedule = resample_schedule(r0, growth, r_max)
    assert schedule == resample_schedule(r0, growth, r_max)
    assert schedule[-1] == r_max
    assert all(a < b for a, b in zip(schedule, schedule[1:]))
    if r_max > r0:
        assert schedule[0] == r0


def test_schedule_default_shape():
    assert resample_schedule(8, 2.0, 100) == (8, 16, 32, 64, 100)
    assert resample_schedule(8, 2.0, 8) == (8,)
    assert resample_schedule(16, 2.0, 10) == (10,)


def test_schedule_rejects_bad_parameters():
    with pytest.raises(AccuracyError):
        resample_schedule(1, 2.0, 100)
    with pytest.raises(AccuracyError):
        resample_schedule(8, 1.0, 100)
    with pytest.raises(AccuracyError):
        resample_schedule(8, 2.0, 1)


# ---------------------------------------------------------------------------
# Width calibration
# ---------------------------------------------------------------------------


@given(
    r=st.integers(min_value=2, max_value=2000),
    confidence=st.floats(min_value=0.5, max_value=0.99),
)
@settings(max_examples=300, deadline=None)
def test_calibration_at_least_one(r, confidence):
    assert width_calibration(r, confidence) >= 1.0


def test_calibration_decays_toward_one():
    factors = [width_calibration(r, 0.9) for r in (8, 16, 32, 64, 100, 1000)]
    assert all(a >= b for a, b in zip(factors, factors[1:]))
    assert factors[0] > 1.2
    assert factors[-1] == pytest.approx(1.0, abs=0.01)


def test_calibration_rejects_bad_parameters():
    with pytest.raises(AccuracyError):
        width_calibration(1, 0.9)
    with pytest.raises(AccuracyError):
        width_calibration(8, 1.0)


# ---------------------------------------------------------------------------
# Adaptive-equals-fixed-budget given the same draws
# ---------------------------------------------------------------------------


def _fixed_equivalence(values, n, interval, edges):
    """Same draws through both engines must match byte for byte."""
    adaptive = adaptive_bootstrap_from_values(
        values, n, 0.9, interval=interval, edges=edges
    )
    fixed = bootstrap_accuracy_info(
        values[: (values.size // n) * n], n, 0.9, edges, interval=interval
    )
    assert adaptive.mean == fixed.mean
    assert adaptive.variance == fixed.variance
    assert adaptive.bins == fixed.bins
    assert adaptive.sample_size == fixed.sample_size
    assert adaptive.values_used == fixed.values_used
    assert adaptive.draws_used == fixed.draws_used == adaptive.values_used


@given(n=chunk_sizes, r=resample_counts, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_adaptive_matches_fixed_budget_percentile(n, r, seed):
    rng = np.random.default_rng(seed)
    _fixed_equivalence(rng.normal(1.0, 2.0, r * n), n, "percentile", None)


@given(n=chunk_sizes, r=resample_counts, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_adaptive_matches_fixed_budget_basic(n, r, seed):
    rng = np.random.default_rng(seed)
    _fixed_equivalence(rng.exponential(1.0, r * n), n, "basic", None)


@given(n=chunk_sizes, r=resample_counts, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_adaptive_matches_fixed_budget_with_bins(n, r, seed):
    rng = np.random.default_rng(seed)
    edges = (-2.0, -0.5, 0.5, 2.0)
    _fixed_equivalence(rng.normal(0.0, 1.0, r * n), n, "percentile", edges)


@given(n=chunk_sizes, r=resample_counts, seed=seeds)
@settings(max_examples=60, deadline=None)
def test_early_stop_is_a_prefix_of_fixed(n, r, seed):
    """Stopping at round k equals the fixed bootstrap of that prefix."""
    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, 1.0, r * n)
    info = adaptive_bootstrap_from_values(
        values, n, 0.9, target_relative_width=1.5
    )
    assert info.draws_used % n == 0
    assert 2 * n <= info.draws_used <= r * n
    prefix = bootstrap_accuracy_info(values[: info.draws_used], n, 0.9)
    assert info.mean == prefix.mean
    assert info.variance == prefix.variance


def test_no_target_runs_full_budget():
    rng = np.random.default_rng(3)
    values = rng.normal(0.0, 1.0, 100 * 20)
    info = adaptive_bootstrap_from_values(values, 20, 0.9)
    assert info.draws_used == 2000
    assert info.rounds == len(resample_schedule(8, 2.0, 100))


def test_rounds_recorded_and_monotone():
    state = IncrementalBootstrap(5, 0.9, target_ci_width=1e-9)
    rng = np.random.default_rng(0)
    state.add_values(rng.normal(0.0, 1.0, 40))
    assert (state.draws_used, state.rounds, state.resamples) == (40, 1, 8)
    state.add_values(rng.normal(0.0, 1.0, 40))
    assert (state.draws_used, state.rounds, state.resamples) == (80, 2, 16)
    assert not state.satisfied()  # target far below reachable width


def test_tiny_target_never_stops_early():
    rng = np.random.default_rng(11)
    values = rng.normal(0.0, 1.0, 50 * 10)
    info = adaptive_bootstrap_from_values(
        values, 10, 0.9, target_ci_width=1e-12
    )
    assert info.draws_used == 500


def test_huge_target_stops_at_first_round():
    rng = np.random.default_rng(12)
    values = rng.normal(100.0, 0.01, 100 * 10)
    info = adaptive_bootstrap_from_values(
        values, 10, 0.9, target_ci_width=1e6, target_relative_width=10.0
    )
    assert info.draws_used == 8 * 10
    assert info.rounds == 1


def test_from_values_rejects_short_sequences():
    with pytest.raises(AccuracyError, match="mc_samples >= 2n"):
        adaptive_bootstrap_from_values(np.zeros(19), 10, 0.9)


def test_add_values_rejects_misaligned_blocks():
    state = IncrementalBootstrap(7)
    with pytest.raises(AccuracyError, match="multiple of"):
        state.add_values(np.zeros(10))
    with pytest.raises(AccuracyError, match="multiple of"):
        state.add_values(np.zeros(0))


def test_draw_callable_size_mismatch_raises():
    with pytest.raises(AccuracyError, match="draw callable returned"):
        adaptive_bootstrap_accuracy_info(
            lambda count: np.zeros(count + 1), 5, 0.9, max_resamples=4
        )


def test_relative_target_unsatisfiable_at_zero_midpoint():
    """Mean ~ 0 makes the relative gate unsatisfiable -> full budget."""
    rng = np.random.default_rng(21)
    values = rng.normal(0.0, 1.0, 64 * 8)
    info = adaptive_bootstrap_from_values(
        values, 8, 0.9, target_relative_width=1e9
    )
    # variance midpoint is positive so the variance gate passes; the
    # mean midpoint is ~0 but never exactly 0 with continuous draws, so
    # an astronomically loose target still stops at the first round.
    assert info.draws_used == 8 * 8


# ---------------------------------------------------------------------------
# Coverage-vs-width regression (ablation-harness style)
# ---------------------------------------------------------------------------


def test_coverage_matches_fixed_budget_at_loose_target():
    """Early stopping may not degrade coverage beyond the harness band.

    Fresh-draw regime (chunks are genuine iid draws): both the fixed
    r=100 bootstrap and the calibrated adaptive bootstrap should cover
    the true mean at >= nominal rate; the adaptive one must do so while
    consuming fewer draws.
    """
    rng = np.random.default_rng(57)
    n, trials = 20, 300
    miss_fixed = miss_adaptive = 0
    draws_adaptive = 0
    for _ in range(trials):
        mu = float(rng.uniform(-5.0, 5.0))
        sigma = float(rng.uniform(0.5, 2.0))
        values = rng.normal(mu, sigma, 100 * n)
        fixed = bootstrap_accuracy_info(values, n, 0.9)
        target = 8.0 * sigma / np.sqrt(n)  # generous: ~2x typical width
        adaptive = adaptive_bootstrap_from_values(
            values, n, 0.9, target_ci_width=target, initial_resamples=16
        )
        miss_fixed += not fixed.mean.contains(mu)
        miss_adaptive += not adaptive.mean.contains(mu)
        draws_adaptive += adaptive.draws_used
    assert draws_adaptive < 0.5 * trials * 100 * n  # real early stopping
    assert miss_adaptive / trials <= miss_fixed / trials + 0.04
