"""Tests for the de facto sample algebra (Definition 2, Lemmas 3 & 4)."""

import math

import pytest

from repro.core.dfsample import DfSized, df_sample_count, df_sample_size
from repro.distributions.base import Deterministic
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import AccuracyError


class TestDfSampleSize:
    def test_lemma3_minimum(self):
        # Example 4: A, B, C with sizes 15, 10, 20 -> (A+B)/2 has 10.
        assert df_sample_size([15, 10]) == 10
        assert df_sample_size([20]) == 20

    def test_constants_are_ignored(self):
        assert df_sample_size([15, None, 10]) == 10
        assert df_sample_size([None, 7]) == 7

    def test_all_exact_gives_none(self):
        assert df_sample_size([None, None]) is None
        assert df_sample_size([]) is None

    def test_rejects_nonpositive(self):
        with pytest.raises(AccuracyError):
            df_sample_size([0, 10])


class TestDfSampleCount:
    def test_lemma4_two_inputs(self):
        # n1=10, n2=15: c = P(15, 10) = 15!/5!.
        expected = math.factorial(15) // math.factorial(5)
        assert df_sample_count([10, 15]) == expected

    def test_order_does_not_matter(self):
        assert df_sample_count([15, 10]) == df_sample_count([10, 15])

    def test_single_input_gives_one(self):
        assert df_sample_count([20]) == 1

    def test_equal_sizes(self):
        # n1=n2=3: c = P(3,3) = 6.
        assert df_sample_count([3, 3]) == 6

    def test_three_inputs(self):
        # sizes 2, 3, 4 -> P(3,2) * P(4,2) = 6 * 12 = 72.
        assert df_sample_count([4, 2, 3]) == 72

    def test_all_exact_gives_none(self):
        assert df_sample_count([None]) is None

    def test_constants_ignored(self):
        assert df_sample_count([None, 5]) == 1


class TestDfSized:
    def test_combine_sizes_matches_lemma3(self):
        a = DfSized(GaussianDistribution(0, 1), 15)
        b = DfSized(GaussianDistribution(0, 1), 10)
        c = DfSized(Deterministic(3.0), None)
        assert DfSized.combine_sizes([a, b, c]) == 10
        assert DfSized.combine_sizes([c]) is None

    def test_rejects_bad_sample_size(self):
        with pytest.raises(AccuracyError):
            DfSized(Deterministic(1.0), 0)

    def test_is_frozen(self):
        value = DfSized(Deterministic(1.0), 5)
        with pytest.raises(AttributeError):
            value.sample_size = 6  # type: ignore[misc]
