"""Tests for the analytic power functions."""

import pytest

from repro.core.coupled import ThreeValued, coupled_tests
from repro.core.power import (
    coupled_m_test_power,
    coupled_p_test_power,
    m_test_power,
    p_test_power,
)
from repro.core.predicates import FieldStats, MTest
from repro.errors import AccuracyError, QueryError


class TestMTestPower:
    def test_power_at_null_equals_alpha(self):
        # When the true mean sits exactly at c, power degrades to alpha.
        power = m_test_power(5.0, 1.0, 100, ">", 5.0, 0.05)
        assert power == pytest.approx(0.05, abs=0.005)

    def test_power_increases_with_effect(self):
        weak = m_test_power(5.1, 1.0, 20, ">", 5.0)
        strong = m_test_power(6.0, 1.0, 20, ">", 5.0)
        assert strong > weak

    def test_power_increases_with_n(self):
        small = m_test_power(5.3, 1.0, 10, ">", 5.0)
        large = m_test_power(5.3, 1.0, 100, ">", 5.0)
        assert large > small

    def test_power_decreases_with_noise(self):
        quiet = m_test_power(5.5, 0.5, 20, ">", 5.0)
        noisy = m_test_power(5.5, 3.0, 20, ">", 5.0)
        assert quiet > noisy

    def test_less_direction_symmetric(self):
        gt = m_test_power(5.5, 1.0, 20, ">", 5.0)
        lt = m_test_power(4.5, 1.0, 20, "<", 5.0)
        assert gt == pytest.approx(lt)

    def test_rejects_two_sided(self):
        with pytest.raises(QueryError):
            m_test_power(5.0, 1.0, 20, "<>", 5.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(AccuracyError):
            m_test_power(5.0, 0.0, 20, ">", 5.0)
        with pytest.raises(AccuracyError):
            m_test_power(5.0, 1.0, 1, ">", 5.0)

    def test_matches_monte_carlo(self, rng):
        """The formula predicts the empirical TRUE rate of the test."""
        true_mean, true_std, n, c = 5.5, 1.0, 40, 5.0
        predicted = m_test_power(true_mean, true_std, n, ">", c, 0.05)
        hits = 0
        trials = 500
        for _ in range(trials):
            sample = rng.normal(true_mean, true_std, n)
            if MTest(FieldStats.from_sample(sample), ">", c, 0.05).run():
                hits += 1
        assert hits / trials == pytest.approx(predicted, abs=0.07)


class TestPTestPower:
    def test_power_at_null_equals_alpha(self):
        power = p_test_power(0.5, 400, ">", 0.5, 0.05)
        assert power == pytest.approx(0.05, abs=0.01)

    def test_power_increases_with_gap(self):
        near = p_test_power(0.55, 50, ">", 0.5)
        far = p_test_power(0.8, 50, ">", 0.5)
        assert far > near

    def test_less_direction(self):
        assert p_test_power(0.3, 50, "<", 0.5) > 0.5

    def test_rejects_bad_inputs(self):
        with pytest.raises(AccuracyError):
            p_test_power(0.0, 50, ">", 0.5)
        with pytest.raises(QueryError):
            p_test_power(0.6, 50, "<>", 0.5)


class TestCoupledPowerProfiles:
    def test_probabilities_sum_to_one(self):
        profile = coupled_m_test_power(5.2, 1.0, 20, ">", 5.0)
        total = profile.p_true + profile.p_false + profile.p_unsure
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_h1_true_favours_true(self):
        profile = coupled_m_test_power(7.0, 1.0, 30, ">", 5.0)
        assert profile.p_true > 0.9
        assert profile.p_false < 0.01

    def test_h0_true_favours_false(self):
        profile = coupled_m_test_power(3.0, 1.0, 30, ">", 5.0)
        assert profile.p_false > 0.9

    def test_boundary_mostly_unsure(self):
        profile = coupled_m_test_power(5.0, 1.0, 30, ">", 5.0)
        assert profile.p_unsure == pytest.approx(0.9, abs=0.02)

    def test_coupled_profile_matches_monte_carlo(self, rng):
        true_mean, n, c = 5.4, 30, 5.0
        profile = coupled_m_test_power(true_mean, 1.0, n, ">", c)
        counts = {v: 0 for v in ThreeValued}
        trials = 500
        for _ in range(trials):
            sample = rng.normal(true_mean, 1.0, n)
            outcome = coupled_tests(
                MTest(FieldStats.from_sample(sample), ">", c, 0.05)
            )
            counts[outcome.value] += 1
        assert counts[ThreeValued.TRUE] / trials == pytest.approx(
            profile.p_true, abs=0.08
        )

    def test_coupled_p_test_profile(self):
        profile = coupled_p_test_power(0.7, 100, ">", 0.5)
        assert profile.p_true > 0.9
        profile = coupled_p_test_power(0.3, 100, ">", 0.5)
        assert profile.p_false > 0.9

    def test_coupled_p_test_rejects_two_sided(self):
        with pytest.raises(QueryError):
            coupled_p_test_power(0.6, 50, "<>", 0.5)
