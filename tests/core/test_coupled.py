"""Tests for the COUPLED-TESTS algorithm (paper §IV-C, Theorem 3)."""

import numpy as np
import pytest

from repro.core.coupled import (
    CoupledPredicate,
    ThreeValued,
    coupled_tests,
)
from repro.core.predicates import FieldStats, MTest, PTest
from repro.errors import AccuracyError


def _field(mean: float, std: float = 1.0, n: int = 20) -> FieldStats:
    return FieldStats(mean, std, n)


class TestThreeValued:
    def test_truthiness(self):
        assert bool(ThreeValued.TRUE)
        assert not bool(ThreeValued.FALSE)
        assert not bool(ThreeValued.UNSURE)


class TestCoupledOneSided:
    def test_clear_true(self):
        outcome = coupled_tests(MTest(_field(10.0), ">", 5.0, 0.05))
        assert outcome.value is ThreeValued.TRUE
        assert outcome.secondary is None  # T2 never ran

    def test_clear_false(self):
        outcome = coupled_tests(MTest(_field(0.0), ">", 5.0, 0.05))
        assert outcome.value is ThreeValued.FALSE
        assert outcome.secondary is not None

    def test_unsure_in_between(self):
        # Mean barely above c: neither test rejects.
        outcome = coupled_tests(MTest(_field(5.05), ">", 5.0, 0.05))
        assert outcome.value is ThreeValued.UNSURE

    def test_less_direction_mirrors(self):
        assert coupled_tests(
            MTest(_field(0.0), "<", 5.0, 0.05)
        ).value is ThreeValued.TRUE
        assert coupled_tests(
            MTest(_field(10.0), "<", 5.0, 0.05)
        ).value is ThreeValued.FALSE

    def test_alphas_override_predicate_alpha(self):
        # A marginal case that rejects at alpha=0.2 but not at 0.01.
        marginal = MTest(_field(5.3, 1.0, 20), ">", 5.0, 0.05)
        loose = coupled_tests(marginal, alpha1=0.2, alpha2=0.2)
        strict = coupled_tests(marginal, alpha1=0.001, alpha2=0.001)
        assert loose.value is ThreeValued.TRUE
        assert strict.value is ThreeValued.UNSURE

    def test_works_with_ptest(self):
        assert coupled_tests(
            PTest(0.9, 100, 0.5, ">", 0.05)
        ).value is ThreeValued.TRUE
        assert coupled_tests(
            PTest(0.1, 100, 0.5, ">", 0.05)
        ).value is ThreeValued.FALSE
        assert coupled_tests(
            PTest(0.52, 100, 0.5, ">", 0.05)
        ).value is ThreeValued.UNSURE


class TestCoupledTwoSided:
    def test_difference_found_either_side(self):
        assert coupled_tests(
            MTest(_field(10.0), "<>", 5.0, 0.05)
        ).value is ThreeValued.TRUE
        assert coupled_tests(
            MTest(_field(0.0), "<>", 5.0, 0.05)
        ).value is ThreeValued.TRUE

    def test_never_returns_false(self):
        # Per the algorithm, '<>' yields TRUE or UNSURE only.
        for mean in np.linspace(4.0, 6.0, 21):
            outcome = coupled_tests(MTest(_field(float(mean)), "<>", 5.0, 0.05))
            assert outcome.value in (ThreeValued.TRUE, ThreeValued.UNSURE)

    def test_equal_means_unsure(self):
        outcome = coupled_tests(MTest(_field(5.0), "<>", 5.0, 0.05))
        assert outcome.value is ThreeValued.UNSURE

    def test_alpha_split_between_sides(self):
        # A shift significant at alpha/2 = 0.05 one-sided but not at
        # 0.025 flips between TRUE at alpha1=0.1 and UNSURE at 0.05.
        field = _field(5.42, 1.0, 20)
        loose = coupled_tests(MTest(field, "<>", 5.0, 0.05), alpha1=0.1)
        strict = coupled_tests(MTest(field, "<>", 5.0, 0.05), alpha1=0.02)
        assert loose.value is ThreeValued.TRUE
        assert strict.value is ThreeValued.UNSURE


class TestErrorRateControl:
    """Theorem 3: both error rates stay below their alphas."""

    def test_false_positive_rate(self, rng):
        trials = 400
        false_positives = 0
        decisive = 0
        for _ in range(trials):
            sample = rng.normal(5.0, 1.0, 20)  # H0/H1 boundary: mean == c
            predicate = MTest(FieldStats.from_sample(sample), ">", 5.0, 0.05)
            outcome = coupled_tests(predicate, 0.05, 0.05)
            if outcome.value is ThreeValued.TRUE:
                false_positives += 1
            if outcome.value is not ThreeValued.UNSURE:
                decisive += 1
        assert false_positives / trials <= 0.09

    def test_false_negative_rate(self, rng):
        trials = 400
        false_negatives = 0
        for _ in range(trials):
            sample = rng.normal(5.3, 1.0, 20)  # H1 true
            predicate = MTest(FieldStats.from_sample(sample), ">", 5.0, 0.05)
            outcome = coupled_tests(predicate, 0.05, 0.05)
            if outcome.value is ThreeValued.FALSE:
                false_negatives += 1
        assert false_negatives / trials <= 0.09

    def test_unsure_shrinks_with_sample_size(self, rng):
        def unsure_rate(n: int) -> float:
            unsure = 0
            trials = 200
            for _ in range(trials):
                sample = rng.normal(5.4, 1.0, n)
                outcome = coupled_tests(
                    MTest(FieldStats.from_sample(sample), ">", 5.0, 0.05)
                )
                unsure += outcome.value is ThreeValued.UNSURE
            return unsure / trials

        assert unsure_rate(80) < unsure_rate(10)


class TestValidation:
    def test_rejects_bad_alpha(self):
        predicate = MTest(_field(5.0), ">", 4.0, 0.05)
        with pytest.raises(AccuracyError):
            coupled_tests(predicate, alpha1=0.0)
        with pytest.raises(AccuracyError):
            coupled_tests(predicate, alpha2=1.0)


class TestCoupledPredicate:
    def test_wrapper_delegates(self):
        wrapped = CoupledPredicate(MTest(_field(10.0), ">", 5.0, 0.05))
        outcome = wrapped.evaluate()
        assert outcome.value is ThreeValued.TRUE
        assert bool(outcome)


class TestAlphaBoundaries:
    """alpha1/alpha2 live in the open interval (0, 1): the exact
    endpoints are statistically meaningless and must be rejected, while
    values arbitrarily close to them must still produce a decision."""

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.01, 1.01])
    def test_endpoint_alpha1_rejected(self, bad):
        predicate = MTest(_field(10.0), ">", 5.0, 0.05)
        with pytest.raises(AccuracyError, match="alpha1"):
            coupled_tests(predicate, alpha1=bad)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.01, 1.01])
    def test_endpoint_alpha2_rejected(self, bad):
        predicate = MTest(_field(10.0), ">", 5.0, 0.05)
        with pytest.raises(AccuracyError, match="alpha2"):
            coupled_tests(predicate, alpha2=bad)

    def test_near_zero_alphas_still_decide(self):
        predicate = MTest(_field(10.0, std=0.1, n=50), ">", 5.0, 0.05)
        outcome = coupled_tests(predicate, alpha1=1e-9, alpha2=1e-9)
        # A 50-sigma effect survives even an absurdly strict test.
        assert outcome.value is ThreeValued.TRUE

    def test_near_one_alphas_still_decide(self):
        predicate = MTest(_field(10.0), ">", 5.0, 0.05)
        outcome = coupled_tests(
            predicate, alpha1=1.0 - 1e-9, alpha2=1.0 - 1e-9
        )
        assert outcome.value in (
            ThreeValued.TRUE, ThreeValued.FALSE, ThreeValued.UNSURE
        )

    def test_strict_alpha1_pushes_toward_unsure_or_false(self):
        # A marginal effect: plainly significant at 0.05 but not at 1e-9.
        predicate = MTest(_field(5.4, std=1.0, n=30), ">", 5.0, 0.05)
        relaxed = coupled_tests(predicate, alpha1=0.3, alpha2=0.3)
        strict = coupled_tests(predicate, alpha1=1e-9, alpha2=1e-9)
        assert relaxed.value is ThreeValued.TRUE
        assert strict.value is not ThreeValued.TRUE

    def test_two_sided_alpha_split_near_zero(self):
        predicate = MTest(_field(10.0, std=0.1, n=50), "<>", 5.0, 0.05)
        outcome = coupled_tests(predicate, alpha1=1e-9, alpha2=1e-9)
        assert outcome.value is ThreeValued.TRUE
