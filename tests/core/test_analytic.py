"""Tests for the analytical accuracy methods (Lemmas 1 & 2, Theorem 1).

The paper's worked Examples 2, 3, and 5 are encoded as exact regression
tests — the implementation must reproduce the numbers printed in the
paper to the stated precision.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core.analytic import (
    SMALL_SAMPLE_MEAN_CUTOFF,
    accuracy_from_sample,
    bin_height_interval,
    distribution_accuracy,
    histogram_accuracy,
    mean_interval,
    proportion_interval_wald,
    proportion_interval_wilson,
    tuple_probability_interval,
    variance_interval,
)
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import AccuracyError


class TestPaperExample2:
    """Example 2: n=20, four buckets with 3, 4, 8, 5 observations, c=0.9."""

    def test_bucket_1_uses_wilson(self):
        # n*p1 = 3 < 4 -> Wilson score interval (0.062, 0.322).
        ci = bin_height_interval(0.15, 20, 0.9)
        assert ci.low == pytest.approx(0.062, abs=0.002)
        assert ci.high == pytest.approx(0.322, abs=0.002)

    def test_bucket_2_uses_wald(self):
        # n*p2 = 4 >= 4 -> Wald interval 0.2 +/- 0.15.
        ci = bin_height_interval(0.2, 20, 0.9)
        assert ci.low == pytest.approx(0.05, abs=0.005)
        assert ci.high == pytest.approx(0.35, abs=0.005)

    def test_bucket_3(self):
        ci = bin_height_interval(0.4, 20, 0.9)
        assert ci.low == pytest.approx(0.22, abs=0.005)
        assert ci.high == pytest.approx(0.58, abs=0.005)

    def test_bucket_4(self):
        ci = bin_height_interval(0.25, 20, 0.9)
        assert ci.low == pytest.approx(0.09, abs=0.005)
        assert ci.high == pytest.approx(0.41, abs=0.005)


class TestPaperExample3:
    """Example 3: 10 delay observations, 90% intervals."""

    def test_mean_interval(self, paper_example3_sample):
        info = accuracy_from_sample(paper_example3_sample, 0.9)
        assert info.mean.low == pytest.approx(65.97, abs=0.02)
        assert info.mean.high == pytest.approx(76.23, abs=0.02)

    def test_variance_interval(self, paper_example3_sample):
        info = accuracy_from_sample(paper_example3_sample, 0.9)
        assert info.variance.low == pytest.approx(41.66, abs=0.05)
        assert info.variance.high == pytest.approx(211.99, abs=0.5)

    def test_sample_statistics(self, paper_example3_sample):
        arr = np.asarray(paper_example3_sample, dtype=float)
        assert arr.mean() == pytest.approx(71.1)
        assert arr.std(ddof=1) == pytest.approx(8.85, abs=0.01)


class TestPaperExample5:
    """Example 5: tuple probability 0.6 with n=20 -> [0.42, 0.78] @90%."""

    def test_tuple_probability_interval(self):
        tpi = tuple_probability_interval(0.6, 20, 0.9)
        assert tpi.interval.low == pytest.approx(0.42, abs=0.005)
        assert tpi.interval.high == pytest.approx(0.78, abs=0.005)


class TestWaldInterval:
    def test_matches_closed_form(self):
        z = stats.norm.isf(0.05)
        ci = proportion_interval_wald(0.3, 50, 0.9)
        half = z * np.sqrt(0.3 * 0.7 / 50)
        assert ci.low == pytest.approx(0.3 - half)
        assert ci.high == pytest.approx(0.3 + half)

    def test_clamped_to_unit_interval(self):
        ci = proportion_interval_wald(0.99, 10, 0.99)
        assert ci.high <= 1.0
        ci = proportion_interval_wald(0.01, 10, 0.99)
        assert ci.low >= 0.0

    def test_degenerate_proportions_give_zero_width(self):
        assert proportion_interval_wald(0.0, 20, 0.9).length == 0.0
        assert proportion_interval_wald(1.0, 20, 0.9).length == 0.0

    def test_narrows_with_n(self):
        wide = proportion_interval_wald(0.5, 10, 0.9)
        narrow = proportion_interval_wald(0.5, 1000, 0.9)
        assert narrow.length < wide.length

    def test_rejects_bad_inputs(self):
        with pytest.raises(AccuracyError):
            proportion_interval_wald(1.5, 10, 0.9)
        with pytest.raises(AccuracyError):
            proportion_interval_wald(0.5, 0, 0.9)
        with pytest.raises(AccuracyError):
            proportion_interval_wald(0.5, 10, 1.0)


class TestWilsonInterval:
    def test_never_degenerate_at_zero(self):
        # Unlike Wald, Wilson has positive width even at p=0.
        ci = proportion_interval_wilson(0.0, 20, 0.9)
        assert ci.low == 0.0
        assert ci.high > 0.0

    def test_centre_pulled_toward_half(self):
        ci = proportion_interval_wilson(0.1, 10, 0.9)
        assert ci.midpoint > 0.1
        ci = proportion_interval_wilson(0.9, 10, 0.9)
        assert ci.midpoint < 0.9

    def test_stays_in_unit_interval(self):
        for p in (0.0, 0.05, 0.5, 0.95, 1.0):
            ci = proportion_interval_wilson(p, 5, 0.99)
            assert 0.0 <= ci.low <= ci.high <= 1.0


class TestLemma1Dispatch:
    def test_small_expected_count_uses_wilson(self):
        # n*p = 3 < 4: must match Wilson, not Wald.
        dispatched = bin_height_interval(0.15, 20, 0.9)
        wilson = proportion_interval_wilson(0.15, 20, 0.9)
        assert dispatched == wilson

    def test_small_complement_count_uses_wilson(self):
        # n*(1-p) = 2 < 4.
        dispatched = bin_height_interval(0.9, 20, 0.9)
        wilson = proportion_interval_wilson(0.9, 20, 0.9)
        assert dispatched == wilson

    def test_large_counts_use_wald(self):
        dispatched = bin_height_interval(0.5, 100, 0.9)
        wald = proportion_interval_wald(0.5, 100, 0.9)
        assert dispatched == wald

    def test_boundary_exactly_four_uses_wald(self):
        # n*p = 4 exactly satisfies the >= 4 rule (paper Example 2).
        dispatched = bin_height_interval(0.2, 20, 0.9)
        wald = proportion_interval_wald(0.2, 20, 0.9)
        assert dispatched == wald


class TestMeanInterval:
    def test_uses_t_below_cutoff(self):
        n = SMALL_SAMPLE_MEAN_CUTOFF - 1
        ci = mean_interval(0.0, 1.0, n, 0.9)
        t_val = stats.t.isf(0.05, df=n - 1)
        assert ci.high == pytest.approx(t_val / np.sqrt(n))

    def test_uses_z_at_cutoff(self):
        n = SMALL_SAMPLE_MEAN_CUTOFF
        ci = mean_interval(0.0, 1.0, n, 0.9)
        z_val = stats.norm.isf(0.05)
        assert ci.high == pytest.approx(z_val / np.sqrt(n))

    def test_t_wider_than_z_for_same_n(self):
        # The t-quantile exceeds the z-quantile; the regime switch makes
        # the small-sample interval appropriately wider.
        n = 29
        t_ci = mean_interval(0.0, 1.0, n, 0.9)
        z_half = stats.norm.isf(0.05) / np.sqrt(n)
        assert t_ci.high > z_half

    def test_centred_on_sample_mean(self):
        ci = mean_interval(42.0, 5.0, 25, 0.95)
        assert ci.midpoint == pytest.approx(42.0)

    def test_zero_std_gives_point_interval(self):
        ci = mean_interval(7.0, 0.0, 10, 0.9)
        assert ci.low == ci.high == 7.0

    def test_length_scales_inverse_sqrt_n(self):
        big = mean_interval(0.0, 1.0, 400, 0.9)
        small = mean_interval(0.0, 1.0, 100, 0.9)
        assert small.length == pytest.approx(2.0 * big.length, rel=1e-9)

    def test_rejects_n_below_two(self):
        with pytest.raises(AccuracyError):
            mean_interval(0.0, 1.0, 1, 0.9)

    def test_rejects_negative_std(self):
        with pytest.raises(AccuracyError):
            mean_interval(0.0, -1.0, 10, 0.9)


class TestVarianceInterval:
    def test_matches_chi_square_closed_form(self):
        n, s2, c = 10, 78.32, 0.9
        ci = variance_interval(s2, n, c)
        upper = stats.chi2.isf(0.05, df=9)
        lower = stats.chi2.ppf(0.05, df=9)
        assert ci.low == pytest.approx(9 * s2 / upper)
        assert ci.high == pytest.approx(9 * s2 / lower)

    def test_interval_contains_s2(self):
        # The chi-square interval always straddles the point estimate.
        ci = variance_interval(4.0, 15, 0.9)
        assert ci.low < 4.0 < ci.high

    def test_asymmetric_about_s2(self):
        ci = variance_interval(1.0, 10, 0.9)
        assert (ci.high - 1.0) > (1.0 - ci.low)

    def test_zero_variance_gives_point_interval(self):
        ci = variance_interval(0.0, 10, 0.9)
        assert ci.low == ci.high == 0.0

    def test_narrows_with_n(self):
        wide = variance_interval(1.0, 5, 0.9)
        narrow = variance_interval(1.0, 500, 0.9)
        assert narrow.length < wide.length

    def test_rejects_bad_inputs(self):
        with pytest.raises(AccuracyError):
            variance_interval(-1.0, 10, 0.9)
        with pytest.raises(AccuracyError):
            variance_interval(1.0, 1, 0.9)


class TestHistogramAccuracy:
    def test_one_interval_per_bucket(self):
        hist = HistogramDistribution([0, 1, 2, 3], [0.2, 0.5, 0.3])
        bins = histogram_accuracy(hist, 50, 0.9)
        assert len(bins) == 3
        assert bins[0].lower_edge == 0 and bins[0].upper_edge == 1

    def test_intervals_cover_learned_heights(self):
        hist = HistogramDistribution([0, 1, 2], [0.4, 0.6])
        for bin_interval, p in zip(
            histogram_accuracy(hist, 40, 0.9), hist.probabilities
        ):
            assert bin_interval.interval.contains(float(p))


class TestDistributionAccuracy:
    def test_gaussian_uses_own_moments(self):
        dist = GaussianDistribution(10.0, 4.0)
        info = distribution_accuracy(dist, 25, 0.9)
        assert info.mean.midpoint == pytest.approx(10.0)
        assert info.sample_size == 25
        assert info.method == "analytic"
        assert not info.has_bins

    def test_histogram_gets_bins_too(self):
        hist = HistogramDistribution([0, 1, 2], [0.5, 0.5])
        info = distribution_accuracy(hist, 30, 0.9)
        assert info.has_bins
        assert len(info.bins) == 2

    def test_sample_variance_override(self):
        dist = GaussianDistribution(0.0, 1.0)
        default = distribution_accuracy(dist, 20, 0.9)
        overridden = distribution_accuracy(
            dist, 20, 0.9, sample_variance=4.0
        )
        assert overridden.variance.high == pytest.approx(
            4.0 * default.variance.high
        )

    def test_rejects_tiny_samples(self):
        with pytest.raises(AccuracyError):
            distribution_accuracy(GaussianDistribution(0, 1), 1, 0.9)


class TestAccuracyFromSample:
    def test_includes_bins_when_histogram_given(self, rng):
        sample = rng.normal(0, 1, 40)
        hist = HistogramDistribution([-3, 0, 3], [0.5, 0.5])
        info = accuracy_from_sample(sample, 0.9, histogram=hist)
        assert info.has_bins
        assert info.sample_size == 40

    def test_interval_length_decreases_with_n(self, rng):
        sample = rng.normal(0, 1, 400)
        small = accuracy_from_sample(sample[:20], 0.9)
        large = accuracy_from_sample(sample, 0.9)
        assert large.mean.length < small.mean.length

    def test_rejects_single_observation(self):
        with pytest.raises(AccuracyError):
            accuracy_from_sample([1.0], 0.9)


class TestCoverageProperties:
    """Statistical sanity: the intervals cover at roughly nominal rates."""

    def test_mean_interval_coverage_on_normal_data(self, rng):
        misses = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(5.0, 2.0, 20)
            ci = mean_interval(
                float(sample.mean()), float(sample.std(ddof=1)), 20, 0.9
            )
            misses += not ci.contains(5.0)
        # Nominal miss rate is 10%; allow generous slack for 400 trials.
        assert misses / trials < 0.16
        assert misses / trials > 0.04

    def test_variance_interval_coverage_on_normal_data(self, rng):
        misses = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(0.0, 3.0, 25)
            ci = variance_interval(float(sample.var(ddof=1)), 25, 0.9)
            misses += not ci.contains(9.0)
        assert misses / trials < 0.16

    def test_bin_interval_coverage_binomial(self, rng):
        misses = 0
        trials = 400
        p_true = 0.3
        for _ in range(trials):
            count = rng.binomial(30, p_true)
            ci = bin_height_interval(count / 30, 30, 0.9)
            misses += not ci.contains(p_true)
        assert misses / trials < 0.16
