"""Tests for the vTest variance-test extension."""

import numpy as np
import pytest
from scipy import stats

from repro.core.coupled import ThreeValued, coupled_tests
from repro.core.predicates import FieldStats, VTest, v_test
from repro.errors import AccuracyError


class TestVTest:
    def test_matches_chi_square_reference(self, rng):
        sample = rng.normal(0, 2.0, 25)
        field = FieldStats.from_sample(sample)
        result = v_test(field, ">", 3.0, 0.05)
        statistic = 24 * sample.var(ddof=1) / 3.0
        assert result.statistic == pytest.approx(statistic)
        assert result.p_value == pytest.approx(
            float(stats.chi2.sf(statistic, df=24))
        )

    def test_obvious_rejections(self):
        high_var = FieldStats(0.0, 10.0, 30)
        low_var = FieldStats(0.0, 0.1, 30)
        assert v_test(high_var, ">", 1.0, 0.05).reject
        assert not v_test(high_var, "<", 1.0, 0.05).reject
        assert v_test(low_var, "<", 1.0, 0.05).reject
        assert v_test(low_var, "<>", 1.0, 0.05).reject

    def test_null_boundary_not_rejected(self):
        field = FieldStats(0.0, 1.0, 30)  # s^2 == c
        assert not v_test(field, ">", 1.0, 0.05).reject
        assert not v_test(field, "<", 1.0, 0.05).reject

    def test_false_positive_rate_bounded(self, rng):
        rejections = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(0, 1.0, 20)
            field = FieldStats.from_sample(sample)
            if v_test(field, ">", 1.0, 0.05).reject:
                rejections += 1
        assert rejections / trials < 0.09

    def test_rejects_bad_inputs(self):
        field = FieldStats(0.0, 1.0, 20)
        with pytest.raises(AccuracyError):
            v_test(field, ">", 0.0, 0.05)
        with pytest.raises(AccuracyError):
            v_test(FieldStats(0.0, 1.0, 1), ">", 1.0, 0.05)


class TestCoupledVTest:
    def test_three_outcomes(self):
        noisy = FieldStats(0.0, 3.0, 40)
        assert coupled_tests(
            VTest(noisy, ">", 1.0, 0.05)
        ).value is ThreeValued.TRUE
        assert coupled_tests(
            VTest(noisy, ">", 100.0, 0.05)
        ).value is ThreeValued.FALSE
        marginal = FieldStats(0.0, 1.02, 10)
        assert coupled_tests(
            VTest(marginal, ">", 1.0, 0.05)
        ).value is ThreeValued.UNSURE

    def test_error_rates_controlled(self, rng):
        false_negatives = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(0, 2.0, 30)  # true var 4 > 1: H1 true
            field = FieldStats.from_sample(sample)
            outcome = coupled_tests(VTest(field, ">", 1.0, 0.05))
            if outcome.value is ThreeValued.FALSE:
                false_negatives += 1
        assert false_negatives / trials <= 0.08


class TestVTestInQueries:
    def test_query_integration(self, rng):
        from repro.core.dfsample import DfSized
        from repro.distributions.gaussian import GaussianDistribution
        from repro.query.executor import ExecutorConfig, run_query
        from repro.streams.tuples import UncertainTuple

        volatile = UncertainTuple(
            {"id": 1.0, "v": DfSized(GaussianDistribution(0, 25.0), 40)}
        )
        calm = UncertainTuple(
            {"id": 2.0, "v": DfSized(GaussianDistribution(0, 0.5), 40)}
        )
        results = run_query(
            "SELECT id FROM s WHERE vTest(v, '>', 4, 0.05, 0.05)",
            [volatile, calm],
            config=ExecutorConfig(seed=0),
        )
        assert len(results) == 1
        assert results[0].value("id").distribution.mean() == 1.0
