"""Property-based tests (hypothesis) for the accuracy core.

Invariants checked:

* interval lengths shrink monotonically in n and grow in confidence;
* Lemma 1's dispatch always returns an interval inside [0, 1] containing
  behaviourally sensible mass;
* Lemma 3's min rule is order-invariant and dominated by any element;
* COUPLED-TESTS never contradicts itself (TRUE and FALSE mutually
  exclusive by construction) and tightening alphas can only move
  decisions toward UNSURE.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.analytic import (
    bin_height_interval,
    mean_interval,
    variance_interval,
)
from repro.core.bootstrap import bootstrap_accuracy_info, percentile_interval
from repro.core.coupled import ThreeValued, coupled_tests
from repro.core.dfsample import df_sample_size
from repro.core.predicates import FieldStats, MTest, m_test

proportions = st.floats(min_value=0.0, max_value=1.0)
confidences = st.floats(min_value=0.01, max_value=0.99)
sample_sizes = st.integers(min_value=2, max_value=10_000)
means = st.floats(min_value=-1e6, max_value=1e6)
stds = st.floats(min_value=0.0, max_value=1e6)


@given(p=proportions, n=sample_sizes, c=confidences)
@settings(max_examples=300, deadline=None)
def test_bin_interval_within_unit_and_ordered(p, n, c):
    ci = bin_height_interval(p, n, c)
    assert 0.0 <= ci.low <= ci.high <= 1.0


@given(p=proportions, n=sample_sizes)
@settings(max_examples=200, deadline=None)
def test_bin_interval_shrinks_with_n(p, n):
    small = bin_height_interval(p, n, 0.9)
    large = bin_height_interval(p, n * 4, 0.9)
    assert large.length <= small.length + 1e-12


@given(p=proportions, n=sample_sizes)
@settings(max_examples=200, deadline=None)
def test_bin_interval_grows_with_confidence(p, n):
    loose = bin_height_interval(p, n, 0.8)
    tight = bin_height_interval(p, n, 0.99)
    assert tight.length >= loose.length - 1e-12


@given(mean=means, std=stds, n=sample_sizes, c=confidences)
@settings(max_examples=300, deadline=None)
def test_mean_interval_centred_and_ordered(mean, std, n, c):
    ci = mean_interval(mean, std, n, c)
    assert ci.low <= mean <= ci.high
    assert abs(ci.midpoint - mean) <= max(1e-9, abs(mean) * 1e-12) + 1e-6 * std


@given(std=st.floats(min_value=1e-3, max_value=1e3), n=sample_sizes)
@settings(max_examples=200, deadline=None)
def test_mean_interval_shrinks_with_n(std, n):
    small = mean_interval(0.0, std, n, 0.9)
    large = mean_interval(0.0, std, n * 4, 0.9)
    assert large.length < small.length


@given(
    s2=st.floats(min_value=0.0, max_value=1e6),
    n=sample_sizes,
    c=confidences,
)
@settings(max_examples=300, deadline=None)
def test_variance_interval_ordered_and_non_negative(s2, n, c):
    ci = variance_interval(s2, n, c)
    assert ci.low <= ci.high
    assert ci.low >= 0.0


@given(s2=st.floats(min_value=0.0, max_value=1e6), n=sample_sizes)
@settings(max_examples=200, deadline=None)
def test_variance_interval_brackets_estimate_at_high_confidence(s2, n):
    # At low confidence the chi-square interval can legitimately exclude
    # s^2 (the chi-square median sits below its mean); at the 90%+ levels
    # the system uses, bracketing always holds.
    ci = variance_interval(s2, n, 0.9)
    assert ci.low <= s2 <= ci.high


@given(
    sizes=st.lists(
        st.one_of(st.none(), st.integers(min_value=1, max_value=1000)),
        min_size=0, max_size=8,
    )
)
@settings(max_examples=200, deadline=None)
def test_df_sample_size_is_min_and_order_invariant(sizes):
    result = df_sample_size(sizes)
    shuffled = df_sample_size(list(reversed(sizes)))
    assert result == shuffled
    finite = [s for s in sizes if s is not None]
    if finite:
        assert result == min(finite)
        for s in finite:
            assert result <= s
    else:
        assert result is None


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(min_value=2, max_value=40),
    r=st.integers(min_value=2, max_value=40),
    c=confidences,
)
@settings(max_examples=100, deadline=None)
def test_bootstrap_intervals_ordered_and_cover_median_chunk(seed, n, r, c):
    rng = np.random.default_rng(seed)
    values = rng.normal(0, 1, n * r)
    info = bootstrap_accuracy_info(values, n, c)
    assert info.mean.low <= info.mean.high
    assert info.variance.low <= info.variance.high
    # The median chunk mean always lies inside the percentile interval.
    chunk_means = values.reshape(r, n).mean(axis=1)
    median = float(np.median(chunk_means))
    assert info.mean.low - 1e-9 <= median <= info.mean.high + 1e-9


@given(
    seed=st.integers(0, 2**31 - 1),
    size=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=100, deadline=None)
def test_percentile_interval_nested_in_range(seed, size):
    rng = np.random.default_rng(seed)
    values = rng.normal(0, 1, size)
    inner = percentile_interval(values, 0.5)
    outer = percentile_interval(values, 0.99)
    assert outer.low <= inner.low <= inner.high <= outer.high
    assert values.min() <= outer.low and outer.high <= values.max()


@given(
    mean=st.floats(min_value=-100, max_value=100),
    std=st.floats(min_value=0.01, max_value=100),
    n=st.integers(min_value=2, max_value=500),
    c=st.floats(min_value=-100, max_value=100),
)
@settings(max_examples=300, deadline=None)
def test_coupled_decisions_are_consistent(mean, std, n, c):
    predicate = MTest(FieldStats(mean, std, n), ">", c, 0.05)
    outcome = coupled_tests(predicate, 0.05, 0.05)
    single = m_test(FieldStats(mean, std, n), ">", c, 0.05)
    if outcome.value is ThreeValued.TRUE:
        # TRUE comes exactly from the primary test rejecting.
        assert single.reject
    if single.reject:
        assert outcome.value is ThreeValued.TRUE


@given(
    mean=st.floats(min_value=-10, max_value=10),
    std=st.floats(min_value=0.01, max_value=10),
    n=st.integers(min_value=2, max_value=100),
)
@settings(max_examples=200, deadline=None)
def test_tightening_alphas_moves_toward_unsure(mean, std, n):
    predicate = MTest(FieldStats(mean, std, n), ">", 0.0, 0.05)
    loose = coupled_tests(predicate, 0.2, 0.2)
    strict = coupled_tests(predicate, 0.001, 0.001)
    if strict.value is not ThreeValued.UNSURE:
        # A decision that survives strict alphas must agree with loose.
        assert strict.value == loose.value


@given(
    mean=st.floats(min_value=-100, max_value=100),
    std=st.floats(min_value=0.0, max_value=100),
    n=st.integers(min_value=2, max_value=100),
    c=st.floats(min_value=-100, max_value=100),
)
@settings(max_examples=200, deadline=None)
def test_mtest_directions_mutually_exclusive(mean, std, n, c):
    field = FieldStats(mean, std, n)
    gt = m_test(field, ">", c, 0.05)
    lt = m_test(field, "<", c, 0.05)
    assert not (gt.reject and lt.reject)
