"""Tests for mTest / mdTest / pTest against scipy reference implementations."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.predicates import (
    FieldStats,
    MdTest,
    MTest,
    PTest,
    m_test,
    md_test,
    p_test,
)
from repro.core.dfsample import DfSized
from repro.distributions.base import Deterministic
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import AccuracyError, QueryError


class TestFieldStats:
    def test_from_sample(self):
        fs = FieldStats.from_sample([1.0, 2.0, 3.0, 4.0])
        assert fs.mean == pytest.approx(2.5)
        assert fs.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert fs.n == 4

    def test_from_distribution(self):
        fs = FieldStats.from_distribution(GaussianDistribution(5, 4), 30)
        assert fs.mean == 5 and fs.std == 2 and fs.n == 30

    def test_from_dfsized(self):
        fs = FieldStats.from_dfsized(
            DfSized(GaussianDistribution(1, 1), 12)
        )
        assert fs.n == 12

    def test_from_dfsized_rejects_exact_values(self):
        with pytest.raises(AccuracyError):
            FieldStats.from_dfsized(DfSized(Deterministic(5.0), None))

    def test_rejects_single_observation(self):
        with pytest.raises(AccuracyError):
            FieldStats.from_sample([1.0])

    def test_rejects_negative_std(self):
        with pytest.raises(AccuracyError):
            FieldStats(0.0, -1.0, 10)


class TestMTest:
    def test_matches_scipy_ttest_pvalue(self, rng):
        sample = rng.normal(10, 3, 25)
        fs = FieldStats.from_sample(sample)
        result = m_test(fs, ">", 9.0, 0.05)
        reference = stats.ttest_1samp(sample, 9.0, alternative="greater")
        assert result.statistic == pytest.approx(reference.statistic)
        assert result.p_value == pytest.approx(reference.pvalue)

    def test_less_alternative_matches_scipy(self, rng):
        sample = rng.normal(5, 1, 15)
        fs = FieldStats.from_sample(sample)
        result = m_test(fs, "<", 6.0, 0.05)
        reference = stats.ttest_1samp(sample, 6.0, alternative="less")
        assert result.p_value == pytest.approx(reference.pvalue)

    def test_two_sided_matches_scipy(self, rng):
        sample = rng.normal(0, 1, 20)
        fs = FieldStats.from_sample(sample)
        result = m_test(fs, "<>", 0.5, 0.05)
        reference = stats.ttest_1samp(sample, 0.5)
        assert result.p_value == pytest.approx(reference.pvalue)

    def test_reject_iff_pvalue_below_alpha(self, rng):
        for _ in range(50):
            sample = rng.normal(0, 1, 10)
            fs = FieldStats.from_sample(sample)
            result = m_test(fs, ">", 0.0, 0.05)
            assert result.reject == (result.p_value < 0.05)

    def test_obvious_rejection(self):
        fs = FieldStats(mean=100.0, std=1.0, n=50)
        assert m_test(fs, ">", 10.0, 0.05).reject

    def test_obvious_acceptance(self):
        fs = FieldStats(mean=10.0, std=1.0, n=50)
        assert not m_test(fs, ">", 100.0, 0.05).reject

    def test_large_sample_uses_normal_reference(self):
        fs = FieldStats(mean=0.2, std=1.0, n=100)
        result = m_test(fs, ">", 0.0, 0.05)
        z = 0.2 / (1.0 / math.sqrt(100))
        assert result.p_value == pytest.approx(float(stats.norm.sf(z)))

    def test_zero_std_degenerate(self):
        fs = FieldStats(mean=5.0, std=0.0, n=10)
        assert m_test(fs, ">", 4.0, 0.05).reject
        assert not m_test(fs, ">", 5.0, 0.05).reject
        assert m_test(fs, "<", 6.0, 0.05).reject

    def test_rejects_unknown_op(self):
        fs = FieldStats(0.0, 1.0, 10)
        with pytest.raises(QueryError):
            m_test(fs, ">=", 0.0, 0.05)

    def test_rejects_bad_alpha(self):
        fs = FieldStats(0.0, 1.0, 10)
        with pytest.raises(AccuracyError):
            m_test(fs, ">", 0.0, 0.0)

    def test_example8_small_vs_large_sample(self):
        """Paper Example 8/9: same mean, different n -> different verdicts."""
        x = FieldStats.from_sample([82, 86, 105, 110, 119])
        assert not m_test(x, ">", 97, 0.05).reject
        # Y: same-ish mean but n=100 gives significance.
        y = FieldStats(mean=float(np.mean([82, 86, 105, 110, 119])),
                       std=15.3, n=100)
        assert m_test(y, ">", 97, 0.05).reject


class TestMdTest:
    def test_matches_scipy_welch(self, rng):
        a = rng.normal(10, 2, 18)
        b = rng.normal(9, 3, 24)
        result = md_test(
            FieldStats.from_sample(a), FieldStats.from_sample(b), ">", 0.0,
        )
        reference = stats.ttest_ind(
            a, b, equal_var=False, alternative="greater"
        )
        assert result.statistic == pytest.approx(reference.statistic)
        assert result.p_value == pytest.approx(reference.pvalue, rel=1e-6)

    def test_nonzero_c_shifts_the_test(self):
        x = FieldStats(mean=10.0, std=1.0, n=30)
        y = FieldStats(mean=5.0, std=1.0, n=30)
        assert md_test(x, y, ">", 0.0).reject
        assert not md_test(x, y, ">", 10.0).reject

    def test_symmetric_swap(self):
        x = FieldStats(mean=10.0, std=2.0, n=20)
        y = FieldStats(mean=8.0, std=2.0, n=20)
        gt = md_test(x, y, ">", 0.0)
        lt = md_test(y, x, "<", 0.0)
        assert gt.statistic == pytest.approx(-lt.statistic)
        assert gt.reject == lt.reject

    def test_zero_variance_degenerate(self):
        x = FieldStats(mean=2.0, std=0.0, n=10)
        y = FieldStats(mean=1.0, std=0.0, n=10)
        assert md_test(x, y, ">", 0.0).reject
        assert not md_test(x, y, ">", 1.0).reject

    def test_large_samples_approach_normal(self):
        # The Welch t converges to the normal as df grows.
        x = FieldStats(mean=1.0, std=1.0, n=200)
        y = FieldStats(mean=0.9, std=1.0, n=200)
        result = md_test(x, y, ">", 0.0)
        z = 0.1 / math.sqrt(1 / 200 + 1 / 200)
        assert result.p_value == pytest.approx(
            float(stats.norm.sf(z)), rel=0.01
        )


class TestPTest:
    def test_matches_one_proportion_z(self):
        # Example 8's Y: 60 of 100 above the value, tau = 0.5.
        result = p_test(0.6, 100, ">", 0.5, 0.05)
        z = (0.6 - 0.5) / math.sqrt(0.5 * 0.5 / 100)
        assert result.statistic == pytest.approx(z)
        assert result.reject

    def test_small_sample_not_significant(self):
        # Example 8's X: 3 of 5 above, same p_hat, tiny n.
        result = p_test(0.6, 5, ">", 0.5, 0.05)
        assert not result.reject

    def test_less_direction(self):
        assert p_test(0.2, 100, "<", 0.5, 0.05).reject
        assert not p_test(0.45, 100, "<", 0.5, 0.05).reject

    def test_two_sided(self):
        assert p_test(0.8, 100, "<>", 0.5, 0.05).reject
        assert not p_test(0.52, 100, "<>", 0.5, 0.05).reject

    def test_rejects_bad_tau(self):
        with pytest.raises(AccuracyError):
            p_test(0.5, 10, ">", 0.0, 0.05)
        with pytest.raises(AccuracyError):
            p_test(0.5, 10, ">", 1.0, 0.05)

    def test_rejects_bad_p_hat(self):
        with pytest.raises(AccuracyError):
            p_test(1.2, 10, ">", 0.5, 0.05)

    def test_false_positive_rate_bounded(self, rng):
        """When H0 holds exactly, rejections stay near alpha."""
        rejections = 0
        trials = 500
        for _ in range(trials):
            hits = rng.binomial(40, 0.5)
            if p_test(hits / 40, 40, ">", 0.5, 0.05).reject:
                rejections += 1
        assert rejections / trials < 0.09


class TestPredicateObjects:
    def test_mtest_replaced_and_inverse(self):
        fs = FieldStats(5.0, 1.0, 20)
        predicate = MTest(fs, ">", 4.0, 0.05)
        inverse = predicate.inverse()
        assert inverse.op == "<"
        assert inverse.c == 4.0
        loosened = predicate.replaced(alpha=0.1)
        assert loosened.alpha == 0.1 and loosened.op == ">"

    def test_two_sided_has_no_single_inverse(self):
        predicate = MTest(FieldStats(0, 1, 10), "<>", 0.0, 0.05)
        with pytest.raises(QueryError):
            predicate.inverse()

    def test_mdtest_run_consistency(self):
        x = FieldStats(10.0, 1.0, 30)
        y = FieldStats(5.0, 1.0, 30)
        predicate = MdTest(x, y, ">", 0.0, 0.05)
        assert predicate.run() == md_test(x, y, ">", 0.0, 0.05)

    def test_ptest_run_consistency(self):
        predicate = PTest(0.7, 50, 0.5, ">", 0.05)
        assert predicate.run() == p_test(0.7, 50, ">", 0.5, 0.05)

    def test_test_result_truthiness(self):
        fs = FieldStats(100.0, 1.0, 30)
        assert m_test(fs, ">", 0.0, 0.05)
        assert not m_test(fs, "<", 0.0, 0.05)


class TestSmallSampleBoundaries:
    """n < 2 carries no dispersion information; every test that divides
    by n-1 must refuse it with a clear error rather than a ZeroDivision
    or a bogus df."""

    def test_from_distribution_accepts_n_1(self):
        fs = FieldStats.from_distribution(GaussianDistribution(5, 4), 1)
        assert fs.n == 1 and fs.std == 2.0

    def test_from_distribution_rejects_n_0(self):
        with pytest.raises(AccuracyError, match="sample size"):
            FieldStats.from_distribution(GaussianDistribution(5, 4), 0)

    def test_mtest_rejects_n_1(self):
        fs = FieldStats.from_distribution(GaussianDistribution(5, 4), 1)
        with pytest.raises(AccuracyError, match="size >= 2"):
            m_test(fs, ">", 4.0, 0.05)

    def test_mtest_accepts_n_2(self):
        fs = FieldStats.from_distribution(GaussianDistribution(5, 4), 2)
        result = m_test(fs, ">", 4.0, 0.05)
        assert 0.0 <= result.p_value <= 1.0

    def test_vtest_rejects_n_1(self):
        from repro.core.predicates import v_test

        fs = FieldStats.from_distribution(GaussianDistribution(5, 4), 1)
        with pytest.raises(AccuracyError, match="size >= 2"):
            v_test(fs, ">", 1.0, 0.05)

    def test_mdtest_rejects_both_sides_n_1(self):
        x = FieldStats.from_distribution(GaussianDistribution(5, 4), 1)
        y = FieldStats.from_distribution(GaussianDistribution(3, 4), 1)
        with pytest.raises(AccuracyError, match="size >= 2"):
            md_test(x, y, ">", 0.0, 0.05)

    def test_mdtest_accepts_one_side_n_1(self):
        # Welch-Satterthwaite only needs one side to contribute df.
        x = FieldStats.from_distribution(GaussianDistribution(5, 4), 1)
        y = FieldStats.from_distribution(GaussianDistribution(3, 4), 40)
        result = md_test(x, y, ">", 0.0, 0.05)
        assert 0.0 <= result.p_value <= 1.0

    def test_ptest_accepts_n_1(self):
        # A single Bernoulli trial is a legal (if weak) proportion sample.
        result = p_test(1.0, 1, ">", 0.5, 0.05)
        assert not result.reject

    def test_degenerate_mtest_with_dfsized_n_1(self):
        value = DfSized(GaussianDistribution(5, 4), 1)
        with pytest.raises(AccuracyError, match="size >= 2"):
            m_test(FieldStats.from_dfsized(value), ">", 4.0, 0.05)
