"""Tests for the accuracy value types (ConfidenceInterval & friends)."""

import pytest

from repro.core.accuracy import (
    AccuracyInfo,
    BinInterval,
    ConfidenceInterval,
    TupleProbabilityInterval,
)
from repro.errors import AccuracyError


class TestConfidenceInterval:
    def test_basic_properties(self):
        ci = ConfidenceInterval(1.0, 3.0, 0.95)
        assert ci.length == 2.0
        assert ci.midpoint == 2.0
        assert ci.confidence == 0.95

    def test_contains_inclusive_bounds(self):
        ci = ConfidenceInterval(1.0, 3.0, 0.9)
        assert ci.contains(1.0)
        assert ci.contains(3.0)
        assert ci.contains(2.0)
        assert not ci.contains(0.999)
        assert not ci.contains(3.001)

    def test_zero_width_interval_is_legal(self):
        ci = ConfidenceInterval(2.0, 2.0, 0.5)
        assert ci.length == 0.0
        assert ci.contains(2.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(AccuracyError):
            ConfidenceInterval(3.0, 1.0, 0.9)

    def test_rejects_nan_bounds(self):
        with pytest.raises(AccuracyError):
            ConfidenceInterval(float("nan"), 1.0, 0.9)
        with pytest.raises(AccuracyError):
            ConfidenceInterval(0.0, float("nan"), 0.9)

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_confidence(self, confidence):
        with pytest.raises(AccuracyError):
            ConfidenceInterval(0.0, 1.0, confidence)

    def test_clamped_intersects(self):
        ci = ConfidenceInterval(-0.2, 1.4, 0.9).clamped(0.0, 1.0)
        assert ci.low == 0.0
        assert ci.high == 1.0
        assert ci.confidence == 0.9

    def test_clamped_noop_when_inside(self):
        ci = ConfidenceInterval(0.2, 0.6, 0.9)
        assert ci.clamped(0.0, 1.0) == ci

    def test_clamped_entirely_outside_collapses(self):
        ci = ConfidenceInterval(1.5, 2.0, 0.9).clamped(0.0, 1.0)
        assert ci.low == ci.high == 1.0

    def test_str_rendering(self):
        text = str(ConfidenceInterval(0.05, 0.35, 0.9))
        assert "0.05" in text and "0.35" in text and "90%" in text

    def test_is_immutable(self):
        ci = ConfidenceInterval(0.0, 1.0, 0.9)
        with pytest.raises(AttributeError):
            ci.low = 0.5  # type: ignore[misc]


class TestBinInterval:
    def test_point_estimate_is_midpoint(self):
        bi = BinInterval(0.0, 10.0, ConfidenceInterval(0.1, 0.3, 0.9))
        assert bi.point_estimate == pytest.approx(0.2)
        assert bi.lower_edge == 0.0
        assert bi.upper_edge == 10.0


class TestTupleProbabilityInterval:
    def test_clamps_to_unit_interval(self):
        tpi = TupleProbabilityInterval(ConfidenceInterval(-0.1, 1.2, 0.9))
        assert tpi.interval.low == 0.0
        assert tpi.interval.high == 1.0

    def test_preserves_interval_inside_unit(self):
        inner = ConfidenceInterval(0.42, 0.78, 0.9)
        assert TupleProbabilityInterval(inner).interval == inner


class TestAccuracyInfo:
    def _info(self, **kwargs) -> AccuracyInfo:
        defaults = dict(
            mean=ConfidenceInterval(0.0, 1.0, 0.9),
            variance=ConfidenceInterval(0.5, 2.0, 0.9),
            sample_size=10,
        )
        defaults.update(kwargs)
        return AccuracyInfo(**defaults)

    def test_defaults(self):
        info = self._info()
        assert info.method == "analytic"
        assert not info.has_bins
        assert info.bin_intervals() == ()

    def test_bin_intervals_in_order(self):
        bins = (
            BinInterval(0, 1, ConfidenceInterval(0.1, 0.2, 0.9)),
            BinInterval(1, 2, ConfidenceInterval(0.3, 0.5, 0.9)),
        )
        info = self._info(bins=bins)
        assert info.has_bins
        assert info.bin_intervals() == (bins[0].interval, bins[1].interval)

    def test_rejects_negative_sample_size(self):
        with pytest.raises(AccuracyError):
            self._info(sample_size=-1)

    def test_rejects_unknown_method(self):
        with pytest.raises(AccuracyError):
            self._info(method="magic")

    def test_describe_mentions_everything(self):
        info = self._info(
            bins=(BinInterval(0, 5, ConfidenceInterval(0.1, 0.2, 0.9)),),
            method="bootstrap",
        )
        text = info.describe()
        assert "bootstrap" in text
        assert "mean" in text
        assert "variance" in text
        assert "bin" in text
