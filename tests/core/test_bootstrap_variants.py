"""Tests for the basic (reflected) bootstrap interval variant."""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_accuracy_info
from repro.errors import AccuracyError


class TestBasicInterval:
    def test_reflection_identity(self, rng):
        values = rng.normal(10, 2, 400)
        percentile = bootstrap_accuracy_info(values, 20, 0.9)
        basic = bootstrap_accuracy_info(values, 20, 0.9, interval="basic")
        theta = float(values.mean())
        assert basic.mean.low == pytest.approx(
            2 * theta - percentile.mean.high
        )
        assert basic.mean.high == pytest.approx(
            2 * theta - percentile.mean.low
        )

    def test_same_length_for_mean(self, rng):
        values = rng.exponential(1.0, 600)
        percentile = bootstrap_accuracy_info(values, 20, 0.9)
        basic = bootstrap_accuracy_info(values, 20, 0.9, interval="basic")
        assert basic.mean.length == pytest.approx(percentile.mean.length)

    def test_variance_interval_clamped_non_negative(self, rng):
        # Strong reflection on a right-skewed variance distribution can
        # push the lower bound negative; the implementation clamps it.
        values = rng.exponential(1.0, 100)
        basic = bootstrap_accuracy_info(values, 10, 0.99, interval="basic")
        assert basic.variance.low >= 0.0

    def test_bins_always_percentile(self, rng):
        values = rng.normal(0, 1, 400)
        edges = [-4, 0, 4]
        percentile = bootstrap_accuracy_info(values, 20, 0.9, edges)
        basic = bootstrap_accuracy_info(
            values, 20, 0.9, edges, interval="basic"
        )
        assert [b.interval for b in basic.bins] == [
            b.interval for b in percentile.bins
        ]

    def test_rejects_unknown_interval(self, rng):
        with pytest.raises(AccuracyError):
            bootstrap_accuracy_info(
                rng.normal(0, 1, 100), 10, 0.9, interval="studentized"
            )

    def test_basic_coverage_on_skewed_mean(self, rng):
        """Reflection corrects bootstrap bias; coverage stays sane."""
        misses = 0
        trials = 200
        for _ in range(trials):
            sample = rng.exponential(1.0, 20)
            values = rng.choice(sample, size=100 * 20, replace=True)
            info = bootstrap_accuracy_info(
                values, 20, 0.9, interval="basic"
            )
            misses += not info.mean.contains(1.0)
        assert misses / trials < 0.3
