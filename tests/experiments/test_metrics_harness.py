"""Tests for experiment metrics and the table renderer."""

import pytest

from repro.core.accuracy import ConfidenceInterval
from repro.errors import ReproError
from repro.experiments.harness import format_number, render_table
from repro.experiments.metrics import interval_miss, mean_length, miss_rate


def _ci(low, high):
    return ConfidenceInterval(low, high, 0.9)


class TestMetrics:
    def test_interval_miss(self):
        assert not interval_miss(_ci(0, 1), 0.5)
        assert interval_miss(_ci(0, 1), 1.5)
        assert not interval_miss(_ci(0, 1), 1.0)  # inclusive

    def test_miss_rate(self):
        intervals = [_ci(0, 1), _ci(0, 1), _ci(0, 1), _ci(0, 1)]
        truths = [0.5, 2.0, -1.0, 1.0]
        assert miss_rate(intervals, truths) == pytest.approx(0.5)

    def test_miss_rate_validates_lengths(self):
        with pytest.raises(ReproError):
            miss_rate([_ci(0, 1)], [0.5, 0.6])
        with pytest.raises(ReproError):
            miss_rate([], [])

    def test_mean_length(self):
        assert mean_length([_ci(0, 1), _ci(0, 3)]) == pytest.approx(2.0)
        with pytest.raises(ReproError):
            mean_length([])


class TestRenderTable:
    def test_renders_headers_and_rows(self):
        text = render_table(
            ["name", "value"], [["alpha", 1.5], ["beta", 2]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "2" in lines[4]

    def test_column_alignment(self):
        text = render_table(["a"], [["short"], ["much longer cell"]])
        lines = text.splitlines()
        assert len(lines[1]) >= len("much longer cell")

    def test_format_number(self):
        assert format_number(3) == "3"
        assert format_number(0) == "0"
        assert format_number(0.123456) == "0.1235"
        assert format_number(1e-9) == "1e-09"
        assert format_number("text") == "text"
        assert format_number(True) == "True"
