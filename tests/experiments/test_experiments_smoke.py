"""Smoke tests for the experiment harnesses at reduced scale.

Each run_* function executes with small parameters and must produce
structurally complete results with the paper's qualitative shape where
that shape is statistically stable at this scale.  The full-scale runs
with shape assertions live in benchmarks/.
"""

import pytest

from repro.experiments.fig4 import run_fig4, run_fig4d
from repro.experiments.fig5_bootstrap import run_fig5a, run_fig5b
from repro.experiments.fig5_power import run_fig5g, run_fig5h
from repro.experiments.fig5_predicates import run_fig5d, run_fig5e
from repro.experiments.fig5_throughput import run_fig5c, run_fig5f
from repro.workloads.synthetic import DISTRIBUTION_NAMES


class TestFig4:
    def test_sweep_structure_and_shape(self):
        sweep = run_fig4(
            seed=1, n_segments=12, sample_sizes=(10, 40),
            true_sample_size=300,
        )
        assert sweep.sample_sizes == (10, 40)
        for stat in ("bin_heights", "mean", "variance"):
            assert len(sweep.lengths[stat]) == 2
        # Interval lengths shrink as n quadruples (bin heights and mean
        # are stable even at this tiny scale; the variance length rides
        # on the noisy s^2 of lognormal subsamples, so it only gets a
        # no-blow-up bound here — the strict check runs at full scale in
        # benchmarks/test_fig4.py).
        assert sweep.lengths["bin_heights"][1] < sweep.lengths["bin_heights"][0]
        assert sweep.lengths["mean"][1] < sweep.lengths["mean"][0]
        assert sweep.lengths["variance"][1] < 2.0 * sweep.lengths["variance"][0]
        normalized = sweep.normalized_lengths()
        assert all(series[0] == 1.0 for series in normalized.values())
        assert "Figure" in sweep.render()

    def test_fig4d_covers_all_families(self):
        result = run_fig4d(seed=1, trials=30, true_sample_size=4000)
        assert set(result.miss_rates) == set(DISTRIBUTION_NAMES)
        for family, rate in result.miss_rates.items():
            assert 0.0 <= rate <= 0.35, family
        assert "Figure 4(d)" in result.render()


class TestFig5Bootstrap:
    def test_fig5a_structure(self):
        result = run_fig5a(
            seed=1, n_route_queries=4, n_random_queries=4, truth_mc=3000
        )
        assert result.queries == 8
        for stat in ("bin_heights", "mean", "variance"):
            assert result.length_ratio[stat] > 0
        assert "Figure 5(a)" in result.render()

    def test_fig5b_bootstrap_tighter_on_normal_results(self):
        result = run_fig5b(seed=1, n_queries=12, truth_mc=3000)
        # On exactly-normal results the bootstrap is tighter across the
        # board (paper: ~20% shorter for mean/variance).
        assert result.length_ratio["mean"] < 1.0
        assert result.length_ratio["variance"] < 1.0


class TestFig5Throughput:
    def test_fig5c_structure(self):
        # Tiny runs are too noisy for strict throughput ordering (that
        # is asserted at full scale in benchmarks/test_fig5_throughput);
        # here we check the harness runs and the heavyweight bootstrap
        # clearly trails the baseline.
        result = run_fig5c(seed=0, n_items=600, repeats=1)
        rates = result.throughputs
        assert all(v > 0 for v in rates.values())
        assert rates["bootstrap"] < rates["QP only"]
        assert "Figure 5(c)" in result.render()

    def test_fig5f_predicates_run(self):
        result = run_fig5f(seed=0, n_items=600, repeats=1)
        rates = result.throughputs
        per_tuple = {"no predicate", "mTest", "mdTest", "pTest"}
        assert set(rates) == per_tuple | {
            f"{name} (batched)" for name in per_tuple
        }
        assert all(v > 0 for v in rates.values())

    def test_relative_normalises_to_baseline(self):
        result = run_fig5c(seed=0, n_items=400, repeats=1)
        relative = result.relative()
        assert relative["QP only"] == pytest.approx(1.0)


class TestFig5Predicates:
    def test_fig5d_false_positives_bounded(self):
        sweep = run_fig5d(seed=2, n_pairs=25, sample_sizes=(10, 60))
        assert sweep.unsure is None
        for fp in sweep.false_positives:
            assert fp <= 0.10 * 25  # alpha = 0.05 with slack
        # Single test leaves false negatives uncontrolled at small n.
        assert sweep.false_negatives[0] > sweep.false_positives[0]
        assert "Figure 5(d)" in sweep.render()

    def test_fig5e_coupled_bounds_both_and_unsure_falls(self):
        sweep = run_fig5e(seed=2, n_pairs=25, sample_sizes=(10, 60))
        assert sweep.unsure is not None
        for fp, fn in zip(sweep.false_positives, sweep.false_negatives):
            assert fp <= 0.10 * 25
            assert fn <= 0.10 * 25
        assert sweep.unsure[-1] < sweep.unsure[0]
        assert "unsure" in sweep.render()


class TestFig5Power:
    def test_fig5g_power_rises_with_delta(self):
        sweep = run_fig5g(seed=3, deltas=(0.1, 0.6), trials=80)
        for family in DISTRIBUTION_NAMES:
            series = sweep.power[family]
            assert series[-1] > series[0]
        # Uniform (tiny variance) is the easiest test at large delta.
        assert sweep.power["uniform"][-1] >= sweep.power["normal"][-1]

    def test_fig5h_power_rises_with_tau(self):
        sweep = run_fig5h(seed=3, taus=(0.2, 0.7), trials=80)
        for family in DISTRIBUTION_NAMES:
            series = sweep.power[family]
            assert series[-1] > series[0]
        assert "tau" in sweep.render()


class TestAdaptiveBootstrapExperiments:
    def test_fig5a_target_consumes_prefix(self):
        base = run_fig5a(
            seed=1, n_route_queries=4, n_random_queries=4, truth_mc=3000
        )
        adaptive = run_fig5a(
            seed=1, n_route_queries=4, n_random_queries=4, truth_mc=3000,
            target_relative_width=0.6,
        )
        assert base.draw_fraction == 1.0
        assert 0.0 < adaptive.draw_fraction < 1.0

    def test_fig5b_no_target_unchanged(self):
        base = run_fig5b(seed=1, n_queries=6, truth_mc=3000)
        again = run_fig5b(seed=1, n_queries=6, truth_mc=3000)
        assert base == again
        assert base.draw_fraction == 1.0

    def test_fig5c_adaptive_configurations_present(self):
        result = run_fig5c(
            seed=0, n_items=400, repeats=1, workers=1, target_ci_width=12.0
        )
        rates = result.throughputs
        assert "bootstrap adaptive" in rates
        assert "bootstrap adaptive (batched)" in rates
        assert any(k.startswith("bootstrap adaptive (sharded") for k in rates)
        assert all(v > 0 for v in rates.values())

    def test_fig5c_no_target_has_no_adaptive_rows(self):
        result = run_fig5c(seed=0, n_items=400, repeats=1)
        assert not any("adaptive" in k for k in result.throughputs)
