"""Tests for the `python -m repro.experiments` report generator."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_quick_single_figure(self, capsys, tmp_path):
        exit_code = main(
            ["--quick", "--only", "fig4d", "--out", str(tmp_path)]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Figure 4(d)" in captured.out
        assert (tmp_path / "fig4d.txt").exists()
        assert "Figure 4(d)" in (tmp_path / "fig4d.txt").read_text()

    def test_only_filter_skips_others(self, capsys):
        main(["--quick", "--only", "fig5g"])
        captured = capsys.readouterr()
        assert "Figure 5(g)" in captured.out
        assert "Figure 4(d)" not in captured.out

    def test_unknown_only_runs_nothing(self, capsys):
        exit_code = main(["--quick", "--only", "nonexistent"])
        assert exit_code == 0
        assert "Figure" not in capsys.readouterr().out
