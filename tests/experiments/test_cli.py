"""Tests for the `python -m repro.experiments` report generator."""

import json

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_quick_single_figure(self, capsys, tmp_path):
        exit_code = main(
            ["--quick", "--only", "fig4d", "--out", str(tmp_path)]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Figure 4(d)" in captured.out
        assert (tmp_path / "fig4d.txt").exists()
        assert "Figure 4(d)" in (tmp_path / "fig4d.txt").read_text()

    def test_only_filter_skips_others(self, capsys):
        main(["--quick", "--only", "fig5g"])
        captured = capsys.readouterr()
        assert "Figure 5(g)" in captured.out
        assert "Figure 4(d)" not in captured.out

    def test_unknown_only_runs_nothing(self, capsys):
        exit_code = main(["--quick", "--only", "nonexistent"])
        assert exit_code == 0
        assert "Figure" not in capsys.readouterr().out


class TestSloFlags:
    def test_slo_evaluates_rules_and_writes_artifacts(
        self, capsys, tmp_path
    ):
        exit_code = main(
            [
                "--quick",
                "--only",
                "fig5c",
                "--slo",
                "ci_width p95 <= 1e6",
                "--slo",
                "de_facto_n p5 >= 2",
                "--health",
                "--out",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "2 rules" in out
        assert "SLO health" in out
        frames = json.loads((tmp_path / "slo_frames.json").read_text())
        assert frames["frames"]
        for line in (
            (tmp_path / "slo_alerts.jsonl").read_text().splitlines()
        ):
            json.loads(line)
        health = (tmp_path / "slo_health.txt").read_text()
        assert "ci_width p95 <= 1e+06" in health
        assert "de_facto_n p5 >= 2" in health

    def test_health_without_slo_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--quick", "--only", "fig5c", "--health"])
        assert "--health requires" in capsys.readouterr().err

    def test_malformed_rule_raises_before_running(self):
        from repro.errors import ObservabilityError

        with pytest.raises(ObservabilityError):
            main(["--quick", "--only", "fig5c", "--slo", "ci_width ??"])
