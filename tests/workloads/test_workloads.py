"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.query.expressions import Column
from repro.workloads.cartel import CarTelSimulator
from repro.workloads.queries import RandomQueryWorkload, random_expression
from repro.workloads.routes import Route, make_close_mean_pairs, make_routes
from repro.workloads.synthetic import (
    DISTRIBUTION_NAMES,
    make_distribution,
    sample_distribution,
    true_mean,
    true_variance,
)


class TestSynthetic:
    def test_five_families(self):
        assert len(DISTRIBUTION_NAMES) == 5

    def test_paper_parameterisations(self):
        # §V-A: exp(1), Gamma(2,2), N(1,1), U(0,1), Weibull(1,1).
        assert true_mean("exponential") == pytest.approx(1.0)
        assert true_mean("gamma") == pytest.approx(4.0)
        assert true_mean("normal") == pytest.approx(1.0)
        assert true_mean("uniform") == pytest.approx(0.5)
        assert true_mean("weibull") == pytest.approx(1.0)
        assert true_variance("uniform") == pytest.approx(1 / 12)
        assert true_variance("gamma") == pytest.approx(8.0)

    def test_sampling_matches_moments(self, rng):
        for name in DISTRIBUTION_NAMES:
            samples = sample_distribution(name, rng, 50_000)
            assert samples.mean() == pytest.approx(
                true_mean(name), rel=0.05
            ), name

    def test_rejects_unknown_family(self):
        with pytest.raises(ReproError):
            make_distribution("cauchy")


class TestCarTelSimulator:
    def test_deterministic_with_seed(self):
        a = CarTelSimulator(20, seed=1)
        b = CarTelSimulator(20, seed=1)
        assert a.true_mean(5) == b.true_mean(5)

    def test_observations_match_segment_moments(self, small_sim):
        sid = small_sim.segment_ids()[0]
        obs = np.concatenate(
            [small_sim.observations(sid, 5000) for _ in range(4)]
        )
        assert obs.mean() == pytest.approx(small_sim.true_mean(sid), rel=0.05)
        assert obs.var() == pytest.approx(
            small_sim.true_variance(sid), rel=0.15
        )

    def test_delays_are_positive_and_skewed(self, small_sim):
        sid = small_sim.segment_ids()[3]
        obs = small_sim.observations(sid, 5000)
        assert obs.min() > 0
        # Lognormal delays: mean above median (right skew).
        assert obs.mean() > np.median(obs)

    def test_pick_segments_distinct(self, small_sim):
        chosen = small_sim.pick_segments(30)
        assert len(set(chosen)) == 30

    def test_pick_too_many_rejected(self, small_sim):
        with pytest.raises(ReproError):
            small_sim.pick_segments(10_000)

    def test_report_stream_shape(self, small_sim):
        reports = list(small_sim.report_stream(window_minutes=10))
        assert reports, "a window should contain reports"
        sample = reports[0]
        record = sample.as_record()
        assert set(record) == {
            "segment_id", "length", "minute", "delay", "speed_limit",
        }
        assert all(0 <= r.minute < 10 for r in reports)

    def test_report_counts_heterogeneous(self, small_sim):
        reports = list(small_sim.report_stream())
        counts: dict[int, int] = {}
        for report in reports:
            counts[report.segment_id] = counts.get(report.segment_id, 0) + 1
        assert max(counts.values()) > 3 * min(counts.values())

    def test_unknown_segment_rejected(self, small_sim):
        with pytest.raises(ReproError):
            small_sim.observations(99999, 5)


class TestRandomExpressions:
    def test_operator_count_zero_is_single_column(self, rng):
        expr = random_expression(rng, ["a"], 0)
        assert expr == Column("a")

    def test_references_only_given_columns(self, rng):
        for _ in range(20):
            expr = random_expression(rng, ["a", "b"], 4)
            assert expr.columns() <= {"a", "b"}

    def test_binary_only_mode(self, rng):
        for _ in range(20):
            expr = random_expression(rng, ["a", "b", "c"], 3, binary_only=True)
            assert "sqrtabs" not in str(expr)
            assert "square" not in str(expr)
            assert "*" not in str(expr) and "/" not in str(expr)

    def test_rejects_no_columns(self, rng):
        with pytest.raises(ReproError):
            random_expression(rng, [], 2)


class TestRandomQueryWorkload:
    def test_generated_query_is_executable(self, rng):
        workload = RandomQueryWorkload(rng)
        generated = workload.generate()
        from repro.query.expressions import EvalContext

        value = generated.expression.evaluate(
            EvalContext(generated.tup, rng, 500)
        )
        assert value.sample_size == generated.df_sample_size

    def test_families_recorded(self, rng):
        generated = RandomQueryWorkload(rng).generate()
        assert set(generated.families.values()) <= set(DISTRIBUTION_NAMES)

    def test_normal_only_mode(self, rng):
        generated = RandomQueryWorkload(rng, normal_only=True).generate()
        assert set(generated.families.values()) == {"normal"}


class TestRoutes:
    def test_make_routes_basic(self, small_sim, rng):
        routes = make_routes(small_sim, 5, 10, rng)
        assert len(routes) == 5
        assert all(len(r.segment_ids) == 10 for r in routes)

    def test_route_true_mean_is_sum(self, small_sim, rng):
        route = make_routes(small_sim, 1, 5, rng)[0]
        assert route.true_mean(small_sim) == pytest.approx(
            sum(small_sim.true_mean(s) for s in route.segment_ids)
        )

    def test_route_rejects_duplicates(self):
        with pytest.raises(ReproError):
            Route(0, (1, 1, 2))

    def test_df_sample_is_min_size(self, small_sim, rng):
        route = make_routes(small_sim, 1, 4, rng)[0]
        sizes = dict(zip(route.segment_ids, [10, 20, 5, 30]))
        samples = route.segment_samples(small_sim, sizes)
        df = Route.total_delay_df_sample(samples)
        assert df.size == 5

    def test_df_sample_mean_near_route_mean(self, small_sim, rng):
        route = make_routes(small_sim, 1, 10, rng)[0]
        samples = route.segment_samples(small_sim, 500)
        df = Route.total_delay_df_sample(samples)
        assert df.mean() == pytest.approx(
            route.true_mean(small_sim), rel=0.1
        )

    def test_close_mean_pairs_hit_target_gap(self, small_sim, rng):
        pairs = make_close_mean_pairs(small_sim, 8, 10, 0.05, rng)
        for pair in pairs:
            assert pair.gap > 0  # Y always has the larger mean
            relative = pair.gap / pair.mean_x
            assert relative == pytest.approx(0.05, abs=0.04)

    def test_pair_routes_differ_in_one_segment(self, small_sim, rng):
        pair = make_close_mean_pairs(small_sim, 1, 10, 0.03, rng)[0]
        shared = set(pair.route_x.segment_ids) & set(pair.route_y.segment_ids)
        assert len(shared) == 9

    def test_rejects_bad_gap(self, small_sim, rng):
        with pytest.raises(ReproError):
            make_close_mean_pairs(small_sim, 1, 10, 0.0, rng)


class TestCongestion:
    def test_profile_shape(self):
        # Off-peak ~1.0; rush hours clearly elevated; 24h periodic.
        assert CarTelSimulator.congestion_factor(3.0) == pytest.approx(
            1.0, abs=0.01
        )
        assert CarTelSimulator.congestion_factor(8.5) == pytest.approx(1.6)
        assert CarTelSimulator.congestion_factor(17.5) > 1.55
        assert CarTelSimulator.congestion_factor(26.0) == pytest.approx(
            CarTelSimulator.congestion_factor(2.0)
        )

    def test_rush_hour_observations_slower(self, small_sim):
        sid = small_sim.segment_ids()[0]
        off_peak = small_sim.observations(sid, 4000)
        rush = small_sim.observations(sid, 4000, hour=8.5)
        assert rush.mean() > 1.4 * off_peak.mean()

    def test_report_stream_hour_matters(self):
        calm = CarTelSimulator(30, seed=3)
        busy = CarTelSimulator(30, seed=3)
        calm_delays = [r.delay for r in calm.report_stream(start_hour=3.0)]
        busy_delays = [r.delay for r in busy.report_stream(start_hour=8.5)]
        assert sum(busy_delays) / len(busy_delays) > 1.3 * (
            sum(calm_delays) / len(calm_delays)
        )
