"""Tests for JSON persistence of distributions, tuples, and databases."""

import numpy as np
import pytest

from repro.core.dfsample import DfSized
from repro.db import StreamDatabase
from repro.distributions.base import Deterministic
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.mixture import MixtureDistribution
from repro.distributions.parametric import (
    ExponentialDistribution,
    GammaDistribution,
    UniformDistribution,
    WeibullDistribution,
)
from repro.errors import ReproError
from repro.learning.kde_learner import KdeDistribution
from repro.persist import (
    distribution_from_dict,
    distribution_to_dict,
    load_database,
    save_database,
    tuple_from_dict,
    tuple_to_dict,
)
from repro.streams.tuples import UncertainTuple


ALL_DISTRIBUTIONS = [
    Deterministic(3.5),
    GaussianDistribution(1.0, 2.0),
    HistogramDistribution([0, 1, 3], [0.25, 0.75]),
    EmpiricalDistribution([1.0, 2.0, 2.0, 5.0]),
    DiscreteDistribution([1.0, 4.0], [0.4, 0.6]),
    UniformDistribution(2.0, 9.0),
    ExponentialDistribution(0.5),
    GammaDistribution(2.0, 3.0),
    WeibullDistribution(1.5, 2.0),
    KdeDistribution(np.array([1.0, 2.0, 3.0]), 0.4),
    MixtureDistribution(
        [GaussianDistribution(0, 1), ExponentialDistribution(1.0)],
        [0.3, 0.7],
    ),
]


class TestDistributionRoundTrip:
    @pytest.mark.parametrize(
        "dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__
    )
    def test_round_trip_preserves_behaviour(self, dist):
        restored = distribution_from_dict(distribution_to_dict(dist))
        assert type(restored) is type(dist)
        assert restored.mean() == pytest.approx(dist.mean())
        assert restored.variance() == pytest.approx(dist.variance())
        for x in (-1.0, 0.5, 2.0, 10.0):
            assert restored.cdf(x) == pytest.approx(dist.cdf(x))

    def test_json_safe(self):
        import json

        for dist in ALL_DISTRIBUTIONS:
            json.dumps(distribution_to_dict(dist))  # must not raise

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError):
            distribution_from_dict({"type": "cauchy"})

    def test_unserialisable_rejected(self):
        class Strange(GaussianDistribution):
            pass

        strange = Strange(0, 1)
        # Subclasses of known types serialise as their base behaviour.
        data = distribution_to_dict(strange)
        assert data["type"] == "gaussian"


class TestTupleRoundTrip:
    def test_full_tuple(self):
        tup = UncertainTuple(
            {
                "road": 19.0,
                "name": "main-st",
                "delay": DfSized(GaussianDistribution(60, 25), 12),
                "raw_dist": HistogramDistribution([0, 1], [1.0]),
            },
            probability=0.8,
            timestamp=42.0,
        )
        restored = tuple_from_dict(tuple_to_dict(tup))
        assert restored.probability == 0.8
        assert restored.timestamp == 42.0
        assert restored.value("road") == 19.0
        assert restored.value("name") == "main-st"
        delay = restored.dfsized("delay")
        assert delay.sample_size == 12
        assert delay.distribution.mean() == pytest.approx(60.0)

    def test_exact_dfsized_round_trips_none_size(self):
        tup = UncertainTuple(
            {"v": DfSized(Deterministic(1.0), None)}
        )
        restored = tuple_from_dict(tuple_to_dict(tup))
        assert restored.dfsized("v").sample_size is None


class TestDatabaseRoundTrip:
    def test_save_and_load(self, tmp_path, rng):
        db = StreamDatabase()
        db.create_stream("roads")
        from repro.learning.histogram_learner import HistogramLearner

        learner = HistogramLearner(bucket_count=4)
        for road in (1, 2):
            fitted = learner.learn(rng.normal(60, 10, 30))
            db.insert(
                "roads",
                UncertainTuple(
                    {"road": float(road), "delay": fitted.as_dfsized()}
                ),
            )
        path = tmp_path / "db.json"
        save_database(db, path)

        restored = load_database(path)
        assert restored.streams() == ["roads"]
        assert restored.count("roads") == 2
        results = restored.query("SELECT road, delay FROM roads")
        assert len(results) == 2
        assert results[0].accuracy["delay"].sample_size == 30

    def test_load_into_existing_database(self, tmp_path):
        db = StreamDatabase()
        db.create_stream("s")
        db.insert("s", {"x": 1.0})
        path = tmp_path / "db.json"
        save_database(db, path)

        target = StreamDatabase()
        target.create_stream("s")
        target.insert("s", {"x": 99.0})
        load_database(path, db=target)
        assert target.count("s") == 2

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99, "streams": {}}')
        with pytest.raises(ReproError):
            load_database(path)
