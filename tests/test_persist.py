"""Tests for JSON persistence of distributions, tuples, and databases."""

import json
import math

import numpy as np
import pytest

from repro.core.dfsample import DfSized
from repro.db import StreamDatabase
from repro.distributions.base import Deterministic
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.mixture import MixtureDistribution
from repro.distributions.parametric import (
    ExponentialDistribution,
    GammaDistribution,
    UniformDistribution,
    WeibullDistribution,
)
from repro.errors import ReproError
from repro.learning.kde_learner import KdeDistribution
from repro.persist import (
    distribution_from_dict,
    distribution_to_dict,
    load_database,
    save_database,
    tuple_from_dict,
    tuple_to_dict,
)
from repro.streams.tuples import UncertainTuple


ALL_DISTRIBUTIONS = [
    Deterministic(3.5),
    GaussianDistribution(1.0, 2.0),
    HistogramDistribution([0, 1, 3], [0.25, 0.75]),
    EmpiricalDistribution([1.0, 2.0, 2.0, 5.0]),
    DiscreteDistribution([1.0, 4.0], [0.4, 0.6]),
    UniformDistribution(2.0, 9.0),
    ExponentialDistribution(0.5),
    GammaDistribution(2.0, 3.0),
    WeibullDistribution(1.5, 2.0),
    KdeDistribution(np.array([1.0, 2.0, 3.0]), 0.4),
    MixtureDistribution(
        [GaussianDistribution(0, 1), ExponentialDistribution(1.0)],
        [0.3, 0.7],
    ),
]


class TestDistributionRoundTrip:
    @pytest.mark.parametrize(
        "dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__
    )
    def test_round_trip_preserves_behaviour(self, dist):
        restored = distribution_from_dict(distribution_to_dict(dist))
        assert type(restored) is type(dist)
        assert restored.mean() == pytest.approx(dist.mean())
        assert restored.variance() == pytest.approx(dist.variance())
        for x in (-1.0, 0.5, 2.0, 10.0):
            assert restored.cdf(x) == pytest.approx(dist.cdf(x))

    def test_json_safe(self):
        import json

        for dist in ALL_DISTRIBUTIONS:
            json.dumps(distribution_to_dict(dist))  # must not raise

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError):
            distribution_from_dict({"type": "cauchy"})

    def test_unserialisable_rejected(self):
        class Strange(GaussianDistribution):
            pass

        strange = Strange(0, 1)
        # Subclasses of known types serialise as their base behaviour.
        data = distribution_to_dict(strange)
        assert data["type"] == "gaussian"


class TestTupleRoundTrip:
    def test_full_tuple(self):
        tup = UncertainTuple(
            {
                "road": 19.0,
                "name": "main-st",
                "delay": DfSized(GaussianDistribution(60, 25), 12),
                "raw_dist": HistogramDistribution([0, 1], [1.0]),
            },
            probability=0.8,
            timestamp=42.0,
        )
        restored = tuple_from_dict(tuple_to_dict(tup))
        assert restored.probability == 0.8
        assert restored.timestamp == 42.0
        assert restored.value("road") == 19.0
        assert restored.value("name") == "main-st"
        delay = restored.dfsized("delay")
        assert delay.sample_size == 12
        assert delay.distribution.mean() == pytest.approx(60.0)

    def test_exact_dfsized_round_trips_none_size(self):
        tup = UncertainTuple(
            {"v": DfSized(Deterministic(1.0), None)}
        )
        restored = tuple_from_dict(tuple_to_dict(tup))
        assert restored.dfsized("v").sample_size is None


class TestDatabaseRoundTrip:
    def test_save_and_load(self, tmp_path, rng):
        db = StreamDatabase()
        db.create_stream("roads")
        from repro.learning.histogram_learner import HistogramLearner

        learner = HistogramLearner(bucket_count=4)
        for road in (1, 2):
            fitted = learner.learn(rng.normal(60, 10, 30))
            db.insert(
                "roads",
                UncertainTuple(
                    {"road": float(road), "delay": fitted.as_dfsized()}
                ),
            )
        path = tmp_path / "db.json"
        save_database(db, path)

        restored = load_database(path)
        assert restored.streams() == ["roads"]
        assert restored.count("roads") == 2
        results = restored.query("SELECT road, delay FROM roads")
        assert len(results) == 2
        assert results[0].accuracy["delay"].sample_size == 30

    def test_load_into_existing_database(self, tmp_path):
        db = StreamDatabase()
        db.create_stream("s")
        db.insert("s", {"x": 1.0})
        path = tmp_path / "db.json"
        save_database(db, path)

        target = StreamDatabase()
        target.create_stream("s")
        target.insert("s", {"x": 99.0})
        load_database(path, db=target)
        assert target.count("s") == 2

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99, "streams": {}}')
        with pytest.raises(ReproError):
            load_database(path)


class TestNonFiniteRoundTrip:
    """NaN/±Infinity must round-trip through strict (RFC 8259) JSON."""

    def _db_with_nonfinite(self):
        db = StreamDatabase()
        db.create_stream("s")
        db.insert(
            "s",
            UncertainTuple(
                {
                    "nan": float("nan"),
                    "pos": float("inf"),
                    "neg": float("-inf"),
                    "plain": 7.5,
                },
                timestamp=float("inf"),
            ),
        )
        return db

    def test_file_is_strict_json(self, tmp_path):
        path = tmp_path / "db.json"
        save_database(self._db_with_nonfinite(), path)
        text = path.read_text()
        # A strict parser must accept the file: no NaN/Infinity tokens.
        json.loads(text, parse_constant=lambda token: pytest.fail(
            f"non-standard JSON token {token!r} in output"
        ))

    def test_round_trip_exact(self, tmp_path):
        path = tmp_path / "db.json"
        save_database(self._db_with_nonfinite(), path)
        restored = load_database(path)
        [tup] = restored._streams["s"].tuples
        assert math.isnan(tup.value("nan"))
        assert tup.value("pos") == math.inf
        assert tup.value("neg") == -math.inf
        assert tup.value("plain") == 7.5
        assert tup.timestamp == math.inf

    def test_number_value_sentinels(self):
        from repro.persist import _value_from_dict, _value_to_dict

        for value, sentinel in [
            (float("nan"), "NaN"),
            (float("inf"), "Infinity"),
            (float("-inf"), "-Infinity"),
        ]:
            data = _value_to_dict(value)
            assert data == {"kind": "number", "value": sentinel}
            decoded = _value_from_dict(data)
            assert math.isnan(decoded) if math.isnan(value) \
                else decoded == value

    def test_bad_sentinel_rejected(self):
        from repro.persist import _value_from_dict

        with pytest.raises(ReproError):
            _value_from_dict({"kind": "number", "value": "Inf"})

    def test_second_round_trip_is_stable(self, tmp_path):
        """Save → load → save again produces identical bytes."""
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_database(self._db_with_nonfinite(), first)
        save_database(load_database(first), second)
        assert first.read_text() == second.read_text()


class TestAtomicLoad:
    """A failed load must never leave the target database half-populated."""

    def _saved_path(self, tmp_path, n_tuples=3):
        db = StreamDatabase()
        db.create_stream("roads")
        for i in range(n_tuples):
            db.insert("roads", {"road": float(i)})
        path = tmp_path / "db.json"
        save_database(db, path)
        return path

    def _target(self):
        target = StreamDatabase()
        target.create_stream("existing")
        target.insert("existing", {"x": 1.0})
        return target

    def test_truncated_file_leaves_db_untouched(self, tmp_path):
        path = self._saved_path(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        target = self._target()
        with pytest.raises(ReproError, match="not valid JSON"):
            load_database(path, db=target)
        assert target.streams() == ["existing"]
        assert target.count("existing") == 1

    def test_malformed_tuple_mid_file_leaves_db_untouched(self, tmp_path):
        path = self._saved_path(tmp_path)
        payload = json.loads(path.read_text())
        # Corrupt the *second* tuple: a naive loader would already have
        # created the stream and inserted tuple #0 before noticing.
        payload["streams"]["roads"][1] = {"attributes": {"road": {}}}
        path.write_text(json.dumps(payload))
        target = self._target()
        with pytest.raises(ReproError, match="tuple #1 in stream 'roads'"):
            load_database(path, db=target)
        assert target.streams() == ["existing"]
        assert target.count("existing") == 1

    def test_bad_streams_container_rejected(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text('{"format": 1, "streams": [1, 2]}')
        with pytest.raises(ReproError, match="streams"):
            load_database(path)

    def test_schema_conflict_checked_before_commit(self, tmp_path):
        from repro.streams.tuples import Schema

        path = self._saved_path(tmp_path)
        target = StreamDatabase()
        # The persisted tuples carry a 'road' number; this schema demands
        # a different attribute, so every insert would fail.
        target.create_stream("roads", schema=Schema([("speed", "number")]))
        before = target.count("roads")
        with pytest.raises(ReproError):
            load_database(path, db=target)
        assert target.count("roads") == before

    def test_successful_load_into_fresh_database(self, tmp_path):
        path = self._saved_path(tmp_path)
        restored = load_database(path)
        assert restored.streams() == ["roads"]
        assert restored.count("roads") == 3
