"""Tests for the StreamDatabase facade."""

import numpy as np
import pytest

from repro.core.coupled import ThreeValued
from repro.db import StreamDatabase
from repro.errors import QueryError, SchemaError, StreamError
from repro.learning.gaussian_learner import GaussianLearner
from repro.query.executor import ExecutorConfig
from repro.streams.tuples import Schema, UncertainTuple


@pytest.fixture
def db() -> StreamDatabase:
    return StreamDatabase(config=ExecutorConfig(seed=5, confidence=0.9))


def _report(road, delay, limit=25.0):
    return {"road_id": road, "delay": delay, "speed_limit": limit}


class TestStreamManagement:
    def test_create_list_drop(self, db):
        db.create_stream("roads")
        db.create_stream("alerts")
        assert db.streams() == ["alerts", "roads"]
        db.drop_stream("alerts")
        assert db.streams() == ["roads"]

    def test_duplicate_rejected(self, db):
        db.create_stream("roads")
        with pytest.raises(StreamError):
            db.create_stream("roads")

    def test_bad_name_rejected(self, db):
        with pytest.raises(StreamError):
            db.create_stream("not a name")

    def test_unknown_stream_rejected(self, db):
        with pytest.raises(StreamError):
            db.insert("ghost", {"x": 1.0})

    def test_bounded_buffer(self):
        db = StreamDatabase(max_tuples_per_stream=3)
        db.create_stream("s")
        for i in range(5):
            db.insert("s", {"x": float(i)})
        assert db.count("s") == 3


class TestInsertAndSchema:
    def test_mapping_becomes_tuple(self, db):
        db.create_stream("s")
        db.insert("s", {"x": 1.0})
        assert db.count("s") == 1

    def test_schema_enforced(self, db):
        db.create_stream("s", Schema([("x", "number")]))
        db.insert("s", {"x": 1.0})
        with pytest.raises(SchemaError):
            db.insert("s", {"x": "text"})

    def test_insert_many(self, db):
        db.create_stream("s")
        inserted = db.insert_many("s", [{"x": 1.0}, {"x": 2.0}])
        assert inserted == 2


class TestIngestObservations:
    def test_figure1_transformation(self, db, rng):
        db.create_stream("roads")
        records = (
            [_report(19, float(d)) for d in rng.normal(60, 10, 3)]
            + [_report(20, float(d), 30.0) for d in rng.normal(70, 10, 50)]
        )
        produced = db.ingest_observations(
            "roads", records, group_by="road_id", value="delay",
            carry=("speed_limit",),
        )
        assert produced == 2
        results = db.query("SELECT road_id, delay, speed_limit FROM roads")
        by_road = {
            r.value("road_id").distribution.mean(): r for r in results
        }
        assert by_road[19.0].accuracy["delay"].sample_size == 3
        assert by_road[20.0].accuracy["delay"].sample_size == 50
        assert by_road[20.0].value("speed_limit").distribution.mean() == 30.0

    def test_min_observations_skips_sparse_groups(self, db):
        db.create_stream("roads")
        produced = db.ingest_observations(
            "roads",
            [_report(1, 10.0), _report(2, 10.0), _report(2, 12.0)],
            group_by="road_id", value="delay",
        )
        assert produced == 1  # road 1 has only one observation

    def test_custom_learner(self, db, rng):
        db.create_stream("roads")
        db.ingest_observations(
            "roads",
            [_report(1, float(d)) for d in rng.normal(50, 5, 20)],
            group_by="road_id", value="delay",
            learner=GaussianLearner(),
        )
        results = db.query("SELECT delay FROM roads")
        from repro.distributions.gaussian import GaussianDistribution

        assert isinstance(
            results[0].value("delay").distribution, GaussianDistribution
        )

    def test_malformed_record_rejected(self, db):
        db.create_stream("roads")
        with pytest.raises(SchemaError):
            db.ingest_observations(
                "roads", [{"oops": 1}], group_by="road_id", value="delay",
            )


class TestQuery:
    def test_query_routes_to_named_stream(self, db, rng):
        db.create_stream("roads")
        db.create_stream("other")
        db.ingest_observations(
            "roads",
            [_report(1, float(d)) for d in rng.normal(80, 5, 30)],
            group_by="road_id", value="delay",
        )
        assert len(db.query("SELECT delay FROM roads")) == 1
        assert db.query("SELECT x FROM other") == []

    def test_unknown_source_raises(self, db):
        with pytest.raises(StreamError):
            db.query("SELECT x FROM ghost")

    def test_significance_query_through_facade(self, db, rng):
        db.create_stream("roads")
        db.ingest_observations(
            "roads",
            [_report(1, float(d)) for d in rng.normal(90, 5, 40)]
            + [_report(2, float(d)) for d in rng.normal(50, 5, 40)],
            group_by="road_id", value="delay",
        )
        results = db.query(
            "SELECT road_id FROM roads WHERE mTest(delay, '>', 70, 0.05, 0.05)"
        )
        assert len(results) == 1
        assert results[0].decisions == (ThreeValued.TRUE,)


class TestContinuousQueries:
    def test_callback_fires_on_matching_insert(self, db, rng):
        db.create_stream("readings")
        hits = []
        cq = db.register_continuous(
            "hot", "SELECT temp FROM readings WHERE temp > 100 PROB 0.9",
            hits.append,
        )
        learner = GaussianLearner()
        cool = learner.learn(rng.normal(50, 5, 20)).as_dfsized()
        hot = learner.learn(rng.normal(120, 5, 20)).as_dfsized()
        db.insert("readings", UncertainTuple({"temp": cool}))
        db.insert("readings", UncertainTuple({"temp": hot}))
        assert len(hits) == 1
        assert cq.matches == 1

    def test_only_matching_source_triggers(self, db):
        db.create_stream("a")
        db.create_stream("b")
        hits = []
        db.register_continuous(
            "watch", "SELECT x FROM a WHERE x > 0", hits.append
        )
        db.insert("b", {"x": 5.0})
        assert hits == []
        db.insert("a", {"x": 5.0})
        assert len(hits) == 1

    def test_duplicate_name_rejected(self, db):
        db.create_stream("a")
        db.register_continuous("q", "SELECT x FROM a", lambda r: None)
        with pytest.raises(QueryError):
            db.register_continuous("q", "SELECT x FROM a", lambda r: None)

    def test_unregister(self, db):
        db.create_stream("a")
        hits = []
        db.register_continuous("q", "SELECT x FROM a", hits.append)
        db.unregister_continuous("q")
        db.insert("a", {"x": 1.0})
        assert hits == []
        with pytest.raises(QueryError):
            db.unregister_continuous("q")

    def test_drop_stream_removes_its_queries(self, db):
        db.create_stream("a")
        db.register_continuous("q", "SELECT x FROM a", lambda r: None)
        db.drop_stream("a")
        assert db.continuous_queries() == []


class TestStats:
    def test_stats_reflect_activity(self, db):
        db.create_stream("s")
        db.register_continuous("watch", "SELECT x FROM s", lambda r: None)
        db.insert("s", {"x": 1.0})
        db.insert("s", {"x": 2.0})
        stats = db.stats("s")
        assert stats["buffered"] == 2
        assert stats["inserted"] == 2
        assert stats["has_schema"] is False
        assert stats["watchers"] == ["watch"]

    def test_inserted_counts_past_evictions(self):
        db = StreamDatabase(max_tuples_per_stream=2)
        db.create_stream("s")
        for i in range(5):
            db.insert("s", {"x": float(i)})
        stats = db.stats("s")
        assert stats["buffered"] == 2
        assert stats["inserted"] == 5


class TestWeightedIngestion:
    def test_age_decay_tracks_fresh_readings(self, db):
        # Old readings say 100, fresh ones say 10; a flat learner would
        # average them, decay follows the fresh evidence.
        records = (
            [{"g": 1, "v": 100.0, "mins": 60.0}] * 10
            + [{"g": 1, "v": 10.0, "mins": 0.0}] * 10
        )
        db.create_stream("s")
        db.ingest_observations(
            "s", records, group_by="g", value="v",
            age="mins", half_life=5.0,
        )
        result = db.query("SELECT v FROM s")[0]
        field = result.value("v")
        assert field.distribution.mean() == pytest.approx(10.0, abs=0.5)
        # Decay discounts the stale half: effective n well below 20.
        assert field.sample_size < 15

    def test_age_and_half_life_must_pair(self, db):
        db.create_stream("s")
        with pytest.raises(SchemaError, match="together"):
            db.ingest_observations(
                "s", [{"g": 1, "v": 1.0}], group_by="g", value="v",
                age="mins",
            )

    def test_learner_and_decay_are_exclusive(self, db):
        db.create_stream("s")
        with pytest.raises(SchemaError, match="not both"):
            db.ingest_observations(
                "s", [{"g": 1, "v": 1.0, "m": 0.0}], group_by="g",
                value="v", learner="gaussian", age="m", half_life=1.0,
            )

    def test_missing_age_column_rejected(self, db):
        db.create_stream("s")
        with pytest.raises(SchemaError, match="lacks"):
            db.ingest_observations(
                "s", [{"g": 1, "v": 1.0}], group_by="g", value="v",
                age="mins", half_life=1.0,
            )
