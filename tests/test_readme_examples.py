"""The README's quickstart snippet must actually run (doc-rot guard)."""

import re
import pathlib

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"


def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_snippet_executes(self):
        blocks = _python_blocks(README.read_text())
        assert blocks, "README lost its python quickstart"
        namespace: dict[str, object] = {}
        exec(compile(blocks[0], str(README), "exec"), namespace)  # noqa: S102
        # The snippet defines `passing`; only road 20 passes the mTest.
        passing = namespace["passing"]
        assert len(passing) == 1  # type: ignore[arg-type]

    def test_readme_mentions_all_examples_on_disk(self):
        text = README.read_text()
        examples = pathlib.Path(README.parent / "examples").glob("*.py")
        for example in examples:
            assert example.name in text, f"README omits {example.name}"
