"""Integrity tests for the public API surface."""

import importlib

import pytest

import repro


PACKAGES_WITH_ALL = [
    "repro",
    "repro.core",
    "repro.distributions",
    "repro.streams",
    "repro.query",
    "repro.learning",
    "repro.workloads",
]


class TestPublicApi:
    @pytest.mark.parametrize("module_name", PACKAGES_WITH_ALL)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", PACKAGES_WITH_ALL)
    def test_no_duplicate_exports(self, module_name):
        module = importlib.import_module(module_name)
        assert len(set(module.__all__)) == len(module.__all__)

    def test_version_present(self):
        assert repro.__version__

    def test_key_entry_points_importable(self):
        from repro import (  # noqa: F401
            StreamDatabase,
            run_query,
            coupled_tests,
            bootstrap_accuracy_info,
            accuracy_from_sample,
        )

    def test_every_public_callable_has_docstring(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"public names without docstrings: {missing}"

    def test_exceptions_share_base(self):
        from repro import (
            AccuracyError,
            DistributionError,
            LearningError,
            ParseError,
            QueryError,
            ReproError,
            SchemaError,
            StreamError,
        )

        for exc in (
            DistributionError, LearningError, AccuracyError, QueryError,
            ParseError, StreamError, SchemaError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(ParseError, QueryError)
        assert issubclass(SchemaError, StreamError)
