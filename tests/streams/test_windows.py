"""Tests for the window buffers."""

import pytest

from repro.errors import StreamError
from repro.streams.windows import CountWindow, TimeWindow, TumblingWindow


class TestCountWindow:
    def test_fills_then_evicts_fifo(self):
        window = CountWindow(3)
        assert window.add("a") is None
        assert window.add("b") is None
        assert window.add("c") is None
        assert window.is_full
        assert window.add("d") == "a"
        assert list(window) == ["b", "c", "d"]

    def test_len(self):
        window = CountWindow(5)
        window.add(1)
        window.add(2)
        assert len(window) == 2
        assert not window.is_full

    def test_size_one(self):
        window = CountWindow(1)
        assert window.add(1) is None
        assert window.add(2) == 1

    def test_rejects_bad_size(self):
        with pytest.raises(StreamError):
            CountWindow(0)


class TestTumblingWindow:
    def test_fires_on_full(self):
        window = TumblingWindow(2)
        assert window.add(1) is None
        assert window.add(2) == [1, 2]
        assert window.add(3) is None
        assert len(window) == 1

    def test_flush_returns_partial(self):
        window = TumblingWindow(3)
        window.add(1)
        window.add(2)
        assert window.flush() == [1, 2]
        assert window.flush() == []

    def test_rejects_bad_size(self):
        with pytest.raises(StreamError):
            TumblingWindow(0)


class TestTimeWindow:
    def test_evicts_expired(self):
        window = TimeWindow(10.0)
        assert window.add(0.0, "a") == []
        assert window.add(5.0, "b") == []
        assert window.add(10.5, "c") == ["a"]
        assert list(window) == ["b", "c"]

    def test_eviction_boundary_inclusive(self):
        window = TimeWindow(10.0)
        window.add(0.0, "a")
        # Exactly duration apart: the old item has aged out.
        assert window.add(10.0, "b") == ["a"]

    def test_multiple_evictions_at_once(self):
        window = TimeWindow(1.0)
        window.add(0.0, "a")
        window.add(0.5, "b")
        assert window.add(5.0, "c") == ["a", "b"]

    def test_rejects_time_regression(self):
        window = TimeWindow(10.0)
        window.add(5.0, "a")
        with pytest.raises(StreamError):
            window.add(4.0, "b")

    def test_rejects_bad_duration(self):
        with pytest.raises(StreamError):
            TimeWindow(0.0)

    def test_timestamp_accessors(self):
        window = TimeWindow(10.0)
        assert window.oldest_timestamp is None
        assert window.newest_timestamp is None
        window.add(1.0, "a")
        window.add(3.0, "b")
        assert window.oldest_timestamp == 1.0
        assert window.newest_timestamp == 3.0


class TestCountWindowClear:
    def test_clear_empties_window(self):
        window = CountWindow(3)
        window.add("a")
        window.add("b")
        window.clear()
        assert len(window) == 0
        assert not window.is_full
        assert window.add("c") is None
