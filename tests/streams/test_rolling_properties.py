"""Property tests: incremental window maintenance == from-scratch.

The satellite (c) contract: for every aggregate (avg/sum/count/min/max),
every partial learner, and the min-size tracker under adversarial
eviction orders, the O(1)-per-slide incremental state must match a
from-scratch recomputation of the same window — exactly for discrete
quantities (counts, extrema, bin counts, minimum sizes), within 1e-9
relative error for the compensated/Welford float paths.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.learning.gaussian_learner import GaussianLearner
from repro.learning.histogram_learner import HistogramLearner
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, WindowAggregate
from repro.streams.rolling import (
    MinSizeTracker,
    RollingWindowStats,
    SlidingExtremum,
)
from repro.streams.tuples import UncertainTuple

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
streams = st.lists(finite_floats, min_size=1, max_size=120)
window_sizes = st.integers(min_value=1, max_value=16)


def _close(a, b, scale=1.0):
    """Within 1e-9 of each other, relative to the data magnitude.

    Windows that nearly cancel (sum ~0 out of ±1e12 members) make error
    relative to the *residual* unattainable for any fixed-precision
    scheme; the contract is 1e-9 relative to the member magnitudes.
    """
    return a == pytest.approx(b, rel=1e-9, abs=1e-9 * max(scale, 1.0))


@given(values=streams, window_size=window_sizes)
@settings(max_examples=120, deadline=None)
def test_rolling_stats_match_from_scratch_every_slide(values, window_size):
    stats = RollingWindowStats(resum_interval=7, track_extrema=True)
    window = []
    for i, x in enumerate(values):
        variance = abs(x) / 3.0
        size = None if i % 5 == 4 else (i % 11) + 2
        stats.push(x, variance, size)
        window.append((x, variance, size))
        if len(window) > window_size:
            stats.evict_oldest()
            window.pop(0)
        assert stats.count == len(window)
        scale = max(abs(m) for m, _, _ in window)
        assert _close(
            stats.mean_sum, math.fsum(m for m, _, _ in window), scale
        )
        assert _close(
            stats.var_sum, math.fsum(v for _, v, _ in window), scale
        )
        assert stats.min_mean == min(m for m, _, _ in window)
        assert stats.max_mean == max(m for m, _, _ in window)
        sizes = [n for _, _, n in window if n is not None]
        assert stats.df_size == (min(sizes) if sizes else None)


@pytest.mark.parametrize("agg", ["avg", "sum", "count", "min", "max"])
@given(values=streams, window_size=window_sizes)
@settings(max_examples=40, deadline=None)
def test_window_aggregate_matches_naive(agg, values, window_size):
    tuples = [
        UncertainTuple(
            {"x": DfSized(GaussianDistribution(v, abs(v) / 7.0 + 1.0), 10)}
        )
        for v in values
    ]
    sink = Pipeline(
        [WindowAggregate("x", window_size, agg=agg), CollectSink()]
    ).run(tuples)
    assert len(sink.results) == len(values)
    for i, tup in enumerate(sink.results):
        window = values[max(0, i - window_size + 1) : i + 1]
        got = tup.value(agg)
        if agg == "count":
            assert got == float(len(window))
        elif agg == "min":
            assert got == min(window)
        elif agg == "max":
            assert got == max(window)
        elif agg == "sum":
            assert _close(
                got.distribution.mu, math.fsum(window), max(map(abs, window))
            )
        else:
            assert _close(
                got.distribution.mu,
                math.fsum(window) / len(window),
                max(map(abs, window)),
            )


@given(values=streams, window_size=window_sizes)
@settings(max_examples=100, deadline=None)
def test_sliding_extremum_matches_naive(values, window_size):
    lo = SlidingExtremum("min")
    hi = SlidingExtremum("max")
    window = []
    for x in values:
        lo.push(x)
        hi.push(x)
        window.append(x)
        if len(window) > window_size:
            window.pop(0)
            lo.evict()
            hi.evict()
        assert lo.value == min(window)
        assert hi.value == max(window)


@given(
    events=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=8)),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=100, deadline=None)
def test_min_tracker_under_adversarial_orders(events):
    """Arbitrary interleavings of add/discard (any member, not FIFO)."""
    tracker = MinSizeTracker()
    multiset = []
    for is_add, size in events:
        if is_add or not multiset:
            tracker.add(size)
            multiset.append(size)
        else:
            # Discard an arbitrary *present* member chosen by the draw.
            victim = multiset.pop(size % len(multiset))
            tracker.discard(victim)
        assert tracker.minimum == (min(multiset) if multiset else None)
        assert len(tracker) == len(multiset)


@given(values=st.lists(finite_floats, min_size=2, max_size=80))
@settings(max_examples=100, deadline=None)
def test_gaussian_partial_matches_from_scratch(values):
    window_size = 8
    learner = GaussianLearner()
    state = learner.partial_begin(resum_interval=5)
    window = []
    for x in values:
        learner.partial_add(state, x)
        window.append(x)
        if len(window) > window_size:
            learner.partial_evict(state, window.pop(0))
        if len(window) < 2:
            continue
        ref = learner.learn(list(window)).distribution
        dist = learner.partial_distribution(state)
        scale = max(map(abs, window))
        assert _close(dist.mu, ref.mu, scale)
        assert dist.sigma2 == pytest.approx(
            ref.sigma2, rel=1e-9, abs=1e-9 * max(1.0, scale * scale)
        )


@given(values=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=80))
@settings(max_examples=100, deadline=None)
def test_histogram_partial_counts_match_from_scratch(values):
    window_size = 12
    learner = HistogramLearner(edges=[0.0, 2.5, 5.0, 7.5, 10.0])
    state = learner.partial_begin()
    window = []
    for x in values:
        learner.partial_add(state, x)
        window.append(x)
        if len(window) > window_size:
            learner.partial_evict(state, window.pop(0))
        ref = learner.learn(list(window)).distribution
        dist = learner.partial_distribution(state)
        # Bin counts are integers: incremental must be *exactly* equal.
        assert list(dist.probabilities) == list(ref.probabilities)


@given(
    values=st.lists(finite_floats, min_size=2, max_size=60, unique=True)
)
@settings(max_examples=60, deadline=None)
def test_partial_state_exact_right_after_resum(values):
    learner = GaussianLearner()
    interval = 3
    state = learner.partial_begin(resum_interval=interval)
    window = []
    evictions = 0
    for x in values:
        learner.partial_add(state, x)
        window.append(x)
        if len(window) > 4:
            learner.partial_evict(state, window.pop(0))
            evictions += 1
            if evictions % interval == 0 and len(window) >= 1:
                # Just re-summed: mean equals the fsum reference exactly.
                assert state.mean == math.fsum(window) / len(window)
