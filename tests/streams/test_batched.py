"""Batched execution path: ``Pipeline.run_batched`` / ``receive_many``.

The contract is strict: for any pipeline — including windowed operators,
filters, and operators that drain buffered state at flush time — the
batched path must produce byte-identical sink contents to the per-tuple
path, for every batch size.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.streams.engine import Pipeline
from repro.streams.groupby import GroupedAggregate
from repro.streams.operators import (
    CollectSink,
    CountingSink,
    Derive,
    Operator,
    ProbabilisticFilter,
    Project,
    Select,
    SlidingGaussianAverage,
    WindowAggregate,
)
from repro.streams.tuples import UncertainTuple


def make_tuples(count: int, seed: int) -> list[UncertainTuple]:
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "g": int(rng.integers(0, 3)),
                "x": DfSized(
                    GaussianDistribution(
                        float(rng.normal(0, 5)),
                        float(rng.uniform(0.1, 2.0)),
                    ),
                    int(rng.integers(2, 30)),
                ),
            },
            probability=float(rng.uniform(0.5, 1.0)),
        )
        for _ in range(count)
    ]


def windowed_pipeline() -> Pipeline:
    """Windows, filters, and a flush-time drain in one chain."""
    return Pipeline(
        [
            Derive("y", lambda t: t.dfsized("x").distribution.mean() * 2.0),
            Select(lambda t: t.value("y") > -6.0),
            SlidingGaussianAverage("x", 7),
            WindowAggregate("avg", 5, agg="avg", output="wavg"),
            GroupedAggregate(
                "g", "wavg", 4, agg="sum", output="gsum", emit_every=False
            ),
            CollectSink(),
        ]
    )


def emitting_pipeline() -> Pipeline:
    """Per-arrival emission so the sink holds many tuples."""
    return Pipeline(
        [
            ProbabilisticFilter(
                lambda t: 0.9 if t.value("g") != 1 else 0.4, threshold=0.3
            ),
            SlidingGaussianAverage("x", 5),
            Project(["g", "avg"]),
            WindowAggregate("avg", 3, agg="max", output="peak"),
            CollectSink(),
        ]
    )


def renders(sink: CollectSink) -> list[str]:
    return [repr(t) for t in sink.results]


class TestRunBatchedEquivalence:
    @given(
        batch_size=st.integers(min_value=1, max_value=400),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_windowed_pipeline_identical(self, batch_size, seed):
        tuples = make_tuples(120, seed)
        reference = windowed_pipeline().run(tuples)
        batched = windowed_pipeline().run_batched(tuples, batch_size)
        assert renders(batched) == renders(reference)

    @given(
        batch_size=st.integers(min_value=1, max_value=400),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_emitting_pipeline_identical(self, batch_size, seed):
        tuples = make_tuples(120, seed)
        reference = emitting_pipeline().run(tuples)
        batched = emitting_pipeline().run_batched(tuples, batch_size)
        assert len(batched.results) > 0
        assert renders(batched) == renders(reference)

    def test_empty_source(self):
        sink = windowed_pipeline().run_batched([], 16)
        assert sink.results == []

    def test_rejects_bad_batch_size(self):
        with pytest.raises(StreamError):
            windowed_pipeline().run_batched([], 0)

    def test_counting_sink_counts_batches(self):
        tuples = make_tuples(57, 3)
        pipeline = Pipeline([CountingSink()])
        pipeline.run_batched(tuples, 10)
        assert pipeline.sink.count == 57


class TestReceiveManyFallback:
    def test_default_falls_back_to_process_and_rebatches(self):
        """Operators without a batch override still see/forward batches."""
        seen_batches = []

        class Doubler(Operator):
            def process(self, tup: UncertainTuple) -> None:
                self.emit(tup)
                self.emit(tup)

        class RecordingSink(CollectSink):
            def receive_many(self, tuples) -> None:
                seen_batches.append(len(tuples))
                super().receive_many(tuples)

        pipeline = Pipeline([Doubler(), RecordingSink()])
        tuples = [UncertainTuple({"x": float(i)}) for i in range(6)]
        pipeline.run_batched(tuples, 3)
        assert pipeline.sink is not None
        assert len(pipeline.sink.results) == 12
        # Two input batches of 3, each doubled downstream as one batch.
        assert seen_batches == [6, 6]

    def test_emit_inside_batch_restores_downstream(self):
        class Failing(Operator):
            def process(self, tup: UncertainTuple) -> None:
                if tup.value("x") == 2.0:
                    raise StreamError("boom")
                self.emit(tup)

        sink = CollectSink()
        failing = Failing()
        pipeline = Pipeline([failing, sink])
        with pytest.raises(StreamError):
            pipeline.run_batched(
                [UncertainTuple({"x": float(i)}) for i in range(4)], 10
            )
        # The downstream link must survive the failure so the operator
        # is still usable on the per-tuple path.
        failing.receive(UncertainTuple({"x": 9.0}))
        assert any(t.value("x") == 9.0 for t in sink.results)

    def test_push_many_feeds_head(self):
        pipeline = Pipeline([CountingSink()])
        pipeline.push_many([UncertainTuple({"x": 1.0})] * 5)
        pipeline.push_many([])
        assert pipeline.sink.count == 5
