"""Tests for stream sources and throughput measurement."""

import pytest

from repro.errors import SchemaError, StreamError
from repro.streams.engine import Pipeline
from repro.streams.operators import CountingSink
from repro.streams.stream import iter_source, replay_source
from repro.streams.throughput import ThroughputMeter, measure_throughput
from repro.streams.tuples import Schema, UncertainTuple


class TestIterSource:
    def test_wraps_mappings(self):
        tuples = list(iter_source([{"a": 1.0}, {"a": 2.0}]))
        assert all(isinstance(t, UncertainTuple) for t in tuples)
        assert tuples[1].value("a") == 2.0

    def test_passes_tuples_through(self):
        original = UncertainTuple({"a": 1.0}, probability=0.5)
        tuples = list(iter_source([original]))
        assert tuples[0] is original

    def test_validates_against_schema(self):
        schema = Schema([("a", "number")])
        with pytest.raises(SchemaError):
            list(iter_source([{"b": 1.0}], schema))


class TestReplaySource:
    def test_regenerates_timestamps(self):
        source = [UncertainTuple({"a": 1.0}, timestamp=99.0)] * 3
        replayed = list(replay_source(source, start_time=10.0, interval=2.0))
        assert [t.timestamp for t in replayed] == [10.0, 12.0, 14.0]

    def test_preserves_attributes_and_probability(self):
        source = [UncertainTuple({"a": 7.0}, probability=0.3)]
        replayed = list(replay_source(source))
        assert replayed[0].value("a") == 7.0
        assert replayed[0].probability == 0.3


class TestThroughputMeter:
    def test_accumulates(self):
        meter = ThroughputMeter()
        meter.record(100, 2.0)
        meter.record(100, 2.0)
        assert meter.tuples_per_second == pytest.approx(50.0)

    def test_zero_time_is_zero_rate(self):
        assert ThroughputMeter().tuples_per_second == 0.0

    def test_tuples_without_time_is_infinite_not_zero(self):
        # Work that finished below the clock resolution must not be
        # reported as zero throughput — that silently inverts the
        # meaning of a "fast" measurement.
        meter = ThroughputMeter()
        meter.record(100, 0.0)
        assert meter.tuples_per_second == float("inf")

    def test_rejects_negative(self):
        with pytest.raises(StreamError):
            ThroughputMeter().record(-1, 1.0)


class TestMeasureThroughput:
    def test_positive_rate(self):
        tuples = [UncertainTuple({"x": float(i)}) for i in range(200)]
        rate = measure_throughput(
            lambda: Pipeline([CountingSink()]), tuples, repeats=2
        )
        assert rate > 0

    def test_fresh_pipeline_per_repeat(self):
        built = []

        def factory() -> Pipeline:
            pipe = Pipeline([CountingSink()])
            built.append(pipe)
            return pipe

        tuples = [UncertainTuple({"x": 1.0})] * 10
        measure_throughput(factory, tuples, repeats=3)
        assert len(built) == 3
        assert all(p.sink.count == 10 for p in built)

    def test_rejects_empty_tuples(self):
        with pytest.raises(StreamError):
            measure_throughput(lambda: Pipeline([CountingSink()]), [], 1)

    def test_rejects_zero_repeats(self):
        tuples = [UncertainTuple({"x": 1.0})]
        with pytest.raises(StreamError):
            measure_throughput(
                lambda: Pipeline([CountingSink()]), tuples, 0
            )

    def test_batched_path_counts_all_tuples(self):
        built = []

        def factory() -> Pipeline:
            pipe = Pipeline([CountingSink()])
            built.append(pipe)
            return pipe

        tuples = [UncertainTuple({"x": float(i)}) for i in range(200)]
        rate = measure_throughput(factory, tuples, repeats=2, batch_size=64)
        assert rate > 0
        assert all(p.sink.count == 200 for p in built)

    def test_unmeasurable_elapsed_time_raises(self, monkeypatch):
        # A clock too coarse to see any repeat must be an error, not a
        # silent 0.0 that poisons downstream relative-throughput math.
        monkeypatch.setattr(
            "repro.streams.throughput.time.perf_counter", lambda: 42.0
        )
        tuples = [UncertainTuple({"x": 1.0})] * 10
        with pytest.raises(StreamError, match="clock resolution"):
            measure_throughput(
                lambda: Pipeline([CountingSink()]), tuples, repeats=3
            )
