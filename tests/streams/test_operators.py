"""Tests for the stream operators and pipeline engine."""

import numpy as np
import pytest

from repro.core.coupled import ThreeValued
from repro.core.dfsample import DfSized
from repro.core.predicates import FieldStats, MTest
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.learning.gaussian_learner import GaussianLearner
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CollectSink,
    CountingSink,
    Derive,
    ProbabilisticFilter,
    Project,
    Select,
    SignificanceFilter,
    SlidingGaussianAverage,
    WindowAggregate,
)
from repro.streams.tuples import UncertainTuple


def _tuples(values, probability=1.0):
    return [
        UncertainTuple({"x": float(v)}, probability=probability)
        for v in values
    ]


class TestSelect:
    def test_filters_by_predicate(self):
        pipe = Pipeline(
            [Select(lambda t: t.value("x") > 2), CollectSink()]
        )
        sink = pipe.run(_tuples([1, 2, 3, 4]))
        assert [t.value("x") for t in sink.results] == [3.0, 4.0]


class TestProject:
    def test_keeps_named_attributes(self):
        pipe = Pipeline([Project(["a"]), CollectSink()])
        sink = pipe.run([UncertainTuple({"a": 1.0, "b": 2.0})])
        assert sink.results[0].attributes == {"a": 1.0}

    def test_rejects_empty_projection(self):
        with pytest.raises(StreamError):
            Project([])


class TestDerive:
    def test_adds_computed_attribute(self):
        pipe = Pipeline(
            [Derive("double", lambda t: t.value("x") * 2), CollectSink()]
        )
        sink = pipe.run(_tuples([3]))
        assert sink.results[0].value("double") == 6.0
        assert sink.results[0].value("x") == 3.0


class TestProbabilisticFilter:
    def test_scales_membership_probability(self):
        pipe = Pipeline(
            [ProbabilisticFilter(lambda t: 0.5), CollectSink()]
        )
        sink = pipe.run(_tuples([1], probability=0.8))
        assert sink.results[0].probability == pytest.approx(0.4)

    def test_drops_zero_probability(self):
        pipe = Pipeline(
            [ProbabilisticFilter(lambda t: 0.0), CollectSink()]
        )
        sink = pipe.run(_tuples([1, 2]))
        assert len(sink.results) == 0

    def test_threshold_drops_below(self):
        pipe = Pipeline(
            [
                ProbabilisticFilter(
                    lambda t: 0.3 if t.value("x") < 2 else 0.9,
                    threshold=0.5,
                ),
                CollectSink(),
            ]
        )
        sink = pipe.run(_tuples([1, 3]))
        assert len(sink.results) == 1
        assert sink.results[0].value("x") == 3.0

    def test_rejects_out_of_range_probability(self):
        pipe = Pipeline([ProbabilisticFilter(lambda t: 1.5), CollectSink()])
        with pytest.raises(StreamError):
            pipe.run(_tuples([1]))


class TestSignificanceFilter:
    @staticmethod
    def _factory(tup):
        field = FieldStats.from_dfsized(tup.dfsized("speed"))
        return MTest(field, ">", 50.0, 0.05)

    def _tuple(self, mean, n=30):
        return UncertainTuple(
            {"speed": DfSized(GaussianDistribution(mean, 25.0), n)}
        )

    def test_keeps_true_drops_false(self):
        op = SignificanceFilter(self._factory)
        pipe = Pipeline([op, CollectSink()])
        sink = pipe.run([self._tuple(80.0), self._tuple(20.0)])
        assert len(sink.results) == 1
        assert op.decisions[ThreeValued.TRUE] == 1
        assert op.decisions[ThreeValued.FALSE] == 1

    def test_unsure_policy(self):
        marginal = self._tuple(50.5)
        dropped = SignificanceFilter(self._factory, keep_unsure=False)
        Pipeline([dropped, CollectSink()]).run([marginal])
        assert dropped.decisions[ThreeValued.UNSURE] == 1

        kept = SignificanceFilter(self._factory, keep_unsure=True)
        sink = Pipeline([kept, CollectSink()]).run([marginal])
        assert len(sink.results) == 1


class TestSlidingGaussianAverage:
    def _stream(self, rng, count=10, n=20):
        learner = GaussianLearner()
        return [
            UncertainTuple(
                {"value": learner.learn(rng.normal(100, 5, n)).as_dfsized()}
            )
            for _ in range(count)
        ]

    def test_exact_average_of_gaussians(self):
        gaussians = [
            GaussianDistribution(10, 4),
            GaussianDistribution(20, 8),
        ]
        tuples = [
            UncertainTuple({"value": DfSized(g, 20)}) for g in gaussians
        ]
        pipe = Pipeline([SlidingGaussianAverage("value", 5), CollectSink()])
        sink = pipe.run(tuples)
        last = sink.results[-1].value("avg")
        assert last.distribution.mu == pytest.approx(15.0)
        assert last.distribution.sigma2 == pytest.approx(3.0)  # 12/4
        assert last.sample_size == 20

    def test_window_slides(self, rng):
        pipe = Pipeline([SlidingGaussianAverage("value", 3), CollectSink()])
        sink = pipe.run(self._stream(rng, count=10))
        assert len(sink.results) == 10

    def test_incremental_matches_direct(self, rng):
        tuples = self._stream(rng, count=50)
        pipe = Pipeline([SlidingGaussianAverage("value", 8), CollectSink()])
        sink = pipe.run(tuples)
        # Recompute the last window directly.
        members = [t.dfsized("value").distribution for t in tuples[-8:]]
        direct = GaussianDistribution.average(members)
        result = sink.results[-1].value("avg").distribution
        assert result.mu == pytest.approx(direct.mu)
        assert result.sigma2 == pytest.approx(direct.sigma2)

    def test_min_sample_size_tracked_through_eviction(self):
        sizes = [30, 10, 20, 25]
        tuples = [
            UncertainTuple(
                {"value": DfSized(GaussianDistribution(0, 1), n)}
            )
            for n in sizes
        ]
        pipe = Pipeline([SlidingGaussianAverage("value", 2), CollectSink()])
        sink = pipe.run(tuples)
        # Window contents per step: [30], [30,10], [10,20], [20,25].
        seen = [t.value("avg").sample_size for t in sink.results]
        assert seen == [30, 10, 10, 20]

    def test_emit_partial_false_waits_for_full_window(self, rng):
        pipe = Pipeline(
            [
                SlidingGaussianAverage("value", 5, emit_partial=False),
                CollectSink(),
            ]
        )
        sink = pipe.run(self._stream(rng, count=7))
        assert len(sink.results) == 3  # windows at items 5, 6, 7

    def test_rejects_non_gaussian(self):
        pipe = Pipeline([SlidingGaussianAverage("value", 2), CollectSink()])
        with pytest.raises(StreamError):
            pipe.run([UncertainTuple({"value": 3.0})])


class TestWindowAggregate:
    def _tuples(self, means):
        return [
            UncertainTuple(
                {"v": DfSized(GaussianDistribution(m, 1.0), 10)}
            )
            for m in means
        ]

    def test_avg(self):
        pipe = Pipeline([WindowAggregate("v", 2, "avg"), CollectSink()])
        sink = pipe.run(self._tuples([2.0, 4.0]))
        result = sink.results[-1].value("avg")
        assert result.distribution.mean() == pytest.approx(3.0)
        assert result.sample_size == 10

    def test_sum(self):
        pipe = Pipeline([WindowAggregate("v", 3, "sum"), CollectSink()])
        sink = pipe.run(self._tuples([1.0, 2.0, 3.0]))
        result = sink.results[-1].value("sum")
        assert result.distribution.mean() == pytest.approx(6.0)
        assert result.distribution.variance() == pytest.approx(3.0)

    def test_count_min_max(self):
        means = [5.0, 1.0, 3.0]
        for agg, expected in (("count", 3.0), ("min", 1.0), ("max", 5.0)):
            pipe = Pipeline([WindowAggregate("v", 5, agg), CollectSink()])
            sink = pipe.run(self._tuples(means))
            assert sink.results[-1].value(agg) == pytest.approx(expected)

    def test_works_on_plain_numbers(self):
        pipe = Pipeline([WindowAggregate("x", 2, "avg"), CollectSink()])
        sink = pipe.run(_tuples([2.0, 6.0]))
        result = sink.results[-1].value("avg")
        assert result.distribution.mean() == pytest.approx(4.0)
        assert result.sample_size is None  # exact inputs

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(StreamError):
            WindowAggregate("v", 2, "median")


class TestPipeline:
    def test_chains_operators_in_order(self):
        pipe = Pipeline(
            [
                Derive("y", lambda t: t.value("x") + 1),
                Select(lambda t: t.value("y") > 2),
                CountingSink(),
            ]
        )
        sink = pipe.run(_tuples([0, 1, 2, 3]))
        assert sink.count == 2

    def test_rejects_empty(self):
        with pytest.raises(StreamError):
            Pipeline([])

    def test_push_single_tuple(self):
        pipe = Pipeline([CollectSink()])
        pipe.push(UncertainTuple({"x": 1.0}))
        assert len(pipe.sink.results) == 1
