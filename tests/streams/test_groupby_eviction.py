"""GROUP BY state bounds: TTL reclamation + chunked synopsis mode.

Regression suite for the historical leak: ``GroupedAggregate`` kept one
``RollingWindowStats`` per key forever, so a churning key space (every
tuple a fresh key) grew state without bound.  ``expire_after`` bounds the
live key set; ``synopsis="chunked"`` bounds the per-key window state.
"""

import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.streams.engine import Pipeline
from repro.streams.groupby import GroupedAggregate
from repro.streams.operators import CollectSink
from repro.streams.tuples import UncertainTuple


def _tuple(key, mean, n=10):
    return UncertainTuple(
        {"road": key, "delay": DfSized(GaussianDistribution(mean, 1.0), n)}
    )


def _run(op, tuples):
    sink = CollectSink()
    Pipeline([op, sink]).run(tuples)
    return sink.results


class TestExpireAfter:
    def test_churning_keys_stay_bounded(self):
        """Every tuple a fresh key: live groups must plateau at the TTL."""
        op = GroupedAggregate(
            "road", "delay", window_size=4, expire_after=100
        )
        _run(op, [_tuple(k, float(k % 7)) for k in range(5000)])
        assert op.group_count <= 100
        # The leaky behavior this regresses against:
        leaky = GroupedAggregate("road", "delay", window_size=4)
        _run(leaky, [_tuple(k, 0.0) for k in range(5000)])
        assert leaky.group_count == 5000

    def test_drained_group_is_reclaimed(self):
        op = GroupedAggregate(
            "road", "delay", window_size=8, expire_after=10
        )
        stream = [_tuple("cold", 1.0)] + [
            _tuple("hot", 2.0) for _ in range(30)
        ]
        _run(op, stream)
        assert op.group_count == 1  # only the hot key survives

    def test_hot_key_keeps_full_window(self):
        """A key refreshed faster than the TTL aggregates as without it."""
        stream = [_tuple("hot", float(i)) for i in range(20)]
        plain = GroupedAggregate("road", "delay", window_size=5)
        ttld = GroupedAggregate(
            "road", "delay", window_size=5, expire_after=5
        )
        expected = _run(plain, stream)[-1].value("avg").distribution.mean()
        observed = _run(ttld, stream)[-1].value("avg").distribution.mean()
        assert observed == pytest.approx(expected)

    def test_window_eviction_credits_prevent_double_eviction(self):
        """Members evicted by the per-group window must not be evicted
        again when their TTL entry expires (the count would go negative
        and the group would drain early)."""
        op = GroupedAggregate(
            "road", "delay", window_size=2, expire_after=6
        )
        results = _run(op, [_tuple("k", float(i)) for i in range(50)])
        assert op.group_count == 1
        final = results[-1].value("avg").distribution.mean()
        assert final == pytest.approx((48.0 + 49.0) / 2.0)

    def test_state_bytes_shrinks_after_reclamation(self):
        op = GroupedAggregate(
            "road", "delay", window_size=4, expire_after=50
        )
        sink = CollectSink()
        pipe = Pipeline([op, sink])
        pipe.run([_tuple(k, 0.0) for k in range(500)])
        bounded = op.state_bytes()
        leaky = GroupedAggregate("road", "delay", window_size=4)
        _run(leaky, [_tuple(k, 0.0) for k in range(500)])
        assert bounded < leaky.state_bytes() / 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(StreamError):
            GroupedAggregate("road", "delay", 4, expire_after=0)
        with pytest.raises(StreamError):
            GroupedAggregate("road", "delay", 4, synopsis="approximate")


class TestChunkedSynopsis:
    def test_matches_exact_average_on_stable_stream(self):
        stream = [
            _tuple("k", 10.0 + (i % 5) * 0.5) for i in range(400)
        ]
        exact = GroupedAggregate("road", "delay", window_size=128)
        chunked = GroupedAggregate(
            "road", "delay", window_size=128, synopsis="chunked"
        )
        want = _run(exact, stream)[-1].value("avg").distribution.mean()
        got = _run(chunked, stream)[-1].value("avg").distribution.mean()
        # Chunked eviction is stale by up to one chunk; on a stream whose
        # values cycle every 5 tuples that staleness is value-neutral.
        assert got == pytest.approx(want, abs=0.3)

    def test_per_key_state_is_bounded(self):
        window = 4096
        stream = [_tuple("k", float(i % 17)) for i in range(window)]
        exact = GroupedAggregate("road", "delay", window_size=window)
        chunked = GroupedAggregate(
            "road", "delay", window_size=window, synopsis="chunked"
        )
        _run(exact, stream)
        _run(chunked, stream)
        # The reason the mode exists: >=10x smaller per-key state once
        # the window is large.
        assert chunked.state_bytes() * 10 <= exact.state_bytes()

    def test_count_aggregate_tracks_window(self):
        op = GroupedAggregate(
            "road", "delay", window_size=16, agg="count", synopsis="chunked"
        )
        results = _run(op, [_tuple("k", 1.0) for _ in range(100)])
        assert results[-1].value("count") == pytest.approx(16.0)

    def test_composes_with_expire_after(self):
        op = GroupedAggregate(
            "road",
            "delay",
            window_size=8,
            synopsis="chunked",
            expire_after=64,
        )
        _run(op, [_tuple(k % 200, float(k % 3)) for k in range(4000)])
        assert op.group_count <= 200
        assert op.state_bytes() > 0
