"""Unit tests for the struct-of-arrays columnar batch."""

import pickle

import numpy as np
import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.streams.columnar import (
    EXACT_SIZE,
    ArrayColumn,
    ColumnarBatch,
    FloatColumn,
    GaussianDfColumn,
    IntColumn,
    ObjectColumn,
    as_columnar,
)
from repro.streams.operators import CollectSink, Derive, Project, Select
from repro.streams.tuples import UncertainTuple


def _mixed_tuples(n=8):
    rng = np.random.default_rng(3)
    return [
        UncertainTuple(
            {
                "x": float(rng.normal()),
                "k": i,
                "g": DfSized(
                    GaussianDistribution(float(i), float(i) + 1.0),
                    None if i % 3 == 0 else 10 + i,
                ),
                "points": rng.normal(0.0, 1.0, 5),
                "tag": f"t{i % 2}",
            },
            probability=0.5 + i / (2 * n),
            timestamp=float(i),
        )
        for i in range(n)
    ]


class TestInference:
    def test_column_kinds(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        assert isinstance(batch.column("x"), FloatColumn)
        assert isinstance(batch.column("k"), IntColumn)
        assert isinstance(batch.column("g"), GaussianDfColumn)
        assert isinstance(batch.column("points"), ArrayColumn)
        assert isinstance(batch.column("tag"), ObjectColumn)
        assert batch.column("missing") is None

    def test_exact_size_sentinel(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        sizes = batch.column("g").sizes
        assert sizes[0] == EXACT_SIZE
        assert batch[0].value("g").sample_size is None
        assert batch[1].value("g").sample_size == 11

    def test_numpy_scalars_stay_objects(self):
        # np.float64 pickles differently from float: strict inference
        # must NOT absorb it into an f8 column.
        tuples = [
            UncertainTuple({"v": np.float64(1.5)}),
            UncertainTuple({"v": np.float64(2.5)}),
        ]
        batch = ColumnarBatch.from_tuples(tuples)
        assert isinstance(batch.column("v"), ObjectColumn)
        assert type(batch[0].value("v")) is np.float64

    def test_int64_overflow_falls_back_to_objects(self):
        big = 2**70
        batch = ColumnarBatch.from_tuples(
            [UncertainTuple({"v": big}), UncertainTuple({"v": -big})]
        )
        assert isinstance(batch.column("v"), ObjectColumn)
        assert batch[0].value("v") == big

    def test_ragged_arrays_fall_back_to_objects(self):
        batch = ColumnarBatch.from_tuples(
            [
                UncertainTuple({"v": np.zeros(3)}),
                UncertainTuple({"v": np.zeros(4)}),
            ]
        )
        assert isinstance(batch.column("v"), ObjectColumn)

    def test_non_uniform_layout_rejected(self):
        tuples = [
            UncertainTuple({"a": 1.0}),
            UncertainTuple({"b": 1.0}),
        ]
        with pytest.raises(StreamError, match="uniform attribute layout"):
            ColumnarBatch.from_tuples(tuples)
        assert as_columnar(tuples) is None

    def test_as_columnar_passthrough(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        assert as_columnar(batch) is batch


class TestRoundTrip:
    def test_materialized_tuples_pickle_identical(self):
        tuples = _mixed_tuples()
        batch = ColumnarBatch.from_tuples(tuples)
        assert [pickle.dumps(t) for t in batch.to_tuples()] == [
            pickle.dumps(t) for t in tuples
        ]

    def test_from_to_from_is_identity(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        assert ColumnarBatch.from_tuples(batch.to_tuples()) == batch

    def test_empty(self):
        batch = ColumnarBatch.from_tuples([])
        assert len(batch) == 0
        assert batch.to_tuples() == []
        assert ColumnarBatch.from_tuples(batch.to_tuples()) == batch


class TestSequenceProtocol:
    def test_indexing(self):
        tuples = _mixed_tuples()
        batch = ColumnarBatch.from_tuples(tuples)
        assert pickle.dumps(batch[3]) == pickle.dumps(tuples[3])
        assert pickle.dumps(batch[-1]) == pickle.dumps(tuples[-1])
        with pytest.raises(IndexError):
            batch[len(tuples)]

    def test_slice_and_take(self):
        tuples = _mixed_tuples()
        batch = ColumnarBatch.from_tuples(tuples)

        def dumps(items):
            return [pickle.dumps(t) for t in items]

        assert dumps(batch.slice(2, 5)) == dumps(tuples[2:5])
        assert dumps(batch[2:5]) == dumps(tuples[2:5])
        assert dumps(batch.take([5, 0, 3])) == dumps(
            [tuples[5], tuples[0], tuples[3]]
        )

    def test_probability_and_timestamp_survive(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        assert batch[2].probability == batch.probability(2)
        assert type(batch.probability(2)) is float
        assert batch[2].timestamp == 2.0
        assert type(batch.timestamp(2)) is float


class TestColumnOps:
    def test_with_column_appends_and_replaces(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        doubled = FloatColumn(batch.column("x").data * 2.0)
        appended = batch.with_column("x2", doubled)
        assert appended.names == batch.names + ("x2",)
        replaced = batch.with_column("x", doubled)
        assert replaced.names == batch.names
        with pytest.raises(StreamError, match="rows"):
            batch.with_column("bad", FloatColumn(np.zeros(2)))

    def test_project(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        projected = batch.project(["k", "x"])
        assert projected.names == ("k", "x")
        assert projected[0].attributes == {
            "k": batch[0].value("k"), "x": batch[0].value("x")
        }
        with pytest.raises(StreamError, match="no columns"):
            batch.project(["nope"])

    def test_concat(self):
        tuples = _mixed_tuples(10)
        batch = ColumnarBatch.from_tuples(tuples)
        merged = ColumnarBatch.concat([batch.slice(0, 4), batch.slice(4, 10)])
        assert merged == batch

    def test_concat_schema_mismatch(self):
        a = ColumnarBatch.from_tuples([UncertainTuple({"v": 1.0})])
        b = ColumnarBatch.from_tuples([UncertainTuple({"v": 1})])
        with pytest.raises(StreamError, match="schemas"):
            ColumnarBatch.concat([a, b])

    def test_interleave_restores_input_order(self):
        tuples = _mixed_tuples(9)
        batch = ColumnarBatch.from_tuples(tuples)
        evens = list(range(0, 9, 2))
        odds = list(range(1, 9, 2))
        merged = ColumnarBatch.interleave(
            [batch.take(evens), batch.take(odds)], [evens, odds], 9
        )
        assert merged == batch


class TestPayloadTransport:
    @pytest.mark.parametrize("use_shm", [False, True])
    def test_payload_roundtrip(self, use_shm):
        batch = ColumnarBatch.from_tuples(_mixed_tuples(64))
        payload, owners = batch.to_payload(use_shm=use_shm)
        try:
            restored = ColumnarBatch.from_payload(
                pickle.loads(pickle.dumps(payload))
            )
        finally:
            for owner in owners:
                owner.release()
        assert restored == batch

    def test_small_blocks_never_use_shm(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples(4))
        payload, owners = batch.to_payload(use_shm=True)
        assert owners == []
        assert all(isinstance(b, np.ndarray) for b in payload.blocks)


class TestOperatorFastPaths:
    def test_select_keeps_batch_columnar(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        sink = CollectSink()
        op = Select(lambda t: t.value("k") % 2 == 0)
        op.connect(sink)
        op.receive_many(batch)
        out = sink.columnar_result()
        assert isinstance(out, ColumnarBatch)
        assert [t.value("k") for t in out] == [0, 2, 4, 6]

    def test_derive_appends_column(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        sink = CollectSink()
        op = Derive("k2", lambda t: t.value("k") * 2)
        op.connect(sink)
        op.receive_many(batch)
        out = sink.columnar_result()
        assert isinstance(out, ColumnarBatch)
        assert isinstance(out.column("k2"), IntColumn)
        assert [t.value("k2") for t in out] == [2 * i for i in range(8)]

    def test_project_operator_columnar(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples())
        sink = CollectSink()
        op = Project(["k", "g"])
        op.connect(sink)
        op.receive_many(batch)
        out = sink.columnar_result()
        assert isinstance(out, ColumnarBatch)
        assert out.names == ("k", "g")

    def test_collect_sink_mixed_chunks_materialize(self):
        batch = ColumnarBatch.from_tuples(_mixed_tuples(4))
        sink = CollectSink()
        sink.process_many(batch)
        sink.process(UncertainTuple({"odd": "layout"}))
        assert len(sink.results) == 5
        assert sink.columnar_result() is None
