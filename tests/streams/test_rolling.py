"""Tests for the rolling-statistics kernels and the operators on them.

Covers the kernel units (:mod:`repro.streams.rolling`), the
:class:`RollingLearnOperator` end-to-end, the drift-guard contract
(exact equality right after each re-sum, bounded drift between), and the
1e6-slide mixed-magnitude regression that motivated compensated sums.
"""

import math
import pickle

import pytest

from repro.core.accuracy import AccuracyInfo
from repro.core.analytic import accuracy_from_sample
from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.learning.gaussian_learner import GaussianLearner
from repro.learning.kde_learner import KdeLearner
from repro.obs.metrics import MetricsRegistry
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CollectSink,
    RollingLearnOperator,
    SlidingGaussianAverage,
    TimeWindowAggregate,
    WindowAggregate,
)
from repro.streams.rolling import (
    CompensatedSum,
    MinSizeTracker,
    RollingWindowStats,
    SlidingExtremum,
)
from repro.streams.tuples import UncertainTuple


def _mixed_magnitude(i):
    """Adversarial stream for naive running sums: values spanning ~1e18."""
    cycle = (1e9, 1.0, -1e9, 1e-9, 337.25, -1e-9)
    return cycle[i % len(cycle)] * (1.0 + (i % 97) / 97.0)


class TestCompensatedSum:
    def test_tracks_fsum_under_churn(self):
        acc = CompensatedSum()
        window = []
        for i in range(5000):
            x = _mixed_magnitude(i)
            acc.add(x)
            window.append(x)
            if len(window) > 64:
                acc.subtract(window.pop(0))
            assert acc.value == pytest.approx(
                math.fsum(window), rel=1e-12, abs=1e-12
            )

    def test_reset_is_exact(self):
        acc = CompensatedSum()
        acc.add(1e16)
        acc.add(1.0)
        acc.reset(42.0)
        assert acc.value == 42.0

    def test_repr_shows_value(self):
        assert "3.0" in repr(CompensatedSum(3.0))


class TestSlidingExtremum:
    def test_matches_naive_window_min_max(self):
        lo = SlidingExtremum("min")
        hi = SlidingExtremum("max")
        window = []
        values = [float((7 * i) % 23 - 11) for i in range(400)]
        for x in values:
            lo.push(x)
            hi.push(x)
            window.append(x)
            if len(window) > 16:
                window.pop(0)
                lo.evict()
                hi.evict()
            assert lo.value == min(window)
            assert hi.value == max(window)
            assert len(lo) == len(window)

    def test_over_evict_raises(self):
        ext = SlidingExtremum("min")
        ext.push(1.0)
        ext.evict()
        with pytest.raises(StreamError, match="more than was pushed"):
            ext.evict()

    def test_empty_value_raises(self):
        with pytest.raises(StreamError, match="empty"):
            SlidingExtremum("max").value

    def test_bad_mode_raises(self):
        with pytest.raises(StreamError, match="min or max"):
            SlidingExtremum("median")


class TestMinSizeTracker:
    def test_none_never_constrains(self):
        tracker = MinSizeTracker()
        tracker.add(None)
        assert tracker.minimum is None
        tracker.add(30)
        tracker.add(10)
        assert tracker.minimum == 10
        tracker.discard(None)
        assert tracker.minimum == 10

    def test_minimum_recovers_after_discard(self):
        tracker = MinSizeTracker()
        for size in (5, 9, 5, 12):
            tracker.add(size)
        tracker.discard(5)
        assert tracker.minimum == 5  # one copy of 5 remains
        tracker.discard(5)
        assert tracker.minimum == 9
        tracker.discard(9)
        tracker.discard(12)
        assert tracker.minimum is None

    def test_over_discard_raises(self):
        tracker = MinSizeTracker()
        tracker.add(4)
        tracker.discard(4)
        with pytest.raises(StreamError, match="more than added"):
            tracker.discard(4)


class TestRollingWindowStats:
    def test_sums_track_fsum_reference(self):
        stats = RollingWindowStats(resum_interval=10_000)
        window = []
        for i in range(3000):
            member = (_mixed_magnitude(i), abs(_mixed_magnitude(i + 1)), None)
            stats.push(*member)
            window.append(member)
            if len(window) > 128:
                assert stats.evict_oldest() == window.pop(0)
            assert stats.mean_sum == pytest.approx(
                math.fsum(m for m, _, _ in window), rel=1e-12, abs=1e-12
            )
            assert stats.var_sum == pytest.approx(
                math.fsum(v for _, v, _ in window), rel=1e-12, abs=1e-12
            )

    def test_exact_equality_right_after_resum(self):
        interval = 100
        stats = RollingWindowStats(resum_interval=interval)
        window = []
        for i in range(1000):
            member = (_mixed_magnitude(i), 1.0 + i % 7, None)
            stats.push(*member)
            window.append(member)
            if len(window) > 32:
                stats.evict_oldest()
                window.pop(0)
            if stats.resums and stats._evictions_since_resum == 0:
                # Immediately after a re-sum: exactly the fsum reference.
                assert stats.mean_sum == math.fsum(m for m, _, _ in window)
        assert stats.resums == (1000 - 32) // interval

    def test_var_sum_clamped_nonnegative(self):
        stats = RollingWindowStats()
        stats.push(0.0, 1e-300, None)
        stats.push(0.0, 1e16, None)
        stats.evict_oldest()
        stats.evict_oldest()
        assert stats.var_sum >= 0.0

    def test_evict_empty_raises(self):
        with pytest.raises(StreamError, match="empty"):
            RollingWindowStats().evict_oldest()

    def test_extrema_require_tracking(self):
        stats = RollingWindowStats()
        stats.push(1.0, 0.0)
        with pytest.raises(StreamError, match="without extrema"):
            stats.min_mean
        with pytest.raises(StreamError, match="without extrema"):
            stats.max_mean

    def test_extrema_and_df_size(self):
        stats = RollingWindowStats(track_extrema=True)
        for mean, size in ((3.0, 20), (1.0, 10), (2.0, None)):
            stats.push(mean, 0.5, size)
        assert stats.min_mean == 1.0
        assert stats.max_mean == 3.0
        assert stats.df_size == 10
        stats.evict_oldest()  # (3.0, 20) leaves
        stats.evict_oldest()  # (1.0, 10) leaves
        assert stats.min_mean == stats.max_mean == 2.0
        assert stats.df_size is None

    def test_evict_expired_uses_timestamps(self):
        stats = RollingWindowStats()
        for ts in (1.0, 2.0, 3.0, 4.0):
            stats.push(ts * 10, 0.0, None, timestamp=ts)
        assert stats.evict_expired(2.0) == 2
        assert stats.count == 2
        assert stats.oldest_timestamp == 3.0
        assert stats.newest_timestamp == 4.0
        assert list(stats.members()) == [(30.0, 0.0, None), (40.0, 0.0, None)]

    def test_metrics_binding_counts_resums(self):
        registry = MetricsRegistry()
        counter = registry.counter("r.resums", "test")
        histogram = registry.histogram("r.drift", [1e-12, 1.0], "test")
        stats = RollingWindowStats(resum_interval=5)
        stats.set_metrics(counter, histogram)
        for i in range(30):
            stats.push(float(i), 0.0)
            if stats.count > 4:
                stats.evict_oldest()
        snapshot = registry.snapshot()
        assert snapshot["r.resums"]["value"] == stats.resums > 0
        assert snapshot["r.drift"]["count"] == stats.resums


class TestDriftRegression:
    """Satellite (b): no float drift over 1e6 mixed-magnitude slides."""

    def test_kernel_million_slides_mixed_magnitudes(self):
        window_size = 512
        stats = RollingWindowStats()  # default 4096 re-sum interval
        window = []
        checkpoints = 0
        for i in range(1_000_000):
            member = (_mixed_magnitude(i), abs(_mixed_magnitude(i + 3)), None)
            stats.push(*member)
            window.append(member)
            if len(window) > window_size:
                stats.evict_oldest()
                window.pop(0)
            if i % 50_000 == 0 and len(window) == window_size:
                exact = math.fsum(m for m, _, _ in window)
                assert stats.mean_sum == pytest.approx(exact, rel=1e-9)
                exact_var = math.fsum(v for _, v, _ in window)
                assert stats.var_sum == pytest.approx(exact_var, rel=1e-9)
                checkpoints += 1
        assert checkpoints > 10
        assert stats.resums > 0  # the guard actually fired along the way

    def test_sliding_gaussian_average_operator_stays_exact(self):
        # The pre-PR operator kept plain += / -= sums: after mixed-
        # magnitude churn the reported window average drifted.  Now the
        # emitted mean must match the from-scratch window average.
        window_size = 64
        tuples = [
            UncertainTuple(
                {
                    "x": DfSized(
                        GaussianDistribution(_mixed_magnitude(i), 1.0), 25
                    )
                }
            )
            for i in range(20_000)
        ]
        sink = Pipeline(
            [
                SlidingGaussianAverage(
                    "x", window_size, resum_interval=1000
                ),
                CollectSink(),
            ]
        ).run(tuples)
        means = [_mixed_magnitude(i) for i in range(20_000)]
        for i in (5_000, 10_000, 19_999):
            window = means[i - window_size + 1 : i + 1]
            got = sink.results[i].value("avg").distribution.mu
            assert got == pytest.approx(
                math.fsum(window) / window_size, rel=1e-9
            )


class TestRollingLearnOperator:
    @staticmethod
    def _tuples(values):
        return [UncertainTuple({"obs": float(v)}) for v in values]

    def test_gaussian_matches_from_scratch_learner(self):
        values = [_mixed_magnitude(i) % 100.0 for i in range(200)]
        op = RollingLearnOperator("obs", window_size=16, learner="gaussian")
        sink = Pipeline([op, CollectSink()]).run(self._tuples(values))
        learner = GaussianLearner()
        # Emission starts at the 2nd tuple (k >= 2).
        assert len(sink.results) == 199
        for i in (1, 15, 50, 199 - 1):
            tup = sink.results[i]
            k = min(i + 2, 16)
            window = values[max(0, i + 2 - 16) : i + 2]
            ref = learner.learn(window).distribution
            learned = tup.value("learned")
            assert isinstance(learned, DfSized)
            assert learned.sample_size == k
            assert learned.distribution.mu == pytest.approx(
                ref.mu, rel=1e-9
            )
            assert learned.distribution.sigma2 == pytest.approx(
                ref.sigma2, rel=1e-9
            )

    def test_accuracy_matches_accuracy_from_sample(self):
        values = [3.0, 7.0, 4.5, 9.0, 1.0, 6.0]
        op = RollingLearnOperator("obs", window_size=4)
        sink = Pipeline([op, CollectSink()]).run(self._tuples(values))
        last = sink.results[-1]
        info = last.value("accuracy")
        assert isinstance(info, AccuracyInfo)
        ref = accuracy_from_sample(values[-4:], confidence=0.95)
        assert info.sample_size == ref.sample_size == 4
        assert info.mean.low == pytest.approx(ref.mean.low, rel=1e-9)
        assert info.mean.high == pytest.approx(ref.mean.high, rel=1e-9)
        assert info.variance.low == pytest.approx(ref.variance.low, rel=1e-9)
        assert info.variance.high == pytest.approx(ref.variance.high, rel=1e-9)

    def test_histogram_learner_with_fixed_edges(self):
        values = [0.5, 1.5, 2.5, 0.25, 2.75, 1.0]
        op = RollingLearnOperator(
            "obs",
            window_size=4,
            learner="histogram",
            edges=[0.0, 1.0, 2.0, 3.0],
        )
        sink = Pipeline([op, CollectSink()]).run(self._tuples(values))
        last = sink.results[-1].value("learned")
        # Window = [2.5, 0.25, 2.75, 1.0] -> bin counts [1, 1, 2] of 4.
        assert list(last.distribution.probabilities) == [0.25, 0.25, 0.5]
        info = sink.results[-1].value("accuracy")
        assert len(info.bins) == 3

    def test_emit_partial_false_waits_for_full_window(self):
        values = list(range(10))
        op = RollingLearnOperator(
            "obs", window_size=5, emit_partial=False
        )
        sink = Pipeline([op, CollectSink()]).run(self._tuples(values))
        assert len(sink.results) == 6  # emits once the 5-window is full
        assert all(
            t.value("learned").sample_size == 5 for t in sink.results
        )

    def test_batched_path_is_byte_identical_to_scalar(self):
        # The vectorized accuracy path must emit the exact same tuples.
        values = [_mixed_magnitude(i) % 50.0 + 1.0 for i in range(300)]

        def run(batched):
            op = RollingLearnOperator("obs", window_size=32)
            pipe = Pipeline([op, CollectSink()])
            if batched:
                return pipe.run_batched(self._tuples(values), 64).results
            return pipe.run(self._tuples(values)).results

        scalar = [pickle.dumps(t) for t in run(batched=False)]
        vectorized = [pickle.dumps(t) for t in run(batched=True)]
        assert vectorized == scalar

    def test_accuracy_output_none_disables_accuracy(self):
        op = RollingLearnOperator(
            "obs", window_size=3, accuracy_output=None
        )
        sink = Pipeline([op, CollectSink()]).run(self._tuples([1, 2, 3]))
        assert "accuracy" not in sink.results[-1].attributes
        assert op.accuracy_attribute == "learned"

    def test_rejects_learner_without_partial_support(self):
        with pytest.raises(StreamError, match="does not support incremental"):
            RollingLearnOperator("obs", window_size=4, learner=KdeLearner())

    def test_rejects_kwargs_with_learner_instance(self):
        with pytest.raises(StreamError, match="learner name"):
            RollingLearnOperator(
                "obs", window_size=4, learner=GaussianLearner(), edges=[0, 1]
            )

    def test_rejects_tiny_window_and_bad_confidence(self):
        with pytest.raises(StreamError, match="window size >= 2"):
            RollingLearnOperator("obs", window_size=1)
        with pytest.raises(StreamError, match="confidence"):
            RollingLearnOperator("obs", window_size=4, confidence=1.0)

    def test_rejects_non_numeric_observation(self):
        op = RollingLearnOperator("obs", window_size=4)
        with pytest.raises(StreamError, match="raw numeric"):
            Pipeline([op, CollectSink()]).run(
                [UncertainTuple({"obs": "not-a-number"})]
            )


class TestRollingObservability:
    def test_resum_metrics_surface_per_operator(self):
        registry = MetricsRegistry()
        tuples = [
            UncertainTuple(
                {"x": DfSized(GaussianDistribution(float(i), 1.0), 30)}
            )
            for i in range(200)
        ]
        pipe = Pipeline(
            [
                WindowAggregate("x", 8, agg="avg", resum_interval=50),
                CollectSink(),
            ]
        )
        pipe.attach_metrics(registry, prefix="roll")
        pipe.run(tuples)
        snapshot = registry.snapshot()
        name = "roll.00.WindowAggregate.rolling"
        assert snapshot[f"{name}.resums"]["value"] == (200 - 8) // 50
        assert snapshot[f"{name}.drift"]["count"] == (200 - 8) // 50

    def test_learn_operator_binds_state_metrics(self):
        registry = MetricsRegistry()
        tuples = [
            UncertainTuple({"obs": float(i % 13)}) for i in range(120)
        ]
        pipe = Pipeline(
            [
                RollingLearnOperator(
                    "obs", window_size=6, resum_interval=25
                ),
                CollectSink(),
            ]
        )
        pipe.attach_metrics(registry, prefix="learn")
        pipe.run(tuples)
        snapshot = registry.snapshot()
        name = "learn.00.RollingLearnOperator.rolling"
        assert snapshot[f"{name}.resums"]["value"] > 0

    def test_pristine_clone_after_attach(self):
        # pristine() deep-copies operators; kernel state must not drag
        # registry objects along (set_metrics(None, None) on detach).
        registry = MetricsRegistry()
        pipe = Pipeline(
            [
                SlidingGaussianAverage("x", 4),
                TimeWindowAggregate("y", 1.0),
                RollingLearnOperator("obs", window_size=4),
                CollectSink(),
            ]
        )
        pipe.attach_metrics(registry, prefix="p")
        clone = pipe.pristine()
        for op in clone.operators[:-1]:
            assert op._obs is None
        assert pipe.operators[0]._stats.resums_counter is not None
        assert clone.operators[0]._stats.resums_counter is None
        assert clone.operators[2]._state.resums_counter is None


class TestCancellationGuard:
    def test_dominant_evict_resums_immediately(self):
        # Evicting a member ~1e7x the surviving total must not leave
        # eps*|member| residue in the running sums until the periodic
        # resum: the cancellation guard fires an immediate resum.
        stats = RollingWindowStats(resum_interval=10_000)
        stats.push(50331648.0, 50331648.0 / 3.0, None)
        stats.push(1.0, 1.0 / 3.0, None)
        stats.push(0.0, 0.0, None)
        stats.evict_oldest()
        assert stats.resums == 1
        assert stats.mean_sum == 1.0
        assert stats.var_sum == 1.0 / 3.0

    def test_moderate_evictions_stay_incremental(self):
        stats = RollingWindowStats(resum_interval=10_000)
        for i in range(200):
            stats.push(float(i), 1.0, None)
            if i >= 32:
                stats.evict_oldest()
        assert stats.resums == 0
