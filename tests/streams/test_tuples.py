"""Tests for uncertain tuples and schemas."""

import pytest

from repro.core.dfsample import DfSized
from repro.distributions.base import Deterministic
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import SchemaError
from repro.streams.tuples import AttributeSpec, Schema, UncertainTuple


class TestAttributeSpec:
    def test_kinds(self):
        assert AttributeSpec("x", "number").accepts(3.5)
        assert not AttributeSpec("x", "number").accepts("hi")
        assert not AttributeSpec("x", "number").accepts(True)
        assert AttributeSpec("x", "text").accepts("hi")
        assert AttributeSpec("x", "any").accepts(object())

    def test_distribution_kind(self):
        spec = AttributeSpec("x", "distribution")
        assert spec.accepts(GaussianDistribution(0, 1))
        assert spec.accepts(DfSized(Deterministic(1.0), None))
        assert not spec.accepts(3.0)

    def test_rejects_bad_kind(self):
        with pytest.raises(SchemaError):
            AttributeSpec("x", "blob")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            AttributeSpec("")


class TestSchema:
    def test_construction_forms(self):
        schema = Schema(["a", ("b", "number"), AttributeSpec("c", "text")])
        assert schema.names == ("a", "b", "c")
        assert schema.spec("b").kind == "number"
        assert "a" in schema and "z" not in schema
        assert len(schema) == 3

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_spec_unknown_name(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).spec("b")

    def test_validate_accepts_matching_tuple(self):
        schema = Schema([("x", "number"), ("d", "distribution")])
        tup = UncertainTuple(
            {"x": 1.0, "d": DfSized(GaussianDistribution(0, 1), 5)}
        )
        schema.validate(tup)  # no raise

    def test_validate_missing_attribute(self):
        schema = Schema(["x", "y"])
        with pytest.raises(SchemaError, match="missing"):
            schema.validate(UncertainTuple({"x": 1.0}))

    def test_validate_extra_attribute(self):
        schema = Schema(["x"])
        with pytest.raises(SchemaError, match="undeclared"):
            schema.validate(UncertainTuple({"x": 1.0, "y": 2.0}))

    def test_validate_kind_mismatch(self):
        schema = Schema([("x", "distribution")])
        with pytest.raises(SchemaError, match="kind"):
            schema.validate(UncertainTuple({"x": 1.0}))


class TestUncertainTuple:
    def test_defaults(self):
        tup = UncertainTuple({"a": 1.0})
        assert tup.probability == 1.0
        assert tup.timestamp is None

    def test_attributes_copied(self):
        source = {"a": 1.0}
        tup = UncertainTuple(source)
        source["a"] = 2.0
        assert tup.value("a") == 1.0

    def test_rejects_bad_probability(self):
        with pytest.raises(SchemaError):
            UncertainTuple({"a": 1.0}, probability=1.5)
        with pytest.raises(SchemaError):
            UncertainTuple({"a": 1.0}, probability=-0.1)

    def test_value_unknown_attribute(self):
        with pytest.raises(SchemaError):
            UncertainTuple({"a": 1.0}).value("b")

    def test_dfsized_coercion(self):
        tup = UncertainTuple(
            {
                "raw": 5.0,
                "dist": GaussianDistribution(1, 1),
                "sized": DfSized(GaussianDistribution(2, 1), 10),
            }
        )
        assert tup.dfsized("raw").distribution == Deterministic(5.0)
        assert tup.dfsized("raw").sample_size is None
        assert tup.dfsized("dist").sample_size is None
        assert tup.dfsized("sized").sample_size == 10

    def test_scaled_multiplies_probability(self):
        tup = UncertainTuple({"a": 1.0}, probability=0.8)
        scaled = tup.scaled(0.5)
        assert scaled.probability == pytest.approx(0.4)
        assert tup.probability == 0.8  # original untouched

    def test_with_attributes_preserves_metadata(self):
        tup = UncertainTuple({"a": 1.0}, probability=0.7, timestamp=3.0)
        replaced = tup.with_attributes({"b": 2.0})
        assert replaced.probability == 0.7
        assert replaced.timestamp == 3.0
        assert "a" not in replaced.attributes
