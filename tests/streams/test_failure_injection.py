"""Failure-injection tests: errors propagate cleanly, state stays sane.

A production stream system must not corrupt window or database state
when a tuple is malformed or an operator raises mid-pipeline.
"""

import pytest

from repro.db import StreamDatabase
from repro.errors import CallbackError, ReproError, SchemaError, StreamError
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CollectSink,
    Derive,
    Operator,
    SlidingGaussianAverage,
)
from repro.streams.tuples import Schema, UncertainTuple


class _Bomb(Operator):
    """Raises on the Nth tuple it sees."""

    def __init__(self, explode_at: int) -> None:
        super().__init__()
        self.explode_at = explode_at
        self.seen = 0

    def process(self, tup: UncertainTuple) -> None:
        self.seen += 1
        if self.seen == self.explode_at:
            raise RuntimeError("injected failure")
        self.emit(tup)


class TestPipelineFailures:
    def test_error_propagates_to_caller(self):
        pipe = Pipeline([_Bomb(2), CollectSink()])
        with pytest.raises(RuntimeError, match="injected failure"):
            pipe.run([UncertainTuple({"x": 1.0})] * 3)

    def test_results_before_failure_survive(self):
        sink = CollectSink()
        pipe = Pipeline([_Bomb(3), sink])
        with pytest.raises(RuntimeError):
            pipe.run([UncertainTuple({"x": float(i)}) for i in range(5)])
        assert [t.value("x") for t in sink.results] == [0.0, 1.0]

    def test_pipeline_usable_after_recovered_failure(self):
        bomb = _Bomb(1)
        sink = CollectSink()
        pipe = Pipeline([bomb, sink])
        with pytest.raises(RuntimeError):
            pipe.push(UncertainTuple({"x": 1.0}))
        # The bomb only fires once; subsequent pushes flow normally.
        pipe.push(UncertainTuple({"x": 2.0}))
        assert len(sink.results) == 1

    def test_window_state_consistent_after_bad_tuple(self):
        op = SlidingGaussianAverage("value", 3)
        sink = CollectSink()
        pipe = Pipeline([op, sink])
        from repro.core.dfsample import DfSized
        from repro.distributions.gaussian import GaussianDistribution

        good = UncertainTuple(
            {"value": DfSized(GaussianDistribution(10.0, 1.0), 5)}
        )
        bad = UncertainTuple({"value": "not a distribution"})
        pipe.push(good)
        with pytest.raises(ReproError):
            pipe.push(bad)
        # The failed tuple contributed nothing; the average is untouched.
        pipe.push(good)
        final = sink.results[-1].value("avg")
        assert final.distribution.mean() == pytest.approx(10.0)


class TestDatabaseFailures:
    def test_schema_violation_inserts_nothing(self):
        db = StreamDatabase()
        db.create_stream("s", Schema([("x", "number")]))
        with pytest.raises(SchemaError):
            db.insert("s", {"x": "wrong"})
        assert db.count("s") == 0
        assert db.stats("s")["inserted"] == 0

    def test_failing_callback_does_not_lose_the_tuple(self):
        db = StreamDatabase()
        db.create_stream("s")

        def explode(result):
            raise RuntimeError("callback failure")

        db.register_continuous("boom", "SELECT x FROM s", explode)
        with pytest.raises(CallbackError) as excinfo:
            db.insert("s", {"x": 1.0})
        assert excinfo.value.query_name == "boom"
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        # The tuple was buffered before the callback ran.
        assert db.count("s") == 1

    def test_bad_record_aborts_ingest_before_any_insert(self):
        db = StreamDatabase()
        db.create_stream("s")
        records = [
            {"g": 1, "v": 1.0},
            {"g": 1, "v": 2.0},
            {"broken": True},  # malformed
        ]
        with pytest.raises(SchemaError):
            db.ingest_observations(records=records, name="s",
                                   group_by="g", value="v")
        # Grouping validates every record before learning/inserting.
        assert db.count("s") == 0

    def test_unknown_stream_query_leaves_db_usable(self):
        db = StreamDatabase()
        db.create_stream("s")
        with pytest.raises(StreamError):
            db.query("SELECT x FROM ghost")
        db.insert("s", {"x": 1.0})
        assert db.count("s") == 1
