"""Tests for the window join and grouped aggregation operators."""

import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.streams.engine import Pipeline
from repro.streams.groupby import GroupedAggregate
from repro.streams.join import TagSide, WindowJoin
from repro.streams.operators import CollectSink
from repro.streams.tuples import UncertainTuple


def _tagged(side, **attrs):
    tup = UncertainTuple(
        {k: v for k, v in attrs.items() if k != "probability"},
        probability=attrs.get("probability", 1.0),
    )
    collector = CollectSink()
    tagger = TagSide(side)
    tagger.connect(collector)
    tagger.receive(tup)
    return collector.results[0]


class TestTagSide:
    def test_tags_and_preserves(self):
        tagged = _tagged("left", road=1.0, probability=0.7)
        assert tagged.attributes["__join_side__"] == "left"
        assert tagged.value("road") == 1.0
        assert tagged.probability == 0.7

    def test_rejects_bad_side(self):
        with pytest.raises(StreamError):
            TagSide("middle")


class TestWindowJoin:
    def _run(self, tuples, window_size=10, **kwargs):
        join = WindowJoin("road", window_size, **kwargs)
        sink = CollectSink()
        pipe = Pipeline([join, sink])
        pipe.run(tuples)
        return join, sink.results

    def test_matching_keys_join(self):
        tuples = [
            _tagged("left", road=1.0, delay=10.0),
            _tagged("right", road=1.0, speed=30.0),
        ]
        join, results = self._run(tuples)
        assert len(results) == 1
        joined = results[0]
        assert joined.value("road") == 1.0
        assert joined.value("l_delay") == 10.0
        assert joined.value("r_speed") == 30.0
        assert join.matches == 1

    def test_non_matching_keys_do_not_join(self):
        tuples = [
            _tagged("left", road=1.0, delay=10.0),
            _tagged("right", road=2.0, speed=30.0),
        ]
        _join, results = self._run(tuples)
        assert results == []

    def test_probability_is_product(self):
        tuples = [
            _tagged("left", road=1.0, delay=1.0, probability=0.5),
            _tagged("right", road=1.0, speed=1.0, probability=0.4),
        ]
        _join, results = self._run(tuples)
        assert results[0].probability == pytest.approx(0.2)

    def test_symmetric_many_to_many(self):
        tuples = [
            _tagged("left", road=1.0, delay=1.0),
            _tagged("left", road=1.0, delay=2.0),
            _tagged("right", road=1.0, speed=9.0),
        ]
        _join, results = self._run(tuples)
        assert len(results) == 2
        delays = sorted(r.value("l_delay") for r in results)
        assert delays == [1.0, 2.0]

    def test_window_eviction_limits_matches(self):
        tuples = [
            _tagged("left", road=1.0, delay=1.0),
            _tagged("left", road=2.0, delay=2.0),  # evicts road-1 left
            _tagged("right", road=1.0, speed=9.0),
        ]
        _join, results = self._run(tuples, window_size=1)
        assert results == []

    def test_join_tag_stripped_from_output(self):
        tuples = [
            _tagged("left", road=1.0, delay=1.0),
            _tagged("right", road=1.0, speed=2.0),
        ]
        _join, results = self._run(tuples)
        assert "__join_side__" not in results[0].attributes

    def test_untagged_tuple_rejected(self):
        join = WindowJoin("road", 4)
        pipe = Pipeline([join, CollectSink()])
        with pytest.raises(StreamError, match="untagged"):
            pipe.run([UncertainTuple({"road": 1.0})])

    def test_side_of_override(self):
        def side_of(tup):
            return "left" if tup.value("kind") == "a" else "right"

        join = WindowJoin("road", 4, side_of=side_of)
        sink = CollectSink()
        Pipeline([join, sink]).run(
            [
                UncertainTuple({"road": 1.0, "kind": "a", "x": 1.0}),
                UncertainTuple({"road": 1.0, "kind": "b", "y": 2.0}),
            ]
        )
        assert len(sink.results) == 1
        assert sink.results[0].value("l_x") == 1.0

    def test_rejects_equal_prefixes(self):
        with pytest.raises(StreamError):
            WindowJoin("road", 4, prefix_left="p_", prefix_right="p_")

    def test_rejects_bad_window(self):
        with pytest.raises(StreamError):
            WindowJoin("road", 0)

    def test_joins_preserve_distribution_fields(self):
        dist = DfSized(GaussianDistribution(50, 4), 20)
        tuples = [
            _tagged("left", road=1.0, delay=dist),
            _tagged("right", road=1.0, speed=3.0),
        ]
        _join, results = self._run(tuples)
        joined = results[0].dfsized("l_delay")
        assert joined.sample_size == 20


class TestGroupedAggregate:
    def _tuple(self, key, mean, n=10):
        return UncertainTuple(
            {
                "road": key,
                "delay": DfSized(GaussianDistribution(mean, 1.0), n),
            }
        )

    def test_per_group_average(self):
        op = GroupedAggregate("road", "delay", window_size=10, agg="avg")
        sink = CollectSink()
        Pipeline([op, sink]).run(
            [
                self._tuple(1, 10.0),
                self._tuple(2, 100.0),
                self._tuple(1, 20.0),
            ]
        )
        assert op.group_count == 2
        # Last emission for road 1 averages both of its tuples.
        last_road1 = [
            r for r in sink.results if r.value("road") == 1
        ][-1]
        assert last_road1.value("avg").distribution.mean() == pytest.approx(
            15.0
        )

    def test_window_evicts_per_group(self):
        op = GroupedAggregate("road", "delay", window_size=2, agg="avg")
        sink = CollectSink()
        Pipeline([op, sink]).run(
            [self._tuple(1, m) for m in (10.0, 20.0, 60.0)]
        )
        final = sink.results[-1]
        assert final.value("avg").distribution.mean() == pytest.approx(40.0)

    def test_count_aggregate(self):
        op = GroupedAggregate("road", "delay", window_size=5, agg="count")
        sink = CollectSink()
        Pipeline([op, sink]).run(
            [self._tuple(1, 0.0), self._tuple(1, 0.0)]
        )
        assert sink.results[-1].value("count") == 2.0

    def test_flush_mode_emits_once_per_group(self):
        op = GroupedAggregate(
            "road", "delay", window_size=5, agg="avg", emit_every=False
        )
        sink = CollectSink()
        Pipeline([op, sink]).run(
            [
                self._tuple(2, 10.0),
                self._tuple(1, 20.0),
                self._tuple(2, 30.0),
            ]
        )
        assert len(sink.results) == 2
        roads = [r.value("road") for r in sink.results]
        assert roads == [1, 2]  # deterministic (sorted) flush order

    def test_sample_size_is_group_minimum(self):
        op = GroupedAggregate("road", "delay", window_size=5, agg="sum")
        sink = CollectSink()
        Pipeline([op, sink]).run(
            [self._tuple(1, 0.0, n=30), self._tuple(1, 0.0, n=12)]
        )
        assert sink.results[-1].value("sum").sample_size == 12

    def test_rejects_bad_aggregate(self):
        with pytest.raises(StreamError):
            GroupedAggregate("road", "delay", 5, agg="median")
