"""Property-based tests for the columnar round-trip contract.

The boundary adapters must be exact: for any uniform tuple batch,
``from_tuples(to_tuples(batch)) == batch`` and the materialized tuples
are byte-identical (per-element ``pickle.dumps``) to the originals —
including NaN and ±inf payloads, exact (``None``) sample sizes, and
empty batches.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.streams.columnar import ColumnarBatch
from repro.streams.tuples import UncertainTuple

# Full float64 terrain: NaN, ±inf, subnormals, -0.0.
any_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
variances = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)


@st.composite
def uniform_tuple_lists(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    rows = []
    for _ in range(n):
        rows.append(
            {
                "x": draw(any_floats),
                "k": draw(int64s),
                "g": DfSized(
                    GaussianDistribution(
                        draw(finite_floats), draw(variances)
                    ),
                    draw(
                        st.one_of(
                            st.none(),
                            st.integers(min_value=1, max_value=10**6),
                        )
                    ),
                ),
                "tag": draw(st.text(max_size=6)),
            }
        )
    probabilities = [
        draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        for _ in range(n)
    ]
    # Timestamps are all-None or all-float: a uniform stream layout.
    if draw(st.booleans()) and n:
        timestamps = [draw(finite_floats) for _ in range(n)]
    else:
        timestamps = [None] * n
    return [
        UncertainTuple(row, probability=p, timestamp=ts)
        for row, p, ts in zip(rows, probabilities, timestamps)
    ]


@given(tuples=uniform_tuple_lists())
@settings(max_examples=120, deadline=None)
def test_from_to_from_is_identity(tuples):
    batch = ColumnarBatch.from_tuples(tuples)
    assert ColumnarBatch.from_tuples(batch.to_tuples()) == batch


@given(tuples=uniform_tuple_lists())
@settings(max_examples=120, deadline=None)
def test_materialized_tuples_byte_identical(tuples):
    batch = ColumnarBatch.from_tuples(tuples)
    assert [pickle.dumps(t) for t in batch.to_tuples()] == [
        pickle.dumps(t) for t in tuples
    ]


@given(tuples=uniform_tuple_lists())
@settings(max_examples=60, deadline=None)
def test_payload_roundtrip_preserves_batch(tuples):
    batch = ColumnarBatch.from_tuples(tuples)
    payload, owners = batch.to_payload(use_shm=False)
    assert owners == []
    restored = ColumnarBatch.from_payload(pickle.loads(pickle.dumps(payload)))
    assert restored == batch


def test_empty_batch_round_trip():
    batch = ColumnarBatch.from_tuples([])
    assert len(batch) == 0
    assert ColumnarBatch.from_tuples(batch.to_tuples()) == batch
