"""Pipeline observability: instrumentation hooks, snapshots, and the
no-registry identity guarantee."""

import math
import types

import numpy as np
import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.experiments.harness import render_metrics_table
from repro.obs import MetricsRegistry, operator_rows
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CollectSink,
    CountingSink,
    Operator,
    Select,
    SlidingGaussianAverage,
    WindowAggregate,
)
from repro.streams.throughput import measure_throughput
from repro.streams.tuples import UncertainTuple


def make_tuples(n, seed=0, mean=100.0, std=10.0):
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "item": float(i),
                "value": DfSized(
                    GaussianDistribution(
                        float(rng.normal(mean, std)), float(std**2)
                    ),
                    20,
                ),
            }
        )
        for i in range(n)
    ]


def build_pipeline(registry=None):
    """A Fig 5-shaped chain: filter -> sliding AVG -> collect."""
    return Pipeline(
        [
            Select(lambda t: t.value("item") % 10 != 0.0),
            SlidingGaussianAverage("value", 8),
            CollectSink(),
        ],
        registry=registry,
    )


def renders(sink):
    return [repr(t) for t in sink.results]


# --- Pre-PR execution semantics, rebound per instance, so the identity
# --- guarantee is checked against the genuinely uninstrumented paths.

def _bare_receive(self, tup):
    self.process(tup)


def _bare_receive_many(self, tuples):
    self.process_many(tuples)


def _bare_emit(self, tup):
    if self._downstream is not None:
        self._downstream.receive(tup)


def _bare_emit_many(self, tuples):
    if self._downstream is not None and tuples:
        self._downstream.receive_many(tuples)


def _bare_flush(self):
    self.on_flush()
    if self._downstream is not None:
        self._downstream.flush()


def strip_instrumentation(pipeline):
    """Rebind every hook to its uninstrumented body (baseline semantics)."""
    for op in pipeline.operators:
        op.receive = types.MethodType(_bare_receive, op)
        op.receive_many = types.MethodType(_bare_receive_many, op)
        op.emit = types.MethodType(_bare_emit, op)
        op.emit_many = types.MethodType(_bare_emit_many, op)
        op.flush = types.MethodType(_bare_flush, op)
    return pipeline


class TestIdentityWithoutRegistry:
    """With no registry attached the sink contents must be unchanged."""

    @pytest.mark.parametrize("batch_size", [None, 1, 7, 64])
    def test_sink_matches_bare_pipeline(self, batch_size):
        tuples = make_tuples(120, seed=5)
        instrumented = build_pipeline()
        bare = strip_instrumentation(build_pipeline())
        if batch_size is None:
            instrumented.run(tuples)
            bare.run(tuples)
        else:
            instrumented.run_batched(tuples, batch_size)
            bare.run_batched(tuples, batch_size)
        assert renders(instrumented.sink) == renders(bare.sink)

    def test_sink_matches_with_registry_attached(self):
        tuples = make_tuples(90, seed=6)
        plain = build_pipeline()
        observed = build_pipeline(registry=MetricsRegistry())
        plain.run(tuples)
        observed.run(tuples)
        assert renders(plain.sink) == renders(observed.sink)

    def test_batched_sink_matches_with_registry_attached(self):
        tuples = make_tuples(90, seed=7)
        plain = build_pipeline()
        observed = build_pipeline(registry=MetricsRegistry())
        plain.run_batched(tuples, 16)
        observed.run_batched(tuples, 16)
        assert renders(plain.sink) == renders(observed.sink)


class TestOperatorMetrics:
    def test_tuples_in_out_and_selectivity(self):
        registry = MetricsRegistry()
        pipeline = build_pipeline(registry=registry)
        pipeline.run(make_tuples(100, seed=1))
        snap = registry.snapshot()
        assert snap["pipeline.00.Select.tuples_in"]["value"] == 100
        kept = snap["pipeline.00.Select.tuples_out"]["value"]
        assert kept == 90  # every 10th item dropped
        assert snap["pipeline.01.SlidingGaussianAverage.tuples_in"][
            "value"
        ] == 90
        assert snap["pipeline.02.CollectSink.tuples_in"]["value"] == 90
        rows = operator_rows(registry)
        select_row = next(
            r for r in rows if r["operator"].endswith("Select")
        )
        assert select_row["selectivity"] == pytest.approx(0.9)

    def test_timers_record_every_call(self):
        registry = MetricsRegistry()
        pipeline = build_pipeline(registry=registry)
        pipeline.run(make_tuples(40, seed=2))
        snap = registry.snapshot()
        timer = snap["pipeline.00.Select.process_seconds"]
        assert timer["count"] == 40
        assert timer["total_seconds"] >= 0.0
        # flush propagated through the whole chain exactly once
        for index, name in enumerate(
            ["Select", "SlidingGaussianAverage", "CollectSink"]
        ):
            flush = snap[f"pipeline.{index:02d}.{name}.flush_seconds"]
            assert flush["count"] == 1

    def test_batch_sizes_recorded_on_batched_path(self):
        registry = MetricsRegistry()
        pipeline = build_pipeline(registry=registry)
        pipeline.run_batched(make_tuples(100, seed=3), 32)
        hist = registry.get("pipeline.00.Select.batch_size")
        assert hist.count == 4  # 32 + 32 + 32 + 4
        assert hist.sum == 100.0
        timer = registry.get("pipeline.00.Select.batch_seconds")
        assert timer.count == 4
        # the per-tuple timer stays untouched on the batched path
        assert registry.get("pipeline.00.Select.process_seconds").count == 0

    def test_interval_width_histogram_from_dfsized(self):
        registry = MetricsRegistry()
        pipeline = build_pipeline(registry=registry)
        pipeline.run(make_tuples(50, seed=4))
        widths = registry.get(
            "pipeline.01.SlidingGaussianAverage.interval_width"
        )
        sizes = registry.get(
            "pipeline.01.SlidingGaussianAverage.sample_size"
        )
        assert widths.count == 45  # one per emitted window result
        assert widths.sum > 0.0
        assert sizes.count == 45
        # every input carried n=20, so the window minimum is 20
        assert sizes.snapshot()["min"] == 20.0
        assert sizes.snapshot()["max"] == 20.0

    def test_interval_width_from_accuracy_info_operator(self):
        from repro.experiments.fig5_throughput import _AnalyticAccuracy

        registry = MetricsRegistry()
        pipeline = Pipeline(
            [
                WindowAggregate("value", 4, agg="avg"),
                _AnalyticAccuracy("avg", confidence=0.9),
                CollectSink(),
            ],
            registry=registry,
        )
        pipeline.run(make_tuples(30, seed=8))
        widths = registry.get("pipeline.01.AnalyticAccuracy.interval_width")
        assert widths.count == 30
        # AccuracyInfo path uses the operator's own confidence level: the
        # recorded widths must match the attached intervals exactly.
        total = sum(
            t.value("accuracy").mean.length for t in pipeline.sink.results
        )
        assert widths.sum == pytest.approx(total)

    def test_exact_valued_attributes_are_skipped(self):
        registry = MetricsRegistry()
        pipeline = Pipeline(
            [WindowAggregate("item", 4, agg="count"), CollectSink()],
            registry=registry,
        )
        pipeline.run(make_tuples(20, seed=9))
        # count aggregate emits plain floats: nothing to measure
        assert registry.get(
            "pipeline.00.WindowAggregate.interval_width"
        ).count == 0

    def test_detach_metrics_stops_recording(self):
        registry = MetricsRegistry()
        pipeline = build_pipeline(registry=registry)
        pipeline.run(make_tuples(10, seed=10))
        before = registry.get("pipeline.00.Select.tuples_in").value
        pipeline.detach_metrics()
        pipeline.run(make_tuples(10, seed=11))
        assert registry.get("pipeline.00.Select.tuples_in").value == before

    def test_default_operator_name_used_without_pipeline(self):
        registry = MetricsRegistry()
        sink = CountingSink()
        sink.attach_metrics(registry)
        sink.receive(UncertainTuple({"x": 1.0}))
        assert registry.get("CountingSink.tuples_in").value == 1


class TestPipelineMetrics:
    def test_run_counters_and_timer(self):
        registry = MetricsRegistry()
        pipeline = build_pipeline(registry=registry)
        pipeline.run(make_tuples(25, seed=12))
        pipeline.run_batched(make_tuples(25, seed=13), 8)
        snap = registry.snapshot()
        assert snap["pipeline.runs"]["value"] == 2
        assert snap["pipeline.tuples"]["value"] == 50
        assert snap["pipeline.run_seconds"]["count"] == 2

    def test_prefix_keeps_pipelines_distinguishable(self):
        registry = MetricsRegistry()
        first = build_pipeline()
        second = build_pipeline()
        first.attach_metrics(registry, prefix="a")
        second.attach_metrics(registry, prefix="b")
        first.run(make_tuples(5, seed=14))
        second.run(make_tuples(7, seed=15))
        assert registry.get("a.00.Select.tuples_in").value == 5
        assert registry.get("b.00.Select.tuples_in").value == 7

    def test_render_metrics_table_lists_every_stage(self):
        registry = MetricsRegistry()
        pipeline = build_pipeline(registry=registry)
        pipeline.run(make_tuples(30, seed=16))
        table = render_metrics_table(registry)
        for name in ("Select", "SlidingGaussianAverage", "CollectSink"):
            assert name in table


class TestThroughputIntegration:
    def test_measure_throughput_collects_metrics(self):
        tuples = make_tuples(300, seed=17)
        registry = MetricsRegistry()
        rate = measure_throughput(
            build_pipeline,
            tuples,
            repeats=1,
            registry=registry,
            metrics_prefix="probe",
        )
        assert rate > 0.0
        assert registry.get("probe.00.Select.tuples_in").value == 300
        assert math.isfinite(
            registry.get("probe.run_seconds").snapshot()["total_seconds"]
        )

    def test_no_registry_means_no_metrics(self):
        tuples = make_tuples(100, seed=18)
        rate = measure_throughput(build_pipeline, tuples, repeats=1)
        assert rate > 0.0


class TestFallbackPathInstrumentation:
    def test_default_process_many_counts_once(self):
        """Per-tuple fallback inside receive_many must not double count."""

        class Doubler(Operator):
            def process(self, tup):
                self.emit(tup)
                self.emit(tup)

        registry = MetricsRegistry()
        pipeline = Pipeline([Doubler(), CollectSink()], registry=registry)
        pipeline.run_batched(
            [UncertainTuple({"x": float(i)}) for i in range(6)], 3
        )
        snap = registry.snapshot()
        assert snap["pipeline.00.Doubler.tuples_in"]["value"] == 6
        assert snap["pipeline.00.Doubler.tuples_out"]["value"] == 12
        assert snap["pipeline.01.CollectSink.tuples_in"]["value"] == 12
        assert len(pipeline.sink.results) == 12
