"""Tests for the time-based sliding aggregate operator."""

import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, TimeWindowAggregate
from repro.streams.tuples import UncertainTuple


def _tuple(mean, ts, n=10):
    return UncertainTuple(
        {"v": DfSized(GaussianDistribution(mean, 1.0), n)},
        timestamp=ts,
    )


class TestTimeWindowAggregate:
    def test_window_keeps_recent_items(self):
        pipe = Pipeline([TimeWindowAggregate("v", 10.0), CollectSink()])
        sink = pipe.run(
            [_tuple(10.0, 0.0), _tuple(20.0, 5.0), _tuple(30.0, 12.0)]
        )
        # At t=12 the t=0 tuple has expired: avg over {20, 30}.
        final = sink.results[-1].value("avg")
        assert final.distribution.mean() == pytest.approx(25.0)

    def test_emits_per_arrival(self):
        pipe = Pipeline([TimeWindowAggregate("v", 10.0), CollectSink()])
        sink = pipe.run([_tuple(1.0, float(t)) for t in range(5)])
        assert len(sink.results) == 5

    def test_sum_variance_propagation(self):
        pipe = Pipeline(
            [TimeWindowAggregate("v", 100.0, agg="sum"), CollectSink()]
        )
        sink = pipe.run([_tuple(2.0, 0.0), _tuple(3.0, 1.0)])
        value = sink.results[-1].value("sum")
        assert value.distribution.mean() == pytest.approx(5.0)
        assert value.distribution.variance() == pytest.approx(2.0)
        assert value.sample_size == 10

    def test_count_min_max(self):
        for agg, expected in (("count", 2.0), ("min", 2.0), ("max", 7.0)):
            pipe = Pipeline(
                [TimeWindowAggregate("v", 100.0, agg=agg), CollectSink()]
            )
            sink = pipe.run([_tuple(2.0, 0.0), _tuple(7.0, 1.0)])
            assert sink.results[-1].value(agg) == pytest.approx(expected)

    def test_requires_timestamps(self):
        pipe = Pipeline([TimeWindowAggregate("v", 10.0), CollectSink()])
        bare = UncertainTuple(
            {"v": DfSized(GaussianDistribution(0, 1), 10)}
        )
        with pytest.raises(StreamError, match="timestamped"):
            pipe.run([bare])

    def test_rejects_time_regression(self):
        pipe = Pipeline([TimeWindowAggregate("v", 10.0), CollectSink()])
        with pytest.raises(StreamError, match="non-decreasing"):
            pipe.run([_tuple(1.0, 5.0), _tuple(1.0, 4.0)])

    def test_rejects_bad_parameters(self):
        with pytest.raises(StreamError):
            TimeWindowAggregate("v", 0.0)
        with pytest.raises(StreamError):
            TimeWindowAggregate("v", 10.0, agg="median")
