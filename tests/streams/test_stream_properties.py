"""Property-based tests for stream pipeline invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CollectSink,
    CountingSink,
    Derive,
    ProbabilisticFilter,
    Project,
    Select,
)
from repro.streams.tuples import UncertainTuple
from repro.streams.windows import CountWindow


values_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=0, max_size=40,
)


def _tuples(values, probabilities=None):
    if probabilities is None:
        probabilities = [1.0] * len(values)
    return [
        UncertainTuple({"x": float(v)}, probability=p)
        for v, p in zip(values, probabilities)
    ]


@given(values=values_lists)
@settings(max_examples=100, deadline=None)
def test_identity_pipeline_preserves_everything(values):
    sink = Pipeline([CollectSink()]).run(_tuples(values))
    assert [t.value("x") for t in sink.results] == [float(v) for v in values]


@given(values=values_lists, threshold=st.floats(-1e6, 1e6))
@settings(max_examples=100, deadline=None)
def test_select_partitions_stream(values, threshold):
    keep = Pipeline(
        [Select(lambda t: t.value("x") > threshold), CountingSink()]
    ).run(_tuples(values))
    drop = Pipeline(
        [Select(lambda t: not (t.value("x") > threshold)), CountingSink()]
    ).run(_tuples(values))
    assert keep.count + drop.count == len(values)


@given(values=values_lists)
@settings(max_examples=100, deadline=None)
def test_derive_then_project_roundtrip(values):
    pipeline = Pipeline(
        [
            Derive("y", lambda t: t.value("x") * 2.0),
            Project(["y"]),
            CollectSink(),
        ]
    )
    sink = pipeline.run(_tuples(values))
    assert [t.value("y") for t in sink.results] == [
        2.0 * float(v) for v in values
    ]
    assert all("x" not in t.attributes for t in sink.results)


@given(
    values=values_lists,
    probabilities=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=40
    ),
    factor=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_probabilistic_filter_never_raises_probability(
    values, probabilities, factor
):
    count = min(len(values), len(probabilities))
    tuples = _tuples(values[:count], probabilities[:count])
    sink = Pipeline(
        [ProbabilisticFilter(lambda t: factor), CollectSink()]
    ).run(tuples)
    for result, original in zip(
        sink.results,
        [t for t in tuples if t.probability * factor > 0],
    ):
        assert result.probability <= original.probability + 1e-12


@given(
    items=st.lists(st.integers(), min_size=0, max_size=60),
    size=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=150, deadline=None)
def test_count_window_retains_last_k(items, size):
    window = CountWindow(size)
    evicted = []
    for item in items:
        out = window.add(item)
        if out is not None:
            evicted.append(out)
    kept = list(window)
    assert kept == items[-size:] if items else kept == []
    assert evicted == items[: max(0, len(items) - size)]
    assert len(kept) == min(len(items), size)
