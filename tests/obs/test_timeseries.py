"""Frame-series telemetry: boundaries, deltas, folding, determinism."""

import json

import pytest

from repro.core.accuracy import AccuracyInfo, ConfidenceInterval
from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    Frame,
    FrameSeries,
    TelemetryConfig,
    TelemetryRecorder,
)
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, Operator
from repro.streams.tuples import UncertainTuple


class _WidthAccuracy(Operator):
    """Attach an AccuracyInfo with a scripted CI width per position."""

    accuracy_attribute = "accuracy"

    def __init__(self, widths):
        super().__init__()
        self.widths = list(widths)
        self._i = 0

    def process(self, tup):
        width = self.widths[self._i % len(self.widths)]
        self._i += 1
        info = AccuracyInfo(
            mean=ConfidenceInterval(0.0, width, 0.95),
            variance=ConfidenceInterval(0.0, 1.0, 0.95),
            sample_size=32,
            method="analytic",
        )
        attributes = dict(tup.attributes)
        attributes["accuracy"] = info
        self.emit(tup.with_attributes(attributes))


def _tuples(n):
    return [UncertainTuple({"x": float(i)}) for i in range(n)]


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.frame_interval == 256
        assert config.capacity == 256

    @pytest.mark.parametrize("interval", [0, -5])
    def test_rejects_bad_interval(self, interval):
        with pytest.raises(ObservabilityError):
            TelemetryConfig(frame_interval=interval)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ObservabilityError):
            TelemetryConfig(capacity=0)


class TestFrameCutting:
    def test_frames_cut_at_tuple_boundaries(self):
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=10))
        counter = recorder.registry.counter("ticks", "test")
        for _ in range(25):
            counter.inc()
            recorder.advance(1)
        assert len(recorder.series) == 2
        first, second = recorder.series.frames
        assert (first.start, first.end) == (0, 10)
        assert (second.start, second.end) == (10, 20)
        recorder.finalize()
        assert len(recorder.series) == 3
        tail = recorder.series.frames[-1]
        assert (tail.start, tail.end) == (20, 25)
        assert tail.metrics["ticks"]["value"] == 5

    def test_finalize_without_partial_frame_is_noop(self):
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=5))
        recorder.advance(5)
        recorder.finalize()
        assert len(recorder.series) == 1

    def test_batch_advance_cuts_at_most_one_frame(self):
        # A single large batch closes one (oversized) frame rather than
        # back-filling empty ones: frames are keyed by position, and the
        # registry cannot be re-snapshotted at interior positions.
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=10))
        recorder.advance(35)
        assert len(recorder.series) == 1
        frame = recorder.series.frames[0]
        assert (frame.start, frame.end) == (0, 35)

    def test_counter_deltas_are_per_frame_not_cumulative(self):
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=4))
        counter = recorder.registry.counter("seen", "test")
        for _ in range(8):
            counter.inc()
            recorder.advance(1)
        frames = recorder.series.frames
        assert [f.metrics["seen"]["value"] for f in frames] == [4, 4]

    def test_idle_metrics_are_omitted_from_frames(self):
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=4))
        busy = recorder.registry.counter("busy", "test")
        recorder.registry.counter("idle", "test")
        busy.inc(3)
        recorder.advance(4)
        frame = recorder.series.frames[0]
        assert "busy" in frame.metrics
        assert "idle" not in frame.metrics

    def test_gauge_reports_point_in_time_value(self):
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=2))
        gauge = recorder.registry.gauge("depth", "test")
        gauge.set(7.0)
        recorder.advance(2)
        gauge.set(3.0)
        recorder.advance(2)
        frames = recorder.series.frames
        assert frames[0].metrics["depth"]["value"] == 7.0
        assert frames[1].metrics["depth"]["value"] == 3.0

    def test_histogram_delta_buckets_are_cumulative_within_frame(self):
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=3))
        hist = recorder.registry.histogram(
            "widths", (1.0, 10.0), "test"
        )
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(5.0)
        recorder.advance(3)
        hist.observe(0.5)
        recorder.advance(3)
        first, second = recorder.series.frames
        counts = [b["count"] for b in first.metrics["widths"]["buckets"]]
        # Cumulative within the frame: <=1 saw one, <=10 saw all three.
        assert counts == [1, 3, 3]
        counts = [b["count"] for b in second.metrics["widths"]["buckets"]]
        assert counts == [1, 1, 1]


class TestFrameSeries:
    def test_ring_buffer_drops_oldest(self):
        series = FrameSeries(capacity=2)
        for i in range(5):
            series.append(Frame(index=i, start=i, end=i + 1, metrics={}))
        assert len(series) == 2
        assert [f.index for f in series] == [3, 4]
        assert series.dropped == 3

    def test_fold_frame_sums_counters_by_index(self):
        series = FrameSeries(capacity=8)
        series.append(
            Frame(
                index=0,
                start=0,
                end=4,
                metrics={"n": {"type": "counter", "value": 3}},
            )
        )
        series.fold_frame(
            {
                "index": 0,
                "start": 0,
                "end": 4,
                "metrics": {"n": {"type": "counter", "value": 2}},
            }
        )
        frame = series.frames[0]
        assert frame.metrics["n"]["value"] == 5
        assert frame.end == 8  # spans sum: 4 + 4 positions covered

    def test_fold_frame_inserts_unknown_index_sorted(self):
        series = FrameSeries(capacity=8)
        series.append(Frame(index=1, start=4, end=8, metrics={}))
        series.fold_frame(
            {"index": 0, "start": 0, "end": 4, "metrics": {}}
        )
        assert [f.index for f in series] == [0, 1]

    def test_fold_state_gauge_sums_plain_gauge_last_write(self):
        frame = Frame(
            index=0,
            start=0,
            end=4,
            metrics={
                "op.state.bytes": {"type": "gauge", "value": 100.0},
                "depth": {"type": "gauge", "value": 2.0},
            },
        )
        frame.fold(
            {
                "op.state.bytes": {"type": "gauge", "value": 50.0},
                "depth": {"type": "gauge", "value": 9.0},
            }
        )
        assert frame.metrics["op.state.bytes"]["value"] == 150.0
        assert frame.metrics["depth"]["value"] == 9.0

    def test_fold_type_mismatch_raises(self):
        frame = Frame(
            index=0,
            start=0,
            end=1,
            metrics={"m": {"type": "counter", "value": 1}},
        )
        with pytest.raises(ObservabilityError, match="type mismatch"):
            frame.fold({"m": {"type": "gauge", "value": 1.0}})

    def test_fold_histogram_bucket_bounds_must_agree(self):
        state = {
            "type": "histogram",
            "count": 1,
            "sum": 0.5,
            "buckets": [{"le": 1.0, "count": 1}],
        }
        frame = Frame(index=0, start=0, end=1, metrics={"h": state})
        with pytest.raises(ObservabilityError, match="bucket bounds"):
            frame.fold(
                {
                    "h": {
                        "type": "histogram",
                        "count": 1,
                        "sum": 0.5,
                        "buckets": [{"le": 2.0, "count": 1}],
                    }
                }
            )

    def test_deterministic_view_drops_timer_seconds(self):
        series = FrameSeries(capacity=4)
        series.append(
            Frame(
                index=0,
                start=0,
                end=4,
                metrics={
                    "t": {
                        "type": "timer",
                        "count": 4,
                        "total_seconds": 0.123,
                    }
                },
            )
        )
        view = series.deterministic_view()
        assert view[0]["metrics"]["t"] == {"type": "timer", "count": 4}
        # The underlying frame is untouched.
        assert "total_seconds" in series.frames[0].metrics["t"]


class TestRecorderMergeResync:
    def test_merge_snapshot_rejects_interval_mismatch(self):
        a = TelemetryRecorder(TelemetryConfig(frame_interval=8))
        b = TelemetryRecorder(TelemetryConfig(frame_interval=16))
        b.advance(16)
        with pytest.raises(ObservabilityError, match="frame_interval"):
            a.merge_snapshot(b.snapshot())

    def test_merge_snapshot_accumulates_dropped(self):
        parent = TelemetryRecorder(
            TelemetryConfig(frame_interval=1, capacity=2)
        )
        worker = TelemetryRecorder(
            TelemetryConfig(frame_interval=1, capacity=2)
        )
        for _ in range(5):
            worker.advance(1)
        parent.merge_snapshot(worker.snapshot())
        assert parent.series.dropped == 3

    def test_resync_prevents_double_counting_merged_metrics(self):
        # Simulates the sharded path: worker metrics fold into the parent
        # registry, then the parent records more frames of its own.
        parent = TelemetryRecorder(TelemetryConfig(frame_interval=4))
        counter = parent.registry.counter("seen", "test")
        worker = MetricsRegistry()
        worker.counter("seen", "test").inc(100)
        parent.registry.merge_snapshot(worker.snapshot())
        parent.resync()
        counter.inc(2)
        parent.advance(4)
        frame = parent.series.frames[-1]
        assert frame.metrics["seen"]["value"] == 2

    def test_to_json_is_strict_and_round_trips(self):
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=2))
        recorder.registry.counter("n", "test").inc(3)
        recorder.advance(2)
        payload = json.loads(recorder.to_json())
        assert payload["frame_interval"] == 2
        assert payload["frames"][0]["metrics"]["n"]["value"] == 3
        deterministic = json.loads(recorder.to_json(deterministic=True))
        assert deterministic["frames"][0]["end"] == 2


class TestPipelineIntegration:
    def test_run_records_accuracy_histogram_deltas(self):
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=8))
        pipeline = Pipeline(
            [_WidthAccuracy([0.1]), CollectSink()], telemetry=recorder
        )
        pipeline.run(_tuples(24))
        assert len(recorder.series) == 3
        for frame in recorder.series:
            state = frame.metrics[
                "pipeline.00.WidthAccuracy.interval_width"
            ]
            assert state["count"] == 8

    def test_run_batched_matches_run_frame_boundaries(self):
        per_tuple = TelemetryRecorder(TelemetryConfig(frame_interval=8))
        Pipeline(
            [_WidthAccuracy([0.1]), CollectSink()], telemetry=per_tuple
        ).run(_tuples(20))
        batched = TelemetryRecorder(TelemetryConfig(frame_interval=8))
        Pipeline(
            [_WidthAccuracy([0.1]), CollectSink()], telemetry=batched
        ).run_batched(_tuples(20), batch_size=4)
        spans = [(f.start, f.end) for f in per_tuple.series]
        assert spans == [(f.start, f.end) for f in batched.series]

    def test_telemetry_rides_on_existing_registry(self):
        registry = MetricsRegistry()
        recorder = TelemetryRecorder(
            TelemetryConfig(frame_interval=8), registry=registry
        )
        pipeline = Pipeline([_WidthAccuracy([0.1]), CollectSink()])
        pipeline.attach_metrics(registry)
        pipeline.attach_telemetry(recorder)
        assert pipeline.registry is registry
        pipeline.run(_tuples(8))
        assert len(recorder.series) == 1

    def test_detach_telemetry_stops_frame_cutting(self):
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=4))
        pipeline = Pipeline(
            [_WidthAccuracy([0.1]), CollectSink()], telemetry=recorder
        )
        pipeline.detach_telemetry()
        pipeline.run(_tuples(8))
        assert len(recorder.series) == 0

    def test_pristine_clone_is_detached_original_keeps_telemetry(self):
        # Sharded workers get detached clones (each builds a private
        # recorder); the original must keep its attachment for the
        # post-merge fold.
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=4))
        pipeline = Pipeline(
            [_WidthAccuracy([0.1]), CollectSink()], telemetry=recorder
        )
        clone = pipeline.pristine()
        assert clone.telemetry is None
        assert clone.registry is None
        assert pipeline.telemetry is recorder
        assert pipeline.registry is recorder.registry
