"""SLO rules: grammar, frame aggregations, burn-rate windows, drift."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.slo import (
    SloRule,
    detect_drift,
    evaluate_rule,
    frame_signal,
    parse_rule,
)
from repro.obs.timeseries import Frame, FrameSeries


def _hist(values, bounds=(0.1, 1.0, 10.0)):
    """A frame-delta histogram state holding the given observations."""
    edges = list(bounds) + [math.inf]
    buckets = [{"le": le, "count": 0} for le in edges]
    for value in values:
        for bucket in buckets:
            if value <= bucket["le"]:
                bucket["count"] += 1
    return {
        "type": "histogram",
        "count": len(values),
        "sum": float(sum(values)),
        "buckets": buckets,
    }


def _frame(index, widths, name="pipeline.00.Avg.interval_width", **extra):
    metrics = {name: _hist(widths)} if widths else {}
    metrics.update(extra)
    return Frame(
        index=index, start=index * 10, end=(index + 1) * 10, metrics=metrics
    )


def _series(frames):
    series = FrameSeries(capacity=len(frames) + 1)
    for frame in frames:
        series.append(frame)
    return series


class TestParseRule:
    def test_basic_rule(self):
        rule = parse_rule("ci_width p95 <= 0.5")
        assert rule.signal == "ci_width"
        assert rule.agg == "p95"
        assert rule.op == "<="
        assert rule.threshold == 0.5
        assert rule.operator is None

    def test_operator_qualifier(self):
        rule = parse_rule("Sliding: de_facto_n p5 >= 16")
        assert rule.operator == "Sliding"
        assert rule.signal == "de_facto_n"
        assert rule.op == ">="

    def test_text_round_trips(self):
        for text in (
            "ci_width p95 <= 0.5",
            "de_facto_n p5 >= 30",
            "synopsis_error max <= 0.05",
            "draws_used mean <= 800",
            "Avg: ci_width max <= 1",
        ):
            rule = parse_rule(text)
            assert parse_rule(rule.text) == rule

    def test_window_parameters_thread_through(self):
        rule = parse_rule(
            "ci_width mean <= 1", short_window=2, long_window=6,
            burn_threshold=0.75,
        )
        assert (rule.short_window, rule.long_window) == (2, 6)
        assert rule.burn_threshold == 0.75

    @pytest.mark.parametrize(
        "text",
        [
            "ci_width p95 <=",           # missing threshold
            "ci_width p95 0.5",          # missing comparator
            "latency p95 <= 0.5",        # unknown signal
            "ci_width p50 <= 0.5",       # unknown aggregation
            "ci_width p95 < 0.5",        # strict comparator
            "ci_width p95 <= lots",      # non-numeric threshold
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ObservabilityError):
            parse_rule(text)

    def test_rejects_bad_windows(self):
        with pytest.raises(ObservabilityError, match="windows"):
            SloRule(
                signal="ci_width", agg="p95", op="<=", threshold=1.0,
                short_window=5, long_window=3,
            )

    def test_violates(self):
        upper = parse_rule("ci_width p95 <= 0.5")
        assert not upper.violates(0.5)
        assert upper.violates(0.6)
        assert upper.violates(math.inf)
        lower = parse_rule("de_facto_n p5 >= 16")
        assert not lower.violates(16.0)
        assert lower.violates(10.0)


class TestFrameSignal:
    def test_mean_is_exact(self):
        frame = _frame(0, [0.2, 0.4, 0.6])
        value = frame_signal(frame, "ci_width", "mean")
        assert value == pytest.approx(0.4)

    def test_quantile_interpolates_within_bucket(self):
        # 10 observations all in the (0.1, 1.0] bucket: p95 ranks 9.5 of
        # 10 in-bucket, interpolated over (0.1, 1.0].
        frame = _frame(0, [0.5] * 10)
        value = frame_signal(frame, "ci_width", "p95")
        assert value == pytest.approx(0.1 + 0.95 * 0.9)

    def test_p95_in_overflow_bucket_is_inf(self):
        frame = _frame(0, [100.0] * 10)
        assert frame_signal(frame, "ci_width", "p95") == math.inf

    def test_max_and_min_are_bucket_edges(self):
        frame = _frame(0, [0.05, 0.5, 5.0])
        assert frame_signal(frame, "ci_width", "max") == 10.0
        assert frame_signal(frame, "ci_width", "min") == 0.0

    def test_no_observations_is_none(self):
        assert frame_signal(_frame(0, []), "ci_width", "p95") is None

    def test_combines_matching_operators(self):
        frame = _frame(
            0,
            [0.2],
            **{"pipeline.01.Other.interval_width": _hist([0.6])},
        )
        assert frame_signal(frame, "ci_width", "mean") == pytest.approx(
            0.4
        )

    def test_operator_qualifier_filters(self):
        frame = _frame(
            0,
            [0.2],
            **{"pipeline.01.Other.interval_width": _hist([0.6])},
        )
        value = frame_signal(frame, "ci_width", "mean", operator="Avg")
        assert value == pytest.approx(0.2)
        assert (
            frame_signal(frame, "ci_width", "mean", operator="Nope")
            is None
        )

    def test_signal_ignores_non_matching_suffixes(self):
        frame = _frame(
            0,
            [0.2],
            **{"pipeline.00.Avg.sample_size": _hist([32.0])},
        )
        # de_facto_n reads the sample_size histogram, not interval_width.
        value = frame_signal(frame, "de_facto_n", "mean")
        assert value == pytest.approx(32.0)


class TestBurnRateEvaluation:
    def test_short_spike_alone_does_not_burn(self):
        rule = parse_rule(
            "ci_width mean <= 0.5", short_window=2, long_window=6,
        )
        frames = [_frame(i, [0.2]) for i in range(5)]
        frames.append(_frame(5, [5.0]))  # one bad frame at the end
        evaluation = evaluate_rule(_series(frames), rule)
        assert evaluation.verdicts[-1].bad
        assert evaluation.verdicts[-1].short_fraction == 0.5
        assert not evaluation.ever_burned

    def test_sustained_violation_burns_both_windows(self):
        rule = parse_rule(
            "ci_width mean <= 0.5", short_window=2, long_window=4,
        )
        frames = [_frame(i, [0.2]) for i in range(2)]
        frames += [_frame(2 + i, [5.0]) for i in range(4)]
        evaluation = evaluate_rule(_series(frames), rule)
        last = evaluation.verdicts[-1]
        assert last.burning
        assert last.short_fraction == 1.0
        assert last.long_fraction == 1.0

    def test_no_data_frames_count_as_good(self):
        rule = parse_rule(
            "ci_width mean <= 0.5", short_window=2, long_window=4,
        )
        frames = [_frame(i, [5.0]) for i in range(3)]
        frames += [_frame(3 + i, []) for i in range(4)]
        evaluation = evaluate_rule(_series(frames), rule)
        assert evaluation.verdicts[2].burning
        assert not evaluation.verdicts[-1].burning
        assert evaluation.verdicts[-1].short_fraction == 0.0

    def test_lower_bound_objective(self):
        rule = parse_rule(
            "de_facto_n mean >= 16", short_window=1, long_window=2,
        )
        name = "pipeline.00.Avg.sample_size"
        frames = [
            Frame(0, 0, 10, {name: _hist([32.0])}),
            Frame(1, 10, 20, {name: _hist([4.0])}),
        ]
        evaluation = evaluate_rule(_series(frames), rule)
        assert [v.bad for v in evaluation.verdicts] == [False, True]


class TestDetectDrift:
    def test_flat_series_is_not_drift(self):
        frames = [_frame(i, [0.5]) for i in range(8)]
        assert detect_drift(_series(frames), "ci_width") is None

    def test_widening_trend_is_detected(self):
        frames = [
            _frame(i, [0.2 + 0.05 * i]) for i in range(8)
        ]
        event = detect_drift(_series(frames), "ci_width")
        assert event is not None
        assert event.slope > 0
        assert event.relative_change > 0.25
        assert (event.first_frame, event.last_frame) == (0, 7)

    def test_narrowing_trend_has_negative_slope(self):
        frames = [
            _frame(i, [1.0 - 0.08 * i]) for i in range(8)
        ]
        event = detect_drift(_series(frames), "ci_width")
        assert event is not None
        assert event.slope < 0
        assert event.relative_change < 0

    def test_too_few_observed_frames_is_none(self):
        frames = [_frame(0, [0.2]), _frame(1, [5.0])]
        assert detect_drift(_series(frames), "ci_width") is None

    def test_window_limits_lookback(self):
        # Old steep drift outside the window, flat within it.
        frames = [_frame(i, [0.1 * (i + 1)]) for i in range(5)]
        frames += [_frame(5 + i, [0.5]) for i in range(8)]
        event = detect_drift(_series(frames), "ci_width", window=8)
        assert event is None
