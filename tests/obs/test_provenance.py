"""Accuracy provenance: lineage capture, lookup, and explain()."""

import json

import pytest

from repro.core.analytic import distribution_accuracy
from repro.core.dfsample import DfSized, df_sample_size
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import ObservabilityError
from repro.obs.provenance import (
    ProvenanceRecord,
    ProvenanceRecorder,
    lineage_from_operands,
)
from repro.obs.trace import TraceConfig, Tracer
from repro.obs import explain as obs_explain
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CollectSink,
    Operator,
    SlidingGaussianAverage,
)
from repro.streams.tuples import UncertainTuple


def _dfsized(mean, n):
    return DfSized(GaussianDistribution(float(mean), 1.0), n)


class _Theorem1Join(Operator):
    """Combines two DfSized operands into one Theorem-1 accuracy result.

    The de facto sample size of the output is the Lemma-3 minimum of
    the operand sizes; the lineage names which operand set it.
    """

    accuracy_attribute = "accuracy"

    def __init__(self, left: str, right: str, confidence: float = 0.95):
        super().__init__()
        self.left = left
        self.right = right
        self.confidence = confidence

    def _operands(self, tup):
        return {
            self.left: tup.attributes.get(self.left),
            self.right: tup.attributes.get(self.right),
        }

    def process(self, tup):
        operands = self._operands(tup)
        df = df_sample_size(
            op.sample_size if isinstance(op, DfSized) else None
            for op in operands.values()
        )
        if df is not None and df >= 2:
            dist = operands[self.left].distribution
            attributes = dict(tup.attributes)
            attributes["accuracy"] = distribution_accuracy(
                dist, df, self.confidence
            )
            tup = tup.with_attributes(attributes)
        self.emit(tup)

    def trace_lineage(self, tup):
        return lineage_from_operands(self._operands(tup))


def _join_tuples(n=5, left_n=30, right_n=12):
    return [
        UncertainTuple(
            attributes={
                "left": _dfsized(i, left_n),
                "right": _dfsized(-i, right_n),
            },
            timestamp=float(i),
        )
        for i in range(n)
    ]


def _run_join(tracer, tuples=None):
    pipeline = Pipeline(
        [_Theorem1Join("left", "right"), CollectSink()], tracer=tracer
    )
    return pipeline.run(tuples if tuples is not None else _join_tuples())


class TestLineageFromOperands:
    def test_names_the_min_input(self):
        lineage = lineage_from_operands(
            {"a": _dfsized(0, 30), "b": _dfsized(0, 12), "c": _dfsized(0, 20)}
        )
        assert lineage["df_size"] == 12
        assert lineage["min_input"] == "b"
        assert lineage["inputs"] == {"a": 30, "b": 12, "c": 20}

    def test_exact_inputs_never_bind_the_min(self):
        lineage = lineage_from_operands(
            {"exact": 3.5, "sampled": _dfsized(0, 7)}
        )
        assert lineage["inputs"] == {"exact": None, "sampled": 7}
        assert lineage["df_size"] == 7
        assert lineage["min_input"] == "sampled"

    def test_all_exact_has_no_df_size(self):
        lineage = lineage_from_operands({"x": 1.0, "y": "label"})
        assert lineage["df_size"] is None
        assert lineage["min_input"] is None

    def test_tie_names_first_operand_in_mapping_order(self):
        lineage = lineage_from_operands(
            {"a": _dfsized(0, 9), "b": _dfsized(0, 9)}
        )
        assert lineage["min_input"] == "a"


class TestExplainTheorem1:
    """ISSUE acceptance: explain() on a Theorem-1 result names the input
    whose sample size set the Lemma-3 de facto size."""

    def test_names_min_input_and_df_size(self):
        tracer = Tracer()
        sink = _run_join(tracer)
        result = sink.results[0]
        accuracy = result.attributes["accuracy"]
        assert accuracy.sample_size == 12  # min(30, 12)
        text = tracer.explain(result)
        assert "de facto sample size (Lemma 3) = 12" in text
        assert "set by input 'right'" in text
        assert "left(n=30)" in text
        assert "right(n=12)" in text
        assert "method=analytic" in text

    def test_module_level_explain_helper(self):
        tracer = Tracer()
        sink = _run_join(tracer)
        assert "Lemma 3" in obs_explain(sink.results[1], tracer)

    def test_explain_survives_cross_worker_merge(self):
        # After pickling, payload object identity is gone; lookup must
        # fall back to the content fingerprint.
        worker = Tracer(TraceConfig(seed=7), shard="shard0")
        sink = _run_join(worker)
        snapshot = json.loads(json.dumps(worker.snapshot()))
        parent = Tracer(TraceConfig(seed=7))
        parent.merge_spans(snapshot)
        text = parent.explain(sink.results[0])
        assert "set by input 'right'" in text

    def test_ci_width_chain_between_stages(self):
        tracer = Tracer()
        pipeline = Pipeline(
            [
                SlidingGaussianAverage("left", 4, output="avg"),
                _Theorem1Join("avg", "right"),
                CollectSink(),
            ],
            tracer=tracer,
        )
        sink = pipeline.run(_join_tuples(8))
        text = tracer.explain(sink.results[-1])
        assert "through this stage" in text
        assert text.index("SlidingGaussianAverage") < text.index(
            "Theorem1Join"
        )


class TestRecorder:
    def test_pipeline_records_one_record_per_emitted_tuple(self):
        tracer = Tracer()
        _run_join(tracer, _join_tuples(6))
        assert len(tracer.provenance) == 6
        record = tracer.provenance.records[0]
        assert record.stage == "pipeline.00.Theorem1Join"
        assert record.out_seq == 0
        assert record.sample_size == 12
        assert record.span_id is not None
        assert record.ci_width is not None and record.ci_width > 0.0

    def test_batched_and_per_tuple_records_identical(self):
        per_tuple = Tracer(TraceConfig(seed=3))
        batched = Tracer(TraceConfig(seed=3))
        Pipeline(
            [_Theorem1Join("left", "right"), CollectSink()],
            tracer=per_tuple,
        ).run(_join_tuples(9))
        Pipeline(
            [_Theorem1Join("left", "right"), CollectSink()],
            tracer=batched,
        ).run_batched(_join_tuples(9), batch_size=4)
        assert (
            per_tuple.provenance.deterministic_view()
            == batched.provenance.deterministic_view()
        )

    def test_sampling_is_deterministic_and_keeps_out_seq(self):
        def run(rate):
            recorder = ProvenanceRecorder(seed=11, sample_rate=rate)
            tracer = Tracer(TraceConfig(seed=11))
            tracer.provenance = recorder
            _run_join(tracer, _join_tuples(50))
            return recorder

        full = run(1.0)
        half = run(0.4)
        again = run(0.4)
        assert 0 < len(half) < 50
        assert [r.to_dict() for r in half.records] == [
            r.to_dict() for r in again.records
        ]
        # Sampled-out tuples still advance out_seq: the kept records are
        # a subset of the full set, with their original sequence numbers.
        full_by_seq = {r.out_seq: r.to_dict() for r in full.records}
        for record in half.records:
            assert record.to_dict() == full_by_seq[record.out_seq]

    def test_max_records_cap(self):
        tracer = Tracer(TraceConfig(max_records=3))
        _run_join(tracer, _join_tuples(10))
        assert len(tracer.provenance) == 3

    def test_tuples_without_accuracy_payload_skip_recording(self):
        tracer = Tracer()
        plain = [
            UncertainTuple(attributes={"left": 1.0, "right": 2.0},
                           timestamp=float(i))
            for i in range(4)
        ]
        _run_join(tracer, plain)
        assert len(tracer.provenance) == 0

    def test_find_rejects_non_tuples(self):
        with pytest.raises(ObservabilityError):
            ProvenanceRecorder().find(42)

    def test_explain_fallback_message(self):
        tracer = Tracer()
        tup = UncertainTuple(attributes={"x": 1.0}, timestamp=0.0)
        assert "no provenance recorded" in tracer.explain(tup)

    def test_record_roundtrip_dict(self):
        tracer = Tracer()
        _run_join(tracer)
        record = tracer.provenance.records[0]
        clone = ProvenanceRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone.to_dict() == record.to_dict()

    def test_bootstrap_records_r_n_and_drops(self):
        from repro.experiments.fig5_throughput import _BootstrapAccuracy

        tracer = Tracer()
        pipeline = Pipeline(
            [
                _BootstrapAccuracy("left", resamples=20, seed=5),
                CollectSink(),
            ],
            tracer=tracer,
        )
        sink = pipeline.run(_join_tuples(4))
        record = tracer.provenance.records[0]
        assert record.method == "bootstrap"
        assert record.lineage["resamples"] == 20
        assert record.values_used > 0
        assert record.values_dropped >= 0
        text = tracer.explain(sink.results[0])
        assert "bootstrap r=" in text
        assert "values_dropped=" in text

    def test_reset_clears_identity_index(self):
        tracer = Tracer()
        sink = _run_join(tracer)
        tracer.provenance.reset()
        assert len(tracer.provenance) == 0
        assert tracer.provenance.find(sink.results[0]) == []


class TestAdaptiveProvenance:
    def test_explain_shows_draws_used_and_rounds(self):
        from repro.experiments.fig5_throughput import _BootstrapAccuracy

        tracer = Tracer()
        pipeline = Pipeline(
            [
                _BootstrapAccuracy(
                    "left", resamples=32, seed=5,
                    target_ci_width=1e9, initial_resamples=8,
                ),
                CollectSink(),
            ],
            tracer=tracer,
        )
        sink = pipeline.run(_join_tuples(4))
        record = tracer.provenance.records[0]
        assert record.method == "bootstrap"
        assert record.draws_used == 8 * record.sample_size  # stopped early
        assert record.rounds == 1
        text = tracer.explain(sink.results[0])
        assert "draws_used=" in text
        assert "rounds=" in text

    def test_record_dict_roundtrips_draw_fields(self):
        from repro.experiments.fig5_throughput import _BootstrapAccuracy

        tracer = Tracer()
        Pipeline(
            [
                _BootstrapAccuracy(
                    "left", resamples=32, seed=5, target_ci_width=1e9
                ),
                CollectSink(),
            ],
            tracer=tracer,
        ).run(_join_tuples(2))
        record = tracer.provenance.records[0]
        clone = ProvenanceRecord.from_dict(record.to_dict())
        assert clone.draws_used == record.draws_used
        assert clone.rounds == record.rounds
