"""Trace exporters: Chrome trace events, strict JSON, text tree."""

import json
import math

import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import ObservabilityError
from repro.obs.export import (
    chrome_trace_events,
    render_trace_tree,
    spans_to_json,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import TraceConfig, Tracer
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, SlidingGaussianAverage
from repro.streams.tuples import UncertainTuple


def _traced_tracer(n=30, batch_size=None, seed=0):
    tracer = Tracer(TraceConfig(seed=seed))
    pipeline = Pipeline(
        [SlidingGaussianAverage("value", 8), CollectSink()], tracer=tracer
    )
    tuples = [
        UncertainTuple(
            attributes={
                "value": DfSized(GaussianDistribution(float(i), 1.0), 10)
            },
            timestamp=float(i),
        )
        for i in range(n)
    ]
    if batch_size is None:
        pipeline.run(tuples)
    else:
        pipeline.run_batched(tuples, batch_size=batch_size)
    return tracer


class TestChromeTrace:
    def test_events_cover_every_span(self):
        tracer = _traced_tracer(batch_size=8)
        events = chrome_trace_events(tracer)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(tracer.spans)
        span_ids = {e["args"]["span_id"] for e in complete}
        assert span_ids == {s.span_id for s in tracer.spans}

    def test_metadata_names_processes_and_tracks(self):
        events = chrome_trace_events(_traced_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        process = next(e for e in meta if e["name"] == "process_name")
        assert process["args"]["name"] == "repro shard main"

    def test_timestamps_rebased_nonnegative_microseconds(self):
        events = chrome_trace_events(_traced_tracer(batch_size=8))
        complete = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0.0
        assert all(e["dur"] >= 0.0 for e in complete)

    def test_stages_land_on_distinct_threads(self):
        events = chrome_trace_events(_traced_tracer())
        tids = {
            e["name"]: e["tid"]
            for e in events
            if e["ph"] == "X" and e.get("cat") == "stage"
        }
        assert len(set(tids.values())) == len(tids) == 2

    def test_export_validates_and_roundtrips(self, tmp_path):
        tracer = _traced_tracer(batch_size=8)
        path = tmp_path / "trace.json"
        text = write_chrome_trace(tracer, str(path))
        assert path.read_text() == text + "\n"
        obj = validate_chrome_trace(text)
        assert obj == json.loads(text)
        assert obj["displayTimeUnit"] == "ms"
        assert obj["otherData"]["format"] == "repro-trace"

    def test_nonfinite_span_attrs_become_null(self):
        tracer = Tracer()
        span = tracer.begin("x")
        tracer.end(span, ratio=float("nan"), peak=float("inf"))
        text = json.dumps(to_chrome_trace(tracer), allow_nan=False)
        event = validate_chrome_trace(text)["traceEvents"][-1]
        assert event["args"]["ratio"] is None
        assert event["args"]["peak"] is None


class TestValidateChromeTrace:
    def test_rejects_nan_literal(self):
        with pytest.raises(ObservabilityError, match="NaN"):
            validate_chrome_trace(
                '{"traceEvents": [{"name": "x", "ph": "X", "pid": 0, '
                '"tid": 0, "ts": NaN, "dur": 1}]}'
            )

    def test_rejects_infinity_literal(self):
        with pytest.raises(ObservabilityError):
            validate_chrome_trace('{"traceEvents": [], "x": Infinity}')

    def test_rejects_invalid_json(self):
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            validate_chrome_trace("{nope")

    def test_rejects_missing_container(self):
        with pytest.raises(ObservabilityError, match="traceEvents"):
            validate_chrome_trace('{"events": []}')
        with pytest.raises(ObservabilityError, match="list"):
            validate_chrome_trace('{"traceEvents": {}}')

    def test_rejects_malformed_events(self):
        with pytest.raises(ObservabilityError, match="missing required"):
            validate_chrome_trace(
                '{"traceEvents": [{"name": "x", "ph": "X", "pid": 0}]}'
            )
        with pytest.raises(ObservabilityError, match="phase"):
            validate_chrome_trace(
                '{"traceEvents": [{"name": "x", "ph": "B", "pid": 0, '
                '"tid": 0}]}'
            )
        with pytest.raises(ObservabilityError, match="negative"):
            validate_chrome_trace(
                '{"traceEvents": [{"name": "x", "ph": "X", "pid": 0, '
                '"tid": 0, "ts": 0, "dur": -1}]}'
            )


class TestSpansToJson:
    def test_strict_json_roundtrip(self):
        tracer = _traced_tracer(batch_size=8)
        for deterministic in (False, True):
            text = spans_to_json(tracer, deterministic=deterministic)
            obj = json.loads(
                text,
                parse_constant=lambda lit: pytest.fail(
                    f"non-strict constant {lit}"
                ),
            )
            assert obj["spans"]
            assert obj["provenance"]

    def test_deterministic_dump_is_worker_order_free(self):
        tracer = _traced_tracer(seed=5)
        shuffled = Tracer(TraceConfig(seed=5), shard="other")
        # Merge main's snapshot into a differently-labelled tracer; the
        # deterministic dump sorts by (shard, seq) so it matches a dump
        # taken from a tracer that saw the spans in any order.
        shuffled.merge_spans(tracer.snapshot())
        ours = json.loads(spans_to_json(tracer, deterministic=True))
        theirs = json.loads(spans_to_json(shuffled, deterministic=True))
        assert ours["spans"] == theirs["spans"]
        assert ours["provenance"] == theirs["provenance"]

    def test_nonfinite_values_serialize_as_null(self):
        tracer = Tracer()
        tracer.end(tracer.begin("x"), bad=float("-inf"))
        obj = json.loads(spans_to_json(tracer))
        assert obj["spans"][0]["attrs"]["bad"] is None


class TestRenderTraceTree:
    def test_empty_tracer(self):
        assert render_trace_tree(Tracer()) == "(no spans recorded)"

    def test_tree_shape(self):
        tracer = _traced_tracer(batch_size=16)
        text = render_trace_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("run pipeline.run_batched")
        assert any(
            line.startswith(("|- ", "`- ")) and "stage" in line
            for line in lines
        )
        assert "batch" in text
        assert "tuples_in=30" in text

    def test_orphaned_parents_surface_as_roots(self):
        worker = Tracer(TraceConfig(seed=1), shard="shard0")
        parent_span = worker.begin("root")
        child = worker.begin("stage", kind="stage", parent=parent_span)
        worker.end(child)
        worker.end(parent_span)
        merged = Tracer(TraceConfig(seed=1), shard="merge-target")
        snapshot = worker.snapshot()
        # Drop the root span: the child's parent is now unknown.
        snapshot["spans"] = [
            s for s in snapshot["spans"] if s["name"] != "root"
        ]
        merged.merge_spans(snapshot)
        text = render_trace_tree(merged)
        assert text.startswith("stage stage")

    def test_duration_formatting_is_finite(self):
        tracer = Tracer()
        span = tracer.begin("x")
        tracer.end(span, end=span.start + 2.5)
        assert "2.500s" in render_trace_tree(tracer)
        assert math.isfinite(span.duration)
