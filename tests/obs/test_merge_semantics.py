"""merge_snapshot fold-in semantics for timers and histograms.

Counters were already covered by the sharded-execution tests; these
pin down the Timer and Histogram cases against a from-scratch reference
when >= 3 worker snapshots come home.
"""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry

BUCKETS = (0.1, 1.0, 10.0)


def _worker_timer(samples):
    registry = MetricsRegistry()
    timer = registry.timer("op.process_seconds", "per-call wall time")
    for value in samples:
        timer.record(value)
    return registry


def _worker_histogram(samples):
    registry = MetricsRegistry()
    histogram = registry.histogram("op.batch_size", BUCKETS, "batch sizes")
    for value in samples:
        histogram.observe(value)
    return registry


TIMER_SAMPLES = [
    [0.5, 0.25, 1.5],
    [0.125],
    [2.0, 0.0625, 0.75, 3.0],
]
HISTOGRAM_SAMPLES = [
    [0.05, 0.5, 5.0],
    [50.0, 0.2],
    [0.01, 0.8, 2.5, 100.0],
]


class TestTimerMerge:
    def test_three_worker_fold_in_matches_single_registry(self):
        parent = MetricsRegistry()
        for samples in TIMER_SAMPLES:
            parent.merge_snapshot(_worker_timer(samples).snapshot())
        reference = _worker_timer(
            [v for samples in TIMER_SAMPLES for v in samples]
        )
        merged = parent.get("op.process_seconds").snapshot()
        expected = reference.get("op.process_seconds").snapshot()
        assert merged["count"] == expected["count"] == 8
        assert merged["total_seconds"] == pytest.approx(
            expected["total_seconds"]
        )
        assert merged["min_seconds"] == expected["min_seconds"] == 0.0625
        assert merged["max_seconds"] == expected["max_seconds"] == 3.0
        assert merged["mean_seconds"] == pytest.approx(
            expected["mean_seconds"]
        )

    def test_merge_into_nonempty_parent(self):
        parent = _worker_timer([0.03])
        parent.merge_snapshot(_worker_timer([4.0, 0.5]).snapshot())
        timer = parent.get("op.process_seconds")
        assert timer.count == 3
        assert timer.snapshot()["min_seconds"] == 0.03
        assert timer.snapshot()["max_seconds"] == 4.0

    def test_empty_worker_timer_is_a_noop(self):
        parent = _worker_timer([0.5])
        parent.merge_snapshot(_worker_timer([]).snapshot())
        snap = parent.get("op.process_seconds").snapshot()
        assert snap["count"] == 1
        # An empty worker must not clobber min with its None sentinel.
        assert snap["min_seconds"] == 0.5


class TestHistogramMerge:
    def test_three_worker_fold_in_matches_single_registry(self):
        parent = MetricsRegistry()
        for samples in HISTOGRAM_SAMPLES:
            parent.merge_snapshot(_worker_histogram(samples).snapshot())
        reference = _worker_histogram(
            [v for samples in HISTOGRAM_SAMPLES for v in samples]
        )
        merged = parent.get("op.batch_size")
        expected = reference.get("op.batch_size")
        assert merged.count == expected.count == 9
        assert merged.sum == pytest.approx(expected.sum)
        assert merged.bucket_counts() == expected.bucket_counts()
        assert merged.snapshot()["min"] == expected.snapshot()["min"]
        assert merged.snapshot()["max"] == expected.snapshot()["max"]

    def test_overflow_bucket_survives_decumulation(self):
        parent = MetricsRegistry()
        for samples in ([100.0, 11.0], [0.05], [999.0]):
            parent.merge_snapshot(_worker_histogram(samples).snapshot())
        histogram = parent.get("op.batch_size")
        pairs = dict(histogram.bucket_counts())
        assert pairs[math.inf] == 4
        assert pairs[10.0] == 1  # only the 0.05 observation
        assert histogram.count == 4

    def test_bucket_bound_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.histogram("op.batch_size", (1.0, 2.0))
        with pytest.raises(ObservabilityError, match="bucket bounds"):
            parent.merge_snapshot(_worker_histogram([0.5]).snapshot())

    def test_unknown_metric_type_raises(self):
        with pytest.raises(ObservabilityError, match="unknown type"):
            MetricsRegistry().merge_snapshot(
                {"x": {"type": "mystery", "value": 1}}
            )


def _worker_gauges(state_bytes, depth):
    registry = MetricsRegistry()
    registry.gauge("op.state.bytes", "retained state").set(state_bytes)
    registry.gauge("pipeline.depth", "queue depth").set(depth)
    return registry


class TestGaugeMerge:
    """Name-based fold: ``.state.bytes`` gauges sum, others last-write.

    Worker state gauges report each shard's *own* retained bytes; the
    parent's merged value must be the fleet total, while point-in-time
    gauges (depths, group counts) keep last-write-wins.
    """

    def test_three_worker_state_gauges_sum(self):
        parent = MetricsRegistry()
        for state_bytes, depth in ((1024.0, 1.0), (2048.0, 2.0), (512.0, 3.0)):
            parent.merge_snapshot(
                _worker_gauges(state_bytes, depth).snapshot()
            )
        assert parent.get("op.state.bytes").value == 3584.0
        assert parent.get("pipeline.depth").value == 3.0

    def test_merge_into_nonempty_parent_adds_state_bytes(self):
        parent = _worker_gauges(100.0, 7.0)
        parent.merge_snapshot(_worker_gauges(50.0, 9.0).snapshot())
        assert parent.get("op.state.bytes").value == 150.0
        assert parent.get("pipeline.depth").value == 9.0

    def test_shard_order_invariance_for_state_gauges(self):
        snapshots = [
            _worker_gauges(float(2**i), float(i)).snapshot()
            for i in range(3)
        ]
        forward = MetricsRegistry()
        for snap in snapshots:
            forward.merge_snapshot(snap)
        backward = MetricsRegistry()
        for snap in reversed(snapshots):
            backward.merge_snapshot(snap)
        assert (
            forward.get("op.state.bytes").value
            == backward.get("op.state.bytes").value
            == 7.0
        )

    def test_suffix_match_is_exact(self):
        # Only the ``.state.bytes`` suffix sums — a gauge merely
        # *containing* the words keeps last-write semantics.
        registry = MetricsRegistry()
        registry.gauge("op.state.bytes.limit").set(10.0)
        incoming = MetricsRegistry()
        incoming.gauge("op.state.bytes.limit").set(4.0)
        registry.merge_snapshot(incoming.snapshot())
        assert registry.get("op.state.bytes.limit").value == 4.0


class TestMixedWorkerSnapshots:
    def test_full_worker_registry_fold_in(self):
        def worker(scale):
            registry = MetricsRegistry()
            registry.counter("tuples").inc(10 * scale)
            registry.gauge("depth").set(float(scale))
            timer = registry.timer("op.process_seconds")
            timer.record(0.1 * scale)
            histogram = registry.histogram("op.batch_size", BUCKETS)
            histogram.observe(float(scale))
            return registry

        parent = MetricsRegistry()
        for scale in (1, 2, 3):
            parent.merge_snapshot(worker(scale).snapshot())
        assert parent.get("tuples").value == 60
        assert parent.get("depth").value == 3.0  # last write wins
        assert parent.get("op.process_seconds").count == 3
        assert parent.get("op.process_seconds").snapshot()[
            "total_seconds"
        ] == pytest.approx(0.6)
        assert parent.get("op.batch_size").count == 3
