"""Property tests: render_prometheus stays valid exposition format and
to_json stays strict JSON under adversarial names, help text, and
non-finite observations."""

import json
import math
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, _prom_name, prometheus_sample

# One line of the text exposition format: a metric name, an optional
# {k="v",...} label set, and a float-parseable value.  Label values may
# contain any character except a raw newline, backslash, or quote
# unless escaped.
_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = rf'{_NAME}="(?:[^"\\\n]|\\[\\"n])*"'
_SAMPLE_RE = re.compile(
    rf"^({_NAME})(?:\{{({_LABEL}(?:,{_LABEL})*)\}})? (\S+)$"
)
_LABEL_RE = re.compile(rf'({_NAME})="((?:[^"\\\n]|\\[\\"n])*)"')
_COMMENT_RE = re.compile(rf"^# (HELP|TYPE) ({_NAME})(?: (.*))?$")

# Text rich in the characters the escaping exists for.
_adversarial_text = st.text(
    alphabet=st.sampled_from(list('\\"\n') + list("a1 _#{}=-")),
    max_size=30,
)
_any_name = st.text(max_size=20)


def _parse_value(token):
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    return float(token)  # raises on garbage -> test failure


def _unescape_label(text):
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            assert i + 1 < len(text), "dangling backslash in label value"
            nxt = text[i + 1]
            assert nxt in ('\\', 'n', '"'), f"bad label escape \\{nxt}"
            out.append({"\\": "\\", "n": "\n", '"': '"'}[nxt])
            i += 2
        else:
            assert ch not in ('"', "\n")
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(body):
    """Strictly parse a ``k="v",...`` label body into ordered pairs."""
    pairs = []
    rest = body
    while rest:
        match = _LABEL_RE.match(rest)
        assert match is not None, f"unparseable label body: {rest!r}"
        pairs.append((match.group(1), _unescape_label(match.group(2))))
        rest = rest[match.end():]
        if rest:
            assert rest[0] == ","
            rest = rest[1:]
    return pairs


def _unescape_help(text):
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            assert i + 1 < len(text), "dangling backslash in HELP text"
            nxt = text[i + 1]
            assert nxt in ("\\", "n"), f"bad HELP escape \\{nxt}"
            out.append("\\" if nxt == "\\" else "\n")
            i += 2
        else:
            assert ch != "\n"
            out.append(ch)
            i += 1
    return "".join(out)


def _check_exposition(text):
    """Every line is a well-formed comment or sample; returns the lines."""
    assert text == "" or text.endswith("\n")
    lines = text.splitlines()
    helps = {}
    for line in lines:
        comment = _COMMENT_RE.match(line)
        if comment:
            if comment.group(1) == "HELP":
                helps[comment.group(2)] = comment.group(3) or ""
            continue
        sample = _SAMPLE_RE.match(line)
        assert sample is not None, f"unparseable exposition line: {line!r}"
        if sample.group(2) is not None:
            _parse_labels(sample.group(2))
        _parse_value(sample.group(3))
    return lines, helps


class TestPrometheusProperties:
    @settings(max_examples=150)
    @given(name=_any_name, help=_adversarial_text)
    def test_counter_lines_stay_well_formed(self, name, help):
        registry = MetricsRegistry()
        registry.counter(name, help).inc(3)
        lines, helps = _check_exposition(registry.render_prometheus())
        # Exactly HELP? + TYPE + one sample: newlines in help must not
        # smuggle extra lines into the dump.
        assert len(lines) == (3 if help else 2)
        if help:
            assert _unescape_help(helps[_prom_name(name)]) == help

    @settings(max_examples=100)
    @given(name=_any_name, help=_adversarial_text)
    def test_histogram_label_values_stay_well_formed(self, name, help):
        registry = MetricsRegistry()
        histogram = registry.histogram(name, (0.5, 2.0), help)
        histogram.observe(1.0)
        histogram.observe(100.0)
        lines, _ = _check_exposition(registry.render_prometheus())
        buckets = [line for line in lines if '_bucket{le="' in line]
        assert len(buckets) == 3  # two bounds + the +Inf overflow
        bounds = [
            _parse_value(
                dict(
                    _parse_labels(_SAMPLE_RE.match(line).group(2))
                )["le"]
            )
            for line in buckets
        ]
        assert bounds == [0.5, 2.0, math.inf]

    @settings(max_examples=100)
    @given(
        names=st.lists(_any_name, min_size=1, max_size=4, unique=True),
        help=_adversarial_text,
        value=st.floats(allow_nan=True, allow_infinity=True),
    )
    def test_mixed_registry_dump_parses(self, names, help, value):
        registry = MetricsRegistry()
        for position, name in enumerate(names):
            kind = position % 4
            if kind == 0:
                registry.counter(f"c_{name}", help).inc()
            elif kind == 1:
                registry.gauge(f"g_{name}", help).set(value)
            elif kind == 2:
                registry.timer(f"t_{name}", help).record(abs(value))
            else:
                histogram = registry.histogram(f"h_{name}", (1.0,), help)
                if not math.isnan(value):
                    histogram.observe(value)
        _check_exposition(registry.render_prometheus())

    def test_prom_name_never_empty_or_invalid(self):
        for raw in ("", "...", "{}", "0", "9abc", 'a"b\nc'):
            assert re.fullmatch(_NAME, _prom_name(raw))

    @settings(max_examples=150)
    @given(
        name=_any_name,
        help=_adversarial_text,
        value=st.floats(allow_nan=True, allow_infinity=True),
    )
    def test_gauge_lines_stay_well_formed(self, name, help, value):
        registry = MetricsRegistry()
        registry.gauge(name, help).set(value)
        lines, helps = _check_exposition(registry.render_prometheus())
        assert len(lines) == (3 if help else 2)
        if help:
            assert _unescape_help(helps[_prom_name(name)]) == help
        sample = _SAMPLE_RE.match(lines[-1])
        parsed = _parse_value(sample.group(3))
        if math.isnan(value):
            assert math.isnan(parsed)
        else:
            assert parsed == value


class TestPrometheusSampleRoundTrip:
    """The labeled-series helper behind the SLO/alert exports: any
    Python strings as label keys/values must produce a line the strict
    parser accepts, and the label values must unescape back exactly."""

    @settings(max_examples=200)
    @given(
        name=_any_name,
        labels=st.dictionaries(
            _any_name, _adversarial_text, min_size=0, max_size=4
        ),
        value=st.floats(allow_nan=False, allow_infinity=True),
    )
    def test_round_trips_through_strict_parser(self, name, labels, value):
        line = prometheus_sample(name, value, labels)
        sample = _SAMPLE_RE.match(line)
        assert sample is not None, f"unparseable sample line: {line!r}"
        assert sample.group(1) == _prom_name(name)
        assert _parse_value(sample.group(3)) == value
        body = sample.group(2)
        if not labels:
            assert body is None
            return
        pairs = _parse_labels(body)
        assert pairs == [
            (_prom_name(str(key)), str(val))
            for key, val in labels.items()
        ]

    def test_rule_text_label_survives_operators_and_quotes(self):
        line = prometheus_sample(
            "slo_alert_state",
            2,
            {"rule": 'ci_width p95 <= 0.5', "note": 'say "hi"\n\\x'},
        )
        sample = _SAMPLE_RE.match(line)
        assert sample is not None
        pairs = dict(_parse_labels(sample.group(2)))
        assert pairs["rule"] == "ci_width p95 <= 0.5"
        assert pairs["note"] == 'say "hi"\n\\x'


class TestStrictJsonProperties:
    @settings(max_examples=150)
    @given(
        gauge_value=st.floats(allow_nan=True, allow_infinity=True),
        observations=st.lists(
            st.floats(allow_nan=False, allow_infinity=True), max_size=8
        ),
        name=_any_name,
    )
    def test_to_json_parseable_with_nonfinite_observations(
        self, gauge_value, observations, name
    ):
        registry = MetricsRegistry()
        registry.gauge(f"g_{name}").set(gauge_value)
        timer = registry.timer(f"t_{name}")
        histogram = registry.histogram(f"h_{name}", (1.0, 10.0))
        for value in observations:
            timer.record(value)
            histogram.observe(value)
        text = registry.to_json(indent=2)
        obj = json.loads(
            text,
            parse_constant=lambda lit: pytest.fail(
                f"non-strict constant {lit} in to_json output"
            ),
        )
        gauge_state = obj[f"g_{name}"]
        if math.isfinite(gauge_value):
            assert gauge_state["value"] == gauge_value
        else:
            assert gauge_state["value"] is None

    def test_empty_registry_round_trips(self):
        assert json.loads(MetricsRegistry().to_json()) == {}
