"""Unit tests for the metric primitives and the registry."""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    exponential_buckets,
    linear_buckets,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative_increment(self):
        with pytest.raises(ObservabilityError):
            Counter("c").inc(-1)

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0

    def test_snapshot(self):
        c = Counter("c")
        c.inc(2)
        assert c.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10.0)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0

    def test_snapshot(self):
        g = Gauge("g")
        g.set(-3.0)
        assert g.snapshot() == {"type": "gauge", "value": -3.0}


class TestTimer:
    def test_accumulates_count_total_min_max(self):
        t = Timer("t")
        t.record(0.2)
        t.record(0.1)
        t.record(0.3)
        assert t.count == 3
        assert t.total == pytest.approx(0.6)
        assert t.mean == pytest.approx(0.2)
        snap = t.snapshot()
        assert snap["min_seconds"] == pytest.approx(0.1)
        assert snap["max_seconds"] == pytest.approx(0.3)

    def test_clamps_negative_durations(self):
        t = Timer("t")
        t.record(-1e-9)
        assert t.total == 0.0
        assert t.count == 1

    def test_empty_snapshot_has_no_min_max(self):
        snap = Timer("t").snapshot()
        assert snap["min_seconds"] is None
        assert snap["max_seconds"] is None


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("h", [1.0, 10.0, 100.0])
        for value in (0.5, 5.0, 50.0, 500.0):
            h.observe(value)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        # Cumulative Prometheus-style counts; +Inf catches everything.
        assert h.bucket_counts() == [
            (1.0, 1),
            (10.0, 2),
            (100.0, 3),
            (math.inf, 4),
        ]

    def test_boundary_lands_in_lower_bucket(self):
        h = Histogram("h", [1.0, 2.0])
        h.observe(1.0)
        assert h.bucket_counts()[0] == (1.0, 1)

    def test_rejects_nan_observation(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", [1.0]).observe(float("nan"))

    def test_rejects_unsorted_or_empty_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", [])
        with pytest.raises(ObservabilityError):
            Histogram("h", [2.0, 1.0])

    def test_min_max_mean(self):
        h = Histogram("h", [10.0])
        h.observe(2.0)
        h.observe(8.0)
        snap = h.snapshot()
        assert snap["min"] == 2.0
        assert snap["max"] == 8.0
        assert snap["mean"] == pytest.approx(5.0)


class TestBucketHelpers:
    def test_exponential(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_linear(self):
        assert linear_buckets(0.0, 0.5, 3) == (0.0, 0.5, 1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ObservabilityError):
            exponential_buckets(0.0, 2.0, 3)
        with pytest.raises(ObservabilityError):
            exponential_buckets(1.0, 1.0, 3)
        with pytest.raises(ObservabilityError):
            linear_buckets(0.0, 0.0, 3)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")

    def test_get_unknown_raises(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().get("missing")

    def test_snapshot_covers_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2.0)
        reg.timer("c").record(0.5)
        reg.histogram("d", [1.0]).observe(0.5)
        snap = reg.snapshot()
        assert set(snap) == {"a", "b", "c", "d"}
        assert snap["a"]["type"] == "counter"
        assert snap["d"]["type"] == "histogram"

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(4)
        reg.reset()
        assert "a" in reg
        assert reg.counter("a").value == 0

    def test_to_json_is_strict(self):
        reg = MetricsRegistry()
        reg.histogram("h", [1.0]).observe(0.5)
        parsed = json.loads(
            reg.to_json(),
            parse_constant=lambda token: pytest.fail(
                f"non-standard token {token!r}"
            ),
        )
        # +Inf bucket bound serialises as null under strict JSON.
        assert parsed["h"]["buckets"][-1]["le"] is None

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("pipeline.00.Select.tuples_in", "in").inc(3)
        reg.timer("pipeline.00.Select.process_seconds").record(0.25)
        reg.histogram("widths", [0.1, 1.0]).observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP pipeline_00_Select_tuples_in in" in text
        assert "pipeline_00_Select_tuples_in_total 3" in text
        assert "pipeline_00_Select_process_seconds_count 1" in text
        assert 'widths_bucket{le="+Inf"} 1' in text
        assert "widths_count 1" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert json.loads(MetricsRegistry().to_json()) == {}
