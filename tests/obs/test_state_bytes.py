"""The per-operator ``state.bytes`` gauge.

Stateful operators that opt in (``memory_metrics = True``) report their
approximate retained bytes, sampled once per flush — the observability
half of the bounded-memory work (docs/SKETCHES.md).  The gauge must show
up in snapshots under ``<op>.state.bytes``, fold into the operator's own
row in :func:`operator_rows` (never a phantom ``<op>.state`` row), and
render in the ``state_B`` column; operators that do not opt in must not
grow a gauge at all.
"""

import numpy as np

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.experiments.harness import render_metrics_table
from repro.obs import MetricsRegistry, OperatorMetrics, operator_rows
from repro.streams.engine import Pipeline
from repro.streams.groupby import GroupedAggregate
from repro.streams.operators import (
    CollectSink,
    RollingLearnOperator,
    Select,
    SlidingGaussianAverage,
)
from repro.streams.tuples import UncertainTuple


def _tuples(n=60, seed=3):
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {
                "sensor": int(rng.integers(3)),
                "obs": float(rng.normal(0.0, 1.0)),
                "value": DfSized(
                    GaussianDistribution(float(rng.normal(10.0, 2.0)), 1.0),
                    20,
                ),
            }
        )
        for _ in range(n)
    ]


class TestStateBytesGauge:
    def test_sampled_on_flush_for_memory_operators(self):
        registry = MetricsRegistry()
        pipeline = Pipeline(
            [SlidingGaussianAverage("value", 8), CollectSink()],
            registry=registry,
        )
        pipeline.run(_tuples())
        snap = registry.snapshot()
        gauge = snap["pipeline.00.SlidingGaussianAverage.state.bytes"]
        # 8 buffered window members at ~120 bytes apiece, plus overhead.
        assert gauge["value"] > 8 * 100

    def test_opt_out_operators_have_no_gauge(self):
        registry = MetricsRegistry()
        pipeline = Pipeline(
            [Select(lambda t: True), CollectSink()], registry=registry
        )
        pipeline.run(_tuples())
        assert not any(
            name.endswith("state.bytes") for name in registry.snapshot()
        )

    def test_folds_into_operator_row_not_a_phantom_stage(self):
        registry = MetricsRegistry()
        pipeline = Pipeline(
            [
                RollingLearnOperator(
                    "obs", window_size=8, learner="sketch-quantile", k=32
                ),
                CollectSink(),
            ],
            registry=registry,
        )
        pipeline.run(_tuples())
        rows = operator_rows(registry)
        names = [row["operator"] for row in rows]
        assert not any(name.endswith(".state") for name in names)
        learn_row = next(
            row
            for row in rows
            if row["operator"].endswith("RollingLearnOperator")
        )
        assert learn_row["state_bytes"] > 0

    def test_rendered_in_state_bytes_column(self):
        registry = MetricsRegistry()
        pipeline = Pipeline(
            [
                GroupedAggregate(
                    "sensor", "value", window_size=8, synopsis="chunked"
                ),
                CollectSink(),
            ],
            registry=registry,
        )
        pipeline.run(_tuples())
        table = render_metrics_table(registry)
        assert "state_B" in table
        grouped_line = next(
            line
            for line in table.splitlines()
            if "GroupedAggregate" in line
        )
        assert grouped_line.split()[-1].isdigit()
        # The stateless sink renders a placeholder in the same column.
        sink_line = next(
            line for line in table.splitlines() if "CollectSink" in line
        )
        assert sink_line.split()[-1] == "-"

    def test_mixed_reporting_and_non_reporting_operators(self):
        # Regression: in one table, a reporting operator shows its
        # bytes, a never-reporting one shows '-' (not a misleading 0),
        # and a reported zero is rendered as the digit 0.
        registry = MetricsRegistry()
        reporting = OperatorMetrics(registry, "p.00.Window", memory=True)
        reporting.tuples_in.inc(4)
        reporting.tuples_out.inc(4)
        reporting.record_state_bytes(4096.0)
        zeroed = OperatorMetrics(registry, "p.01.Drained", memory=True)
        zeroed.tuples_in.inc(4)
        zeroed.tuples_out.inc(4)
        zeroed.record_state_bytes(0.0)
        silent = OperatorMetrics(registry, "p.02.Sink", memory=True)
        silent.tuples_in.inc(4)
        silent.tuples_out.inc(0)
        rows = {r["operator"]: r for r in operator_rows(registry)}
        assert rows["p.00.Window"]["state_bytes"] == 4096.0
        assert rows["p.01.Drained"]["state_bytes"] == 0.0
        assert "state_bytes" not in rows["p.02.Sink"]
        table = render_metrics_table(registry)
        lines = {
            name: next(
                line for line in table.splitlines() if name in line
            )
            for name in ("Window", "Drained", "Sink")
        }
        assert lines["Window"].split()[-1] == "4096"
        assert lines["Drained"].split()[-1] == "0"
        assert lines["Sink"].split()[-1] == "-"

    def test_state_bytes_column_is_right_aligned(self):
        registry = MetricsRegistry()
        wide = OperatorMetrics(registry, "p.00.Big", memory=True)
        wide.tuples_in.inc(1)
        wide.tuples_out.inc(1)
        wide.record_state_bytes(123456789.0)
        narrow = OperatorMetrics(registry, "p.01.Small", memory=True)
        narrow.tuples_in.inc(1)
        narrow.tuples_out.inc(1)
        narrow.record_state_bytes(7.0)
        table = render_metrics_table(registry)
        lines = table.splitlines()
        header = next(line for line in lines if "state_B" in line)
        edge = len(header.rstrip())
        # Right-aligned: every row's state_B value ends flush with the
        # header's right edge (state_B is the last column).
        for name in ("Big", "Small"):
            row = next(line for line in lines if name in line)
            assert len(row.rstrip()) == edge

    def test_sketch_state_smaller_than_exact_state(self):
        """The gauge can see the tentpole: sketches retain less."""

        def run(learner, **kwargs):
            registry = MetricsRegistry()
            pipeline = Pipeline(
                [
                    RollingLearnOperator(
                        "obs",
                        window_size=2048,
                        learner=learner,
                        **kwargs,
                    ),
                    CollectSink(),
                ],
                registry=registry,
            )
            rng = np.random.default_rng(11)
            pipeline.run(
                [
                    UncertainTuple({"obs": float(x)})
                    for x in rng.normal(0.0, 1.0, 4096)
                ]
            )
            return registry.snapshot()[
                "pipeline.00.RollingLearnOperator.state.bytes"
            ]["value"]

        exact = run("gaussian")
        sketch = run("sketch-quantile", k=64)
        assert sketch * 5 <= exact
