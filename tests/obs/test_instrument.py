"""operator_rows ordering: numeric stage index, not lexicographic."""

from repro.experiments.harness import render_metrics_table
from repro.obs import MetricsRegistry, operator_rows
from repro.obs.instrument import _stage_sort_key
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, Select
from repro.streams.tuples import UncertainTuple


def _op_state(tuples_in, tuples_out, seconds):
    return {
        "tuples_in": {"type": "counter", "value": tuples_in},
        "tuples_out": {"type": "counter", "value": tuples_out},
        "process_seconds": {
            "type": "timer",
            "count": tuples_in,
            "total_seconds": seconds,
            "mean_seconds": seconds / tuples_in if tuples_in else 0.0,
            "min_seconds": 0.0,
            "max_seconds": seconds,
        },
    }


def _snapshot(op_ids, seconds=None):
    snapshot = {}
    for position, op_id in enumerate(op_ids):
        inclusive = (
            seconds[position] if seconds is not None
            else float(len(op_ids) - position)
        )
        for metric, state in _op_state(100, 100, inclusive).items():
            snapshot[f"{op_id}.{metric}"] = state
    return snapshot


class TestStageSortKey:
    def test_numeric_segments_compare_as_integers(self):
        assert _stage_sort_key("p.2.Op") < _stage_sort_key("p.10.Op")
        assert _stage_sort_key("p.02.Op") < _stage_sort_key("p.10.Op")
        # Zero-padding does not fix lexicographic sort at 100+ stages.
        assert _stage_sort_key("p.20.Op") < _stage_sort_key("p.100.Op")

    def test_numbers_sort_before_names_within_a_segment(self):
        assert _stage_sort_key("a.1.Op") < _stage_sort_key("a.b.Op")

    def test_prefixes_stay_grouped(self):
        ids = ["b.1.Op", "a.10.Op", "b.0.Op", "a.2.Op"]
        assert sorted(ids, key=_stage_sort_key) == [
            "a.2.Op", "a.10.Op", "b.0.Op", "b.1.Op",
        ]


class TestTwelveStageOrdering:
    """Regression: at >= 10 stages with unpadded indices, lexicographic
    sort interleaves stage 10+ before stage 2, breaking both row order
    and the adjacent-stage self-time derivation."""

    OP_IDS = [f"pipeline.{i}.Stage{i}" for i in range(12)]

    def test_rows_in_execution_order(self):
        rows = operator_rows(_snapshot(self.OP_IDS))
        assert [r["operator"] for r in rows] == self.OP_IDS

    def test_self_time_uses_numeric_neighbours(self):
        # Inclusive times decrease by 1s per stage: each stage's self
        # time is exactly 1s except the sink, which keeps its inclusive.
        rows = operator_rows(_snapshot(self.OP_IDS))
        for row in rows[:-1]:
            assert row["self_seconds"] == 1.0
        assert rows[-1]["self_seconds"] == rows[-1]["inclusive_seconds"]

    def test_real_twelve_stage_pipeline_rows_and_table(self):
        registry = MetricsRegistry()
        operators = [Select(lambda t: True) for _ in range(11)]
        pipeline = Pipeline([*operators, CollectSink()], registry=registry)
        pipeline.run(
            [UncertainTuple({"x": float(i)}) for i in range(20)]
        )
        rows = operator_rows(registry)
        indices = [
            int(str(r["operator"]).split(".")[1]) for r in rows
        ]
        assert indices == list(range(12))
        table = render_metrics_table(registry)
        sink_pos = table.index("11.CollectSink")
        assert table.index("02.Select") < table.index("10.Select")
        assert table.index("10.Select") < sink_pos
