"""operator_rows ordering and the accuracy-observation unsure path."""

import math

from repro.core.accuracy import AccuracyInfo, ConfidenceInterval
from repro.experiments.harness import render_metrics_table
from repro.obs import MetricsRegistry, OperatorMetrics, operator_rows
from repro.obs.instrument import _stage_sort_key
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, Select
from repro.streams.tuples import UncertainTuple


def _op_state(tuples_in, tuples_out, seconds):
    return {
        "tuples_in": {"type": "counter", "value": tuples_in},
        "tuples_out": {"type": "counter", "value": tuples_out},
        "process_seconds": {
            "type": "timer",
            "count": tuples_in,
            "total_seconds": seconds,
            "mean_seconds": seconds / tuples_in if tuples_in else 0.0,
            "min_seconds": 0.0,
            "max_seconds": seconds,
        },
    }


def _snapshot(op_ids, seconds=None):
    snapshot = {}
    for position, op_id in enumerate(op_ids):
        inclusive = (
            seconds[position] if seconds is not None
            else float(len(op_ids) - position)
        )
        for metric, state in _op_state(100, 100, inclusive).items():
            snapshot[f"{op_id}.{metric}"] = state
    return snapshot


class TestStageSortKey:
    def test_numeric_segments_compare_as_integers(self):
        assert _stage_sort_key("p.2.Op") < _stage_sort_key("p.10.Op")
        assert _stage_sort_key("p.02.Op") < _stage_sort_key("p.10.Op")
        # Zero-padding does not fix lexicographic sort at 100+ stages.
        assert _stage_sort_key("p.20.Op") < _stage_sort_key("p.100.Op")

    def test_numbers_sort_before_names_within_a_segment(self):
        assert _stage_sort_key("a.1.Op") < _stage_sort_key("a.b.Op")

    def test_prefixes_stay_grouped(self):
        ids = ["b.1.Op", "a.10.Op", "b.0.Op", "a.2.Op"]
        assert sorted(ids, key=_stage_sort_key) == [
            "a.2.Op", "a.10.Op", "b.0.Op", "b.1.Op",
        ]


class TestTwelveStageOrdering:
    """Regression: at >= 10 stages with unpadded indices, lexicographic
    sort interleaves stage 10+ before stage 2, breaking both row order
    and the adjacent-stage self-time derivation."""

    OP_IDS = [f"pipeline.{i}.Stage{i}" for i in range(12)]

    def test_rows_in_execution_order(self):
        rows = operator_rows(_snapshot(self.OP_IDS))
        assert [r["operator"] for r in rows] == self.OP_IDS

    def test_self_time_uses_numeric_neighbours(self):
        # Inclusive times decrease by 1s per stage: each stage's self
        # time is exactly 1s except the sink, which keeps its inclusive.
        rows = operator_rows(_snapshot(self.OP_IDS))
        for row in rows[:-1]:
            assert row["self_seconds"] == 1.0
        assert rows[-1]["self_seconds"] == rows[-1]["inclusive_seconds"]

    def test_real_twelve_stage_pipeline_rows_and_table(self):
        registry = MetricsRegistry()
        operators = [Select(lambda t: True) for _ in range(11)]
        pipeline = Pipeline([*operators, CollectSink()], registry=registry)
        pipeline.run(
            [UncertainTuple({"x": float(i)}) for i in range(20)]
        )
        rows = operator_rows(registry)
        indices = [
            int(str(r["operator"]).split(".")[1]) for r in rows
        ]
        assert indices == list(range(12))
        table = render_metrics_table(registry)
        sink_pos = table.index("11.CollectSink")
        assert table.index("02.Select") < table.index("10.Select")
        assert table.index("10.Select") < sink_pos


def _accuracy(width, sample_size=16):
    return AccuracyInfo(
        mean=ConfidenceInterval(0.0, width, 0.95),
        variance=ConfidenceInterval(0.0, 1.0, 0.95),
        sample_size=sample_size,
    )


def _emitting(registry):
    metrics = OperatorMetrics(
        registry, "p.00.Avg", accuracy_attribute="accuracy"
    )
    metrics.tuples_in.inc()
    metrics.tuples_out.inc()
    return metrics


class TestObserveAccuracyUnsure:
    """``keep_unsure`` passthroughs carry intervals with infinite
    bounds; their width must land in the dedicated ``unsure`` counter,
    not raise from ``Histogram.observe`` or vanish silently."""

    def test_finite_width_lands_in_histogram(self):
        registry = MetricsRegistry()
        metrics = _emitting(registry)
        metrics.observe_accuracy(
            UncertainTuple({"accuracy": _accuracy(0.25)})
        )
        snap = registry.snapshot()
        assert snap["p.00.Avg.interval_width"]["count"] == 1
        assert snap["p.00.Avg.interval_width.unsure"]["value"] == 0
        assert snap["p.00.Avg.sample_size"]["count"] == 1

    def test_infinite_width_counts_as_unsure(self):
        registry = MetricsRegistry()
        metrics = _emitting(registry)
        unsure = ConfidenceInterval(-math.inf, math.inf, 0.95)
        assert not math.isfinite(unsure.length)
        metrics.observe_accuracy(
            UncertainTuple(
                {
                    "accuracy": AccuracyInfo(
                        mean=unsure,
                        variance=unsure,
                        sample_size=8,
                    )
                }
            )
        )
        snap = registry.snapshot()
        assert snap["p.00.Avg.interval_width"]["count"] == 0
        assert snap["p.00.Avg.interval_width.unsure"]["value"] == 1
        # The de facto sample size is still real and still recorded.
        assert snap["p.00.Avg.sample_size"]["count"] == 1

    def test_missing_mean_interval_counts_as_unsure(self):
        registry = MetricsRegistry()
        metrics = _emitting(registry)
        record = _accuracy(0.25)
        object.__setattr__(record, "mean", None)
        metrics.observe_accuracy(UncertainTuple({"accuracy": record}))
        snap = registry.snapshot()
        assert snap["p.00.Avg.interval_width"]["count"] == 0
        assert snap["p.00.Avg.interval_width.unsure"]["value"] == 1

    def test_unsure_folds_into_operator_row_not_a_phantom_stage(self):
        registry = MetricsRegistry()
        metrics = _emitting(registry)
        metrics.observe_accuracy(
            UncertainTuple(
                {
                    "accuracy": AccuracyInfo(
                        mean=ConfidenceInterval(0.0, math.inf, 0.95),
                        variance=ConfidenceInterval(0.0, 1.0, 0.95),
                        sample_size=4,
                    )
                }
            )
        )
        rows = operator_rows(registry)
        assert [r["operator"] for r in rows] == ["p.00.Avg"]
        assert rows[0]["unsure"] == 1

    def test_row_omits_unsure_when_every_width_is_finite(self):
        registry = MetricsRegistry()
        metrics = _emitting(registry)
        metrics.observe_accuracy(
            UncertainTuple({"accuracy": _accuracy(0.5)})
        )
        (row,) = operator_rows(registry)
        assert "unsure" not in row
