"""Alert log: state machine, exports, provenance annotation, e2e burn."""

import json
import math

from repro.core.accuracy import AccuracyInfo, ConfidenceInterval
from repro.obs.alerts import AlertLog, render_health_table
from repro.obs.provenance import ProvenanceRecord, ProvenanceRecorder
from repro.obs.slo import parse_rule
from repro.obs.timeseries import (
    Frame,
    FrameSeries,
    TelemetryConfig,
    TelemetryRecorder,
)
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, Operator
from repro.streams.tuples import UncertainTuple

NAME = "pipeline.00.Avg.interval_width"


def _hist(values, bounds=(0.1, 1.0, 10.0)):
    edges = list(bounds) + [math.inf]
    buckets = [{"le": le, "count": 0} for le in edges]
    for value in values:
        for bucket in buckets:
            if value <= bucket["le"]:
                bucket["count"] += 1
    return {
        "type": "histogram",
        "count": len(values),
        "sum": float(sum(values)),
        "buckets": buckets,
    }


def _series(per_frame_widths, name=NAME):
    series = FrameSeries(capacity=len(per_frame_widths) + 1)
    for i, widths in enumerate(per_frame_widths):
        metrics = {name: _hist(widths)} if widths else {}
        series.append(
            Frame(index=i, start=i * 10, end=(i + 1) * 10, metrics=metrics)
        )
    return series


def _rule(**overrides):
    options = dict(short_window=2, long_window=4, burn_threshold=0.5)
    options.update(overrides)
    return parse_rule("ci_width mean <= 0.5", **options)


class TestStateMachine:
    def test_quiet_series_stays_ok(self):
        log = AlertLog()
        events = log.evaluate(_series([[0.2]] * 6), [_rule()])
        assert events == []
        assert log.states == {_rule().text: "ok"}

    def test_single_bad_frame_goes_pending_then_ok(self):
        widths = [[0.2], [0.2], [5.0], [0.2], [0.2]]
        log = AlertLog()
        events = log.evaluate(_series(widths), [_rule()])
        assert [e.state for e in events] == ["pending", "ok"]
        assert events[0].frame_index == 2
        assert events[0].frame is not None  # offending frame attached
        assert log.states[_rule().text] == "ok"

    def test_sustained_burn_fires_and_resolves(self):
        widths = [[0.2], [0.2], [5.0], [5.0], [5.0], [0.2], [0.2], [0.2]]
        log = AlertLog()
        events = log.evaluate(_series(widths), [_rule()])
        states = [e.state for e in events]
        assert "firing" in states
        assert states[-1] == "resolved"
        firing = next(e for e in events if e.state == "firing")
        assert firing.frame is not None
        assert NAME in firing.frame["metrics"]
        resolved = events[-1]
        assert resolved.frame is None  # only pending/firing attach frames
        assert log.states[_rule().text] == "resolved"

    def test_reevaluation_is_idempotent(self):
        widths = [[0.2], [5.0], [5.0], [5.0], [0.2], [0.2]]
        series = _series(widths)
        log = AlertLog()
        first = [e.to_dict() for e in log.evaluate(series, [_rule()])]
        second = [e.to_dict() for e in log.evaluate(series, [_rule()])]
        assert first == second

    def test_multiple_rules_replay_independently(self):
        widths = [[5.0]] * 4
        rules = [
            _rule(),
            parse_rule(
                "de_facto_n p5 >= 16", short_window=2, long_window=4,
            ),
        ]
        log = AlertLog()
        log.evaluate(_series(widths), rules)
        assert log.states[rules[0].text] == "firing"
        # No sample_size histogram anywhere: no data is not a violation.
        assert log.states[rules[1].text] == "ok"


class TestExports:
    def test_jsonl_is_strict_one_object_per_line(self):
        widths = [[0.2], [5.0], [5.0], [5.0], [0.2], [0.2]]
        log = AlertLog()
        log.evaluate(_series(widths), [_rule()])
        lines = log.to_jsonl().splitlines()
        assert len(lines) == len(log.events)
        for line in lines:
            event = json.loads(line)
            assert event["rule"] == _rule().text
            assert event["state"] in ("pending", "firing", "resolved", "ok")

    def test_jsonl_empty_log_is_empty_string(self):
        log = AlertLog()
        log.evaluate(_series([[0.2]] * 3), [_rule()])
        assert log.to_jsonl() == ""

    def test_prometheus_export_carries_rule_labels(self):
        widths = [[5.0]] * 4
        log = AlertLog()
        log.evaluate(_series(widths), [_rule()])
        text = log.render_prometheus()
        assert (
            'slo_alert_state{rule="ci_width mean <= 0.5",state="firing"} 2'
            in text
        )
        assert "slo_alert_transitions_total{" in text

    def test_health_table_shows_state_per_rule(self):
        widths = [[5.0]] * 4
        rules = [_rule(), parse_rule("draws_used mean <= 800")]
        table = render_health_table(_series(widths), rules)
        lines = table.splitlines()
        assert "SLO health (4 frames)" in lines[0]
        body = "\n".join(lines[2:])
        assert "firing" in body
        assert "ci_width mean <= 0.5" in body
        # The draws_used rule never saw data: value renders as '-'.
        draws_line = next(
            line for line in lines if "draws_used" in line
        )
        assert draws_line.split()[-1] == "ok"
        assert "-" in draws_line


class TestProvenanceAnnotation:
    def _provenance(self):
        recorder = ProvenanceRecorder()
        recorder.records.append(
            ProvenanceRecord(
                shard="main",
                stage="00.Avg",
                stage_index=0,
                out_seq=0,
                attribute="avg",
                payload="p0",
                method="analytic",
                sample_size=6,
                confidence=0.95,
                ci_low=0.0,
                ci_high=1.0,
                lineage={"min_input": "points", "df_size": 6},
            )
        )
        recorder.records.append(
            ProvenanceRecord(
                shard="main",
                stage="00.Avg",
                stage_index=0,
                out_seq=1,
                attribute="avg",
                payload="p1",
                method="analytic",
                sample_size=48,
                confidence=0.95,
                ci_low=0.0,
                ci_high=1.0,
            )
        )
        return recorder

    def test_de_facto_n_firing_names_minimum_input(self):
        name = "pipeline.00.Avg.sample_size"
        widths = [[4.0]] * 4  # tiny de facto sizes, sustained
        rule = parse_rule(
            "de_facto_n p5 >= 16", short_window=2, long_window=4,
        )
        log = AlertLog()
        events = log.evaluate(
            _series(widths, name=name), [rule],
            provenance=self._provenance(),
        )
        firing = next(e for e in events if e.state == "firing")
        assert firing.annotation is not None
        assert "n=6" in firing.annotation
        assert "00.Avg" in firing.annotation
        assert "'points'" in firing.annotation
        assert "Lemma 3" in firing.annotation

    def test_ci_width_rules_are_not_annotated(self):
        widths = [[5.0]] * 4
        log = AlertLog()
        events = log.evaluate(
            _series(widths), [_rule()], provenance=self._provenance()
        )
        firing = next(e for e in events if e.state == "firing")
        assert firing.annotation is None


class _BurstyAccuracy(Operator):
    """CI widths that blow up for a mid-stream burst, then recover."""

    accuracy_attribute = "accuracy"

    def __init__(self, burst_start, burst_end):
        super().__init__()
        self.burst = range(burst_start, burst_end)
        self._i = 0

    def process(self, tup):
        width = 8.0 if self._i in self.burst else 0.05
        self._i += 1
        info = AccuracyInfo(
            mean=ConfidenceInterval(0.0, width, 0.95),
            variance=ConfidenceInterval(0.0, 1.0, 0.95),
            sample_size=32,
            method="analytic",
        )
        attributes = dict(tup.attributes)
        attributes["accuracy"] = info
        self.emit(tup.with_attributes(attributes))


class TestEndToEndBurst:
    def test_burn_alert_fires_and_resolves_on_bursty_stream(self):
        # Acceptance example: a bursty stream degrades CI widths long
        # enough to burn both windows, then recovers; the ci_width rule
        # must fire AND resolve within one run.
        recorder = TelemetryRecorder(TelemetryConfig(frame_interval=16))
        pipeline = Pipeline(
            [_BurstyAccuracy(64, 160), CollectSink()],
            telemetry=recorder,
        )
        tuples = [UncertainTuple({"x": float(i)}) for i in range(320)]
        pipeline.run(tuples)
        assert len(recorder.series) == 20
        rule = parse_rule(
            "ci_width p95 <= 0.5", short_window=2, long_window=4,
        )
        log = AlertLog()
        events = log.evaluate(recorder.series, [rule])
        states = [e.state for e in events]
        assert "firing" in states
        assert states[-1] == "resolved"
        assert log.states[rule.text] == "resolved"
        # The same burst is visible as drift while it builds up.
        jsonl = log.to_jsonl()
        assert jsonl.count("\n") == len(events)
