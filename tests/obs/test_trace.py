"""Span tracer: identity, sampling, merging, and pipeline wiring."""

import json
import pickle

import pytest

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import ObservabilityError
from repro.obs.trace import (
    Span,
    TraceConfig,
    Tracer,
    _sample_decision,
    _stable_id,
)
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CollectSink,
    SlidingGaussianAverage,
    WindowAggregate,
)
from repro.streams.tuples import UncertainTuple


def _tuples(n=40, window_sizes=(10, 12, 14)):
    return [
        UncertainTuple(
            attributes={
                "value": DfSized(
                    GaussianDistribution(float(i), 1.0),
                    window_sizes[i % len(window_sizes)],
                )
            },
            timestamp=float(i),
        )
        for i in range(n)
    ]


def _pipeline(tracer=None, registry=None):
    return Pipeline(
        [SlidingGaussianAverage("value", 8), CollectSink()],
        registry=registry,
        tracer=tracer,
    )


class TestTraceConfig:
    def test_defaults(self):
        config = TraceConfig()
        assert config.sample_rate == 1.0
        assert config.provenance is True

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rejects_bad_sample_rate(self, rate):
        with pytest.raises(ObservabilityError):
            TraceConfig(sample_rate=rate)

    def test_rejects_negative_caps(self):
        with pytest.raises(ObservabilityError):
            TraceConfig(max_spans=-1)
        with pytest.raises(ObservabilityError):
            TraceConfig(max_records=-1)

    def test_picklable(self):
        config = TraceConfig(sample_rate=0.5, seed=9, max_spans=10)
        assert pickle.loads(pickle.dumps(config)) == config


class TestSpanIdentity:
    def test_stable_id_is_pure(self):
        assert _stable_id(3, "main", 7) == _stable_id(3, "main", 7)
        assert _stable_id(3, "main", 7) != _stable_id(3, "main", 8)
        assert _stable_id(3, "main", 7) != _stable_id(3, "shard0", 7)
        assert _stable_id(3, "main", 7) != _stable_id(4, "main", 7)

    def test_id_is_16_hex_chars(self):
        span_id = _stable_id(0, "main", 0)
        assert len(span_id) == 16
        int(span_id, 16)

    def test_same_seed_same_ids_across_tracers(self):
        first = Tracer(TraceConfig(seed=5))
        second = Tracer(TraceConfig(seed=5))
        a = first.begin("x")
        b = second.begin("x")
        assert a.span_id == b.span_id

    def test_sample_decision_deterministic_and_rate_shaped(self):
        decisions = [
            _sample_decision(1, "main", seq, 0.25) for seq in range(2000)
        ]
        assert decisions == [
            _sample_decision(1, "main", seq, 0.25) for seq in range(2000)
        ]
        kept = sum(decisions)
        assert 0.15 < kept / 2000 < 0.35
        assert all(_sample_decision(1, "m", s, 1.0) for s in range(10))
        assert not any(_sample_decision(1, "m", s, 0.0) for s in range(10))


class TestTracer:
    def test_begin_end_records_span(self):
        tracer = Tracer()
        span = tracer.begin("work", kind="run")
        tracer.end(span, items=3)
        assert len(tracer) == 1
        assert span.end is not None and span.end >= span.start
        assert span.attrs["items"] == 3
        assert span.duration >= 0.0

    def test_parentage(self):
        tracer = Tracer()
        parent = tracer.begin("run")
        child = tracer.begin("stage", kind="stage", parent=parent)
        assert child.parent_id == parent.span_id

    def test_batch_sampling_advances_seq_for_dropped_spans(self):
        kept_all = Tracer(TraceConfig(seed=2, sample_rate=1.0))
        sampled = Tracer(TraceConfig(seed=2, sample_rate=0.3))
        all_spans = [kept_all.begin_batch(f"b{i}") for i in range(100)]
        some_spans = [sampled.begin_batch(f"b{i}") for i in range(100)]
        kept = [s for s in some_spans if s is not None]
        assert 0 < len(kept) < 100
        # Sampling never shifts IDs: the kept spans carry the same IDs
        # they would have had at sample_rate=1.0.
        by_seq = {s.seq: s.span_id for s in all_spans}
        for span in kept:
            assert span.span_id == by_seq[span.seq]

    def test_max_spans_head_cap(self):
        tracer = Tracer(TraceConfig(max_spans=3))
        spans = [tracer.begin_batch(f"b{i}") for i in range(10)]
        assert sum(s is not None for s in spans) == 3

    def test_structural_spans_ignore_sampling(self):
        tracer = Tracer(TraceConfig(sample_rate=0.0, max_spans=0))
        assert tracer.begin("run") is not None
        assert tracer.begin_batch("batch") is None

    def test_reset(self):
        tracer = Tracer()
        tracer.end(tracer.begin("x"))
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.begin("y").seq == 0

    def test_span_roundtrip_dict(self):
        span = Span(
            span_id="ab", parent_id=None, name="n", kind="run",
            shard="main", seq=0, start=1.0, end=2.0, attrs={"k": 1},
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_snapshot_merge_roundtrip(self):
        worker = Tracer(TraceConfig(seed=1), shard="shard0")
        worker.end(worker.begin("work"))
        parent = Tracer(TraceConfig(seed=1))
        parent.end(parent.begin("parent-work"))
        parent.merge_spans(worker.snapshot())
        assert len(parent) == 2
        shards = {span.shard for span in parent.spans}
        assert shards == {"main", "shard0"}

    def test_merge_rejects_malformed_snapshot(self):
        with pytest.raises(ObservabilityError):
            Tracer().merge_spans({"nope": []})

    def test_deterministic_view_excludes_wall_clock(self):
        tracer = Tracer()
        tracer.end(tracer.begin("x"))
        (view,) = tracer.deterministic_view()
        assert "start" not in view and "end" not in view
        assert view["span_id"] == tracer.spans[0].span_id

    def test_explain_without_provenance_raises(self):
        tracer = Tracer(TraceConfig(provenance=False))
        with pytest.raises(ObservabilityError):
            tracer.explain(object())


class TestPipelineWiring:
    def test_run_records_run_and_stage_spans(self):
        tracer = Tracer()
        sink = _pipeline(tracer).run(_tuples())
        assert len(sink.results) == 40
        kinds = [span.kind for span in tracer.spans]
        assert kinds.count("run") == 1
        assert kinds.count("stage") == 2
        run_span = tracer.spans[0]
        assert run_span.attrs["tuples"] == 40
        stage = tracer.spans[1]
        assert stage.parent_id == run_span.span_id
        assert stage.attrs["tuples_in"] == 40
        assert stage.attrs["tuples_out"] == 40
        assert stage.name == "pipeline.00.SlidingGaussianAverage"

    def test_run_batched_records_batch_spans(self):
        tracer = Tracer()
        _pipeline(tracer).run_batched(_tuples(), batch_size=16)
        batches = [s for s in tracer.spans if s.kind == "batch"]
        assert len(batches) == 6  # ceil(40/16)=3 batches x 2 stages
        sizes = [
            s.attrs["batch_size"] for s in batches
            if s.name.startswith("pipeline.00")
        ]
        assert sizes == [16, 16, 8]
        for span in batches:
            assert span.attrs["emitted"] >= 0

    def test_output_identical_with_and_without_tracer(self):
        plain = _pipeline().run(_tuples()).results
        traced = _pipeline(Tracer()).run(_tuples()).results
        assert pickle.dumps(plain) == pickle.dumps(traced)
        plain_b = _pipeline().run_batched(_tuples(), 16).results
        traced_b = _pipeline(Tracer()).run_batched(_tuples(), 16).results
        assert pickle.dumps(plain_b) == pickle.dumps(traced_b)

    def test_tracer_and_registry_coexist(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer()
        sink = _pipeline(tracer, registry).run(_tuples())
        assert len(sink.results) == 40
        assert len(tracer) == 3
        assert registry.get("pipeline.tuples").value == 40

    def test_detach_trace_stops_recording(self):
        tracer = Tracer()
        pipeline = _pipeline(tracer)
        pipeline.detach_trace()
        pipeline.run(_tuples())
        assert len(tracer) == 0

    def test_pristine_clone_has_no_tracer(self):
        tracer = Tracer()
        pipeline = _pipeline(tracer)
        clone = pipeline.pristine()
        assert clone.tracer is None
        assert all(op._trace is None for op in clone.operators)
        # The original is re-attached and still records.
        assert pipeline.tracer is tracer
        pipeline.run(_tuples())
        assert len(tracer) == 3

    def test_two_runs_share_one_tracer(self):
        tracer = Tracer()
        pipeline = Pipeline(
            [WindowAggregate("value", 4), CollectSink()], tracer=tracer
        )
        pipeline.run(_tuples(10))
        pipeline.run(_tuples(10))
        runs = [s for s in tracer.spans if s.kind == "run"]
        assert len(runs) == 2
        assert runs[0].span_id != runs[1].span_id

    def test_trace_names_follow_prefix(self):
        tracer = Tracer()
        pipeline = _pipeline()
        pipeline.attach_trace(tracer, prefix="fig9.case")
        pipeline.run(_tuples(5))
        assert tracer.spans[0].name == "fig9.case.run"
        assert tracer.spans[1].name.startswith("fig9.case.00.")

    def test_deterministic_view_stable_across_runs(self):
        views = []
        for _ in range(2):
            tracer = Tracer(TraceConfig(seed=4))
            _pipeline(tracer).run_batched(_tuples(), 16)
            views.append(json.dumps(tracer.deterministic_view()))
        assert views[0] == views[1]
