"""Opt-in span tracing for the stream engine.

A :class:`Tracer` attaches to a :class:`~repro.streams.engine.Pipeline`
exactly like a :class:`~repro.obs.metrics.MetricsRegistry`: with no
tracer attached every hook is a single attribute check and the execution
paths are unchanged; with one attached the engine records

* one **run span** per ``run()``/``run_batched()`` call,
* one **stage span** per operator per run (tuples in/out, call counts,
  accumulated inclusive wall time), and
* one **batch span** per ``receive_many`` call (subject to sampling),

plus — when :attr:`TraceConfig.provenance` is on — one accuracy
:class:`~repro.obs.provenance.ProvenanceRecord` per emitted tuple of
every accuracy-producing operator.

Determinism contract (see ``docs/TRACING.md``)
----------------------------------------------
Span identity is *seed-stable*: a span's ID is a pure function of
``(config.seed, shard label, creation sequence number)`` — never of
wall-clock time or object identity — and the sampling decision for a
batch span is a pure function of the same triple.  Sharded execution
gives the worker tracer of shard ``i`` the shard label ``shard{i}``, so
a fixed seed plus a pinned ``n_shards`` produces an identical merged
span set (IDs, parentage, attributes, provenance payloads) at any
worker count; only the wall-clock ``start``/``end`` fields differ, and
:meth:`Tracer.deterministic_view` excludes exactly those.

:meth:`Tracer.snapshot` / :meth:`Tracer.merge_spans` mirror the
``MetricsRegistry.snapshot`` / ``merge_snapshot`` contract: workers
serialize plain dicts home with the shard's sink state and the parent
folds them in shard order.
"""

from __future__ import annotations

import dataclasses
import hashlib
from time import perf_counter

from repro.errors import ObservabilityError
from repro.obs.provenance import ProvenanceRecorder

__all__ = ["TraceConfig", "Span", "Tracer", "OperatorTrace"]

#: Span kinds the engine emits; exporters may rely on this vocabulary.
SPAN_KINDS = ("run", "stage", "batch", "shard")


@dataclasses.dataclass(frozen=True, slots=True)
class TraceConfig:
    """Tracer behaviour knobs; picklable so workers can rebuild tracers.

    ``sample_rate`` applies to *batch spans and provenance records* —
    the per-batch/per-tuple volume that grows with stream length; run
    and stage spans are structural (a handful per run) and always kept.
    The decision for sequence number ``s`` is derived from a keyed hash
    of ``(seed, shard, s)``, i.e. a seeded counter-mode RNG: the same
    seed always samples the same spans, independent of worker count.
    ``max_spans`` (head sampling) additionally caps the number of batch
    spans retained per tracer; ``max_records`` caps provenance records.
    """

    sample_rate: float = 1.0
    seed: int = 0
    max_spans: int | None = None
    max_records: int | None = None
    provenance: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ObservabilityError(
                f"sample_rate must be in [0,1], got {self.sample_rate}"
            )
        if self.max_spans is not None and self.max_spans < 0:
            raise ObservabilityError(
                f"max_spans must be >= 0 or None, got {self.max_spans}"
            )
        if self.max_records is not None and self.max_records < 0:
            raise ObservabilityError(
                f"max_records must be >= 0 or None, got {self.max_records}"
            )


def _stable_id(seed: int, shard: str, seq: int) -> str:
    """Seed-stable 64-bit span ID as 16 hex chars."""
    digest = hashlib.blake2b(
        f"{seed}|{shard}|{seq}".encode(), digest_size=8
    )
    return digest.hexdigest()


def _sample_decision(seed: int, shard: str, seq: int, rate: float) -> bool:
    """Deterministic Bernoulli(rate) draw for one sequence number.

    A keyed hash in counter mode: uniform in [0, 1) as a function of
    ``(seed, shard, seq)`` only, so the sampled set is identical across
    runs, worker counts, and call orderings.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.blake2b(
        f"sample|{seed}|{shard}|{seq}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64 < rate


@dataclasses.dataclass(slots=True)
class Span:
    """One traced region.  ``start``/``end`` are wall-clock (perf_counter
    seconds, worker-local origin) and are excluded from the determinism
    contract; every other field is a pure function of the traced work.
    """

    span_id: str
    parent_id: str | None
    name: str
    kind: str
    shard: str
    seq: int
    start: float
    end: float | None = None
    attrs: dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "shard": self.shard,
            "seq": self.seq,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, state: dict[str, object]) -> "Span":
        return cls(
            span_id=str(state["span_id"]),
            parent_id=state["parent_id"],  # type: ignore[arg-type]
            name=str(state["name"]),
            kind=str(state["kind"]),
            shard=str(state["shard"]),
            seq=int(state["seq"]),  # type: ignore[arg-type]
            start=float(state["start"]),  # type: ignore[arg-type]
            end=state["end"],  # type: ignore[arg-type]
            attrs=dict(state.get("attrs") or {}),  # type: ignore[arg-type]
        )


class Tracer:
    """Records spans (and provenance) for one process's pipeline runs.

    One tracer per process: the parent attaches its tracer to the
    pipeline; sharded execution builds a private per-worker tracer with
    shard label ``shard{i}`` and merges the snapshots home.
    """

    def __init__(
        self, config: TraceConfig | None = None, shard: str = "main"
    ) -> None:
        self.config = config if config is not None else TraceConfig()
        self.shard = shard
        self._spans: list[Span] = []
        self._seq = 0
        self._batch_spans = 0
        self.provenance: ProvenanceRecorder | None = (
            ProvenanceRecorder(
                shard,
                seed=self.config.seed,
                sample_rate=self.config.sample_rate,
                max_records=self.config.max_records,
            )
            if self.config.provenance
            else None
        )

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------

    def begin(
        self,
        name: str,
        kind: str = "run",
        parent: Span | None = None,
        attrs: dict[str, object] | None = None,
    ) -> Span:
        """Open a structural span (always retained, never sampled out)."""
        seq = self._seq
        self._seq += 1
        span = Span(
            span_id=_stable_id(self.config.seed, self.shard, seq),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            kind=kind,
            shard=self.shard,
            seq=seq,
            start=perf_counter(),
            attrs=dict(attrs) if attrs else {},
        )
        self._spans.append(span)
        return span

    def begin_batch(
        self,
        name: str,
        parent: Span | None = None,
        attrs: dict[str, object] | None = None,
    ) -> Span | None:
        """Open a batch span, subject to probabilistic + head sampling.

        The sequence number advances whether or not the span is kept,
        so span IDs never shift when the sampling rate changes.
        """
        seq = self._seq
        self._seq += 1
        config = self.config
        if not _sample_decision(
            config.seed, self.shard, seq, config.sample_rate
        ):
            return None
        if (
            config.max_spans is not None
            and self._batch_spans >= config.max_spans
        ):
            return None
        self._batch_spans += 1
        span = Span(
            span_id=_stable_id(config.seed, self.shard, seq),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            kind="batch",
            shard=self.shard,
            seq=seq,
            start=perf_counter(),
            attrs=dict(attrs) if attrs else {},
        )
        self._spans.append(span)
        return span

    def end(
        self,
        span: Span,
        end: float | None = None,
        **attrs: object,
    ) -> None:
        """Close a span; ``end`` overrides the wall clock for summary
        spans whose duration is accumulated rather than measured."""
        span.end = end if end is not None else perf_counter()
        if attrs:
            span.attrs.update(attrs)

    # ------------------------------------------------------------------
    # Views and merging
    # ------------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        return self._spans

    def __len__(self) -> int:
        return len(self._spans)

    def reset(self) -> None:
        self._spans = []
        self._seq = 0
        self._batch_spans = 0
        if self.provenance is not None:
            self.provenance.reset()

    def snapshot(self) -> dict[str, object]:
        """Plain-dict state for shipping across process boundaries."""
        return {
            "shard": self.shard,
            "spans": [span.to_dict() for span in self._spans],
            "provenance": (
                self.provenance.snapshot()
                if self.provenance is not None
                else []
            ),
        }

    def merge_spans(self, snapshot: dict[str, object]) -> None:
        """Fold another tracer's :meth:`snapshot` into this one.

        Same contract as ``MetricsRegistry.merge_snapshot``: workers
        record into private tracers, ship snapshots home with the
        shard's sink state, and the parent merges them in shard order.
        Merged spans keep their worker-assigned IDs and shard labels
        (IDs cannot collide: the shard label is part of the ID).
        """
        spans = snapshot.get("spans")
        if not isinstance(spans, list):
            raise ObservabilityError(
                "trace snapshot has no 'spans' list to merge"
            )
        for state in spans:
            self._spans.append(Span.from_dict(state))
        records = snapshot.get("provenance") or []
        if records and self.provenance is not None:
            self.provenance.merge(records)  # type: ignore[arg-type]

    def deterministic_view(self) -> list[dict[str, object]]:
        """The merged span set minus wall-clock fields, canonically sorted.

        This is the object the determinism contract quantifies over:
        fixed seed + pinned ``n_shards`` produce an equal view at any
        worker count.  Sorted by ``(shard, seq)`` so merge order is
        irrelevant.
        """
        view = []
        for span in sorted(self._spans, key=lambda s: (s.shard, s.seq)):
            state = span.to_dict()
            del state["start"], state["end"]
            view.append(state)
        return view

    def explain(self, tup: object) -> str:
        """Render one result tuple's accuracy-provenance chain."""
        if self.provenance is None:
            raise ObservabilityError(
                "tracer has no provenance recorder "
                "(TraceConfig(provenance=True) enables it)"
            )
        return self.provenance.explain(tup)


class OperatorTrace:
    """Per-operator trace handle, the tracing analogue of
    :class:`~repro.obs.instrument.OperatorMetrics`.

    Holds the operator's stage span for the current run plus the
    counters written into it at close; the hot-path hooks touch only
    plain attributes.
    """

    __slots__ = (
        "tracer",
        "name",
        "index",
        "accuracy_attribute",
        "stage_span",
        "tuples_in",
        "tuples_out",
        "calls",
        "batches",
        "seconds",
    )

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        index: int = 0,
        accuracy_attribute: str | None = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.index = index
        self.accuracy_attribute = accuracy_attribute
        self.stage_span: Span | None = None
        self.tuples_in = 0
        self.tuples_out = 0
        self.calls = 0
        self.batches = 0
        self.seconds = 0.0

    # -- run lifecycle (driven by Pipeline) -----------------------------

    def start_stage(self, run_span: Span | None) -> None:
        """Open this operator's stage span for one pipeline run."""
        self.tuples_in = 0
        self.tuples_out = 0
        self.calls = 0
        self.batches = 0
        self.seconds = 0.0
        self.stage_span = self.tracer.begin(
            self.name,
            kind="stage",
            parent=run_span,
            attrs={"stage_index": self.index},
        )

    def end_stage(self) -> None:
        """Close the stage span as a summary: duration = inclusive time."""
        span = self.stage_span
        if span is None:
            return
        self.tracer.end(
            span,
            end=span.start + self.seconds,
            tuples_in=self.tuples_in,
            tuples_out=self.tuples_out,
            calls=self.calls,
            batches=self.batches,
        )
        self.stage_span = None

    # -- hot-path hooks (driven by Operator) ----------------------------

    def on_receive(self) -> None:
        self.tuples_in += 1
        self.calls += 1

    def begin_batch(self, size: int) -> Span | None:
        self.tuples_in += size
        self.calls += 1
        self.batches += 1
        return self.tracer.begin_batch(
            f"{self.name}.batch",
            parent=self.stage_span,
            attrs={"stage_index": self.index, "batch_size": size},
        )

    def end_batch(self, span: Span | None, emitted: int) -> None:
        if span is not None:
            self.tracer.end(span, emitted=emitted)

    def on_emit(self, operator: object, tup: object) -> None:
        self.tuples_out += 1
        recorder = self.tracer.provenance
        if recorder is not None and self.accuracy_attribute is not None:
            recorder.record(self, operator, tup)

    def on_emit_many(self, operator: object, tuples: object) -> None:
        self.tuples_out += len(tuples)  # type: ignore[arg-type]
        recorder = self.tracer.provenance
        if recorder is not None and self.accuracy_attribute is not None:
            for tup in tuples:  # type: ignore[attr-defined]
                recorder.record(self, operator, tup)
