"""Bounded ring-buffer time series over a metrics registry.

Cumulative registry snapshots answer "what happened over the whole
run?"; SLOs need "what is happening *now*?".  A
:class:`TelemetryRecorder` downsamples every metric of a
:class:`~repro.obs.metrics.MetricsRegistry` into fixed-interval
:class:`Frame` deltas and keeps the most recent ``capacity`` frames in a
:class:`FrameSeries` ring buffer — bounded memory no matter how long the
stream runs.

Frames are keyed by **stream position** (tuple count), never wall
clock.  The pipeline calls :meth:`TelemetryRecorder.advance` with the
number of tuples it just pushed; a frame closes once at least
``frame_interval`` tuples have passed since the previous boundary.
Under the fixed-seed + pinned-``n_shards`` contract each shard's tuple
sub-stream — and therefore its frame boundaries and every per-frame
delta except wall-clock timer totals — is a pure function of
``(stream, seed, n_shards, batch_size, frame_interval)``, so per-worker
frame series merged in shard order are byte-identical at any worker
count (:meth:`FrameSeries.deterministic_view` excludes the timer
seconds, exactly like ``Tracer.deterministic_view`` excludes span
timestamps).

Frame merge semantics mirror
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`: counter /
timer / histogram deltas accumulate, state gauges
(:func:`~repro.obs.metrics.gauge_folds_by_sum`) sum, other gauges take
the last-merged shard's value.
"""

from __future__ import annotations

import dataclasses
import json
import math

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry, gauge_folds_by_sum

__all__ = [
    "TelemetryConfig",
    "Frame",
    "FrameSeries",
    "TelemetryRecorder",
]


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """Frame geometry: how often to cut frames, how many to retain.

    ``frame_interval`` is in *tuples of stream position*, not seconds —
    the determinism contract depends on it.  ``capacity`` bounds the
    ring buffer; older frames are dropped (and counted) once exceeded.
    """

    frame_interval: int = 256
    capacity: int = 256

    def __post_init__(self) -> None:
        if self.frame_interval < 1:
            raise ObservabilityError(
                f"frame_interval must be >= 1, got {self.frame_interval}"
            )
        if self.capacity < 1:
            raise ObservabilityError(
                f"capacity must be >= 1, got {self.capacity}"
            )


@dataclasses.dataclass
class Frame:
    """Per-metric deltas covering stream positions ``[start, end)``.

    ``metrics`` maps metric name to a delta state in the same shape as
    the registry snapshot of that metric type: counters carry the value
    delta, timers the call-count and wall-seconds deltas, histograms the
    count/sum deltas plus cumulative per-bucket count deltas (a delta of
    cumulative counts is itself cumulative over the frame), and gauges
    the point-in-time value at the frame's end.
    """

    index: int
    start: int
    end: int
    metrics: dict[str, dict[str, object]]

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "metrics": self.metrics,
        }

    def deterministic_dict(self) -> dict[str, object]:
        """Like :meth:`to_dict` minus the wall-clock timer seconds.

        Timer call counts are deterministic under the fixed-seed +
        pinned-``n_shards`` contract; the accumulated seconds are not,
        so they are excluded wherever byte-identity across worker
        counts matters (frame-series views, alert attachments).
        """
        metrics: dict[str, dict[str, object]] = {}
        for name, state in self.metrics.items():
            if state.get("type") == "timer":
                metrics[name] = {"type": "timer", "count": state["count"]}
            else:
                metrics[name] = _copy_state(state)
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "metrics": metrics,
        }

    @classmethod
    def from_dict(cls, state: dict[str, object]) -> "Frame":
        return cls(
            index=int(state["index"]),  # type: ignore[arg-type]
            start=int(state["start"]),  # type: ignore[arg-type]
            end=int(state["end"]),  # type: ignore[arg-type]
            metrics={
                name: dict(metric)
                for name, metric in state["metrics"].items()  # type: ignore[union-attr]
            },
        )

    def fold(self, incoming: dict[str, dict[str, object]]) -> None:
        """Accumulate another shard's deltas for the same frame index."""
        for name, state in incoming.items():
            mine = self.metrics.get(name)
            if mine is None:
                self.metrics[name] = _copy_state(state)
                continue
            kind = state.get("type")
            if kind != mine.get("type"):
                raise ObservabilityError(
                    f"frame metric {name!r} type mismatch: "
                    f"{mine.get('type')!r} vs incoming {kind!r}"
                )
            if kind == "counter":
                mine["value"] = int(mine["value"]) + int(state["value"])  # type: ignore[arg-type]
            elif kind == "gauge":
                if gauge_folds_by_sum(name):
                    mine["value"] = (
                        float(mine["value"]) + float(state["value"])  # type: ignore[arg-type]
                    )
                else:
                    mine["value"] = float(state["value"])  # type: ignore[arg-type]
            elif kind == "timer":
                mine["count"] = int(mine["count"]) + int(state["count"])  # type: ignore[arg-type]
                mine["total_seconds"] = float(
                    mine["total_seconds"]  # type: ignore[arg-type]
                ) + float(state["total_seconds"])  # type: ignore[arg-type]
            elif kind == "histogram":
                _fold_histogram(name, mine, state)
            else:
                raise ObservabilityError(
                    f"cannot fold frame metric {name!r} of unknown "
                    f"type {kind!r}"
                )


def _copy_state(state: dict[str, object]) -> dict[str, object]:
    copied = dict(state)
    buckets = copied.get("buckets")
    if isinstance(buckets, list):
        copied["buckets"] = [dict(b) for b in buckets]
    return copied


def _fold_histogram(
    name: str, mine: dict[str, object], state: dict[str, object]
) -> None:
    my_buckets: list[dict[str, object]] = mine["buckets"]  # type: ignore[assignment]
    in_buckets: list[dict[str, object]] = state["buckets"]  # type: ignore[assignment]
    my_bounds = [float(b["le"]) for b in my_buckets]  # type: ignore[arg-type]
    in_bounds = [float(b["le"]) for b in in_buckets]  # type: ignore[arg-type]
    if my_bounds != in_bounds:
        raise ObservabilityError(
            f"frame histogram {name!r} bucket bounds differ: "
            f"{my_bounds} vs incoming {in_bounds}"
        )
    for slot, bucket in zip(my_buckets, in_buckets):
        slot["count"] = int(slot["count"]) + int(bucket["count"])  # type: ignore[arg-type]
    mine["count"] = int(mine["count"]) + int(state["count"])  # type: ignore[arg-type]
    mine["sum"] = float(mine["sum"]) + float(state["sum"])  # type: ignore[arg-type]


def _snapshot_delta(
    baseline: dict[str, dict[str, object]],
    current: dict[str, dict[str, object]],
) -> dict[str, dict[str, object]]:
    """Per-metric delta between two registry snapshots.

    Metrics with no activity in the window (zero counter/timer/histogram
    delta and, for gauges, no registration change) are omitted, keeping
    idle frames small.  Gauges always report their current value when
    present — a gauge is point-in-time, not a rate.
    """
    deltas: dict[str, dict[str, object]] = {}
    for name, state in current.items():
        kind = state.get("type")
        previous = baseline.get(name)
        if kind == "counter":
            before = int(previous["value"]) if previous else 0  # type: ignore[arg-type]
            delta = int(state["value"]) - before  # type: ignore[arg-type]
            if delta:
                deltas[name] = {"type": "counter", "value": delta}
        elif kind == "gauge":
            deltas[name] = {
                "type": "gauge",
                "value": float(state["value"]),  # type: ignore[arg-type]
            }
        elif kind == "timer":
            before_count = int(previous["count"]) if previous else 0  # type: ignore[arg-type]
            before_total = (
                float(previous["total_seconds"]) if previous else 0.0  # type: ignore[arg-type]
            )
            dcount = int(state["count"]) - before_count  # type: ignore[arg-type]
            if dcount:
                deltas[name] = {
                    "type": "timer",
                    "count": dcount,
                    "total_seconds": float(state["total_seconds"])  # type: ignore[arg-type]
                    - before_total,
                }
        elif kind == "histogram":
            before_count = int(previous["count"]) if previous else 0  # type: ignore[arg-type]
            dcount = int(state["count"]) - before_count  # type: ignore[arg-type]
            if not dcount:
                continue
            buckets: list[dict[str, object]] = state["buckets"]  # type: ignore[assignment]
            if previous:
                prev_buckets: list[dict[str, object]] = previous["buckets"]  # type: ignore[assignment]
                delta_buckets = [
                    {
                        "le": bucket["le"],
                        "count": int(bucket["count"])  # type: ignore[arg-type]
                        - int(prev["count"]),  # type: ignore[arg-type]
                    }
                    for bucket, prev in zip(buckets, prev_buckets)
                ]
            else:
                delta_buckets = [dict(bucket) for bucket in buckets]
            before_sum = float(previous["sum"]) if previous else 0.0  # type: ignore[arg-type]
            deltas[name] = {
                "type": "histogram",
                "count": dcount,
                "sum": float(state["sum"]) - before_sum,  # type: ignore[arg-type]
                "buckets": delta_buckets,
            }
    return deltas


class FrameSeries:
    """A bounded ring of frames, oldest dropped first."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.frames: list[Frame] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)

    def append(self, frame: Frame) -> None:
        self.frames.append(frame)
        if len(self.frames) > self.capacity:
            del self.frames[0]
            self.dropped += 1

    def fold_frame(self, state: dict[str, object]) -> None:
        """Merge one shipped frame dict by index (shard-order folding)."""
        incoming = Frame.from_dict(state)
        for frame in self.frames:
            if frame.index == incoming.index:
                frame.start += incoming.start
                frame.end += incoming.end
                frame.fold(incoming.metrics)
                return
        self.append(incoming)
        self.frames.sort(key=lambda f: f.index)

    def to_dicts(self) -> list[dict[str, object]]:
        return [frame.to_dict() for frame in self.frames]

    def deterministic_view(self) -> list[dict[str, object]]:
        """Frames with the wall-clock timer seconds removed.

        Timer *call counts* are deterministic (one record per hook
        invocation); the accumulated seconds are not, so they are
        dropped — the view is byte-identical across worker counts under
        the fixed-seed + pinned-``n_shards`` contract.
        """
        return [frame.deterministic_dict() for frame in self.frames]


def _jsonable(value: object) -> object:
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    return value


class TelemetryRecorder:
    """Cuts fixed-interval frames from a registry as the stream advances.

    The recorder owns (or wraps) the registry it diffs.  Attach it to a
    pipeline via ``Pipeline(..., telemetry=recorder)`` or
    :meth:`Pipeline.attach_telemetry`; the pipeline calls
    :meth:`advance` per pushed tuple/batch and :meth:`finalize` at
    end-of-run to close the trailing partial frame.  In sharded
    execution every worker records into a private recorder and the
    parent folds the shipped series frame-by-frame in shard order
    (:meth:`merge_snapshot`).
    """

    def __init__(
        self,
        config: TelemetryConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.series = FrameSeries(self.config.capacity)
        self.position = 0
        self._frame_start = 0
        self._frame_index = 0
        self._baseline: dict[str, dict[str, object]] = {}

    def advance(self, tuples: int) -> None:
        """Move the stream position; cut a frame at each boundary."""
        self.position += tuples
        if self.position - self._frame_start >= self.config.frame_interval:
            self._capture()

    def finalize(self) -> None:
        """Close the trailing partial frame at end-of-run, if any."""
        if self.position > self._frame_start:
            self._capture()

    def _capture(self) -> None:
        current = self.registry.snapshot()
        self.series.append(
            Frame(
                index=self._frame_index,
                start=self._frame_start,
                end=self.position,
                metrics=_snapshot_delta(self._baseline, current),
            )
        )
        self._frame_index += 1
        self._frame_start = self.position
        self._baseline = current

    def snapshot(self) -> dict[str, object]:
        """Shippable state: config + every retained frame (plain dicts)."""
        return {
            "frame_interval": self.config.frame_interval,
            "dropped": self.series.dropped,
            "frames": self.series.to_dicts(),
        }

    def merge_snapshot(self, state: dict[str, object]) -> None:
        """Fold one worker's shipped series into this recorder's.

        Frames fold by index: counter/timer/histogram deltas sum, state
        gauges sum, other gauges take the last-merged shard's value —
        call in shard order, exactly like
        :meth:`MetricsRegistry.merge_snapshot`.
        """
        if int(state["frame_interval"]) != self.config.frame_interval:  # type: ignore[arg-type]
            raise ObservabilityError(
                f"cannot merge telemetry with frame_interval "
                f"{state['frame_interval']} into a recorder at "
                f"{self.config.frame_interval}"
            )
        self.series.dropped += int(state.get("dropped", 0))  # type: ignore[arg-type]
        for frame_state in state["frames"]:  # type: ignore[union-attr]
            self.series.fold_frame(frame_state)

    def resync(self) -> None:
        """Re-baseline against the registry's current cumulative state.

        Call after folding external snapshots into :attr:`registry`
        (e.g. the post-shard metrics merge) so the next locally-cut
        frame measures only new activity, not the merged history.
        """
        self._baseline = self.registry.snapshot()

    def to_json(
        self, deterministic: bool = False, indent: int | None = None
    ) -> str:
        """The series as strict JSON (non-finite floats become null)."""
        frames = (
            self.series.deterministic_view()
            if deterministic
            else self.series.to_dicts()
        )
        payload = {
            "frame_interval": self.config.frame_interval,
            "dropped": self.series.dropped,
            "frames": frames,
        }
        return json.dumps(
            _jsonable(payload), indent=indent, allow_nan=False
        )
