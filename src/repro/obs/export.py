"""Trace exporters: Chrome trace-event JSON, strict span dumps, text tree.

Three consumers, three formats:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``) that loads directly in
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Shards
  map to processes, stages to threads, batch spans nest under their
  stage track.
* :func:`spans_to_json` — a strict-JSON dump of the raw span set and
  provenance records for programmatic consumers; with
  ``deterministic=True`` it serializes :meth:`Tracer.deterministic_view`
  (wall-clock free), the object the sharded determinism contract
  quantifies over.
* :func:`render_trace_tree` — a terminal tree view of the span forest.

All JSON produced here is strict RFC 8259: ``allow_nan=False`` and
non-finite floats sanitized to ``null`` before encoding, mirroring the
persistence layer.  :func:`validate_chrome_trace` parses with a
``parse_constant`` hook that *rejects* ``NaN``/``Infinity`` literals, so
round-tripping through it proves strictness rather than assuming it.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING

from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.trace import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_to_json",
    "render_trace_tree",
    "validate_chrome_trace",
]

#: Trace-event phase codes we emit: complete events and metadata.
_PHASES = ("X", "M")


def _finite(value: object) -> object:
    """Non-finite floats become None so strict JSON encoding succeeds."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _sanitize(value: object) -> object:
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return _finite(value)


def _shard_pids(spans: "list[Span]") -> dict[str, int]:
    """Stable shard-label -> pid mapping (sorted, so merge-order free)."""
    return {
        shard: pid
        for pid, shard in enumerate(sorted({s.shard for s in spans}))
    }


def _span_tid(span: "Span") -> int:
    """Track within a shard's process: run on 0, stages on index+1."""
    if span.kind in ("run", "shard"):
        return 0
    index = span.attrs.get("stage_index")
    if isinstance(index, int):
        return index + 1
    return 0


def chrome_trace_events(tracer: "Tracer") -> list[dict[str, object]]:
    """The tracer's spans as a list of Chrome trace-event dicts.

    Timestamps are rebased to the earliest span start (Perfetto expects
    microseconds from a common origin; ``perf_counter`` origins are
    process-local and merged worker spans would otherwise interleave
    nonsensically — rebasing per shard keeps each process track
    self-consistent).
    """
    spans = tracer.spans
    pids = _shard_pids(spans)
    origins: dict[str, float] = {}
    for span in spans:
        if math.isfinite(span.start):
            origin = origins.get(span.shard)
            if origin is None or span.start < origin:
                origins[span.shard] = span.start

    events: list[dict[str, object]] = []
    named_tracks: set[tuple[int, int]] = set()
    for shard, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro shard {shard}"},
            }
        )
    for span in spans:
        pid = pids[span.shard]
        tid = _span_tid(span)
        if (pid, tid) not in named_tracks and span.kind in (
            "run",
            "shard",
            "stage",
        ):
            named_tracks.add((pid, tid))
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": span.name},
                }
            )
        origin = origins.get(span.shard, 0.0)
        start = span.start if math.isfinite(span.start) else origin
        duration = span.duration
        if not math.isfinite(duration) or duration < 0.0:
            duration = 0.0
        args: dict[str, object] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "shard": span.shard,
            "seq": span.seq,
        }
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": (start - origin) * 1e6,
                "dur": duration * 1e6,
                "args": _sanitize(args),
            }
        )
    return events


def to_chrome_trace(tracer: "Tracer") -> dict[str, object]:
    """Full trace-event JSON object (``{"traceEvents": [...]}``)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"format": "repro-trace", "shard": tracer.shard},
    }


def write_chrome_trace(tracer: "Tracer", path: str) -> str:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the text."""
    text = json.dumps(
        to_chrome_trace(tracer), allow_nan=False, indent=2, sort_keys=True
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")
    return text


def spans_to_json(tracer: "Tracer", deterministic: bool = False) -> str:
    """Strict-JSON dump of the span set plus provenance records.

    ``deterministic=True`` drops wall-clock fields and canonically sorts
    spans and records, producing the exact payload the cross-worker
    determinism contract promises is worker-count independent.
    """
    if deterministic:
        payload: dict[str, object] = {
            "shard": tracer.shard,
            "spans": tracer.deterministic_view(),
            "provenance": (
                tracer.provenance.deterministic_view()
                if tracer.provenance is not None
                else []
            ),
        }
    else:
        payload = tracer.snapshot()
    return json.dumps(
        _sanitize(payload), allow_nan=False, indent=2, sort_keys=True
    )


def _reject_constant(literal: str) -> object:
    raise ObservabilityError(
        f"non-strict JSON constant {literal!r} in exported trace "
        "(RFC 8259 forbids NaN/Infinity)"
    )


def validate_chrome_trace(text: str) -> dict[str, object]:
    """Parse + schema-check an exported Chrome trace; returns the object.

    Raises :class:`~repro.errors.ObservabilityError` when the text is
    not strict JSON (``NaN``/``Infinity`` literals rejected), is not a
    trace-event container, or any event is missing required fields.
    """
    try:
        obj = json.loads(text, parse_constant=_reject_constant)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"exported trace is not valid JSON: {exc}"
        ) from exc
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ObservabilityError(
            "trace-event JSON must be an object with a 'traceEvents' key"
        )
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ObservabilityError("'traceEvents' must be a list")
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObservabilityError(
                f"traceEvents[{position}] is not an object"
            )
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ObservabilityError(
                    f"traceEvents[{position}] missing required key {key!r}"
                )
        phase = event["ph"]
        if phase not in _PHASES:
            raise ObservabilityError(
                f"traceEvents[{position}] has unsupported phase {phase!r}"
            )
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or not math.isfinite(
                    value
                ):
                    raise ObservabilityError(
                        f"traceEvents[{position}].{key} must be a finite "
                        f"number, got {value!r}"
                    )
            if event["dur"] < 0:
                raise ObservabilityError(
                    f"traceEvents[{position}].dur is negative"
                )
    return obj


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _format_attrs(attrs: dict[str, object]) -> str:
    if not attrs:
        return ""
    rendered = " ".join(f"{key}={value}" for key, value in attrs.items())
    return f"  [{rendered}]"


def render_trace_tree(tracer: "Tracer") -> str:
    """Terminal tree view of the span forest, children in (shard, seq)
    order under each parent; orphans (merged spans whose parent lives in
    another snapshot) surface as roots rather than disappearing."""
    spans = sorted(tracer.spans, key=lambda s: (s.shard, s.seq))
    if not spans:
        return "(no spans recorded)"
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)

    lines: list[str] = []

    def walk(span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("`- " if is_last else "|- ")
        lines.append(
            f"{prefix}{connector}{span.kind} {span.name} "
            f"({span.shard}) {_format_duration(span.duration)}"
            f"{_format_attrs(span.attrs)}"
        )
        kids = children.get(span.span_id, [])
        child_prefix = prefix if is_root else (
            prefix + ("   " if is_last else "|  ")
        )
        for position, child in enumerate(kids):
            walk(child, child_prefix, position == len(kids) - 1, False)

    roots = children.get(None, [])
    for position, root in enumerate(roots):
        walk(root, "", position == len(roots) - 1, True)
    return "\n".join(lines)
