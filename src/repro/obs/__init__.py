"""Opt-in observability for the stream engine (metrics + tracing).

Attach a :class:`MetricsRegistry` to a pipeline and every operator
records tuples in/out, wall time, batch sizes, and — for
accuracy-producing operators — emitted confidence-interval widths and
de facto sample sizes::

    from repro.obs import MetricsRegistry
    from repro.streams.engine import Pipeline

    registry = MetricsRegistry()
    pipeline = Pipeline([...], registry=registry)
    pipeline.run(source)
    registry.snapshot()            # structured dict
    registry.render_prometheus()   # text exposition format
    registry.to_json(indent=2)     # strict JSON

Attach a :class:`Tracer` the same way for per-stage/per-batch spans and
per-result accuracy provenance, exportable to Perfetto::

    from repro.obs import Tracer, explain, write_chrome_trace

    tracer = Tracer()
    pipeline = Pipeline([...], tracer=tracer)
    sink = pipeline.run(source)
    write_chrome_trace(tracer, "trace.json")   # open in ui.perfetto.dev
    print(explain(sink.results[-1], tracer))   # one result's lineage

Attach a :class:`TelemetryRecorder` for SLO telemetry: fixed-interval
frame series over every registry metric (keyed by stream position, not
wall clock), declarative SLO rules with multi-window burn-rate
evaluation, and a deterministic alert log::

    from repro.obs import AlertLog, TelemetryRecorder, parse_rule

    telemetry = TelemetryRecorder()
    pipeline = Pipeline([...], telemetry=telemetry)
    pipeline.run(source)
    rules = [parse_rule("ci_width p95 <= 0.5")]
    log = AlertLog()
    log.evaluate(telemetry.series, rules)
    print(log.to_jsonl())

With none attached the hooks reduce to one attribute check per call
and pipeline output is unchanged — see docs/OBSERVABILITY.md,
docs/TRACING.md and docs/MONITORING.md for the model and the overhead
guarantees.
"""

from repro.obs.alerts import AlertEvent, AlertLog, render_health_table
from repro.obs.export import (
    chrome_trace_events,
    render_trace_tree,
    spans_to_json,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.instrument import (
    BATCH_SIZE_BUCKETS,
    DRAWS_USED_BUCKETS,
    INTERVAL_WIDTH_BUCKETS,
    SAMPLE_SIZE_BUCKETS,
    SYNOPSIS_ERROR_BUCKETS,
    OperatorMetrics,
    operator_rows,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    exponential_buckets,
    gauge_folds_by_sum,
    linear_buckets,
    prometheus_sample,
)
from repro.obs.provenance import (
    ProvenanceRecord,
    ProvenanceRecorder,
    explain,
    lineage_from_operands,
)
from repro.obs.slo import (
    DriftEvent,
    FrameVerdict,
    RuleEvaluation,
    SloRule,
    detect_drift,
    evaluate_rule,
    evaluate_rules,
    frame_signal,
    parse_rule,
)
from repro.obs.timeseries import (
    Frame,
    FrameSeries,
    TelemetryConfig,
    TelemetryRecorder,
)
from repro.obs.trace import OperatorTrace, Span, TraceConfig, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "OperatorMetrics",
    "operator_rows",
    "exponential_buckets",
    "linear_buckets",
    "gauge_folds_by_sum",
    "prometheus_sample",
    "BATCH_SIZE_BUCKETS",
    "INTERVAL_WIDTH_BUCKETS",
    "SAMPLE_SIZE_BUCKETS",
    "SYNOPSIS_ERROR_BUCKETS",
    "DRAWS_USED_BUCKETS",
    "TelemetryConfig",
    "TelemetryRecorder",
    "Frame",
    "FrameSeries",
    "SloRule",
    "parse_rule",
    "frame_signal",
    "FrameVerdict",
    "RuleEvaluation",
    "evaluate_rule",
    "evaluate_rules",
    "DriftEvent",
    "detect_drift",
    "AlertEvent",
    "AlertLog",
    "render_health_table",
    "TraceConfig",
    "Span",
    "Tracer",
    "OperatorTrace",
    "ProvenanceRecord",
    "ProvenanceRecorder",
    "lineage_from_operands",
    "explain",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_to_json",
    "render_trace_tree",
    "validate_chrome_trace",
]
