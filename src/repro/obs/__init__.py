"""Opt-in observability for the stream engine (metrics + instrumentation).

Attach a :class:`MetricsRegistry` to a pipeline and every operator
records tuples in/out, wall time, batch sizes, and — for
accuracy-producing operators — emitted confidence-interval widths and
de facto sample sizes::

    from repro.obs import MetricsRegistry
    from repro.streams.engine import Pipeline

    registry = MetricsRegistry()
    pipeline = Pipeline([...], registry=registry)
    pipeline.run(source)
    registry.snapshot()            # structured dict
    registry.render_prometheus()   # text exposition format
    registry.to_json(indent=2)     # strict JSON

With no registry attached the hooks reduce to one attribute check per
call and pipeline output is unchanged — see docs/OBSERVABILITY.md for
the model and the overhead guarantee.
"""

from repro.obs.instrument import (
    BATCH_SIZE_BUCKETS,
    INTERVAL_WIDTH_BUCKETS,
    SAMPLE_SIZE_BUCKETS,
    OperatorMetrics,
    operator_rows,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    exponential_buckets,
    linear_buckets,
)

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "OperatorMetrics",
    "operator_rows",
    "exponential_buckets",
    "linear_buckets",
    "BATCH_SIZE_BUCKETS",
    "INTERVAL_WIDTH_BUCKETS",
    "SAMPLE_SIZE_BUCKETS",
]
