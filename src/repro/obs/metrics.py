"""Lightweight metric primitives and the registry that collects them.

Four primitives cover what a stream engine needs to explain itself:

* :class:`Counter` — monotone event count (tuples in/out, runs, drops).
* :class:`Gauge` — a point-in-time value (window fill, queue depth).
* :class:`Timer` — accumulated wall-time with count/min/max, so both
  totals and per-call latency fall out of one metric.
* :class:`Histogram` — fixed-bucket distribution sketch (batch sizes,
  confidence-interval widths, de facto sample sizes).

All primitives are plain Python objects with O(1) updates and no locks —
the engine is single-process, and the hot path must stay cheap even in
enabled mode.  A :class:`MetricsRegistry` owns metrics by name with
get-or-create semantics and exports three views: a structured
:meth:`~MetricsRegistry.snapshot` dict, a Prometheus-style text dump
(:meth:`~MetricsRegistry.render_prometheus`), and JSON
(:meth:`~MetricsRegistry.to_json`).
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from collections.abc import Sequence

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "linear_buckets",
    "gauge_folds_by_sum",
    "prometheus_sample",
]

#: Gauge-name suffixes whose cross-worker fold is a SUM, not last-write.
#: ``<op>.state.bytes`` reports the retained state of ONE shard's copy of
#: an operator; the fleet-level answer to "how much memory does this
#: stage hold?" is the sum over shards, whereas point-in-time gauges like
#: queue depth or ``multiquery.groups`` describe a single process and
#: keep last-write-wins semantics (see docs/MONITORING.md).
SUMMED_GAUGE_SUFFIXES = (".state.bytes",)


def gauge_folds_by_sum(name: str) -> bool:
    """Whether a gauge of this name sums across worker snapshots."""
    return name.endswith(SUMMED_GAUGE_SUFFIXES)


def exponential_buckets(
    start: float, factor: float, count: int
) -> tuple[float, ...]:
    """``count`` bucket upper bounds growing geometrically from ``start``."""
    if start <= 0:
        raise ObservabilityError(f"bucket start must be > 0, got {start}")
    if factor <= 1.0:
        raise ObservabilityError(f"bucket factor must be > 1, got {factor}")
    if count < 1:
        raise ObservabilityError(f"bucket count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


def linear_buckets(
    start: float, width: float, count: int
) -> tuple[float, ...]:
    """``count`` bucket upper bounds spaced ``width`` apart from ``start``."""
    if width <= 0:
        raise ObservabilityError(f"bucket width must be > 0, got {width}")
    if count < 1:
        raise ObservabilityError(f"bucket count must be >= 1, got {count}")
    return tuple(start + width * i for i in range(count))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def snapshot(self) -> dict[str, object]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that can go up and down; records the latest observation."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def snapshot(self) -> dict[str, object]:
        return {"type": "gauge", "value": self._value}


class Timer:
    """Accumulated wall-clock seconds with per-call count/min/max.

    ``record`` takes an elapsed duration in seconds; use it with
    ``time.perf_counter()`` deltas.  The mean call latency is derived in
    the snapshot, so the hot path stores only four floats.
    """

    __slots__ = ("name", "help", "count", "total", "_min", "_max")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            # Clock adjustments can produce tiny negative deltas; clamp
            # rather than poisoning min/max with nonsense.
            seconds = 0.0
        self.count += 1
        self.total += seconds
        if seconds < self._min:
            self._min = seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "type": "timer",
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "min_seconds": self._min if self.count else None,
            "max_seconds": self._max if self.count else None,
        }


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are ascending upper bounds; every observation lands in
    the first bucket whose bound is >= the value, or the implicit +Inf
    overflow bucket.  Updates are one bisect over a small tuple — O(log
    #buckets) with no allocation.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "count", "sum",
                 "_min", "_max")

    def __init__(
        self, name: str, buckets: Sequence[float], help: str = ""
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r} bucket bounds must be strictly "
                f"ascending, got {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError(
                f"histogram {self.name!r} cannot observe NaN"
            )
        self._counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, Prometheus-style."""
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for bound, n in zip(self.buckets, self._counts):
            cumulative += n
            pairs.append((bound, cumulative))
        pairs.append((math.inf, self.count))
        return pairs

    def reset(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def snapshot(self) -> dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in self.bucket_counts()
            ],
        }


Metric = Counter | Gauge | Timer | Histogram

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_INVALID.sub("_", name)
    if not sanitized:
        return "_"
    if sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_float(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _prom_help(text: str) -> str:
    """HELP-text escaping per the exposition format: ``\\`` and newline.

    Unescaped newlines would smuggle arbitrary lines (even fake metric
    samples) into the dump; unescaped backslashes corrupt the escape
    sequences of a conforming parser.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_label_value(text: str) -> str:
    """Label-value escaping: ``\\``, ``\"`` and newline."""
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def prometheus_sample(
    name: str,
    value: float,
    labels: "dict[str, object] | None" = None,
) -> str:
    """One exposition-format sample line, with optional labels.

    Metric and label names are sanitized through :func:`_prom_name`,
    label values through :func:`_prom_label_value`, and the value through
    :func:`_prom_float` — so any Python strings produce a line a strict
    exposition parser accepts.  This is the helper behind histogram
    ``_bucket{le=...}`` lines and the labeled SLO/alert series exported
    by :mod:`repro.obs.alerts`.
    """
    prom = _prom_name(name)
    if labels:
        body = ",".join(
            f'{_prom_name(str(key))}="{_prom_label_value(str(val))}"'
            for key, val in labels.items()
        )
        return f"{prom}{{{body}}} {_prom_float(float(value))}"
    return f"{prom} {_prom_float(float(value))}"


class MetricsRegistry:
    """Named metrics with get-or-create semantics and structured exports.

    Accessors (`counter`, `gauge`, `timer`, `histogram`) return the
    existing metric when the name is already registered — so operators
    re-attached to the same registry accumulate rather than clobber —
    and raise :class:`ObservabilityError` on a type conflict.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls: type, name: str, *args, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name, *args, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def timer(self, name: str, help: str = "") -> Timer:
        return self._get_or_create(Timer, name, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: Sequence[float], help: str = ""
    ) -> Histogram:
        return self._get_or_create(Histogram, name, buckets, help)  # type: ignore[return-value]

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise ObservabilityError(f"no metric named {name!r}") from None

    def names(self) -> list[str]:
        return list(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Zero every metric (registrations are kept)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> dict[str, dict[str, object]]:
        """``{metric name: structured state}`` for every metric."""
        return {
            name: metric.snapshot()
            for name, metric in self._metrics.items()
        }

    def merge_snapshot(self, snapshot: dict[str, dict[str, object]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how per-worker metrics come home from sharded pipeline
        execution: each worker records into a private registry, ships
        the snapshot back (plain dicts pickle cheaply), and the parent
        merges them in shard order.  Counters, timers, and histograms
        accumulate; gauges take the incoming value (last write wins),
        EXCEPT state gauges (:data:`SUMMED_GAUGE_SUFFIXES`, i.e.
        ``<op>.state.bytes``) which sum — each worker reports its own
        shard's retained state, and the fleet total is their sum.
        Missing metrics are created; a name already registered as a
        different type raises :class:`ObservabilityError`.
        """
        for name, state in snapshot.items():
            kind = state.get("type")
            if kind == "counter":
                self.counter(name).inc(int(state["value"]))  # type: ignore[arg-type]
            elif kind == "gauge":
                gauge = self.gauge(name)
                if gauge_folds_by_sum(name):
                    gauge.inc(float(state["value"]))  # type: ignore[arg-type]
                else:
                    gauge.set(float(state["value"]))  # type: ignore[arg-type]
            elif kind == "timer":
                timer = self.timer(name)
                count = int(state["count"])  # type: ignore[arg-type]
                if count:
                    timer.count += count
                    timer.total += float(state["total_seconds"])  # type: ignore[arg-type]
                    low = state.get("min_seconds")
                    high = state.get("max_seconds")
                    if low is not None and float(low) < timer._min:  # type: ignore[arg-type]
                        timer._min = float(low)  # type: ignore[arg-type]
                    if high is not None and float(high) > timer._max:  # type: ignore[arg-type]
                        timer._max = float(high)  # type: ignore[arg-type]
            elif kind == "histogram":
                self._merge_histogram(name, state)
            else:
                raise ObservabilityError(
                    f"cannot merge metric {name!r} of unknown type {kind!r}"
                )

    def _merge_histogram(self, name: str, state: dict[str, object]) -> None:
        buckets: list[dict[str, object]] = state["buckets"]  # type: ignore[assignment]
        bounds = tuple(
            float(b["le"]) for b in buckets  # type: ignore[arg-type]
            if math.isfinite(float(b["le"]))  # type: ignore[arg-type]
        )
        histogram = self.histogram(name, bounds)
        if histogram.buckets != bounds:
            raise ObservabilityError(
                f"histogram {name!r} bucket bounds differ: "
                f"{histogram.buckets} vs incoming {bounds}"
            )
        # Snapshot buckets are cumulative (Prometheus-style); de-cumulate
        # into per-slot increments, the +Inf overflow slot included.
        previous = 0
        for slot, bucket in enumerate(buckets):
            cumulative = int(bucket["count"])  # type: ignore[arg-type]
            histogram._counts[slot] += cumulative - previous
            previous = cumulative
        count = int(state["count"])  # type: ignore[arg-type]
        histogram.count += count
        histogram.sum += float(state["sum"])  # type: ignore[arg-type]
        if count:
            low = state.get("min")
            high = state.get("max")
            if low is not None and float(low) < histogram._min:  # type: ignore[arg-type]
                histogram._min = float(low)  # type: ignore[arg-type]
            if high is not None and float(high) > histogram._max:  # type: ignore[arg-type]
                histogram._max = float(high)  # type: ignore[arg-type]

    def to_json(self, indent: int | None = None) -> str:
        """The snapshot as strict JSON (non-finite values become null)."""

        def _jsonable(value: object) -> object:
            if isinstance(value, float) and not math.isfinite(value):
                return None
            if isinstance(value, dict):
                return {k: _jsonable(v) for k, v in value.items()}
            if isinstance(value, list):
                return [_jsonable(v) for v in value]
            return value

        return json.dumps(
            _jsonable(self.snapshot()), indent=indent, allow_nan=False
        )

    def render_prometheus(self) -> str:
        """Prometheus text-exposition dump of every metric."""
        lines: list[str] = []
        for name, metric in self._metrics.items():
            prom = _prom_name(name)
            if metric.help:
                lines.append(f"# HELP {prom} {_prom_help(metric.help)}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {prom} counter")
                lines.append(f"{prom}_total {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom} {_prom_float(metric.value)}")
            elif isinstance(metric, Timer):
                base = prom if prom.endswith("_seconds") else f"{prom}_seconds"
                lines.append(f"# TYPE {base} summary")
                lines.append(f"{base}_sum {_prom_float(metric.total)}")
                lines.append(f"{base}_count {metric.count}")
            else:  # Histogram
                lines.append(f"# TYPE {prom} histogram")
                for bound, count in metric.bucket_counts():
                    le = _prom_label_value(_prom_float(bound))
                    lines.append(f'{prom}_bucket{{le="{le}"}} {count}')
                lines.append(f"{prom}_sum {_prom_float(metric.sum)}")
                lines.append(f"{prom}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")
