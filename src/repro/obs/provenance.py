"""Accuracy provenance: per-result lineage of accuracy attributes.

The paper's central artifact — a result tuple's accuracy (CI widths,
de facto sample sizes; Lemmas 1–3, Theorem 1) — is produced by a chain
of operators, and aggregate metrics cannot explain any *single* result:
which input's sample size became the Lemma-3 minimum, where the CI
widened, how many bootstrap values were dropped.  A
:class:`ProvenanceRecorder` (owned by a
:class:`~repro.obs.trace.Tracer` with ``TraceConfig(provenance=True)``)
captures exactly that: one :class:`ProvenanceRecord` per emitted tuple
of every accuracy-producing operator, holding

* the stage that emitted it and the per-stage output sequence number,
* the accuracy payload's sample size, method, and mean-CI bounds,
* bootstrap observability (``r``/``n``, ``values_used``/``values_dropped``,
  adaptive ``draws_used``/``rounds``),
* the operator-declared **lineage**: named input sample sizes, the
  Lemma-3 de facto size, and which input set it
  (:meth:`~repro.streams.operators.Operator.trace_lineage`,
  :func:`lineage_from_operands`).

Records never touch the tuples themselves — pipeline output stays
byte-identical with tracing on or off.  :meth:`ProvenanceRecorder.explain`
renders one result's full chain; record payloads are deterministic
(sorted by ``(shard, stage_index, out_seq)``) and take part in the
sharded-trace determinism contract of ``docs/TRACING.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Mapping

from repro.core.accuracy import AccuracyInfo
from repro.core.analytic import mean_interval
from repro.core.dfsample import DfSized, df_sample_size
from repro.errors import ObservabilityError

__all__ = [
    "ProvenanceRecord",
    "ProvenanceRecorder",
    "lineage_from_operands",
    "explain",
]

#: Confidence level used to derive a CI width from a bare ``DfSized``
#: payload (mirrors ``OperatorMetrics.observe_accuracy``).
DFSIZED_CONFIDENCE = 0.95


def lineage_from_operands(
    operands: "Mapping[str, DfSized | object]",
) -> dict[str, object]:
    """Lemma-3 lineage of a result computed from named operands.

    Returns ``{"inputs": {name: n}, "df_size": min, "min_input": name}``
    where ``min_input`` names the (first, in mapping order) operand
    whose sample size equals the de facto minimum — the input Theorem 1
    says controls the result's accuracy.  Non-``DfSized`` operands and
    ``None`` sample sizes mark exact inputs that never bind the min.
    """
    sizes: dict[str, int | None] = {}
    for name, operand in operands.items():
        if isinstance(operand, DfSized):
            sizes[name] = operand.sample_size
        else:
            sizes[name] = None
    df_size = df_sample_size(sizes.values())
    min_input = None
    if df_size is not None:
        for name, size in sizes.items():
            if size == df_size:
                min_input = name
                break
    return {
        "kind": "operands",
        "inputs": sizes,
        "df_size": df_size,
        "min_input": min_input,
    }


def _describe_payload(value: object) -> dict[str, object] | None:
    """Accuracy fields of one attribute value, or None if it has none.

    The same function fingerprints tuples during :meth:`explain` lookup,
    so it must be a pure function of the payload.
    """
    if isinstance(value, AccuracyInfo):
        n = value.sample_size
        resamples = (
            value.values_used // n
            if value.method == "bootstrap" and n
            else None
        )
        return {
            "payload": "accuracy-info",
            "method": value.method,
            "sample_size": n,
            "confidence": value.mean.confidence,
            "ci_low": value.mean.low,
            "ci_high": value.mean.high,
            "values_used": value.values_used,
            "values_dropped": value.values_dropped,
            "resamples": resamples,
            "draws_used": value.draws_used,
            "rounds": value.rounds,
            "synopsis_error": value.synopsis_error,
        }
    if (
        isinstance(value, DfSized)
        and value.sample_size is not None
        and value.sample_size >= 2
    ):
        dist = value.distribution
        interval = mean_interval(
            dist.mean(), dist.std(), value.sample_size, DFSIZED_CONFIDENCE
        )
        return {
            "payload": "dfsized",
            "method": None,
            "sample_size": value.sample_size,
            "confidence": DFSIZED_CONFIDENCE,
            "ci_low": interval.low,
            "ci_high": interval.high,
            "values_used": 0,
            "values_dropped": 0,
            "resamples": None,
            "draws_used": 0,
            "rounds": 0,
        }
    return None


@dataclasses.dataclass(slots=True)
class ProvenanceRecord:
    """Accuracy lineage of one emitted tuple at one operator."""

    shard: str
    stage: str
    stage_index: int
    out_seq: int
    attribute: str
    payload: str
    method: str | None
    sample_size: int | None
    confidence: float | None
    ci_low: float | None
    ci_high: float | None
    values_used: int = 0
    values_dropped: int = 0
    resamples: int | None = None
    draws_used: int = 0
    rounds: int = 0
    synopsis_error: float = 0.0
    lineage: dict[str, object] | None = None
    span_id: str | None = None

    @property
    def ci_width(self) -> float | None:
        if self.ci_low is None or self.ci_high is None:
            return None
        return self.ci_high - self.ci_low

    def fingerprint(self) -> tuple:
        return (
            self.attribute,
            self.payload,
            self.sample_size,
            self.ci_low,
            self.ci_high,
        )

    def to_dict(self) -> dict[str, object]:
        state = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }
        if state["lineage"] is not None:
            state["lineage"] = dict(state["lineage"])
        return state

    @classmethod
    def from_dict(cls, state: dict[str, object]) -> "ProvenanceRecord":
        return cls(**state)  # type: ignore[arg-type]

    def describe(self) -> str:
        """One record as an indented multi-line block."""
        lines = [f"{self.stage} -> {self.attribute!r}"]
        bits = []
        if self.method is not None:
            bits.append(f"method={self.method}")
        if self.sample_size is not None:
            bits.append(f"n={self.sample_size}")
        if bits:
            lines.append("  " + ", ".join(bits))
        width = self.ci_width
        if width is not None and self.confidence is not None:
            lines.append(
                f"  mean CI [{self.ci_low:.6g}, {self.ci_high:.6g}] "
                f"@{self.confidence * 100:.0f}% (width {width:.6g})"
            )
        if self.method == "bootstrap":
            lines.append(
                f"  bootstrap r={self.resamples}, n={self.sample_size}, "
                f"values_used={self.values_used}, "
                f"values_dropped={self.values_dropped}, "
                f"draws_used={self.draws_used}, rounds={self.rounds}"
            )
        if self.synopsis_error:
            lines.append(
                f"  synopsis error +/-{self.synopsis_error:.6g} "
                f"(bounded-memory sketch; folded into the CI)"
            )
        lineage = self.lineage
        if lineage:
            inputs = lineage.get("inputs")
            if isinstance(inputs, Mapping) and inputs:
                rendered = ", ".join(
                    f"{name}(n={'exact' if size is None else size})"
                    for name, size in inputs.items()
                )
                lines.append(f"  inputs: {rendered}")
            df_size = lineage.get("df_size")
            if df_size is not None:
                min_input = lineage.get("min_input")
                suffix = (
                    f"; set by input {min_input!r}"
                    if min_input is not None
                    else ""
                )
                lines.append(
                    f"  de facto sample size (Lemma 3) = {df_size}{suffix}"
                )
            extra = lineage.get("window_fill")
            if extra is not None:
                lines.append(f"  window fill = {extra}")
        return "\n".join(lines)


class ProvenanceRecorder:
    """Collects :class:`ProvenanceRecord` objects for one tracer.

    Records are looked up from a result tuple two ways: by payload
    object identity (the accuracy attribute object an operator emitted
    is, in-process, the very object in the sink tuple) and — after a
    cross-worker merge re-pickled everything — by payload fingerprint
    (attribute name, sample size, CI bounds).
    """

    def __init__(
        self,
        shard: str = "main",
        seed: int = 0,
        sample_rate: float = 1.0,
        max_records: int | None = None,
    ) -> None:
        self.shard = shard
        self.seed = seed
        self.sample_rate = sample_rate
        self.max_records = max_records
        self.records: list[ProvenanceRecord] = []
        self._out_seq: dict[str, int] = {}
        self._by_payload_id: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self.records)

    def reset(self) -> None:
        self.records = []
        self._out_seq = {}
        self._by_payload_id = {}

    def _sampled(self, stage: str, out_seq: int) -> bool:
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        digest = hashlib.blake2b(
            f"prov|{self.seed}|{self.shard}|{stage}|{out_seq}".encode(),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2.0**64 < rate

    def record(self, handle, operator, tup) -> ProvenanceRecord | None:
        """Record the accuracy lineage of one emitted tuple.

        ``handle`` is the operator's :class:`~repro.obs.trace.OperatorTrace`;
        ``operator`` supplies :meth:`trace_lineage`.  The per-stage output
        sequence number advances for every emitted tuple whether or not
        the record is sampled, so sampled sets are seed-stable.
        """
        stage = handle.name
        out_seq = self._out_seq.get(stage, 0)
        self._out_seq[stage] = out_seq + 1
        if not self._sampled(stage, out_seq):
            return None
        if (
            self.max_records is not None
            and len(self.records) >= self.max_records
        ):
            return None
        attribute = handle.accuracy_attribute
        value = tup.attributes.get(attribute)
        described = _describe_payload(value)
        if described is None:
            return None
        lineage = operator.trace_lineage(tup)
        span = handle.stage_span
        record = ProvenanceRecord(
            shard=self.shard,
            stage=stage,
            stage_index=handle.index,
            out_seq=out_seq,
            attribute=attribute,
            lineage=lineage,
            span_id=span.span_id if span is not None else None,
            **described,  # type: ignore[arg-type]
        )
        index = len(self.records)
        self.records.append(record)
        self._by_payload_id.setdefault(id(value), []).append(index)
        return record

    # ------------------------------------------------------------------
    # Serialization / merge (same contract as Tracer.snapshot)
    # ------------------------------------------------------------------

    def snapshot(self) -> list[dict[str, object]]:
        return [record.to_dict() for record in self.records]

    def merge(self, records: list[dict[str, object]]) -> None:
        """Fold a worker recorder's :meth:`snapshot` into this one.

        Merged records are reachable by fingerprint only — payload
        object identity does not survive pickling.
        """
        for state in records:
            self.records.append(ProvenanceRecord.from_dict(state))

    def deterministic_view(self) -> list[dict[str, object]]:
        """Record payloads canonically sorted; fully deterministic."""
        ordered = sorted(
            self.records,
            key=lambda r: (r.shard, r.stage_index, r.stage, r.out_seq),
        )
        return [record.to_dict() for record in ordered]

    # ------------------------------------------------------------------
    # Lookup + rendering
    # ------------------------------------------------------------------

    def find(self, tup) -> list[ProvenanceRecord]:
        """Every record attached to one result tuple, in stage order."""
        attributes = getattr(tup, "attributes", None)
        if attributes is None:
            raise ObservabilityError(
                f"explain() needs an UncertainTuple, got {type(tup).__name__}"
            )
        indices: set[int] = set()
        for value in attributes.values():
            indices.update(self._by_payload_id.get(id(value), ()))
        fingerprints = set()
        for name, value in attributes.items():
            described = _describe_payload(value)
            if described is not None:
                fingerprints.add(
                    (
                        name,
                        described["payload"],
                        described["sample_size"],
                        described["ci_low"],
                        described["ci_high"],
                    )
                )
        for index, record in enumerate(self.records):
            if index not in indices and record.fingerprint() in fingerprints:
                indices.add(index)
        return sorted(
            (self.records[i] for i in indices),
            key=lambda r: (r.stage_index, r.stage, r.shard, r.out_seq),
        )

    def explain(self, tup) -> str:
        """Render one result tuple's accuracy-provenance chain."""
        chain = self.find(tup)
        if not chain:
            return (
                "no provenance recorded for this tuple (was the tracer "
                "attached with provenance enabled, and sample_rate=1.0?)"
            )
        lines = [
            f"accuracy provenance ({len(chain)} "
            f"record{'s' if len(chain) != 1 else ''}):"
        ]
        previous_width: float | None = None
        for position, record in enumerate(chain):
            block = record.describe()
            width = record.ci_width
            if previous_width is not None and width is not None:
                block += (
                    f"\n  CI width {previous_width:.6g} -> {width:.6g} "
                    "through this stage"
                )
            if width is not None:
                previous_width = width
            indented = "\n".join(
                ("  " + line) if line else line
                for line in block.splitlines()
            )
            lines.append(f"[{position}] {indented.lstrip()}")
        return "\n".join(lines)


def explain(tup, tracer) -> str:
    """Module-level convenience: ``explain(result_tuple, tracer)``."""
    return tracer.explain(tup)
