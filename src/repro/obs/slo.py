"""Declarative SLO rules over accuracy telemetry frames.

Macke et al. (PAPERS.md) treat target interval widths as explicit
contracts; this module evaluates such contracts continuously over the
frame series cut by :class:`~repro.obs.timeseries.TelemetryRecorder`.

Rule grammar (one rule per string)::

    [<operator-substring>:] <signal> <agg> <op> <threshold>

    ci_width p95 <= 0.5          # CI width p95 at most 0.5
    de_facto_n p5 >= 16          # de facto sample size p5 at least 16
    synopsis_error max <= 0.05   # sketch error never above 0.05
    draws_used mean <= 800       # bootstrap draw budget per record
    Sliding: ci_width p95 <= 1.0 # only operators matching 'Sliding'

Signals map to the accuracy histograms recorded by
:class:`~repro.obs.instrument.OperatorMetrics` (``ci_width`` ->
``*.interval_width``, ``de_facto_n`` -> ``*.sample_size``,
``synopsis_error`` -> ``*.synopsis_error``, ``draws_used`` ->
``*.draws_used``).  Aggregations are computed per frame from the
histogram *deltas*: ``mean`` exactly (delta sum / delta count),
``p95``/``p5`` by linear interpolation inside the bucket containing the
rank, ``max``/``min`` as the offending bucket's edge — bucket-resolution
estimates, but pure integer/float functions of the merged frame, so
identical at any worker count.

Evaluation is multi-window burn-rate (SRE-style): a rule transitions to
*firing* only when the fraction of frames violating the threshold
exceeds ``burn_threshold`` in BOTH a short and a long trailing window,
and resolves once the short window is clean — short-window spikes alone
leave it *pending*.  Everything is a pure function of the (merged)
frame series; workers never evaluate rules, so sharding cannot
double-fire an alert.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ObservabilityError
from repro.obs.timeseries import Frame, FrameSeries

__all__ = [
    "SloRule",
    "parse_rule",
    "frame_signal",
    "evaluate_rule",
    "evaluate_rules",
    "RuleEvaluation",
    "FrameVerdict",
    "detect_drift",
    "DriftEvent",
    "SIGNAL_SUFFIXES",
]

#: signal name -> the metric-name suffix of its per-operator histogram.
SIGNAL_SUFFIXES = {
    "ci_width": ".interval_width",
    "de_facto_n": ".sample_size",
    "synopsis_error": ".synopsis_error",
    "draws_used": ".draws_used",
}

_AGGS = ("p95", "p5", "max", "mean", "min")
_OPS = ("<=", ">=")


@dataclasses.dataclass(frozen=True)
class SloRule:
    """One declarative accuracy objective plus its burn-rate windows."""

    signal: str
    agg: str
    op: str
    threshold: float
    operator: str | None = None
    short_window: int = 3
    long_window: int = 12
    burn_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.signal not in SIGNAL_SUFFIXES:
            raise ObservabilityError(
                f"unknown SLO signal {self.signal!r}; expected one of "
                f"{sorted(SIGNAL_SUFFIXES)}"
            )
        if self.agg not in _AGGS:
            raise ObservabilityError(
                f"unknown SLO aggregation {self.agg!r}; expected one of "
                f"{_AGGS}"
            )
        if self.op not in _OPS:
            raise ObservabilityError(
                f"SLO comparator must be '<=' or '>=', got {self.op!r}"
            )
        if not math.isfinite(self.threshold):
            raise ObservabilityError(
                f"SLO threshold must be finite, got {self.threshold}"
            )
        if self.short_window < 1 or self.long_window < self.short_window:
            raise ObservabilityError(
                f"windows must satisfy 1 <= short <= long, got "
                f"{self.short_window}/{self.long_window}"
            )
        if not 0.0 < self.burn_threshold <= 1.0:
            raise ObservabilityError(
                f"burn_threshold must be in (0, 1], got "
                f"{self.burn_threshold}"
            )

    @property
    def text(self) -> str:
        """Canonical rule string (round-trips through parse_rule)."""
        prefix = f"{self.operator}: " if self.operator else ""
        return (
            f"{prefix}{self.signal} {self.agg} {self.op} "
            f"{self.threshold:g}"
        )

    def violates(self, value: float) -> bool:
        if self.op == "<=":
            return not value <= self.threshold
        return not value >= self.threshold


def parse_rule(
    text: str,
    short_window: int = 3,
    long_window: int = 12,
    burn_threshold: float = 0.5,
) -> SloRule:
    """Parse ``[op:] signal agg <=|>= threshold`` into an :class:`SloRule`."""
    operator = None
    body = text.strip()
    if ":" in body:
        qualifier, _, rest = body.partition(":")
        operator = qualifier.strip() or None
        body = rest.strip()
    parts = body.split()
    if len(parts) != 4:
        raise ObservabilityError(
            f"cannot parse SLO rule {text!r}: expected "
            f"'[operator:] signal agg <=|>= threshold'"
        )
    signal, agg, op, raw = parts
    try:
        threshold = float(raw)
    except ValueError:
        raise ObservabilityError(
            f"cannot parse SLO threshold {raw!r} in rule {text!r}"
        ) from None
    return SloRule(
        signal=signal,
        agg=agg,
        op=op,
        threshold=threshold,
        operator=operator,
        short_window=short_window,
        long_window=long_window,
        burn_threshold=burn_threshold,
    )


def _matching_states(
    frame: Frame, rule_signal: str, operator: str | None
) -> list[dict[str, object]]:
    suffix = SIGNAL_SUFFIXES[rule_signal]
    states = []
    for name, state in sorted(frame.metrics.items()):
        if not name.endswith(suffix):
            continue
        if state.get("type") != "histogram":
            continue
        if operator is not None and operator not in name[: -len(suffix)]:
            continue
        states.append(state)
    return states


def _combined(states: list[dict[str, object]]) -> dict[str, object] | None:
    """Sum matching histogram deltas bucket-wise (bounds must agree)."""
    if not states:
        return None
    combined = {
        "count": 0,
        "sum": 0.0,
        "buckets": [dict(b) for b in states[0]["buckets"]],  # type: ignore[union-attr]
    }
    for slot in combined["buckets"]:
        slot["count"] = 0
    bounds = [float(b["le"]) for b in combined["buckets"]]
    for state in states:
        incoming = [float(b["le"]) for b in state["buckets"]]  # type: ignore[union-attr]
        if incoming != bounds:
            raise ObservabilityError(
                "cannot combine SLO signal across histograms with "
                f"different bucket bounds: {bounds} vs {incoming}"
            )
        combined["count"] += int(state["count"])  # type: ignore[arg-type]
        combined["sum"] += float(state["sum"])  # type: ignore[arg-type]
        for slot, bucket in zip(combined["buckets"], state["buckets"]):  # type: ignore[arg-type]
            slot["count"] += int(bucket["count"])
    return combined if combined["count"] else None


def _quantile(state: dict[str, object], q: float) -> float:
    """Bucket-interpolated quantile of one frame's histogram delta.

    Walks the cumulative delta buckets to the one containing rank
    ``q * count`` and interpolates linearly between its edges; a rank in
    the +Inf overflow bucket returns +Inf (which any ``<=`` objective
    correctly counts as a violation).
    """
    count = int(state["count"])  # type: ignore[arg-type]
    target = q * count
    lower = 0.0
    previous = 0
    for bucket in state["buckets"]:  # type: ignore[union-attr]
        bound = float(bucket["le"])  # type: ignore[arg-type]
        cumulative = int(bucket["count"])  # type: ignore[arg-type]
        if cumulative >= target and cumulative > previous:
            if math.isinf(bound):
                return math.inf
            fraction = (target - previous) / (cumulative - previous)
            return lower + fraction * (bound - lower)
        lower = bound if not math.isinf(bound) else lower
        previous = cumulative
    return lower


def _bucket_edge(state: dict[str, object], highest: bool) -> float:
    """The max (or min) estimate: the extreme non-empty bucket's edge."""
    previous = 0
    lower = 0.0
    edge = None
    for bucket in state["buckets"]:  # type: ignore[union-attr]
        bound = float(bucket["le"])  # type: ignore[arg-type]
        cumulative = int(bucket["count"])  # type: ignore[arg-type]
        if cumulative > previous:
            if not highest:
                return lower
            edge = bound
        previous = cumulative
        lower = bound
    return edge if edge is not None else 0.0


def frame_signal(
    frame: Frame, signal: str, agg: str, operator: str | None = None
) -> float | None:
    """One frame's aggregated signal value, or None with no observations."""
    state = _combined(_matching_states(frame, signal, operator))
    if state is None:
        return None
    if agg == "mean":
        return float(state["sum"]) / int(state["count"])  # type: ignore[arg-type]
    if agg == "p95":
        return _quantile(state, 0.95)
    if agg == "p5":
        return _quantile(state, 0.05)
    if agg == "max":
        return _bucket_edge(state, highest=True)
    return _bucket_edge(state, highest=False)


@dataclasses.dataclass
class FrameVerdict:
    """One rule evaluated against one frame."""

    frame_index: int
    value: float | None
    bad: bool
    short_fraction: float
    long_fraction: float
    burning: bool


@dataclasses.dataclass
class RuleEvaluation:
    """A rule's verdicts over a whole series."""

    rule: SloRule
    verdicts: list[FrameVerdict]

    @property
    def ever_burned(self) -> bool:
        return any(v.burning for v in self.verdicts)

    def to_dicts(self) -> list[dict[str, object]]:
        return [
            {
                "frame_index": v.frame_index,
                "value": v.value,
                "bad": v.bad,
                "short_fraction": v.short_fraction,
                "long_fraction": v.long_fraction,
                "burning": v.burning,
            }
            for v in self.verdicts
        ]


def evaluate_rule(series: FrameSeries, rule: SloRule) -> RuleEvaluation:
    """Multi-window burn-rate evaluation of one rule over a series.

    A frame with no observations of the rule's signal is *good* (no
    data is not a violation — it lets alerts resolve when a query goes
    quiet).  ``short_fraction`` / ``long_fraction`` are the bad-frame
    fractions over the trailing windows ending at each frame; the rule
    burns where both meet ``burn_threshold``.
    """
    bads: list[bool] = []
    verdicts: list[FrameVerdict] = []
    for frame in series:
        value = frame_signal(frame, rule.signal, rule.agg, rule.operator)
        bad = value is not None and rule.violates(value)
        bads.append(bad)
        short = bads[-rule.short_window:]
        long = bads[-rule.long_window:]
        short_fraction = sum(short) / len(short)
        long_fraction = sum(long) / len(long)
        verdicts.append(
            FrameVerdict(
                frame_index=frame.index,
                value=value,
                bad=bad,
                short_fraction=short_fraction,
                long_fraction=long_fraction,
                burning=(
                    short_fraction >= rule.burn_threshold
                    and long_fraction >= rule.burn_threshold
                ),
            )
        )
    return RuleEvaluation(rule=rule, verdicts=verdicts)


def evaluate_rules(
    series: FrameSeries, rules: "list[SloRule]"
) -> list[RuleEvaluation]:
    return [evaluate_rule(series, rule) for rule in rules]


@dataclasses.dataclass(frozen=True)
class DriftEvent:
    """A sustained frame-over-frame trend in an accuracy signal."""

    signal: str
    agg: str
    first_frame: int
    last_frame: int
    slope: float
    relative_change: float


def detect_drift(
    series: FrameSeries,
    signal: str,
    agg: str = "mean",
    window: int = 8,
    relative_threshold: float = 0.25,
    operator: str | None = None,
) -> DriftEvent | None:
    """Trend detection: least-squares slope over the last ``window`` frames.

    Returns a :class:`DriftEvent` when the fitted change across the
    window exceeds ``relative_threshold`` of the window's mean signal
    level (e.g. CI widths drifting 25% wider), or ``None``.  Frames
    without observations are skipped; fewer than three observed frames
    is never drift.
    """
    points: list[tuple[int, float]] = []
    for frame in series:
        value = frame_signal(frame, signal, agg, operator)
        if value is not None and math.isfinite(value):
            points.append((frame.index, value))
    points = points[-window:]
    if len(points) < 3:
        return None
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    sxx = sum((x - mean_x) ** 2 for x, _ in points)
    if sxx == 0 or mean_y == 0:
        return None
    slope = (
        sum((x - mean_x) * (y - mean_y) for x, y in points) / sxx
    )
    span = points[-1][0] - points[0][0]
    relative = slope * span / abs(mean_y)
    if abs(relative) < relative_threshold:
        return None
    return DriftEvent(
        signal=signal,
        agg=agg,
        first_frame=points[0][0],
        last_frame=points[-1][0],
        slope=slope,
        relative_change=relative,
    )
