"""Deterministic alert log over SLO evaluations.

Alerts here are a pure function of the (merged) frame series and the
rule set — no wall clock, no randomness — so a fixed seed and pinned
``n_shards`` produce byte-identical alert logs at any worker count.

Per rule, the state machine over frame indices is::

    ok ──bad frame──▶ pending ──both windows over budget──▶ firing
     ▲                   │                                     │
     └──short window clean┴──────────short window clean────────┘
                                                        (resolved)

Every transition appends an :class:`AlertEvent` carrying the offending
frame (for *pending*/*firing*) so an operator can see exactly which
deltas tripped the rule.  Exports: JSON lines (:meth:`AlertLog.to_jsonl`),
labeled Prometheus series (:meth:`AlertLog.render_prometheus`, via
:func:`~repro.obs.metrics.prometheus_sample`), and a plain-text health
table (:func:`render_health_table`).

When a :class:`~repro.obs.provenance.ProvenanceRecorder` is supplied,
``de_facto_n`` transitions are annotated with the recorded input that
set the de facto sample size (the Lemma-3 minimum), reusing the
recorder's lineage/``explain`` machinery.
"""

from __future__ import annotations

import dataclasses
import json
import math

from repro.obs.metrics import prometheus_sample
from repro.obs.slo import (
    RuleEvaluation,
    SloRule,
    evaluate_rules,
    frame_signal,
)
from repro.obs.timeseries import FrameSeries

__all__ = [
    "AlertEvent",
    "AlertLog",
    "render_health_table",
]

_STATE_VALUES = {"ok": 0, "pending": 1, "firing": 2, "resolved": 0}


@dataclasses.dataclass
class AlertEvent:
    """One state transition of one rule."""

    rule: str
    signal: str
    state: str
    frame_index: int
    value: float | None
    threshold: float
    short_fraction: float
    long_fraction: float
    frame: dict[str, object] | None = None
    annotation: str | None = None

    def to_dict(self) -> dict[str, object]:
        state = dataclasses.asdict(self)
        return _jsonable(state)  # type: ignore[return-value]


def _jsonable(value):
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    return value


def _annotate(rule: SloRule, provenance) -> str | None:
    """Name the input that set the de facto size, via provenance lineage."""
    if provenance is None or rule.signal != "de_facto_n":
        return None
    records = getattr(provenance, "records", None)
    if not records:
        return None
    worst = min(
        (r for r in records if r.sample_size is not None),
        key=lambda r: r.sample_size,
        default=None,
    )
    if worst is None:
        return None
    text = (
        f"smallest de facto sample size n={worst.sample_size} emitted by "
        f"{worst.stage} for attribute {worst.attribute!r}"
    )
    lineage = worst.lineage or {}
    min_input = lineage.get("min_input")
    if min_input is not None:
        text += f"; set by input {min_input!r} (Lemma 3 minimum)"
    return text


class AlertLog:
    """Evaluates rules over a series and logs state transitions."""

    def __init__(self) -> None:
        self.events: list[AlertEvent] = []
        self.states: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self.events)

    def evaluate(
        self,
        series: FrameSeries,
        rules: "list[SloRule]",
        provenance=None,
    ) -> list[AlertEvent]:
        """Run every rule's state machine over the series from scratch.

        The log is rebuilt deterministically on each call (clear +
        replay), so evaluating the same merged series always yields the
        same event sequence regardless of how many times — or on how
        many workers' partial views — it was previously evaluated.
        """
        self.events = []
        self.states = {}
        frames = {frame.index: frame for frame in series}
        for evaluation in evaluate_rules(series, rules):
            self._replay(evaluation, frames, provenance)
        return self.events

    def _replay(
        self,
        evaluation: RuleEvaluation,
        frames: dict[int, object],
        provenance,
    ) -> None:
        rule = evaluation.rule
        state = "ok"
        for verdict in evaluation.verdicts:
            next_state = state
            if state in ("ok", "resolved"):
                if verdict.burning:
                    next_state = "firing"
                elif verdict.bad:
                    next_state = "pending"
            elif state == "pending":
                if verdict.burning:
                    next_state = "firing"
                elif verdict.short_fraction == 0.0:
                    next_state = "ok"
            elif state == "firing":
                if verdict.short_fraction == 0.0:
                    next_state = "resolved"
            if next_state != state:
                frame = frames.get(verdict.frame_index)
                attach = next_state in ("pending", "firing")
                self.events.append(
                    AlertEvent(
                        rule=rule.text,
                        signal=rule.signal,
                        state=next_state,
                        frame_index=verdict.frame_index,
                        value=verdict.value,
                        threshold=rule.threshold,
                        short_fraction=verdict.short_fraction,
                        long_fraction=verdict.long_fraction,
                        # The deterministic view: attached frames must
                        # keep the log byte-identical across worker
                        # counts, so wall-clock timer seconds stay out.
                        frame=(
                            frame.deterministic_dict()
                            if attach and frame is not None
                            else None
                        ),
                        annotation=(
                            _annotate(rule, provenance)
                            if next_state == "firing"
                            else None
                        ),
                    )
                )
                state = next_state
        self.states[rule.text] = state

    def to_jsonl(self) -> str:
        """One strict-JSON object per event (non-finite floats -> null)."""
        return "\n".join(
            json.dumps(event.to_dict(), allow_nan=False)
            for event in self.events
        ) + ("\n" if self.events else "")

    def render_prometheus(self) -> str:
        """Labeled gauge series: current state + transition counts."""
        lines = [
            "# TYPE slo_alert_state gauge",
            "# HELP slo_alert_state current alert state per SLO rule "
            "(0 ok/resolved, 1 pending, 2 firing)",
        ]
        for rule_text, state in self.states.items():
            lines.append(
                prometheus_sample(
                    "slo_alert_state",
                    _STATE_VALUES[state],
                    {"rule": rule_text, "state": state},
                )
            )
        lines.append("# TYPE slo_alert_transitions_total counter")
        counts: dict[tuple[str, str], int] = {}
        for event in self.events:
            key = (event.rule, event.state)
            counts[key] = counts.get(key, 0) + 1
        for (rule_text, state), count in counts.items():
            lines.append(
                prometheus_sample(
                    "slo_alert_transitions_total",
                    count,
                    {"rule": rule_text, "state": state},
                )
            )
        return "\n".join(lines) + "\n"


def render_health_table(
    series: FrameSeries,
    rules: "list[SloRule]",
    log: AlertLog | None = None,
) -> str:
    """Per-rule health: latest value, windows, state — plain text.

    Evaluates the rules against the series (reusing ``log`` if given so
    its states match what was exported) and renders one row per rule.
    """
    from repro.experiments.harness import render_table

    if log is None:
        log = AlertLog()
        log.evaluate(series, rules)
    evaluations = evaluate_rules(series, rules)
    rows = []
    for evaluation in evaluations:
        rule = evaluation.rule
        last = evaluation.verdicts[-1] if evaluation.verdicts else None
        latest = series.frames[-1] if series.frames else None
        value = (
            frame_signal(latest, rule.signal, rule.agg, rule.operator)
            if latest is not None
            else None
        )
        rows.append(
            [
                rule.text,
                "-" if value is None else value,
                "-" if last is None else f"{last.short_fraction:.2f}",
                "-" if last is None else f"{last.long_fraction:.2f}",
                log.states.get(rule.text, "ok"),
            ]
        )
    return render_table(
        ["rule", "latest", "burn_s", "burn_l", "state"],
        rows,
        title=f"SLO health ({len(series)} frames)",
        align=["l", "r", "r", "r", "l"],
    )
