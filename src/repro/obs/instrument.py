"""Per-operator instrumentation bundles and snapshot helpers.

:class:`OperatorMetrics` is the object an :class:`~repro.streams.operators.Operator`
holds when a :class:`~repro.obs.metrics.MetricsRegistry` is attached to
its pipeline.  It pre-registers every metric the operator hooks update,
so the hot path does plain attribute access — no dict lookups per tuple.

The metric names are hierarchical: ``{operator id}.{metric}``, where the
operator id is ``{prefix}.{index:02d}.{ClassName}`` as assigned by
:meth:`Pipeline.attach_metrics`.  :func:`operator_rows` groups a registry
snapshot back into one row per operator for tabular reporting
(:func:`repro.experiments.harness.render_metrics_table`).
"""

from __future__ import annotations

import math

from repro.core.accuracy import AccuracyInfo
from repro.core.analytic import mean_interval
from repro.core.dfsample import DfSized
from repro.obs.metrics import (
    MetricsRegistry,
    exponential_buckets,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "INTERVAL_WIDTH_BUCKETS",
    "SAMPLE_SIZE_BUCKETS",
    "ROLLING_DRIFT_BUCKETS",
    "SYNOPSIS_ERROR_BUCKETS",
    "DRAWS_USED_BUCKETS",
    "OperatorMetrics",
    "operator_rows",
]

# Batch sizes: powers of two up to 64k (Pipeline.run_batched defaults
# to 256; sources may feed anything).
BATCH_SIZE_BUCKETS = exponential_buckets(1.0, 2.0, 17)
# Interval widths span many orders of magnitude across workloads
# (traffic delays vs normalized probabilities): geometric from 1e-4.
INTERVAL_WIDTH_BUCKETS = exponential_buckets(1e-4, 10.0**0.5, 16)
# De facto sample sizes: the paper's experiments use n in [10, 1000].
SAMPLE_SIZE_BUCKETS = exponential_buckets(2.0, 2.0, 12)
# Drift observed at each rolling-sum re-sum (see repro.streams.rolling):
# compensated sums typically drift < 1e-12 absolute, so the buckets
# reach down to 1e-18 — a drift in the upper decades flags a kernel bug.
ROLLING_DRIFT_BUCKETS = exponential_buckets(1e-18, 10.0, 20)
# Sketch synopsis error (value units folded into the CI): tiny for
# well-provisioned sketches, so the decades reach down to 1e-6.
SYNOPSIS_ERROR_BUCKETS = exponential_buckets(1e-6, 10.0**0.5, 16)
# Monte-Carlo draws consumed per emitted accuracy record: the adaptive
# bootstrap escalates in powers of two from small pilot rounds.
DRAWS_USED_BUCKETS = exponential_buckets(8.0, 2.0, 12)


class OperatorMetrics:
    """Everything one operator records: counts, timings, distributions.

    ``accuracy_attribute`` enables the interval-width/sample-size
    histograms: each emitted tuple's attribute of that name is inspected
    — an :class:`AccuracyInfo` contributes its mean-interval width
    directly, while a :class:`DfSized` distribution with a usable sample
    size contributes its Lemma-2 mean interval at ``confidence``.
    """

    __slots__ = (
        "name",
        "tuples_in",
        "tuples_out",
        "process_seconds",
        "batch_seconds",
        "flush_seconds",
        "batch_sizes",
        "accuracy_attribute",
        "confidence",
        "interval_widths",
        "sample_sizes",
        "synopsis_errors",
        "draws_used",
        "unsure",
        "rolling_resums",
        "rolling_drift",
        "memory",
        "state_bytes",
        "_registry",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        accuracy_attribute: str | None = None,
        confidence: float = 0.95,
        rolling: bool = False,
        memory: bool = False,
    ) -> None:
        self.name = name
        self.tuples_in = registry.counter(
            f"{name}.tuples_in", "tuples received by the operator"
        )
        self.tuples_out = registry.counter(
            f"{name}.tuples_out", "tuples emitted downstream"
        )
        self.process_seconds = registry.timer(
            f"{name}.process_seconds",
            "wall time per receive() call (inclusive of downstream work)",
        )
        self.batch_seconds = registry.timer(
            f"{name}.batch_seconds",
            "wall time per receive_many() call (inclusive of downstream)",
        )
        self.flush_seconds = registry.timer(
            f"{name}.flush_seconds", "wall time spent draining on flush"
        )
        self.batch_sizes = registry.histogram(
            f"{name}.batch_size",
            BATCH_SIZE_BUCKETS,
            "input batch size distribution",
        )
        self.accuracy_attribute = accuracy_attribute
        self.confidence = confidence
        if accuracy_attribute is not None:
            self.interval_widths = registry.histogram(
                f"{name}.interval_width",
                INTERVAL_WIDTH_BUCKETS,
                f"emitted CI width of {accuracy_attribute!r} "
                f"(mean interval at {confidence:g} confidence)",
            )
            self.sample_sizes = registry.histogram(
                f"{name}.sample_size",
                SAMPLE_SIZE_BUCKETS,
                f"de facto sample size of emitted {accuracy_attribute!r}",
            )
            self.synopsis_errors = registry.histogram(
                f"{name}.synopsis_error",
                SYNOPSIS_ERROR_BUCKETS,
                f"sketch synopsis error folded into emitted "
                f"{accuracy_attribute!r} intervals",
            )
            self.draws_used = registry.histogram(
                f"{name}.draws_used",
                DRAWS_USED_BUCKETS,
                f"Monte-Carlo draws behind emitted {accuracy_attribute!r}",
            )
            self.unsure = registry.counter(
                f"{name}.interval_width.unsure",
                "emitted accuracy records whose CI width was missing or "
                "non-finite (e.g. keep_unsure passthroughs)",
            )
        else:
            self.interval_widths = None
            self.sample_sizes = None
            self.synopsis_errors = None
            self.draws_used = None
            self.unsure = None
        if rolling:
            self.rolling_resums = registry.counter(
                f"{name}.rolling.resums",
                "drift-guard exact re-sums of the rolling window sums",
            )
            self.rolling_drift = registry.histogram(
                f"{name}.rolling.drift",
                ROLLING_DRIFT_BUCKETS,
                "absolute drift of the compensated sums at each re-sum",
            )
        else:
            self.rolling_resums = None
            self.rolling_drift = None
        # The state gauge is created lazily on the first report so a
        # registry snapshot distinguishes "never reported" (no gauge,
        # rendered as '-') from "reported zero bytes".
        self.memory = memory
        self.state_bytes = None
        self._registry = registry if memory else None

    def record_state_bytes(self, value: float) -> None:
        """Sample the operator's retained bytes (creates the gauge)."""
        gauge = self.state_bytes
        if gauge is None:
            gauge = self._registry.gauge(
                f"{self.name}.state.bytes",
                "approximate retained operator state, sampled on flush",
            )
            self.state_bytes = gauge
        gauge.set(value)

    def observe_accuracy(self, tup) -> None:
        """Record interval width + sample size of one emitted tuple.

        An accuracy record whose mean-interval width is missing or
        non-finite (``keep_unsure`` passthroughs carry intervals with
        infinite bounds, whose length is inf — or nan when both bounds
        are infinite) counts in the dedicated ``interval_width.unsure``
        counter instead of raising from ``Histogram.observe`` or being
        silently skipped.
        """
        value = tup.attributes.get(self.accuracy_attribute)
        if isinstance(value, AccuracyInfo):
            interval = value.mean
            width = None if interval is None else interval.length
            size = value.sample_size
            if value.synopsis_error > 0.0:
                self.synopsis_errors.observe(value.synopsis_error)
            if value.draws_used > 0:
                self.draws_used.observe(value.draws_used)
        elif (
            isinstance(value, DfSized)
            and value.sample_size is not None
            and value.sample_size >= 2
        ):
            dist = value.distribution
            width = mean_interval(
                dist.mean(), dist.std(), value.sample_size, self.confidence
            ).length
            size = value.sample_size
        else:
            return
        if width is not None and math.isfinite(width):
            self.interval_widths.observe(width)
        else:
            self.unsure.inc()
        self.sample_sizes.observe(size)


def _stage_sort_key(op_id: str) -> tuple:
    """Sort key ordering operator ids by *numeric* stage index.

    Operator ids look like ``{prefix}.{index}.{ClassName}``; comparing
    the raw string orders stage 10 before stage 2 whenever the index is
    not zero-padded (and even padded ids break at >= 100 stages).  Each
    dotted segment compares as an integer when it is one, keeping
    pipeline prefixes grouped and stages in execution order.
    """
    return tuple(
        (0, int(segment), "") if segment.isdigit() else (1, 0, segment)
        for segment in op_id.split(".")
    )


def operator_rows(
    snapshot: "dict[str, dict[str, object]] | MetricsRegistry",
) -> list[dict[str, object]]:
    """Group a registry snapshot into one summary row per operator.

    Recognises the ``{operator id}.{metric}`` names written by
    :class:`OperatorMetrics` and derives selectivity (out/in) plus
    self-time: in a linear push pipeline each operator's timers include
    all downstream work, so ``self = inclusive - next stage's inclusive``
    for adjacent stages of the same pipeline prefix.
    """
    if isinstance(snapshot, MetricsRegistry):
        snapshot = snapshot.snapshot()
    per_op: dict[str, dict[str, object]] = {}
    for name, state in snapshot.items():
        op_id, _, metric = name.rpartition(".")
        if not op_id:
            continue
        if metric == "bytes" and op_id.endswith(".state"):
            # ``{op}.state.bytes`` belongs to the parent operator row,
            # not a phantom ``{op}.state`` operator.
            op_id, metric = op_id[: -len(".state")], "state_bytes"
        elif metric == "unsure" and op_id.endswith(".interval_width"):
            # ``{op}.interval_width.unsure`` likewise folds into the
            # operator that owns the interval-width histogram.
            op_id = op_id[: -len(".interval_width")]
            metric = "interval_width_unsure"
        bucket = per_op.setdefault(op_id, {})
        bucket[metric] = state
    rows: list[dict[str, object]] = []
    for op_id, metrics in per_op.items():
        if "tuples_in" not in metrics or "tuples_out" not in metrics:
            continue  # not an operator bundle
        tuples_in = metrics["tuples_in"]["value"]
        tuples_out = metrics["tuples_out"]["value"]
        process = metrics.get("process_seconds", {})
        batch = metrics.get("batch_seconds", {})
        flush = metrics.get("flush_seconds", {})
        calls = process.get("count", 0) + batch.get("count", 0)
        inclusive = (
            process.get("total_seconds", 0.0)
            + batch.get("total_seconds", 0.0)
            + flush.get("total_seconds", 0.0)
        )
        row: dict[str, object] = {
            "operator": op_id,
            "tuples_in": tuples_in,
            "tuples_out": tuples_out,
            "selectivity": (
                tuples_out / tuples_in if tuples_in else float("nan")
            ),
            "calls": calls,
            "inclusive_seconds": inclusive,
        }
        widths = metrics.get("interval_width")
        if widths is not None and widths.get("count"):
            row["interval_width_mean"] = widths["mean"]
            row["interval_width_max"] = widths["max"]
        sizes = metrics.get("sample_size")
        if sizes is not None and sizes.get("count"):
            row["sample_size_min"] = sizes["min"]
        unsure = metrics.get("interval_width_unsure")
        if unsure is not None and unsure.get("value"):
            row["unsure"] = unsure["value"]
        # A ``state.bytes`` gauge only exists once the operator actually
        # reported (it is created lazily by ``record_state_bytes``), so
        # a missing key here renders as '-' rather than a misleading 0.
        state = metrics.get("state_bytes")
        if state is not None:
            row["state_bytes"] = state["value"]
        rows.append(row)
    rows.sort(key=lambda r: _stage_sort_key(str(r["operator"])))
    # Self-time: subtract the next stage's inclusive time within the
    # same pipeline prefix (rows are in numeric stage order).
    for current, following in zip(rows, rows[1:]):
        cur_prefix = str(current["operator"]).rpartition(".")[0]
        next_prefix = str(following["operator"]).rpartition(".")[0]
        cur_prefix = cur_prefix.rpartition(".")[0]
        next_prefix = next_prefix.rpartition(".")[0]
        current["self_seconds"] = current["inclusive_seconds"]
        if cur_prefix == next_prefix:
            current["self_seconds"] = max(
                0.0,
                current["inclusive_seconds"]
                - following["inclusive_seconds"],
            )
    if rows:
        rows[-1]["self_seconds"] = rows[-1]["inclusive_seconds"]
    return rows
