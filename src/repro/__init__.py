"""repro — an accuracy-aware uncertain stream database.

A from-scratch reproduction of *"Accuracy-Aware Uncertain Stream
Databases"* (Tingjian Ge and Fujun Liu, ICDE 2012): an uncertain stream
database in which every learned probability distribution carries
confidence-interval accuracy information, query results inherit that
accuracy through de facto sample sizes, and decision making uses
hypothesis-test *significance predicates* with coupled error-rate control.

Quickstart::

    import numpy as np
    from repro import (
        HistogramLearner, UncertainTuple, run_query, ExecutorConfig,
    )

    rng = np.random.default_rng(0)
    learner = HistogramLearner(bucket_count=8)
    delays = learner.learn(rng.normal(60, 15, 50))
    tup = UncertainTuple({"road_id": 20, "delay": delays.as_dfsized()})
    results = run_query(
        "SELECT road_id, delay FROM t WHERE delay > 50 PROB 0.5",
        [tup], config=ExecutorConfig(confidence=0.9),
    )
    print(results[0].describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro.errors import (
    ReproError,
    DistributionError,
    LearningError,
    AccuracyError,
    QueryError,
    ParseError,
    StreamError,
    SchemaError,
    CallbackError,
    ParallelError,
)
from repro.distributions import (
    Distribution,
    Deterministic,
    HistogramDistribution,
    GaussianDistribution,
    EmpiricalDistribution,
    DiscreteDistribution,
    UniformDistribution,
    ExponentialDistribution,
    GammaDistribution,
    WeibullDistribution,
    MixtureDistribution,
)
from repro.core import (
    ConfidenceInterval,
    BinInterval,
    AccuracyInfo,
    TupleProbabilityInterval,
    bin_height_interval,
    bin_height_intervals,
    histogram_accuracy,
    mean_interval,
    mean_intervals,
    variance_interval,
    variance_intervals,
    distribution_accuracy,
    accuracy_from_moments,
    tuple_probability_interval,
    tuple_probability_intervals,
    accuracy_from_sample,
    accuracy_from_stats,
    df_sample_size,
    df_sample_count,
    DfSized,
    bootstrap_accuracy_info,
    bootstrap_accuracy_batch,
    adaptive_bootstrap_accuracy_info,
    adaptive_bootstrap_from_values,
    IncrementalBootstrap,
    resample_schedule,
    width_calibration,
    classical_bootstrap_accuracy,
    FieldStats,
    TestResult,
    m_test,
    md_test,
    p_test,
    v_test,
    MTest,
    MdTest,
    PTest,
    VTest,
    ThreeValued,
    coupled_tests,
    CoupledPredicate,
    m_test_power,
    p_test_power,
    effective_sample_size,
)
from repro.learning import (
    Learner,
    LearnedDistribution,
    HistogramLearner,
    GaussianLearner,
    EmpiricalLearner,
    KdeLearner,
    WeightedLearner,
)
from repro.streams import (
    AttributeSpec,
    Schema,
    UncertainTuple,
    Pipeline,
    CountWindow,
    Select,
    Project,
    Derive,
    ProbabilisticFilter,
    SignificanceFilter,
    SlidingGaussianAverage,
    WindowAggregate,
    RollingLearnOperator,
    RollingWindowStats,
    CollectSink,
    CountingSink,
    measure_throughput,
)
from repro.query import (
    parse_query,
    compile_query,
    QueryExecutor,
    ExecutorConfig,
    ResultTuple,
)
from repro.streams.join import TagSide, WindowJoin
from repro.streams.groupby import GroupedAggregate
from repro.query.executor import run_query
from repro.db import StreamDatabase, ContinuousQuery
from repro.persist import save_database, load_database
from repro.obs import (
    Counter,
    Gauge,
    Timer,
    Histogram,
    MetricsRegistry,
    operator_rows,
)
from repro.parallel import (
    ParallelConfig,
    WorkerPool,
    available_cpus,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError", "DistributionError", "LearningError", "AccuracyError",
    "QueryError", "ParseError", "StreamError", "SchemaError",
    "CallbackError", "ParallelError",
    "Distribution", "Deterministic", "HistogramDistribution",
    "GaussianDistribution", "EmpiricalDistribution", "DiscreteDistribution",
    "UniformDistribution", "ExponentialDistribution", "GammaDistribution",
    "WeibullDistribution", "MixtureDistribution",
    "ConfidenceInterval", "BinInterval", "AccuracyInfo",
    "TupleProbabilityInterval", "bin_height_interval", "bin_height_intervals",
    "histogram_accuracy",
    "mean_interval", "mean_intervals", "variance_interval",
    "variance_intervals", "distribution_accuracy", "accuracy_from_moments",
    "tuple_probability_interval", "tuple_probability_intervals",
    "accuracy_from_sample", "accuracy_from_stats", "df_sample_size",
    "df_sample_count", "DfSized", "bootstrap_accuracy_info",
    "bootstrap_accuracy_batch",
    "adaptive_bootstrap_accuracy_info",
    "adaptive_bootstrap_from_values",
    "IncrementalBootstrap",
    "resample_schedule",
    "width_calibration",
    "classical_bootstrap_accuracy", "FieldStats", "TestResult", "m_test",
    "md_test", "p_test", "v_test", "MTest", "MdTest", "PTest", "VTest",
    "ThreeValued",
    "coupled_tests", "CoupledPredicate", "m_test_power", "p_test_power",
    "effective_sample_size",
    "Learner", "LearnedDistribution", "HistogramLearner", "GaussianLearner",
    "EmpiricalLearner", "KdeLearner", "WeightedLearner",
    "AttributeSpec", "Schema", "UncertainTuple", "Pipeline", "CountWindow",
    "Select", "Project", "Derive", "ProbabilisticFilter",
    "SignificanceFilter", "SlidingGaussianAverage", "WindowAggregate",
    "RollingLearnOperator", "RollingWindowStats",
    "CollectSink", "CountingSink", "measure_throughput",
    "parse_query", "compile_query", "QueryExecutor", "ExecutorConfig",
    "ResultTuple", "run_query",
    "TagSide", "WindowJoin", "GroupedAggregate",
    "StreamDatabase", "ContinuousQuery",
    "save_database", "load_database",
    "Counter", "Gauge", "Timer", "Histogram", "MetricsRegistry",
    "operator_rows",
    "ParallelConfig", "WorkerPool", "available_cpus",
]
