"""SQL-ish query layer over uncertain streams.

The layer has four pieces:

* :mod:`repro.query.expressions` — the expression AST and its evaluation
  over distribution-valued attributes with d.f.-sample-size propagation.
* :mod:`repro.query.parser` — a recursive-descent parser for the SELECT
  dialect, including probability-threshold predicates and the paper's
  significance predicates (mTest / mdTest / pTest).
* :mod:`repro.query.planner` — validation and compilation of a parsed
  query against a schema.
* :mod:`repro.query.executor` — evaluation of compiled queries over
  tuples, producing result tuples with accuracy information attached.
"""

from repro.query.expressions import (
    Expression,
    Column,
    Literal,
    BinaryOp,
    UnaryOp,
    Comparison,
    EvalContext,
)
from repro.query.parser import parse_query, Query
from repro.query.planner import (
    compile_query,
    compile_query_cached,
    clear_plan_cache,
    plan_cache_size,
    prefix_fingerprint,
    CompiledQuery,
)
from repro.query.executor import (
    QueryExecutor,
    ResultTuple,
    ExecutorConfig,
)
from repro.query.multiquery import MultiQueryEngine

__all__ = [
    "Expression",
    "Column",
    "Literal",
    "BinaryOp",
    "UnaryOp",
    "Comparison",
    "EvalContext",
    "parse_query",
    "Query",
    "compile_query",
    "compile_query_cached",
    "clear_plan_cache",
    "plan_cache_size",
    "prefix_fingerprint",
    "CompiledQuery",
    "QueryExecutor",
    "ResultTuple",
    "ExecutorConfig",
    "MultiQueryEngine",
]
