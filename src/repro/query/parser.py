"""Recursive-descent parser for the SELECT dialect.

Supported grammar (case-insensitive keywords)::

    query       := SELECT select_list FROM ident [WHERE condition]
                   [ORDER BY expr [ASC|DESC]] [LIMIT integer]
    select_list := '*' | expr [AS ident] (',' expr [AS ident])*
    condition   := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | atom
    atom        := '(' condition ')' | sig_call | comparison [PROB number]
    comparison  := expr cmp expr           cmp in < <= > >= = <>
    sig_call    := MTEST '(' expr ',' opstr ',' number ',' number [',' number] ')'
                 | VTEST '(' expr ',' opstr ',' number ',' number [',' number] ')'
                 | MDTEST '(' expr ',' expr ',' opstr ',' number [',' number] ')'
                 | PTEST '(' comparison ',' number ',' number [',' number] ')'
    expr        := term (('+'|'-') term)*
    term        := unary (('*'|'/') unary)*
    unary       := '-' unary | postfix
    postfix     := NUMBER | ident | '(' expr ')' | func '(' expr ')'
    func        := SQRT | ABS | SQUARE | SQRTABS

``expr > 50 PROB 0.66`` is the paper's probability-threshold predicate
``expr >_{2/3} 50`` (PROB also accepts fractions: ``PROB 2/3``).  A
significance call with one alpha runs a single hypothesis test; with two
alphas it runs COUPLED-TESTS with (alpha1, alpha2).  ``SQRT(x)`` is the
paper's SQRT(ABS(.)) operator.
"""

from __future__ import annotations

import dataclasses
import re

from repro.errors import ParseError
from repro.query.expressions import (
    BinaryOp,
    Column,
    Comparison,
    Expression,
    Literal,
    UnaryOp,
)

__all__ = [
    "Query",
    "Condition",
    "CompareCondition",
    "SignificanceCondition",
    "AndCondition",
    "OrCondition",
    "NotCondition",
    "parse_query",
    "parse_expression",
]

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AS", "AND", "OR", "NOT", "PROB",
    "MTEST", "MDTEST", "PTEST", "VTEST", "SQRT", "ABS", "SQUARE", "SQRTABS",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "AVG", "SUM", "COUNT",
    "GROUP",
}
_CMP_OPS = ("<=", ">=", "<>", "<", ">", "=")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op><=|>=|<>|[<>=+\-*/(),])
    """,
    re.VERBOSE,
)


@dataclasses.dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'ident' | 'keyword' | 'string' | 'op' | 'eof'
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "ident" and value.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", value.upper(), match.start()))
        elif kind == "string":
            tokens.append(_Token("string", value[1:-1], match.start()))
        else:
            assert kind is not None
            tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


# -- condition AST -----------------------------------------------------------


class Condition:
    """Marker base class for WHERE-clause nodes."""


@dataclasses.dataclass(frozen=True)
class CompareCondition(Condition):
    """A comparison, optionally with a probability threshold.

    ``threshold is None`` — plain possible-world semantics: the result
    tuple's probability is multiplied by P[comparison].
    ``threshold = tau`` — the tuple qualifies only when P[comparison] >= tau
    (the paper's probability-threshold predicate).
    """

    comparison: Comparison
    threshold: float | None = None


@dataclasses.dataclass(frozen=True)
class SignificanceCondition(Condition):
    """mTest / mdTest / pTest call in the WHERE clause.

    ``alpha2 is None`` means a single (uncoupled) hypothesis test;
    otherwise COUPLED-TESTS runs with (alpha1, alpha2).
    """

    kind: str  # 'mtest' | 'mdtest' | 'ptest'
    expr_x: Expression | None = None
    expr_y: Expression | None = None
    comparison: Comparison | None = None
    op: str = ">"
    constant: float = 0.0
    tau: float = 0.5
    alpha1: float = 0.05
    alpha2: float | None = None


@dataclasses.dataclass(frozen=True)
class AndCondition(Condition):
    parts: tuple[Condition, ...]


@dataclasses.dataclass(frozen=True)
class OrCondition(Condition):
    parts: tuple[Condition, ...]


@dataclasses.dataclass(frozen=True)
class NotCondition(Condition):
    part: Condition


@dataclasses.dataclass(frozen=True)
class Query:
    """A parsed query: select items, source, WHERE / ORDER BY / LIMIT.

    ``order_by`` sorts results by the *expected value* of the expression
    (descending when ``descending``); ``limit`` truncates afterwards.
    """

    select_items: tuple[tuple[Expression, str], ...]  # (expr, output name)
    star: bool
    source: str
    where: Condition | None
    order_by: Expression | None = None
    descending: bool = False
    limit: int | None = None
    # Aligned with select_items: 'avg' | 'sum' | 'count' | None per item.
    aggregates: tuple[str | None, ...] = ()
    group_by: str | None = None

    @property
    def is_aggregate(self) -> bool:
        """True when any SELECT item is an aggregate function."""
        return any(agg is not None for agg in self.aggregates)


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {token.text or 'end of input'!r}",
                token.position,
            )
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> Query:
        self.expect("keyword", "SELECT")
        star = False
        items: list[tuple[Expression, str]] = []
        aggregates: list[str | None] = []
        if self.accept("op", "*"):
            star = True
        else:
            items.append(self._select_item(len(items), aggregates))
            while self.accept("op", ","):
                items.append(self._select_item(len(items), aggregates))
        self.expect("keyword", "FROM")
        source = self.expect("ident").text
        where = None
        if self.accept("keyword", "WHERE"):
            where = self.parse_condition()
        group_by = None
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_by = self.expect("ident").text
        order_by = None
        descending = False
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_by = self.parse_expr()
            if self.accept("keyword", "DESC"):
                descending = True
            else:
                self.accept("keyword", "ASC")
        limit = None
        if self.accept("keyword", "LIMIT"):
            token = self.expect("number")
            limit = int(float(token.text))
            if limit < 0 or limit != float(token.text):
                raise ParseError(
                    f"LIMIT must be a non-negative integer, got {token.text}",
                    token.position,
                )
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {token.text!r}", token.position
            )
        return Query(
            tuple(items), star, source, where,
            order_by=order_by, descending=descending, limit=limit,
            aggregates=tuple(aggregates), group_by=group_by,
        )

    def _select_item(
        self, index: int, aggregates: "list[str | None]"
    ) -> tuple[Expression, str]:
        token = self.peek()
        aggregate: str | None = None
        if token.kind == "keyword" and token.text in ("AVG", "SUM", "COUNT"):
            self.advance()
            aggregate = token.text.lower()
            self.expect("op", "(")
            if aggregate == "count" and self.accept("op", "*"):
                expr: Expression = Literal(1.0)
            else:
                expr = self.parse_expr()
            self.expect("op", ")")
        else:
            expr = self.parse_expr()
        aggregates.append(aggregate)
        if self.accept("keyword", "AS"):
            alias = self.expect("ident").text
        elif aggregate is not None:
            alias = aggregate if not isinstance(expr, Column) else (
                f"{aggregate}_{expr.name}"
            )
        elif isinstance(expr, Column):
            alias = expr.name
        else:
            alias = f"expr_{index}"
        return expr, alias

    def parse_condition(self) -> Condition:
        parts = [self._and_expr()]
        while self.accept("keyword", "OR"):
            parts.append(self._and_expr())
        if len(parts) == 1:
            return parts[0]
        return OrCondition(tuple(parts))

    def _and_expr(self) -> Condition:
        parts = [self._not_expr()]
        while self.accept("keyword", "AND"):
            parts.append(self._not_expr())
        if len(parts) == 1:
            return parts[0]
        return AndCondition(tuple(parts))

    def _not_expr(self) -> Condition:
        if self.accept("keyword", "NOT"):
            return NotCondition(self._not_expr())
        return self._atom()

    def _atom(self) -> Condition:
        token = self.peek()
        if token.kind == "keyword" and token.text in (
            "MTEST", "MDTEST", "PTEST", "VTEST"
        ):
            return self._sig_call()
        if token.kind == "op" and token.text == "(":
            # Could be a parenthesised condition or a parenthesised
            # expression starting a comparison; try condition first.
            saved = self.index
            try:
                self.advance()
                inner = self.parse_condition()
                self.expect("op", ")")
                return inner
            except ParseError:
                self.index = saved
        return self._comparison_condition()

    def _comparison_condition(self) -> Condition:
        comparison = self._comparison()
        threshold = None
        if self.accept("keyword", "PROB"):
            threshold = self._probability_literal()
        return CompareCondition(comparison, threshold)

    def _comparison(self) -> Comparison:
        left = self.parse_expr()
        token = self.peek()
        if token.kind != "op" or token.text not in _CMP_OPS:
            raise ParseError(
                f"expected comparison operator, found {token.text!r}",
                token.position,
            )
        self.advance()
        right = self.parse_expr()
        return Comparison(token.text, left, right)

    def _probability_literal(self) -> float:
        number = self.expect("number")
        value = float(number.text)
        if self.accept("op", "/"):
            denominator = float(self.expect("number").text)
            if denominator == 0:
                raise ParseError("zero denominator in probability", number.position)
            value /= denominator
        if not 0.0 <= value <= 1.0:
            raise ParseError(
                f"probability must be in [0,1], got {value}", number.position
            )
        return value

    def _signed_number(self) -> float:
        negative = self.accept("op", "-") is not None
        token = self.expect("number")
        value = float(token.text)
        return -value if negative else value

    def _test_op(self) -> str:
        token = self.expect("string")
        if token.text not in ("<", ">", "<>"):
            raise ParseError(
                f"test operator must be '<', '>' or '<>', got {token.text!r}",
                token.position,
            )
        return token.text

    def _sig_call(self) -> Condition:
        kind_token = self.advance()
        kind = kind_token.text.lower()
        self.expect("op", "(")
        if kind in ("mtest", "vtest"):
            expr = self.parse_expr()
            self.expect("op", ",")
            op = self._test_op()
            self.expect("op", ",")
            constant = self._signed_number()
            self.expect("op", ",")
            alpha1 = self._signed_number()
            alpha2 = self._optional_alpha()
            self.expect("op", ")")
            return SignificanceCondition(
                kind, expr_x=expr, op=op, constant=constant,
                alpha1=alpha1, alpha2=alpha2,
            )
        if kind == "mdtest":
            expr_x = self.parse_expr()
            self.expect("op", ",")
            expr_y = self.parse_expr()
            self.expect("op", ",")
            op = self._test_op()
            self.expect("op", ",")
            constant = self._signed_number()
            self.expect("op", ",")
            alpha1 = self._signed_number()
            alpha2 = self._optional_alpha()
            self.expect("op", ")")
            return SignificanceCondition(
                "mdtest", expr_x=expr_x, expr_y=expr_y, op=op,
                constant=constant, alpha1=alpha1, alpha2=alpha2,
            )
        # ptest
        comparison = self._comparison()
        self.expect("op", ",")
        tau = self._probability_literal()
        self.expect("op", ",")
        alpha1 = self._signed_number()
        alpha2 = self._optional_alpha()
        self.expect("op", ")")
        return SignificanceCondition(
            "ptest", comparison=comparison, tau=tau,
            alpha1=alpha1, alpha2=alpha2,
        )

    def _optional_alpha(self) -> float | None:
        if self.accept("op", ","):
            return self._signed_number()
        return None

    # -- arithmetic expressions -------------------------------------------------

    def parse_expr(self) -> Expression:
        left = self._term()
        while True:
            if self.accept("op", "+"):
                left = BinaryOp("+", left, self._term())
            elif self.accept("op", "-"):
                left = BinaryOp("-", left, self._term())
            else:
                return left

    def _term(self) -> Expression:
        left = self._unary()
        while True:
            if self.accept("op", "*"):
                left = BinaryOp("*", left, self._unary())
            elif self.accept("op", "/"):
                left = BinaryOp("/", left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        if self.accept("op", "-"):
            return UnaryOp("neg", self._unary())
        return self._postfix()

    def _postfix(self) -> Expression:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return Literal(float(token.text))
        if token.kind == "keyword" and token.text in (
            "SQRT", "ABS", "SQUARE", "SQRTABS"
        ):
            self.advance()
            self.expect("op", "(")
            inner = self.parse_expr()
            self.expect("op", ")")
            # SQRT in this dialect is the paper's SQRT(ABS(.)) operator.
            op = {
                "SQRT": "sqrtabs",
                "SQRTABS": "sqrtabs",
                "ABS": "abs",
                "SQUARE": "square",
            }[token.text]
            return UnaryOp(op, inner)
        if token.kind == "ident":
            self.advance()
            return Column(token.text)
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        raise ParseError(
            f"expected expression, found {token.text or 'end of input'!r}",
            token.position,
        )


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`Query` AST."""
    return _Parser(_tokenize(text)).parse_query()


def parse_expression(text: str) -> Expression:
    """Parse a standalone arithmetic expression (used by workload tools)."""
    parser = _Parser(_tokenize(text))
    expr = parser.parse_expr()
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(
            f"unexpected trailing input {token.text!r}", token.position
        )
    return expr
