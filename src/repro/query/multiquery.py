"""Shared-subplan multi-query execution.

``StreamDatabase`` dispatches every insert to every standing query — at
N standing queries over the same stream that is N full pipelines per
tuple, even though queries registered by "millions of users" (ROADMAP
item 2) overwhelmingly share the expensive part of the work.  Diao et
al. (*Capturing Data Uncertainty in High-Volume Stream Processing*)
make the architectural point this module implements: the uncertainty
machinery — projection of distribution-valued fields and Theorem-1
accuracy attachment — should run **once** per tuple, with only cheap
per-query predicates fanned out.

The engine groups registered plans by :func:`repro.query.planner.
prefix_fingerprint`.  Two plans with equal fingerprints compute exactly
the same *prefix* (SELECT projection + accuracy) for every tuple, so
the prefix runs once per tuple per group and each member only runs its
*residual* (WHERE conjuncts, membership-probability interval, ORDER BY
sort key).

Determinism contract
--------------------

Results are **byte-identical** to the naive per-query loop: same
matches, same per-result ``pickle`` bytes, same callback order per
tuple.  The mechanism is conservative:

* A prefix result is shared only when computing it consumes no
  randomness.  Rather than guessing statically, the engine evaluates
  the prefix under a :class:`_GuardRng` — a generator stand-in whose
  every method raises :class:`PrefixNeedsRng`.  Any Monte-Carlo draw
  (bootstrap accuracy, MC expression arithmetic) trips the guard
  *before any state mutates*, and the member falls back to its private
  prefix on its own generator — exactly the naive consumption sequence.
* The vectorized batch path never *emits* a vectorized probability:
  NumPy screens candidate rows in z-space with a conservative band, and
  every surviving candidate is confirmed by the member's own scalar
  ``residual_outcome`` — the byte-identity oracle by construction.

Batch-path caveats (documented divergences on *error* paths only):
executor errors surface before any of that batch's callbacks, and a
callback that raises stops emission for later rows after their
executors already ran (per-tuple RNG state may advance past the failing
row).  Reentrant callbacks that insert into the same stream during a
batched dispatch observe the batch mid-flight.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np
from scipy import special

# Private intra-package imports: _UNIQUE_DF_FAST_PATH guards the
# memoized-table interval path (bitwise identical to the scalar
# kernels), _tail_probability is the scalar cdf oracle the executor
# itself uses.
from repro.core.analytic import (
    _UNIQUE_DF_FAST_PATH,
    accuracy_from_moments,
    distribution_accuracy,
)
from repro.obs.metrics import MetricsRegistry
from repro.query.executor import QueryExecutor, ResultTuple
from repro.query.expressions import Column, Literal
from repro.query.parser import CompareCondition
from repro.query.planner import prefix_fingerprint
from repro.streams.columnar import (
    ColumnarBatch,
    FloatColumn,
    GaussianDfColumn,
    IntColumn,
    as_columnar,
)
from repro.streams.tuples import UncertainTuple

__all__ = [
    "MultiQueryEngine",
    "PrefixNeedsRng",
    "vectorizable_conjuncts",
]


class PrefixNeedsRng(Exception):
    """Raised by :class:`_GuardRng` when a shared prefix tries to draw."""


class _GuardRng:
    """A Generator stand-in that refuses to generate.

    Passed as the ``rng`` of a *shared* prefix evaluation: a prefix
    whose value depends on randomness cannot be shared across queries
    (each query's naive execution would consume its own generator), so
    the first draw attempt aborts the shared attempt.  The guard is
    stateless and the abort happens before any executor state mutates,
    which is what makes the fallback byte-identical to the naive path.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        raise PrefixNeedsRng(name)


_GUARD = _GuardRng()

_FLIP = {">": "<", ">=": "<=", "<": ">", "<=": ">="}
_VEC_OPS = frozenset(_FLIP)

#: Conservative z-space slack of the vectorized candidate screen.  The
#: screen must never reject a row the scalar oracle would accept; the
#: scalar path's ``erfc``/``erfcinv`` round-off lives many orders of
#: magnitude inside this band wherever the tail derivative is
#: non-negligible.
_Z_SLACK = 1e-3

#: Value-space slack on the PROB threshold before inverting it.  Where
#: the Gaussian tail is so flat that a z-band is meaningless (``q``
#: saturating near 0 or 1), the scalar ``0.5*erfc(z)`` can round a
#: probability across the threshold by at most a few ulp; widening tau
#: by 1e-12 before ``erfcinv`` dominates that error by three orders of
#: magnitude.
_TAU_SLACK = 1e-12

#: ``math.erfc`` underflows to exactly 0.0 somewhere near z = 26.5; by
#: z = 38 the true value (~5e-630) is unrepresentably far below the
#: smallest subnormal, so any libm returns exactly 0.0 and rejecting
#: ``z >= 38`` can never disagree with the scalar ``q > 0`` test.
_UNDERFLOW_Z = 38.0


@dataclasses.dataclass(frozen=True)
class VecConjunct:
    """One vectorizable WHERE conjunct, normalized to column-vs-constant.

    ``op`` is the effective inequality applied to the *column's*
    distribution (flipped when the literal was on the left), matching
    ``predicate_probability``'s fast path.  ``threshold`` is the PROB
    tau, or ``None`` for bare possible-world semantics.
    """

    column: str
    op: str
    constant: float
    threshold: float | None

    @property
    def gt_like(self) -> bool:
        return self.op in (">", ">=")


def vectorizable_conjuncts(compiled) -> "tuple[VecConjunct, ...] | None":
    """The residual as column-vs-literal inequalities, or None.

    A residual is screenable by the vectorized batch path when every
    conjunct is a plain comparison between one column and one literal
    under an inequality operator — the shape of the paper's
    probability-threshold workloads.  Significance predicates, OR/NOT
    trees, equality comparisons, and expression arithmetic all fall
    back to the scalar path (still sharing the prefix).
    """
    if compiled.is_aggregate or compiled.order_by is not None:
        return None
    specs: list[VecConjunct] = []
    for conj in compiled.conjuncts:
        if not isinstance(conj, CompareCondition):
            return None
        comp = conj.comparison
        if comp.op not in _VEC_OPS:
            return None
        left, right = comp.left, comp.right
        if isinstance(left, Column) and isinstance(right, Literal):
            specs.append(
                VecConjunct(
                    left.name, comp.op, float(right.value), conj.threshold
                )
            )
        elif isinstance(left, Literal) and isinstance(right, Column):
            specs.append(
                VecConjunct(
                    right.name,
                    _FLIP[comp.op],
                    float(left.value),
                    conj.threshold,
                )
            )
        else:
            return None
    return tuple(specs)


def _candidate_z_bound(spec: VecConjunct) -> float:
    """Largest ``|z|``-side bound at which a row may still qualify.

    For a gt-like conjunct a row is a candidate iff ``z <= bound``; for
    an lt-like conjunct iff ``z >= -bound`` (z measured toward the
    rejecting tail either way).  ``+inf`` means every row is a
    candidate (the scalar oracle decides), ``-inf`` means none can
    qualify (``q <= 1`` always, so a tau above 1 rejects everything).
    """
    tau = spec.threshold
    if tau is None:
        return _UNDERFLOW_Z
    widened = tau - _TAU_SLACK
    if widened <= 0.0:
        return np.inf
    arg = 2.0 * widened
    if arg >= 2.0:
        return -np.inf
    t = float(special.erfcinv(arg))
    if not np.isfinite(t):
        return np.inf if t > 0 else -np.inf
    return t + _Z_SLACK


_SUPPORTED_COLUMNS = (FloatColumn, IntColumn, GaussianDfColumn)


def _screen_arrays(column) -> "tuple[np.ndarray, np.ndarray] | None":
    """Per-row ``(mu, sqrt(2*sigma2))`` for the candidate screen.

    Deterministic columns are zero-variance: the screen's
    ``c - mu <= bound * s`` comparison then degenerates to the exact
    loose step ``c <= mu`` (gt-like) / ``c >= mu`` (lt-like), which is
    a superset of the scalar step semantics on either operand order —
    equality rows stay candidates and the scalar oracle settles them.
    """
    if isinstance(column, GaussianDfColumn):
        return column.mu, np.sqrt(2.0 * column.sigma2)
    if isinstance(column, (FloatColumn, IntColumn)):
        data = np.asarray(column.data, dtype=np.float64)
        return data, np.zeros(len(data), dtype=np.float64)
    return None


class _Entry:
    """One registered standing query inside the engine."""

    __slots__ = (
        "name",
        "source",
        "executor",
        "handle",
        "order",
        "fingerprint",
        "vec_conjuncts",
        "group",
        "results_counter",
    )

    def __init__(
        self,
        name: str,
        source: str,
        executor: QueryExecutor,
        handle: object,
        order: int,
    ) -> None:
        self.name = name
        self.source = source
        self.executor = executor
        self.handle = handle
        self.order = order
        self.fingerprint = prefix_fingerprint(
            executor.query, executor.config
        )
        self.vec_conjuncts = vectorizable_conjuncts(executor.query)
        self.group: "_PlanGroup | None" = None
        self.results_counter = None  # set by MultiQueryEngine.add


def _group_id(fingerprint: tuple) -> str:
    """Short stable label for a plan group's fingerprint.

    A salted ``hash()`` or ``id()`` would vary across processes; the
    blake2b digest of the fingerprint's repr is stable for a given
    query set, so ``multiquery.group.{gid}.results`` series line up
    across runs and workers.
    """
    digest = hashlib.blake2b(
        repr(fingerprint).encode("utf-8"), digest_size=4
    )
    return digest.hexdigest()


class _PlanGroup:
    """All standing queries sharing one prefix fingerprint."""

    __slots__ = (
        "fingerprint",
        "entries",
        "rng_free",
        "columnar_ok",
        "star",
        "select_cols",
        "gid",
        "results_counter",
    )

    def __init__(self, fingerprint: tuple, entry: _Entry) -> None:
        self.fingerprint = fingerprint
        self.entries: list[_Entry] = []
        self.gid = _group_id(fingerprint)
        self.results_counter = None  # set by MultiQueryEngine.add
        #: None = unknown, True = proven RNG-free on some tuple, False
        #: = tripped the guard once; stop attempting shared prefixes.
        self.rng_free: "bool | None" = None
        compiled = entry.executor.query
        config = entry.executor.config
        # Static gate of the *columnar* prefix: pure projections plus
        # analytic (or no) accuracy never touch an RNG, and their
        # accuracy math has an exact vectorized twin.
        self.star = compiled.star
        self.columnar_ok = config.accuracy_method in (
            "analytic",
            "none",
        ) and (
            compiled.star
            or all(
                isinstance(expr, Column)
                for expr, _alias in compiled.select_items
            )
        )
        self.select_cols: "tuple[tuple[str, str], ...] | None" = (
            None
            if compiled.star
            else tuple(
                (alias, expr.name)
                for expr, alias in compiled.select_items
            )
        )


class MultiQueryEngine:
    """Groups standing queries by prefix fingerprint and executes them.

    The engine owns no streams and fires no callbacks: it yields
    ``(handle, ResultTuple)`` pairs in registration order and leaves
    buffering, match counting and fan-out to :class:`repro.db.
    StreamDatabase`.
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._entries: dict[str, _Entry] = {}
        self._groups: dict[tuple, _PlanGroup] = {}
        self._next_order = 0
        self._groups_gauge = metrics.gauge(
            "multiquery.groups",
            "shared-plan groups with at least two member queries",
        )
        self._shared_hits = metrics.counter(
            "multiquery.shared_hits",
            "query results served from a shared prefix computation",
        )
        self._fallbacks = metrics.counter(
            "multiquery.prefix_fallbacks",
            "shared-prefix attempts abandoned because the prefix "
            "needed randomness",
        )
        self.telemetry = None

    def attach_telemetry(self, recorder) -> "object":
        """Cut telemetry frames as tuples are dispatched to queries.

        ``recorder`` must wrap this engine's own metrics registry —
        frames are deltas of registry snapshots, so a recorder over a
        different registry would record empty frames while the
        ``multiquery.*`` counters advance unobserved.
        """
        if recorder.registry is not self.metrics:
            from repro.errors import ObservabilityError

            raise ObservabilityError(
                "telemetry recorder must wrap the engine's metrics "
                "registry (build it with TelemetryRecorder(config, "
                "registry=engine.metrics))"
            )
        self.telemetry = recorder
        return recorder

    def detach_telemetry(self) -> None:
        self.telemetry = None

    # -- registry ----------------------------------------------------------

    def add(
        self,
        name: str,
        source: str,
        executor: QueryExecutor,
        handle: object,
    ) -> None:
        entry = _Entry(name, source, executor, handle, self._next_order)
        self._next_order += 1
        entry.results_counter = self.metrics.counter(
            f"multiquery.query.{name}.results",
            "results emitted for this standing query",
        )
        if entry.fingerprint is not None:
            group = self._groups.get(entry.fingerprint)
            if group is None:
                group = _PlanGroup(entry.fingerprint, entry)
                group.results_counter = self.metrics.counter(
                    f"multiquery.group.{group.gid}.results",
                    "results emitted by members of this shared-plan "
                    "group",
                )
                self._groups[entry.fingerprint] = group
            group.entries.append(entry)
            entry.group = group
        self._entries[name] = entry
        self._update_gauge()

    def remove(self, name: str) -> None:
        entry = self._entries.pop(name, None)
        if entry is None:
            return
        group = entry.group
        if group is not None:
            group.entries.remove(entry)
            if not group.entries:
                del self._groups[group.fingerprint]
        self._update_gauge()

    def remove_source(self, source: str) -> None:
        for name in [
            n for n, e in self._entries.items() if e.source == source
        ]:
            self.remove(name)

    def shared_group_count(self) -> int:
        """Number of groups currently holding two or more queries."""
        return sum(
            1 for g in self._groups.values() if len(g.entries) >= 2
        )

    def group_size(self, name: str) -> int:
        """How many queries share the named query's prefix (>= 1)."""
        entry = self._entries[name]
        return 1 if entry.group is None else len(entry.group.entries)

    def _update_gauge(self) -> None:
        self._groups_gauge.set(float(self.shared_group_count()))

    def _entries_for(self, source: str) -> list[_Entry]:
        return [
            e for e in self._entries.values() if e.source == source
        ]

    # -- shared prefix products --------------------------------------------

    def _group_product(
        self,
        group: _PlanGroup,
        key: tuple,
        tup: UncertainTuple,
        entry: _Entry,
        cache: dict,
    ) -> tuple[dict, dict]:
        """The (attributes, accuracy) prefix product for one tuple.

        Served from ``cache`` when another member already computed it
        (a shared hit); otherwise attempted under the RNG guard.  A
        guard trip marks the whole group non-shareable and the member
        computes its private prefix on its own generator — the exact
        draw sequence naive execution would have made, since the
        guarded attempt consumed nothing.
        """
        product = cache.get(key)
        if product is not None:
            self._shared_hits.inc()
            return product
        executor = entry.executor
        if group.rng_free is not False:
            try:
                product = executor.evaluate_prefix(tup, rng=_GUARD)
            except PrefixNeedsRng:
                group.rng_free = False
                self._fallbacks.inc()
            else:
                group.rng_free = True
                cache[key] = product
                return product
        attributes, accuracy = executor.evaluate_prefix(tup)
        return attributes, accuracy

    # -- single-tuple dispatch (StreamDatabase.insert) ---------------------

    def iter_results(self, source: str, tup: UncertainTuple):
        """Yield ``(handle, result)`` per matching query, in order.

        Lazy on purpose: the caller interleaves callbacks between
        members exactly like the naive dispatch loop.  Aggregate
        standing queries raise mid-iteration, as ``execute_one`` always
        has.
        """
        cache: dict = {}
        for entry in self._entries_for(source):
            executor = entry.executor
            group = entry.group
            if group is None or len(group.entries) < 2:
                result = executor.execute_one(tup)
            else:
                if executor.query.is_aggregate:
                    executor.execute_one(tup)  # raises QueryError
                outcome = executor.residual_outcome(tup)
                if outcome is None:
                    continue
                attributes, accuracy = self._group_product(
                    group, (id(group),), tup, entry, cache
                )
                result = executor.finalize_result(
                    tup, outcome, dict(attributes), dict(accuracy)
                )
            if result is not None:
                self._record_result(entry)
                yield entry.handle, result
        if self.telemetry is not None:
            self.telemetry.advance(1)

    def _record_result(self, entry: _Entry) -> None:
        entry.results_counter.inc()
        group = entry.group
        if group is not None:
            group.results_counter.inc()

    # -- batched dispatch (StreamDatabase.insert_many) ---------------------

    def execute_batch(
        self, source: str, tuples: list[UncertainTuple]
    ) -> list[list[tuple[object, ResultTuple]]]:
        """All standing-query results for a batch, grouped per row.

        Returns one list per input row of ``(handle, result)`` pairs in
        registration order — the caller emits row by row, preserving
        the naive per-tuple callback order.
        """
        members = self._entries_for(source)
        rows: list[list[tuple[int, object, ResultTuple]]] = [
            [] for _ in tuples
        ]
        if not members:
            return [[] for _ in tuples]
        batch = as_columnar(tuples)
        cache: dict = {}
        columnar_gate: dict[int, bool] = {}

        vec_entries = [
            e
            for e in members
            if batch is not None
            and e.vec_conjuncts is not None
            and e.group is not None
            and self._columnar_eligible(e.group, batch, columnar_gate)
            and all(
                isinstance(
                    batch.column(c.column), _SUPPORTED_COLUMNS
                )
                for c in e.vec_conjuncts
            )
        ]
        vec_ids = {id(e) for e in vec_entries}
        if vec_entries:
            self._run_vectorized(vec_entries, tuples, batch, cache, rows)

        for entry in members:
            if id(entry) in vec_ids:
                continue
            self._run_scalar_member(
                entry, tuples, batch, cache, columnar_gate, rows
            )

        out: list[list[tuple[object, ResultTuple]]] = []
        by_order = {e.order: e for e in members}
        for row in rows:
            row.sort(key=lambda item: item[0])
            for order, _handle, _result in row:
                self._record_result(by_order[order])
            out.append([(handle, result) for _o, handle, result in row])
        if self.telemetry is not None:
            self.telemetry.advance(len(tuples))
        return out

    def _columnar_eligible(
        self,
        group: _PlanGroup,
        batch: ColumnarBatch,
        gate: dict[int, bool],
    ) -> bool:
        """Whether the group's prefix is computable from batch columns."""
        ok = gate.get(id(group))
        if ok is not None:
            return ok
        if not group.columnar_ok:
            ok = False
        else:
            if group.star:
                needed = batch.names
            else:
                needed = tuple(
                    col for _alias, col in group.select_cols
                )
            ok = all(
                isinstance(batch.column(n), _SUPPORTED_COLUMNS)
                for n in needed
            )
        gate[id(group)] = ok
        return ok

    # -- vectorized members ------------------------------------------------

    def _run_vectorized(
        self,
        entries: list[_Entry],
        tuples: list[UncertainTuple],
        batch: ColumnarBatch,
        cache: dict,
        rows: list,
    ) -> None:
        candidates = self._screen_candidates(entries, batch)
        matched: dict[int, list] = {}
        group_rows: dict[int, set] = {}
        groups: dict[int, _PlanGroup] = {}
        for entry, cand in zip(entries, candidates):
            hits = []
            for b in cand:
                # The scalar oracle: byte-identity by construction.
                # These conjuncts never sample, so the member's own RNG
                # is untouched — exactly as in naive execution.
                outcome = entry.executor.residual_outcome(tuples[b])
                if outcome is not None:
                    hits.append((b, outcome))
            if not hits:
                continue
            matched[id(entry)] = hits
            gid = id(entry.group)
            groups[gid] = entry.group
            group_rows.setdefault(gid, set()).update(
                b for b, _ in hits
            )

        for gid, needed in group_rows.items():
            group = groups[gid]
            row_ids = np.fromiter(
                sorted(needed), dtype=np.intp, count=len(needed)
            )
            self._build_columnar_products(
                group, batch, tuples, row_ids, cache
            )

        for entry in entries:
            hits = matched.get(id(entry))
            if not hits:
                continue
            gid = id(entry.group)
            for b, outcome in hits:
                attributes, accuracy = cache[(gid, b)]
                result = entry.executor.finalize_result(
                    tuples[b], outcome, dict(attributes), dict(accuracy)
                )
                rows[b].append((entry.order, entry.handle, result))
            # Every result beyond one per shared product rode a shared
            # prefix computation.
        for gid, needed in group_rows.items():
            served = sum(
                len(matched.get(id(e), ()))
                for e in groups[gid].entries
                if id(e) in matched
            )
            self._shared_hits.inc(max(0, served - len(needed)))

    def _screen_candidates(
        self, entries: list[_Entry], batch: ColumnarBatch
    ) -> list[np.ndarray]:
        """Candidate row indices per entry (superset of true matches).

        Single-conjunct members are stacked per ``(column, side)``
        bucket into one ``(Q, B)`` comparison; multi-conjunct members
        AND their per-conjunct masks.  Soundness (no false rejects) is
        the only requirement — every candidate is re-run through the
        scalar oracle.
        """
        n_rows = len(batch)
        out: list[np.ndarray | None] = [None] * len(entries)
        buckets: dict[tuple[str, bool], list[tuple[int, VecConjunct]]] = {}
        multi: list[int] = []
        for i, entry in enumerate(entries):
            specs = entry.vec_conjuncts
            if len(specs) == 1:
                spec = specs[0]
                buckets.setdefault(
                    (spec.column, spec.gt_like), []
                ).append((i, spec))
            elif not specs:
                out[i] = np.arange(n_rows, dtype=np.intp)
            else:
                multi.append(i)

        for (column_name, gt_like), items in buckets.items():
            arrays = _screen_arrays(batch.column(column_name))
            mu, s = arrays
            consts = np.array(
                [spec.constant for _i, spec in items], dtype=np.float64
            )
            bounds = np.array(
                [_candidate_z_bound(spec) for _i, spec in items],
                dtype=np.float64,
            )
            q_total = len(items)
            chunk = max(1, 4_000_000 // max(n_rows, 1))
            for start in range(0, q_total, chunk):
                stop = min(start + chunk, q_total)
                with np.errstate(invalid="ignore"):
                    lhs = consts[start:stop, None] - mu[None, :]
                    scaled = bounds[start:stop, None] * s[None, :]
                    if gt_like:
                        cand = lhs <= scaled
                    else:
                        cand = lhs >= -scaled
                # Infinite bounds make 0*inf NaN on zero-variance rows;
                # the member's verdict there is uniform anyway.
                infinite = ~np.isfinite(bounds[start:stop])
                if infinite.any():
                    cand[infinite, :] = (
                        bounds[start:stop][infinite] > 0
                    )[:, None]
                mi, bi = np.nonzero(cand)
                counts = np.bincount(mi, minlength=stop - start)
                splits = np.split(bi, np.cumsum(counts)[:-1])
                for offset, rows_i in enumerate(splits):
                    out[items[start + offset][0]] = rows_i
            for i, _spec in items:
                if out[i] is None:
                    out[i] = np.empty(0, dtype=np.intp)

        for i in multi:
            mask = np.ones(n_rows, dtype=bool)
            for spec in entries[i].vec_conjuncts:
                mu, s = _screen_arrays(batch.column(spec.column))
                bound = _candidate_z_bound(spec)
                if not np.isfinite(bound):
                    if bound < 0:
                        mask[:] = False
                    continue
                lhs = spec.constant - mu
                if spec.gt_like:
                    mask &= lhs <= bound * s
                else:
                    mask &= lhs >= -bound * s
            out[i] = np.nonzero(mask)[0]
        return out  # type: ignore[return-value]

    def _build_columnar_products(
        self,
        group: _PlanGroup,
        batch: ColumnarBatch,
        tuples: list[UncertainTuple],
        row_ids: np.ndarray,
        cache: dict,
    ) -> None:
        """Shared (attributes, accuracy) products for the needed rows.

        Attribute values come from the *original* tuples, so within a
        result the object graph (and hence its pickle bytes) aliases
        exactly as the naive path's would.  Accuracy intervals are
        computed by the vectorized Theorem-1 kernels, which are bitwise
        identical to the scalar path while the memoized critical-value
        table applies; batches with more than 16 distinct sample sizes
        fall back to the scalar kernel per row.
        """
        gid = id(group)
        confidence = group.entries[0].executor.config.confidence
        method = group.entries[0].executor.config.accuracy_method
        if group.star:
            items = [(name, name) for name in batch.names]
        else:
            items = list(group.select_cols)
        accuracy_rows: dict[int, dict] = {int(b): {} for b in row_ids}
        if method != "none":
            for alias, column_name in items:
                column = batch.gaussian_column(column_name)
                if column is None:
                    continue  # deterministic column: no accuracy
                sizes = column.sizes[row_ids]
                eligible = sizes >= 2
                if not eligible.any():
                    continue
                rows_el = row_ids[eligible]
                ns = sizes[eligible]
                if np.unique(ns).size <= _UNIQUE_DF_FAST_PATH:
                    infos = accuracy_from_moments(
                        column.mu[rows_el],
                        column.sigma2[rows_el],
                        ns,
                        confidence,
                    )
                else:
                    infos = tuple(
                        distribution_accuracy(
                            tuples[int(b)]
                            .dfsized(column_name)
                            .distribution,
                            int(n),
                            confidence,
                        )
                        for b, n in zip(rows_el, ns)
                    )
                for b, info in zip(rows_el.tolist(), infos):
                    accuracy_rows[b][alias] = info
        for b in row_ids.tolist():
            tup = tuples[b]
            if group.star:
                attributes = {
                    name: tup.dfsized(name) for name in tup.attributes
                }
            else:
                attributes = {
                    alias: tup.dfsized(col) for alias, col in items
                }
            cache[(gid, b)] = (attributes, accuracy_rows[b])

    # -- scalar members ----------------------------------------------------

    def _run_scalar_member(
        self,
        entry: _Entry,
        tuples: list[UncertainTuple],
        batch: "ColumnarBatch | None",
        cache: dict,
        columnar_gate: dict[int, bool],
        rows: list,
    ) -> None:
        """Member-major scalar execution with per-row prefix sharing.

        Iterating rows inside one member keeps that member's generator
        consumption in row order — the same per-member sequence as the
        naive row-major loop, because generators are private to each
        query.
        """
        executor = entry.executor
        group = entry.group
        share = group is not None and len(group.entries) >= 2
        if executor.query.is_aggregate and tuples:
            executor.execute_one(tuples[0])  # raises QueryError
        use_columnar_cache = (
            group is not None
            and batch is not None
            and self._columnar_eligible(group, batch, columnar_gate)
        )
        for b, tup in enumerate(tuples):
            if not share and not use_columnar_cache:
                result = executor.execute_one(tup)
                if result is not None:
                    rows[b].append((entry.order, entry.handle, result))
                continue
            outcome = executor.residual_outcome(tup)
            if outcome is None:
                continue
            attributes, accuracy = self._group_product(
                group, (id(group), b), tup, entry, cache
            )
            result = executor.finalize_result(
                tup, outcome, dict(attributes), dict(accuracy)
            )
            rows[b].append((entry.order, entry.handle, result))
