"""Expression AST and evaluation over uncertain tuples.

Expressions evaluate to :class:`~repro.core.dfsample.DfSized` values:
a distribution plus the de facto sample size behind it.  Evaluation
implements Lemma 3 structurally — every node's sample size is the minimum
over its children's — so Theorem 1 can attach accuracy to any result.

Arithmetic on two Gaussians under ``+``/``-`` (and Gaussian-constant
affine forms) stays closed-form; anything else falls back to Monte Carlo
(:mod:`repro.distributions.arithmetic`), yielding an empirical result
distribution whose value sequence doubles as bootstrap input.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.core.dfsample import DfSized
from repro.distributions.arithmetic import (
    _DIV_EPSILON as _DET_DIV_EPSILON,
    apply_unary,
    combine,
)
from repro.distributions.base import Deterministic, Distribution
from repro.distributions.convolution import convolve_histograms
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import DistributionError, QueryError
from repro.streams.tuples import UncertainTuple

__all__ = [
    "EvalContext",
    "Expression",
    "Column",
    "Literal",
    "BinaryOp",
    "UnaryOp",
    "Comparison",
    "predicate_probability",
]

_COMPARISON_OPS = ("<", "<=", ">", ">=", "=", "<>")


@dataclasses.dataclass
class EvalContext:
    """Evaluation environment: the current tuple, RNG, and MC budget."""

    tup: UncertainTuple
    rng: np.random.Generator
    mc_samples: int = 1000

    def __post_init__(self) -> None:
        if self.mc_samples < 2:
            raise QueryError(
                f"mc_samples must be >= 2, got {self.mc_samples}"
            )


class Expression(abc.ABC):
    """A node of the expression AST."""

    @abc.abstractmethod
    def evaluate(self, ctx: EvalContext) -> DfSized:
        """Value of this expression for the context tuple."""

    @abc.abstractmethod
    def columns(self) -> set[str]:
        """Names of all columns referenced beneath this node."""


@dataclasses.dataclass(frozen=True)
class Column(Expression):
    """A reference to a tuple attribute by name."""

    name: str

    def evaluate(self, ctx: EvalContext) -> DfSized:
        return ctx.tup.dfsized(self.name)

    def columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class Literal(Expression):
    """A numeric constant — an exact value with no sampling error."""

    value: float

    def evaluate(self, ctx: EvalContext) -> DfSized:
        return DfSized(Deterministic(self.value), None)

    def columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return repr(self.value)


def _deterministic_divide(a: float, b: float) -> float | None:
    """Exact division with the same near-zero-denominator nudge as
    :func:`repro.distributions.arithmetic.safe_divide`, so the
    deterministic fast path cannot produce magnitudes the Monte-Carlo
    path never would (a denormal divisor once drove a downstream
    SQUARE to infinity)."""
    if b == 0.0:
        return None
    if abs(b) < _DET_DIV_EPSILON:
        b = np.copysign(_DET_DIV_EPSILON, b)
    return a / b


def _closed_form_binary(
    op: str, left: Distribution, right: Distribution
) -> Distribution | None:
    """Exact result for the Gaussian/histogram/constant cases, else None."""
    lg = isinstance(left, GaussianDistribution)
    rg = isinstance(right, GaussianDistribution)
    ld = isinstance(left, Deterministic)
    rd = isinstance(right, Deterministic)
    if (
        op in ("+", "-")
        and isinstance(left, HistogramDistribution)
        and isinstance(right, HistogramDistribution)
    ):
        # Exact piecewise-uniform convolution (no Monte Carlo noise).
        return convolve_histograms(left, right, subtract=(op == "-"))
    if op == "+":
        if lg and rg:
            return left.plus(right)
        if lg and rd:
            return left.shifted(right.value)
        if ld and rg:
            return right.shifted(left.value)
    elif op == "-":
        if lg and rg:
            return left.minus(right)
        if lg and rd:
            return left.shifted(-right.value)
        if ld and rg:
            return right.scaled(-1.0).shifted(left.value)
    elif op == "*":
        if lg and rd:
            return left.scaled(right.value)
        if ld and rg:
            return right.scaled(left.value)
    elif op == "/":
        if lg and rd and right.value != 0.0:
            return left.scaled(1.0 / right.value)
    if ld and rd:
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": _deterministic_divide,
        }
        result = ops[op](left.value, right.value)
        if result is not None and np.isfinite(result):
            return Deterministic(result)
    return None


@dataclasses.dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic node over the paper's binary operators: + - * /."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise QueryError(f"unknown binary operator {self.op!r}")

    def evaluate(self, ctx: EvalContext) -> DfSized:
        lhs = self.left.evaluate(ctx)
        rhs = self.right.evaluate(ctx)
        size = DfSized.combine_sizes((lhs, rhs))
        try:
            exact = _closed_form_binary(
                self.op, lhs.distribution, rhs.distribution
            )
        except DistributionError:
            # The exact form can overflow (e.g. a Gaussian scaled by
            # 1/c for a denormal c makes sigma^2/c^2 infinite).  Monte
            # Carlo nudges near-zero divisors and stays finite.
            exact = None
        if exact is not None:
            return DfSized(exact, size)
        result = combine(
            self.op, lhs.distribution, rhs.distribution, ctx.rng,
            ctx.mc_samples,
        )
        return DfSized(result, size)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclasses.dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary node: sqrtabs (SQRT(ABS(.))), square, neg, abs."""

    op: str
    operand: Expression

    def __post_init__(self) -> None:
        if self.op not in ("sqrtabs", "square", "neg", "abs"):
            raise QueryError(f"unknown unary operator {self.op!r}")

    def evaluate(self, ctx: EvalContext) -> DfSized:
        value = self.operand.evaluate(ctx)
        dist = value.distribution
        if isinstance(dist, Deterministic):
            fns = {
                "sqrtabs": lambda x: float(np.sqrt(np.abs(x))),
                "square": lambda x: x * x,
                "neg": lambda x: -x,
                "abs": abs,
            }
            out = fns[self.op](dist.value)
            if not np.isfinite(out):
                raise QueryError(
                    f"{self.op}({dist.value!r}) overflows to {out!r}"
                )
            return DfSized(Deterministic(out), value.sample_size)
        if self.op == "neg" and isinstance(dist, GaussianDistribution):
            return DfSized(dist.scaled(-1.0), value.sample_size)
        result = apply_unary(self.op, dist, ctx.rng, ctx.mc_samples)
        return DfSized(result, value.sample_size)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclasses.dataclass(frozen=True)
class Comparison:
    """A comparison ``left op right`` whose truth is a probability.

    Not an :class:`Expression` — it evaluates to a probability (and the
    d.f. sample size of the underlying boolean r.v.), the quantity both
    probability-threshold predicates and pTest consume.
    """

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def probability(self, ctx: EvalContext) -> tuple[float, int | None]:
        """(P[left op right], d.f. sample size of the indicator)."""
        return predicate_probability(self, ctx)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def _tail_probability(dist: Distribution, op: str, c: float) -> float:
    """P[X op c] from the cdf of a single distribution."""
    if op == ">":
        return dist.prob_greater(c)
    if op == ">=":
        # Continuous distributions: P[X >= c] == P[X > c]; discrete ones
        # are handled by the Monte-Carlo path upstream when it matters.
        return dist.prob_greater(c)
    if op == "<":
        return dist.prob_less(c)
    if op == "<=":
        return dist.cdf(c)
    raise QueryError(f"no tail probability for operator {op!r}")


def predicate_probability(
    comparison: Comparison, ctx: EvalContext
) -> tuple[float, int | None]:
    """P[comparison holds] and the d.f. sample size of the boolean r.v.

    Fast path: one side is an exact constant and the operator is an
    inequality — the probability is a cdf evaluation.  General path:
    Monte Carlo over both sides.
    """
    lhs = comparison.left.evaluate(ctx)
    rhs = comparison.right.evaluate(ctx)
    size = DfSized.combine_sizes((lhs, rhs))
    op = comparison.op

    if op in (">", ">=", "<", "<=")and isinstance(
        rhs.distribution, Deterministic
    ):
        return _tail_probability(lhs.distribution, op, rhs.distribution.value), size
    if op in (">", ">=", "<", "<=") and isinstance(
        lhs.distribution, Deterministic
    ):
        flipped = {">": "<", ">=": "<=", "<": ">", "<=": ">="}[op]
        return (
            _tail_probability(rhs.distribution, flipped, lhs.distribution.value),
            size,
        )

    xs = lhs.distribution.sample(ctx.rng, ctx.mc_samples)
    ys = rhs.distribution.sample(ctx.rng, ctx.mc_samples)
    if op == ">":
        hits = xs > ys
    elif op == ">=":
        hits = xs >= ys
    elif op == "<":
        hits = xs < ys
    elif op == "<=":
        hits = xs <= ys
    elif op == "=":
        hits = xs == ys
    else:  # '<>'
        hits = xs != ys
    return float(np.mean(hits)), size
