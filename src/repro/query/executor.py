"""Query execution with accuracy-aware results.

For each input tuple the executor:

1. evaluates the WHERE conjuncts — probability-threshold and bare
   comparisons contribute a probability factor (possible-world
   semantics), significance predicates contribute a TRUE/FALSE/UNSURE
   decision (COUPLED-TESTS when two alphas are given);
2. evaluates the SELECT expressions into DfSized values, propagating the
   de facto sample size (Lemma 3);
3. attaches accuracy information per Theorem 1 — analytically
   (Lemmas 1/2) or by bootstrap (BOOTSTRAP-ACCURACY-INFO) — to every
   distribution-valued output field, and a Lemma-1 interval to the result
   tuple's membership probability.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.accuracy import AccuracyInfo, TupleProbabilityInterval
from repro.core.analytic import (
    distribution_accuracy,
    tuple_probability_interval,
)
from repro.core.adaptive import (
    DEFAULT_GROWTH,
    DEFAULT_INITIAL_RESAMPLES,
    adaptive_bootstrap_accuracy_info,
)
from repro.core.bootstrap import bootstrap_accuracy_info
from repro.core.coupled import ThreeValued, coupled_tests
from repro.core.dfsample import DfSized
from repro.core.predicates import (
    FieldStats,
    MdTest,
    MTest,
    PTest,
    SignificancePredicate,
    VTest,
)
from repro.distributions.base import Deterministic
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import QueryError
from repro.parallel.config import ParallelConfig
from repro.query.expressions import EvalContext
from repro.query.parser import (
    AndCondition,
    CompareCondition,
    Condition,
    NotCondition,
    OrCondition,
    SignificanceCondition,
)
from repro.query.planner import CompiledQuery, compile_query
from repro.streams.tuples import Schema, UncertainTuple

__all__ = [
    "ExecutorConfig",
    "ResultTuple",
    "ResidualOutcome",
    "QueryExecutor",
]

_ACCURACY_METHODS = ("analytic", "bootstrap", "none")


@dataclasses.dataclass
class ExecutorConfig:
    """Execution knobs.

    ``accuracy_method`` selects how result accuracy is obtained:
    ``"analytic"`` (Theorem 1), ``"bootstrap"``
    (BOOTSTRAP-ACCURACY-INFO), or ``"none"`` (accuracy-oblivious — the
    behaviour of prior systems, kept for the throughput baseline).
    ``bootstrap_resamples`` is the r of the bootstrap algorithm; the
    draw count is ``max(mc_samples, r * n, 2n)`` rounded up to a
    multiple of the de facto sample size ``n`` so chunking never drops
    values.

    Setting ``target_ci_width`` (absolute width of the mean interval)
    and/or ``target_relative_width`` (width of the mean and variance
    intervals relative to their midpoints) switches the bootstrap to
    the adaptive early-stopping path (:mod:`repro.core.adaptive`):
    draws start at ``bootstrap_initial_resamples`` resamples and
    escalate by ``bootstrap_growth`` up to the fixed budget, stopping
    as soon as the calibrated interval width meets the target.
    """

    confidence: float = 0.95
    accuracy_method: str = "analytic"
    mc_samples: int = 1000
    bootstrap_resamples: int = 20
    target_ci_width: float | None = None
    target_relative_width: float | None = None
    bootstrap_initial_resamples: int = DEFAULT_INITIAL_RESAMPLES
    bootstrap_growth: float = DEFAULT_GROWTH
    keep_unsure: bool = False
    seed: int | None = None
    #: Opt-in process-pool execution for bootstrap Monte-Carlo draws
    #: (:mod:`repro.parallel`).  ``None`` keeps the sequential-generator
    #: sampling path; a config switches to deterministic per-field
    #: ``SeedSequence`` spawning, whose values are invariant to the
    #: worker count (but differ from the sequential path's stream).
    parallel: "ParallelConfig | None" = None

    def __post_init__(self) -> None:
        if self.accuracy_method not in _ACCURACY_METHODS:
            raise QueryError(
                f"accuracy_method must be one of {_ACCURACY_METHODS}, "
                f"got {self.accuracy_method!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise QueryError(
                f"confidence must be in (0,1), got {self.confidence}"
            )
        if self.bootstrap_resamples < 2:
            raise QueryError(
                "bootstrap_resamples must be >= 2, "
                f"got {self.bootstrap_resamples}"
            )
        for name in ("target_ci_width", "target_relative_width"):
            target = getattr(self, name)
            if target is not None and not target > 0.0:
                raise QueryError(f"{name} must be > 0, got {target}")
        if self.bootstrap_initial_resamples < 2:
            raise QueryError(
                "bootstrap_initial_resamples must be >= 2, "
                f"got {self.bootstrap_initial_resamples}"
            )
        if self.bootstrap_growth <= 1.0:
            raise QueryError(
                f"bootstrap_growth must be > 1, got {self.bootstrap_growth}"
            )


@dataclasses.dataclass
class ResultTuple:
    """One query result: values, membership probability, and accuracy."""

    attributes: dict[str, DfSized]
    probability: float
    probability_interval: TupleProbabilityInterval | None
    accuracy: dict[str, AccuracyInfo]
    decisions: tuple[ThreeValued, ...] = ()
    source: UncertainTuple | None = None
    sort_key: float | None = None

    def value(self, name: str) -> DfSized:
        try:
            return self.attributes[name]
        except KeyError:
            raise QueryError(f"result has no field {name!r}") from None

    def describe(self) -> str:
        """Readable rendering of the result with its accuracy info."""
        lines = [f"probability = {self.probability:.4g}"]
        if self.probability_interval is not None:
            lines.append(f"  interval {self.probability_interval.interval}")
        for name, field in self.attributes.items():
            dist = field.distribution
            if isinstance(dist, Deterministic):
                lines.append(f"{name} = {dist.value:.6g}")
            else:
                lines.append(f"{name} ~ {dist!r} (n={field.sample_size})")
            if name in self.accuracy:
                indented = "\n".join(
                    "  " + line
                    for line in self.accuracy[name].describe().splitlines()
                )
                lines.append(indented)
        return "\n".join(lines)


@dataclasses.dataclass
class _ConditionOutcome:
    qualifies: bool
    probability: float
    sizes: tuple[int | None, ...]
    decisions: tuple[ThreeValued, ...]


@dataclasses.dataclass
class ResidualOutcome:
    """Result of a plan's residual stage (WHERE conjuncts) on one tuple.

    Everything here is per-query: the membership probability after the
    conjunct factors, the contributing de facto sample sizes, and the
    significance-test decisions.  ``ctx`` is the evaluation context the
    conjuncts ran under, reused by :meth:`QueryExecutor.finalize_result`
    for the ORDER BY sort key so expression evaluation order matches the
    monolithic :meth:`QueryExecutor.execute_one` exactly.
    """

    probability: float
    sizes: tuple[int | None, ...]
    decisions: tuple[ThreeValued, ...]
    ctx: EvalContext


class QueryExecutor:
    """Executes a compiled query over uncertain tuples."""

    def __init__(
        self,
        query: "CompiledQuery | str",
        schema: Schema | None = None,
        config: ExecutorConfig | None = None,
    ) -> None:
        if isinstance(query, str):
            query = compile_query(query, schema)
        self.query = query
        self.config = config if config is not None else ExecutorConfig()
        self._rng = np.random.default_rng(self.config.seed)
        # Deterministic per-draw seeding for the parallel bootstrap path:
        # spawn child i of the root seed for the i-th parallel draw, so
        # the same query over the same stream reproduces exactly at any
        # worker count.
        self._seed_root = np.random.SeedSequence(self.config.seed)
        self._pool = None

    def close(self) -> None:
        """Release the worker pool, if the parallel path ever started one."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _parallel_pool(self):
        from repro.parallel.pool import WorkerPool

        if self._pool is None:
            self._pool = WorkerPool(self.config.parallel)
        return self._pool

    # -- condition evaluation -------------------------------------------------

    def _build_predicate(
        self, condition: SignificanceCondition, ctx: EvalContext
    ) -> SignificancePredicate:
        alpha = condition.alpha1
        if condition.kind == "mtest":
            assert condition.expr_x is not None
            field = FieldStats.from_dfsized(condition.expr_x.evaluate(ctx))
            return MTest(field, condition.op, condition.constant, alpha)
        if condition.kind == "vtest":
            assert condition.expr_x is not None
            field = FieldStats.from_dfsized(condition.expr_x.evaluate(ctx))
            return VTest(field, condition.op, condition.constant, alpha)
        if condition.kind == "mdtest":
            assert condition.expr_x is not None
            assert condition.expr_y is not None
            field_x = FieldStats.from_dfsized(condition.expr_x.evaluate(ctx))
            field_y = FieldStats.from_dfsized(condition.expr_y.evaluate(ctx))
            return MdTest(
                field_x, field_y, condition.op, condition.constant, alpha
            )
        assert condition.comparison is not None
        p_hat, size = condition.comparison.probability(ctx)
        if size is None:
            raise QueryError(
                "pTest needs a sampled operand; the comparison involves "
                "only exact values"
            )
        return PTest(p_hat, size, condition.tau, ">", alpha)

    def _evaluate_significance(
        self, condition: SignificanceCondition, ctx: EvalContext
    ) -> _ConditionOutcome:
        predicate = self._build_predicate(condition, ctx)
        if condition.alpha2 is None:
            result = predicate.run()
            decision = ThreeValued.TRUE if result.reject else ThreeValued.FALSE
        else:
            decision = coupled_tests(
                predicate, condition.alpha1, condition.alpha2
            ).value
        qualifies = decision is ThreeValued.TRUE or (
            decision is ThreeValued.UNSURE and self.config.keep_unsure
        )
        return _ConditionOutcome(qualifies, 1.0, (), (decision,))

    def _evaluate_condition(
        self, condition: Condition, ctx: EvalContext
    ) -> _ConditionOutcome:
        if isinstance(condition, CompareCondition):
            q, size = condition.comparison.probability(ctx)
            if condition.threshold is not None:
                return _ConditionOutcome(
                    q >= condition.threshold, q, (size,), ()
                )
            return _ConditionOutcome(q > 0.0, q, (size,), ())
        if isinstance(condition, SignificanceCondition):
            return self._evaluate_significance(condition, ctx)
        if isinstance(condition, AndCondition):
            probability = 1.0
            sizes: list[int | None] = []
            decisions: list[ThreeValued] = []
            qualifies = True
            for part in condition.parts:
                outcome = self._evaluate_condition(part, ctx)
                qualifies = qualifies and outcome.qualifies
                probability *= outcome.probability
                sizes.extend(outcome.sizes)
                decisions.extend(outcome.decisions)
            return _ConditionOutcome(
                qualifies, probability, tuple(sizes), tuple(decisions)
            )
        if isinstance(condition, OrCondition):
            miss_probability = 1.0
            sizes = []
            for part in condition.parts:
                outcome = self._evaluate_condition(part, ctx)
                miss_probability *= 1.0 - outcome.probability
                sizes.extend(outcome.sizes)
            probability = 1.0 - miss_probability
            return _ConditionOutcome(probability > 0.0, probability,
                                     tuple(sizes), ())
        if isinstance(condition, NotCondition):
            outcome = self._evaluate_condition(condition.part, ctx)
            probability = 1.0 - outcome.probability
            return _ConditionOutcome(probability > 0.0, probability,
                                     outcome.sizes, ())
        raise QueryError(f"unknown condition node {type(condition).__name__}")

    # -- accuracy ----------------------------------------------------------------

    def _draw(
        self, dist: object, m: int, rng: "np.random.Generator | None" = None
    ) -> np.ndarray:
        """``m`` values of ``dist`` — sequential, or pooled when enabled.

        Passing ``rng`` overrides both the sequential generator and the
        parallel ``SeedSequence`` spawning (which is stateful: each spawn
        advances the spawn counter).  The shared-subplan engine passes a
        guard object here so that *any* attempt to draw — which would
        make the prefix RNG-dependent — raises before mutating state.
        """
        if rng is not None:
            return dist.sample(rng, m)  # type: ignore[attr-defined]
        if self.config.parallel is None:
            return dist.sample(self._rng, m)  # type: ignore[attr-defined]
        from repro.parallel.montecarlo import draw_mc_values

        (seed,) = self._seed_root.spawn(1)
        return draw_mc_values(
            dist, m, seed, self.config.parallel, self._parallel_pool()
        )

    def _field_accuracy(
        self,
        field: DfSized,
        rng: "np.random.Generator | None" = None,
    ) -> AccuracyInfo | None:
        method = self.config.accuracy_method
        if method == "none" or field.sample_size is None:
            return None
        dist = field.distribution
        if isinstance(dist, Deterministic):
            return None
        n = field.sample_size
        if n < 2:
            return None
        if method == "analytic":
            return distribution_accuracy(dist, n, self.config.confidence)
        # Bootstrap: the value sequence is either the Monte-Carlo output
        # (empirical result) or freshly sampled from the distribution.
        # The budget is max(mc_samples, r * n, 2n) rounded up to a
        # multiple of n, so chunking never drops values and r >= 2 holds
        # for every de facto sample size.
        cfg = self.config
        budget = max(cfg.mc_samples, cfg.bootstrap_resamples * n, 2 * n)
        m = -(-budget // n) * n
        edges = (
            dist.edges if isinstance(dist, HistogramDistribution) else None
        )
        buffered = (
            dist.values
            if isinstance(dist, EmpiricalDistribution) and dist.size >= 2 * n
            else None
        )
        if (
            cfg.target_ci_width is not None
            or cfg.target_relative_width is not None
        ):
            return self._adaptive_accuracy(dist, n, m, edges, buffered, rng)
        if buffered is not None:
            values = buffered
            if values.size < m:
                extra = self._draw(dist, m - values.size, rng)
                values = np.concatenate([values, extra])
        else:
            values = self._draw(dist, m, rng)
        return bootstrap_accuracy_info(
            values, n, cfg.confidence, edges
        )

    def _adaptive_accuracy(
        self,
        dist: object,
        n: int,
        m: int,
        edges: "Sequence[float] | None",
        buffered: np.ndarray | None,
        rng: "np.random.Generator | None" = None,
    ) -> AccuracyInfo:
        """Early-stopping bootstrap: escalate draws until the width target.

        Each escalation round consumes the Monte-Carlo output first (when
        the result is empirical) and only then draws fresh values, so a
        tight result stops without sampling at all.  Fresh draws go
        through :meth:`_draw`, whose per-call ``SeedSequence`` spawning
        keeps the round values a pure function of (seed, round order) —
        worker-count invariant under the parallel path.
        """
        cfg = self.config
        cursor = 0

        def draw_round(count: int) -> np.ndarray:
            nonlocal cursor
            if buffered is None:
                return self._draw(dist, count, rng)
            take = min(count, buffered.size - cursor)
            take = max(take, 0)
            block = buffered[cursor : cursor + take]
            cursor += take
            if count > take:
                block = np.concatenate(
                    [block, self._draw(dist, count - take, rng)]
                )
            return block

        return adaptive_bootstrap_accuracy_info(
            draw_round,
            n,
            cfg.confidence,
            target_ci_width=cfg.target_ci_width,
            target_relative_width=cfg.target_relative_width,
            max_resamples=m // n,
            initial_resamples=cfg.bootstrap_initial_resamples,
            growth=cfg.bootstrap_growth,
            edges=edges,
        )

    # -- execution ----------------------------------------------------------------

    def residual_outcome(
        self, tup: UncertainTuple
    ) -> ResidualOutcome | None:
        """Run only the per-query residual stage (the WHERE conjuncts).

        Returns ``None`` when the tuple is filtered out, otherwise the
        accumulated membership probability / sample sizes / decisions.
        This is the first half of :meth:`execute_one`; the shared-subplan
        engine calls it per query and only computes the (shareable)
        prefix when at least one query matched.
        """
        ctx = EvalContext(tup, self._rng, self.config.mc_samples)
        probability = tup.probability
        sizes: list[int | None] = []
        decisions: list[ThreeValued] = []
        for conjunct in self.query.conjuncts:
            outcome = self._evaluate_condition(conjunct, ctx)
            if not outcome.qualifies:
                return None
            probability *= outcome.probability
            sizes.extend(outcome.sizes)
            decisions.extend(outcome.decisions)
        if probability <= 0.0:
            return None
        return ResidualOutcome(
            probability, tuple(sizes), tuple(decisions), ctx
        )

    def evaluate_prefix(
        self,
        tup: UncertainTuple,
        rng: "np.random.Generator | None" = None,
    ) -> tuple[dict[str, DfSized], dict[str, AccuracyInfo]]:
        """Run only the accuracy-bearing prefix: projection + accuracy.

        With ``rng=None`` this consumes the executor's own generator,
        exactly as :meth:`execute_one` would.  The shared-subplan engine
        passes a guard generator instead: if the prefix turns out to
        need randomness (Monte-Carlo projection expressions, bootstrap
        draws), the guard raises before any state mutates, and the
        engine falls back to each member's private prefix.
        """
        ctx = EvalContext(
            tup,
            self._rng if rng is None else rng,
            self.config.mc_samples,
        )
        if self.query.star:
            attributes = {
                name: tup.dfsized(name) for name in tup.attributes
            }
        else:
            attributes = {
                alias: expr.evaluate(ctx)
                for expr, alias in self.query.select_items
            }
        accuracy: dict[str, AccuracyInfo] = {}
        if self.config.accuracy_method != "none":
            for name, field in attributes.items():
                info = self._field_accuracy(field, rng)
                if info is not None:
                    accuracy[name] = info
        return attributes, accuracy

    def finalize_result(
        self,
        tup: UncertainTuple,
        outcome: ResidualOutcome,
        attributes: dict[str, DfSized],
        accuracy: dict[str, AccuracyInfo],
    ) -> ResultTuple:
        """Assemble a :class:`ResultTuple` from residual + prefix output."""
        finite_sizes = [s for s in outcome.sizes if s is not None]
        probability_interval = None
        if finite_sizes and self.config.accuracy_method != "none":
            probability_interval = tuple_probability_interval(
                outcome.probability,
                min(finite_sizes),
                self.config.confidence,
            )

        sort_key = None
        if self.query.order_by is not None:
            sort_key = (
                self.query.order_by.evaluate(outcome.ctx)
                .distribution.mean()
            )

        return ResultTuple(
            attributes=attributes,
            probability=outcome.probability,
            probability_interval=probability_interval,
            accuracy=accuracy,
            decisions=outcome.decisions,
            source=tup,
            sort_key=sort_key,
        )

    def execute_one(self, tup: UncertainTuple) -> ResultTuple | None:
        """Run the query against a single tuple; None when filtered out."""
        if self.query.is_aggregate:
            raise QueryError(
                "aggregate queries need the whole stream; use execute()"
            )
        outcome = self.residual_outcome(tup)
        if outcome is None:
            return None
        attributes, accuracy = self.evaluate_prefix(tup)
        return self.finalize_result(tup, outcome, attributes, accuracy)

    @staticmethod
    def _group_key(tup: UncertainTuple, attribute: str) -> object:
        """The grouping value of a tuple: must be deterministic."""
        value = tup.value(attribute)
        if isinstance(value, DfSized):
            value = value.distribution
        if isinstance(value, Deterministic):
            return value.value
        if isinstance(value, (int, float, str)) and not isinstance(
            value, bool
        ):
            return value
        raise QueryError(
            f"GROUP BY {attribute!r} needs a deterministic key; "
            f"got {type(value).__name__}"
        )

    def _execute_aggregate(
        self, tuples: Iterable[UncertainTuple]
    ) -> list[ResultTuple]:
        """SELECT AVG/SUM/COUNT(...) [GROUP BY key] over the input.

        Possible-world moment semantics with independent tuple
        memberships B_i ~ Bernoulli(p_i) and field values X_i:

        * COUNT: E = sum(p_i),  Var = sum(p_i (1 - p_i))   (exact)
        * SUM:   E = sum(p_i mu_i),
                 Var = sum(p_i (sigma_i^2 + mu_i^2) - p_i^2 mu_i^2) (exact)
        * AVG:   SUM / E[COUNT] with variance scaled by E[COUNT]^2 —
                 exact when every p_i = 1, a documented first-order
                 approximation otherwise.

        Each output field is a Gaussian (CLT across the window) carrying
        the minimum contributing de facto sample size (Lemma 3).  With
        GROUP BY, one row per group is emitted in sorted key order (the
        key appears in the output under its attribute name); groups with
        no qualifying tuples produce no row.
        """
        items = list(zip(self.query.select_items, self.query.aggregates))
        group_by = self.query.group_by

        class _Acc:
            __slots__ = (
                "exp_sum", "var_sum", "size_min", "exp_count",
                "var_count", "condition_sizes", "qualified",
            )

            def __init__(acc) -> None:
                acc.exp_sum = [0.0] * len(items)
                acc.var_sum = [0.0] * len(items)
                acc.size_min: list[int | None] = [None] * len(items)
                acc.exp_count = 0.0
                acc.var_count = 0.0
                acc.condition_sizes: list[int] = []
                acc.qualified = 0

        groups: dict[object, _Acc] = {}

        for tup in tuples:
            ctx = EvalContext(tup, self._rng, self.config.mc_samples)
            probability = tup.probability
            keep = True
            condition_sizes: list[int] = []
            for conjunct in self.query.conjuncts:
                outcome = self._evaluate_condition(conjunct, ctx)
                if not outcome.qualifies:
                    keep = False
                    break
                probability *= outcome.probability
                condition_sizes.extend(
                    size for size in outcome.sizes if size is not None
                )
            if not keep or probability <= 0.0:
                continue
            key = (
                self._group_key(tup, group_by)
                if group_by is not None else None
            )
            acc = groups.get(key)
            if acc is None:
                acc = groups[key] = _Acc()
            acc.qualified += 1
            acc.exp_count += probability
            acc.var_count += probability * (1.0 - probability)
            acc.condition_sizes.extend(condition_sizes)
            for i, ((expr, _alias), _agg) in enumerate(items):
                value = expr.evaluate(ctx)
                mu = value.distribution.mean()
                sigma2 = value.distribution.variance()
                acc.exp_sum[i] += probability * mu
                acc.var_sum[i] += (
                    probability * (sigma2 + mu * mu)
                    - probability * probability * mu * mu
                )
                if value.sample_size is not None:
                    acc.size_min[i] = (
                        value.sample_size if acc.size_min[i] is None
                        else min(acc.size_min[i], value.sample_size)
                    )

        results: list[ResultTuple] = []
        for key in sorted(groups, key=str):
            acc = groups[key]
            attributes: dict[str, DfSized] = {}
            if group_by is not None:
                if isinstance(key, str):
                    # Text keys pass through unchanged.
                    attributes[group_by] = key  # type: ignore[assignment]
                else:
                    attributes[group_by] = DfSized(
                        Deterministic(float(key)), None  # type: ignore[arg-type]
                    )
            for i, ((_expr, alias), agg) in enumerate(items):
                if agg == "count":
                    dist = GaussianDistribution(
                        acc.exp_count, acc.var_count
                    )
                    size = (
                        min(acc.condition_sizes)
                        if acc.condition_sizes else None
                    )
                elif agg == "sum":
                    dist = GaussianDistribution(
                        acc.exp_sum[i], max(acc.var_sum[i], 0.0)
                    )
                    size = acc.size_min[i]
                else:  # avg
                    dist = GaussianDistribution(
                        acc.exp_sum[i] / acc.exp_count,
                        max(acc.var_sum[i], 0.0)
                        / (acc.exp_count * acc.exp_count),
                    )
                    size = acc.size_min[i]
                attributes[alias] = DfSized(dist, size)

            accuracy: dict[str, AccuracyInfo] = {}
            if self.config.accuracy_method != "none":
                for name, field in attributes.items():
                    if not isinstance(field, DfSized):
                        continue
                    info = self._field_accuracy(field)
                    if info is not None:
                        accuracy[name] = info
            results.append(
                ResultTuple(
                    attributes=attributes,
                    probability=1.0,
                    probability_interval=None,
                    accuracy=accuracy,
                )
            )
        return results

    def execute_iter(
        self, tuples: Iterable[UncertainTuple]
    ) -> "Iterable[ResultTuple]":
        """Stream results tuple-at-a-time (no ORDER BY / LIMIT support).

        The generator form suits continuous processing where buffering
        the whole result is undesirable; blocking clauses are rejected
        because they need the full result set.
        """
        if self.query.order_by is not None or self.query.limit is not None:
            raise QueryError(
                "execute_iter cannot apply ORDER BY / LIMIT; "
                "use execute() for blocking clauses"
            )
        if self.query.is_aggregate:
            raise QueryError(
                "aggregate queries need the whole stream; use execute()"
            )
        for tup in tuples:
            result = self.execute_one(tup)
            if result is not None:
                yield result

    def execute(
        self, tuples: Iterable[UncertainTuple]
    ) -> list[ResultTuple]:
        """Run the query over a stream of tuples, collecting results.

        ORDER BY sorts by the expected value of the order expression;
        LIMIT truncates afterwards (or truncates arrival order when no
        ORDER BY is present).
        """
        if self.query.is_aggregate:
            return self._execute_aggregate(tuples)
        results = []
        for tup in tuples:
            result = self.execute_one(tup)
            if result is not None:
                results.append(result)
        if self.query.order_by is not None:
            results.sort(
                key=lambda r: (r.sort_key is None, r.sort_key),
                reverse=self.query.descending,
            )
        if self.query.limit is not None:
            results = results[: self.query.limit]
        return results


def run_query(
    text: str,
    tuples: Sequence[UncertainTuple],
    schema: Schema | None = None,
    config: ExecutorConfig | None = None,
) -> list[ResultTuple]:
    """One-shot convenience: parse, compile, and execute a query."""
    executor = QueryExecutor(text, schema=schema, config=config)
    return executor.execute(tuples)
