"""Query compilation: validation against a schema and normalisation.

The planner checks column references, enforces the supported composition
rules for significance predicates (they may appear only under top-level
AND — mixing hypothesis-test decisions into probability algebra under
OR/NOT has no sound semantics), and flattens the WHERE clause into a list
of conjuncts the executor evaluates per tuple.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

from repro.errors import QueryError
from repro.query.expressions import Expression
from repro.query.parser import (
    AndCondition,
    CompareCondition,
    Condition,
    NotCondition,
    OrCondition,
    Query,
    SignificanceCondition,
    parse_query,
)
from repro.streams.tuples import Schema

__all__ = [
    "CompiledQuery",
    "PlanSplit",
    "compile_query",
    "compile_query_cached",
    "clear_plan_cache",
    "plan_cache_size",
    "prefix_fingerprint",
    "split_plan",
    "PLAN_CACHE_MAX",
]


@dataclasses.dataclass(frozen=True)
class CompiledQuery:
    """A validated query, with the WHERE clause split into conjuncts."""

    source: str
    select_items: tuple[tuple[Expression, str], ...]
    star: bool
    conjuncts: tuple[Condition, ...]
    referenced_columns: frozenset[str]
    order_by: Expression | None = None
    descending: bool = False
    limit: int | None = None
    aggregates: tuple[str | None, ...] = ()
    group_by: str | None = None

    @property
    def is_aggregate(self) -> bool:
        return any(agg is not None for agg in self.aggregates)


def _collect_columns(condition: Condition) -> set[str]:
    if isinstance(condition, CompareCondition):
        return condition.comparison.columns()
    if isinstance(condition, SignificanceCondition):
        columns: set[str] = set()
        if condition.expr_x is not None:
            columns |= condition.expr_x.columns()
        if condition.expr_y is not None:
            columns |= condition.expr_y.columns()
        if condition.comparison is not None:
            columns |= condition.comparison.columns()
        return columns
    if isinstance(condition, (AndCondition, OrCondition)):
        columns = set()
        for part in condition.parts:
            columns |= _collect_columns(part)
        return columns
    if isinstance(condition, NotCondition):
        return _collect_columns(condition.part)
    raise QueryError(f"unknown condition node {type(condition).__name__}")


def _contains_significance(condition: Condition) -> bool:
    if isinstance(condition, SignificanceCondition):
        return True
    if isinstance(condition, (AndCondition, OrCondition)):
        return any(_contains_significance(p) for p in condition.parts)
    if isinstance(condition, NotCondition):
        return _contains_significance(condition.part)
    return False


def _contains_threshold(condition: Condition) -> bool:
    if isinstance(condition, CompareCondition):
        return condition.threshold is not None
    if isinstance(condition, (AndCondition, OrCondition)):
        return any(_contains_threshold(p) for p in condition.parts)
    if isinstance(condition, NotCondition):
        return _contains_threshold(condition.part)
    return False


def _flatten_conjuncts(condition: Condition) -> list[Condition]:
    if isinstance(condition, AndCondition):
        conjuncts: list[Condition] = []
        for part in condition.parts:
            conjuncts.extend(_flatten_conjuncts(part))
        return conjuncts
    return [condition]


def _validate_composition(conjuncts: list[Condition]) -> None:
    for conjunct in conjuncts:
        if isinstance(conjunct, (OrCondition, NotCondition)):
            if _contains_significance(conjunct):
                raise QueryError(
                    "significance predicates may not appear under OR/NOT; "
                    "hypothesis-test decisions do not compose with "
                    "probability algebra"
                )
            if _contains_threshold(conjunct):
                raise QueryError(
                    "probability-threshold predicates may not appear under "
                    "OR/NOT; apply the threshold at the top level"
                )


def compile_query(
    query: "Query | str", schema: Schema | None = None
) -> CompiledQuery:
    """Validate and compile a parsed query (or query text).

    When a schema is given, every referenced column must exist in it.
    """
    if isinstance(query, str):
        query = parse_query(query)

    referenced: set[str] = set()
    for expr, _alias in query.select_items:
        referenced |= expr.columns()
    conjuncts: list[Condition] = []
    if query.where is not None:
        conjuncts = _flatten_conjuncts(query.where)
        _validate_composition(conjuncts)
        referenced |= _collect_columns(query.where)
    if query.order_by is not None:
        referenced |= query.order_by.columns()
    if query.group_by is not None:
        referenced |= {query.group_by}

    if schema is not None:
        unknown = sorted(name for name in referenced if name not in schema)
        if unknown:
            raise QueryError(
                f"query references unknown attributes {unknown}; "
                f"schema has {list(schema.names)}"
            )

    aliases = [alias for _expr, alias in query.select_items]
    if len(set(aliases)) != len(aliases):
        raise QueryError(f"duplicate output names in SELECT list: {aliases}")

    if query.is_aggregate:
        if any(agg is None for agg in query.aggregates):
            raise QueryError(
                "cannot mix aggregate and per-tuple SELECT items; "
                "GROUP BY keys are included in the output automatically"
            )
        if query.order_by is not None or query.limit is not None:
            raise QueryError(
                "ORDER BY / LIMIT are not supported on aggregate results "
                "(groups are emitted in sorted key order)"
            )
    elif query.group_by is not None:
        raise QueryError("GROUP BY requires aggregate SELECT items")

    return CompiledQuery(
        source=query.source,
        select_items=query.select_items,
        star=query.star,
        conjuncts=tuple(conjuncts),
        referenced_columns=frozenset(referenced),
        order_by=query.order_by,
        descending=query.descending,
        limit=query.limit,
        aggregates=query.aggregates,
        group_by=query.group_by,
    )


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

#: Eviction bound of the compiled-plan cache (least recently used out).
PLAN_CACHE_MAX = 256

_plan_cache: "OrderedDict[str, CompiledQuery]" = OrderedDict()


def _normalize_query_text(text: str) -> str:
    """Whitespace-insensitive cache key for query text."""
    return " ".join(text.split())


def compile_query_cached(text: str) -> tuple[CompiledQuery, bool]:
    """Compile schema-less query text through a bounded LRU plan cache.

    Returns ``(plan, hit)``; identical query texts (modulo whitespace)
    share one immutable :class:`CompiledQuery` object, so registering
    the same standing query N times compiles it once.  Only the
    schema-less form is cached — schema validation depends on mutable
    schema objects, so :func:`compile_query` with a schema always
    compiles fresh.  Callers surface ``hit`` in their own metrics
    registries (e.g. ``plan_cache.hits`` / ``plan_cache.misses`` on
    :class:`repro.db.StreamDatabase`).
    """
    key = _normalize_query_text(text)
    cached = _plan_cache.get(key)
    if cached is not None:
        _plan_cache.move_to_end(key)
        return cached, True
    compiled = compile_query(text)
    _plan_cache[key] = compiled
    while len(_plan_cache) > PLAN_CACHE_MAX:
        _plan_cache.popitem(last=False)
    return compiled, False


def clear_plan_cache() -> None:
    """Drop every cached plan (test isolation)."""
    _plan_cache.clear()


def plan_cache_size() -> int:
    """Number of plans currently cached."""
    return len(_plan_cache)


# ---------------------------------------------------------------------------
# Shared-subplan support: prefix fingerprint and prefix/residual split
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PlanSplit:
    """A compiled plan split at the accuracy-bearing prefix boundary.

    ``prefix`` is the expensive, per-tuple work whose output is
    identical for every query with the same :func:`prefix_fingerprint`:
    projection of the SELECT items and Theorem-1 accuracy attachment.
    ``residual`` is the cheap per-query remainder: WHERE conjuncts,
    the membership-probability interval, and the ORDER BY sort key.
    """

    star: bool
    prefix_select: tuple
    residual_conjuncts: tuple
    order_by: object | None


def split_plan(compiled: CompiledQuery) -> PlanSplit:
    """Split a compiled plan into its shared prefix and residual stages."""
    return PlanSplit(
        star=compiled.star,
        prefix_select=compiled.select_items,
        residual_conjuncts=compiled.conjuncts,
        order_by=compiled.order_by,
    )


def prefix_fingerprint(
    compiled: CompiledQuery, config: object
) -> tuple | None:
    """Structural fingerprint of a plan's accuracy-bearing prefix.

    Two standing queries whose fingerprints are equal compute exactly
    the same projection and accuracy work per tuple, so a multi-query
    engine may evaluate that prefix once and fan the output to each
    query's residual stage.  The fingerprint covers the source stream,
    the SELECT structure (the expression AST nodes are frozen
    dataclasses, hence hashable), and every config knob the prefix
    depends on: confidence, accuracy method, the Monte-Carlo budget,
    and the bootstrap/adaptive parameters.

    Deliberately excluded: ``seed`` and ``parallel`` (prefix results
    are only ever shared when their computation is RNG-free, in which
    case neither matters), ``keep_unsure`` (it only affects residual
    significance decisions), and the WHERE / ORDER BY / LIMIT clauses
    (all residual).  Aggregate plans return ``None`` — they consume
    whole streams, not single tuples, and never share.
    """
    if compiled.is_aggregate:
        return None
    return (
        compiled.source,
        compiled.star,
        compiled.select_items,
        config.confidence,
        config.accuracy_method,
        config.mc_samples,
        config.bootstrap_resamples,
        config.target_ci_width,
        config.target_relative_width,
        config.bootstrap_initial_resamples,
        config.bootstrap_growth,
    )
