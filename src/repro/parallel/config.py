"""Configuration for the process-pool execution subsystem.

A :class:`ParallelConfig` carries every knob shared by the parallel
entry points: how many worker processes to use, how Monte-Carlo sample
work is chunked, which ``multiprocessing`` start method to use, and
whether large sample arrays travel through POSIX shared memory instead
of pickles.

Worker-count resolution order (first hit wins):

1. an explicit ``n_workers`` on the config,
2. the ``REPRO_WORKERS`` environment variable,
3. ``1`` — the serial path.

The subsystem treats ``n_workers <= 1`` as "run serially in-process";
parallel entry points are required to produce *identical* results on
the serial path (see ``docs/PARALLELISM.md`` for the determinism
contract), so flipping ``REPRO_WORKERS`` can never change an answer.
"""

from __future__ import annotations

import dataclasses
import os

from repro.errors import ParallelError

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "WORKERS_ENV_VAR",
    "ParallelConfig",
    "available_cpus",
]

#: Environment variable consulted when ``n_workers`` is not set.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Monte-Carlo values per work chunk.  Large on purpose: each chunk is
#: one pool task, and per-task dispatch (pickle + IPC) must be amortised
#: over enough NumPy work to disappear.
DEFAULT_CHUNK_SIZE = 65_536

_START_METHODS = ("spawn", "forkserver", "fork")


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        affinity = os.sched_getaffinity(0)  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1
    return len(affinity) or 1


def _workers_from_env() -> int | None:
    raw = os.environ.get(WORKERS_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ParallelError(
            f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ParallelError(
            f"{WORKERS_ENV_VAR} must be >= 0, got {value}"
        )
    return value


@dataclasses.dataclass(frozen=True)
class ParallelConfig:
    """Knobs for process-pool execution.

    ``n_workers``
        Worker process count.  ``None`` defers to ``REPRO_WORKERS``,
        then to 1 (serial).  ``0`` means "one worker per available CPU".
    ``chunk_size``
        Monte-Carlo values per pool task (parallel sample drivers).
    ``start_method``
        ``multiprocessing`` start method.  The default ``"spawn"``
        gives identical semantics on every platform and never inherits
        ad-hoc parent state, which the determinism contract relies on.
    ``use_shared_memory``
        Move large sample arrays through POSIX shared memory rather
        than pickling them per task.  Falls back to pickling when the
        platform has no usable ``/dev/shm``.
    ``fallback_serial``
        When True (default) a pool that cannot start — sandboxed
        platform, fork bomb limits, missing semaphores — degrades to
        the in-process serial path instead of raising.
    """

    n_workers: int | None = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    start_method: str = "spawn"
    use_shared_memory: bool = True
    fallback_serial: bool = True

    def __post_init__(self) -> None:
        if self.n_workers is not None and self.n_workers < 0:
            raise ParallelError(
                f"n_workers must be >= 0, got {self.n_workers}"
            )
        if self.chunk_size < 1:
            raise ParallelError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.start_method not in _START_METHODS:
            raise ParallelError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {self.start_method!r}"
            )

    def resolve_workers(self) -> int:
        """The effective worker count (config, env, then serial)."""
        workers = self.n_workers
        if workers is None:
            workers = _workers_from_env()
        if workers is None:
            return 1
        if workers == 0:
            return available_cpus()
        return workers

    @property
    def parallel(self) -> bool:
        """True when the resolved worker count asks for a pool."""
        return self.resolve_workers() > 1
