"""Process-pool execution subsystem.

Three parallel entry points share one determinism contract (fixed work
decomposition + per-unit ``SeedSequence.spawn`` seeding, so results are
invariant to the worker count):

* :func:`draw_mc_values` / :func:`draw_mc_matrix` and the bootstrap
  drivers :func:`parallel_bootstrap_accuracy_info` /
  :func:`parallel_bootstrap_accuracy_batch` — Monte-Carlo work split
  into large chunks across workers (``repro.parallel.montecarlo``);
* :func:`run_sharded` — hash-partitioned pipeline execution behind
  :meth:`repro.streams.engine.Pipeline.run_sharded`
  (``repro.parallel.sharded``);
* :class:`WorkerPool` — the reusable pool with transparent serial
  fallback that both ride on (``repro.parallel.pool``).

See ``docs/PARALLELISM.md`` for the worker model and the determinism
contract, and ``REPRO_WORKERS`` for the environment override.
"""

from repro.parallel.config import (
    DEFAULT_CHUNK_SIZE,
    WORKERS_ENV_VAR,
    ParallelConfig,
    available_cpus,
)
from repro.parallel.montecarlo import (
    chunk_spans,
    draw_mc_matrix,
    draw_mc_values,
    parallel_bootstrap_accuracy_batch,
    parallel_bootstrap_accuracy_info,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.sharded import (
    ShardedResult,
    partition_indices,
    run_sharded,
    stable_key_hash,
)
from repro.parallel.shm import SharedArray, SharedSpec, attach_array, share_array

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "WORKERS_ENV_VAR",
    "ParallelConfig",
    "available_cpus",
    "chunk_spans",
    "draw_mc_matrix",
    "draw_mc_values",
    "parallel_bootstrap_accuracy_batch",
    "parallel_bootstrap_accuracy_info",
    "WorkerPool",
    "ShardedResult",
    "partition_indices",
    "run_sharded",
    "stable_key_hash",
    "SharedArray",
    "SharedSpec",
    "attach_array",
    "share_array",
]
