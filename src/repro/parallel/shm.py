"""Shared-memory transport for large sample arrays.

Monte-Carlo matrices are the hot payload of the parallel drivers — a
``(tuples, mc_samples)`` float64 block easily reaches hundreds of
megabytes.  Pickling it into every pool task would serialise the whole
array once per task; instead the parent publishes it once as a POSIX
shared-memory segment and tasks carry only a tiny :class:`SharedSpec`
(name, shape, dtype).  Workers attach read-only views, and result
slabs can be written back into a second segment the same way.

Everything degrades gracefully: :func:`share_array` returns ``None``
when the platform cannot allocate shared memory, and callers fall back
to pickling the array.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["SharedSpec", "SharedArray", "share_array", "attach_array"]


@dataclasses.dataclass(frozen=True)
class SharedSpec:
    """Picklable handle to a shared ndarray: segment name + layout."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArray:
    """Owner side of a shared ndarray; closes and unlinks on release.

    Use as a context manager in the parent so the segment is always
    unlinked, even when a worker dies mid-task::

        with SharedArray.create(matrix) as shared:
            pool_task(shared.spec, ...)
    """

    def __init__(self, shm: object, array: np.ndarray) -> None:
        self._shm = shm
        self.array = array

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedArray":
        from multiprocessing import shared_memory

        source = np.ascontiguousarray(source)
        if source.dtype.hasobject:
            raise ValueError(
                f"cannot share an object-dtype array (dtype {source.dtype}); "
                "shared memory only holds flat numeric buffers"
            )
        shm = shared_memory.SharedMemory(
            create=True, size=max(source.nbytes, 1)
        )
        try:
            array = np.ndarray(
                source.shape, dtype=source.dtype, buffer=shm.buf
            )
            array[...] = source
        except BaseException:
            # The segment exists in the kernel namespace from the moment
            # SharedMemory(create=True) returns — without this unlink a
            # failed mapping/copy would leak it until process exit (and
            # trip the resource tracker).
            shm.close()
            shm.unlink()
            raise
        return cls(shm, array)

    @classmethod
    def allocate(
        cls, shape: tuple[int, ...], dtype: np.dtype | str = np.float64
    ) -> "SharedArray":
        from multiprocessing import shared_memory

        dtype = np.dtype(dtype)
        if dtype.hasobject:
            raise ValueError(
                f"cannot share an object-dtype array (dtype {dtype}); "
                "shared memory only holds flat numeric buffers"
            )
        nbytes = int(np.prod(shape)) * dtype.itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        try:
            array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, array)

    @property
    def spec(self) -> SharedSpec:
        return SharedSpec(
            self._shm.name,  # type: ignore[attr-defined]
            tuple(self.array.shape),
            self.array.dtype.str,
        )

    def release(self) -> None:
        """Close the parent's view and unlink the segment."""
        # Drop the ndarray view first: SharedMemory.close() refuses to
        # release a buffer that still has exported views.
        self.array = None  # type: ignore[assignment]
        try:
            self._shm.close()  # type: ignore[attr-defined]
            self._shm.unlink()  # type: ignore[attr-defined]
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def share_array(source: np.ndarray) -> SharedArray | None:
    """Publish ``source`` as shared memory; ``None`` when unsupported.

    Only *platform* failures (no shm support, out of segments) degrade
    to ``None`` — a :class:`ValueError` for an unshareable input array
    (e.g. object dtype) is a caller bug and propagates.
    """
    try:
        return SharedArray.create(source)
    except (ImportError, OSError, PermissionError):
        return None


def attach_array(spec: SharedSpec) -> tuple[np.ndarray, object]:
    """Worker side: map the segment and return ``(array, segment)``.

    The caller must keep the returned segment object alive while using
    the array and ``close()`` it afterwards (never ``unlink`` — the
    parent owns the segment's lifetime).
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=spec.name)
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return array, shm
