"""Parallel Monte-Carlo sampling and bootstrap drivers.

Monte-Carlo query processing (§III) and BOOTSTRAP-ACCURACY-INFO both
reduce to the same shape of work: draw ``m`` iid values of an output
random variable, then run a vectorised statistics pass over them.  The
drivers here parallelise the *drawing* — the embarrassingly parallel
part — and feed the untouched serial kernels
(:func:`~repro.core.bootstrap.bootstrap_accuracy_info`,
:func:`~repro.core.bootstrap.bootstrap_accuracy_batch`) with the result.

Determinism contract
--------------------
Work is split into **fixed-size chunks** whose boundaries depend only on
``chunk_size`` and the total sample count — never on the worker count —
and chunk ``i`` draws from generator ``default_rng(SeedSequence(seed)
.spawn(n_chunks)[i])``.  A fixed seed therefore yields bit-identical
values at any worker count, including the in-process serial path used
when ``n_workers <= 1`` or the pool cannot start.

Shared memory
-------------
Sample blocks move through POSIX shared memory where available: the
chunk drivers let every worker write its slice into one shared output
array, and the batch bootstrap publishes its ``(t, m)`` value matrix
once instead of pickling a row slab into every task.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

import numpy as np

from repro.core.accuracy import AccuracyInfo
from repro.core.adaptive import (
    DEFAULT_GROWTH,
    DEFAULT_INITIAL_RESAMPLES,
    adaptive_bootstrap_accuracy_info,
)
from repro.core.bootstrap import (
    TRUNCATION_WARN_FRACTION,
    bootstrap_accuracy_batch,
    bootstrap_accuracy_info,
)
from repro.errors import ParallelError
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SharedSpec, attach_array, share_array

__all__ = [
    "chunk_spans",
    "draw_mc_values",
    "draw_mc_matrix",
    "parallel_bootstrap_accuracy_info",
    "parallel_bootstrap_accuracy_batch",
]


def chunk_spans(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Fixed ``[start, stop)`` spans covering ``range(total)``.

    The spans are a pure function of ``(total, chunk_size)`` so the
    chunk layout — and therefore every chunk's seed — cannot depend on
    how many workers happen to be available.
    """
    if total < 0:
        raise ParallelError(f"total must be >= 0, got {total}")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


def _draw_chunk(
    distribution: object,
    seed: np.random.SeedSequence,
    length: int,
    out_spec: SharedSpec | None,
    start: int,
) -> np.ndarray | None:
    """Pool task: draw one chunk; write in place when shared memory is up."""
    rng = np.random.default_rng(seed)
    values = distribution.sample(rng, length)  # type: ignore[attr-defined]
    if out_spec is None:
        return np.asarray(values, dtype=float)
    out, segment = attach_array(out_spec)
    try:
        out[start : start + length] = values
    finally:
        del out
        segment.close()
    return None


def draw_mc_values(
    distribution: object,
    m: int,
    seed: int | np.random.SeedSequence,
    config: ParallelConfig | None = None,
    pool: WorkerPool | None = None,
) -> np.ndarray:
    """``m`` Monte-Carlo values of ``distribution``, drawn in parallel.

    ``distribution`` is anything with the library's ``sample(rng, size)``
    method.  The result is identical at any worker count for a fixed
    seed (see the module docstring for the chunk-seeding scheme).
    """
    if m < 0:
        raise ParallelError(f"sample count must be >= 0, got {m}")
    config = config if config is not None else ParallelConfig()
    spans = chunk_spans(m, config.chunk_size)
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    seeds = root.spawn(len(spans)) if spans else []

    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(config)
    try:
        if pool.serial or len(spans) == 1:
            out = np.empty(m, dtype=float)
            for (start, stop), chunk_seed in zip(spans, seeds):
                rng = np.random.default_rng(chunk_seed)
                out[start:stop] = distribution.sample(  # type: ignore[attr-defined]
                    rng, stop - start
                )
            return out

        shared = share_array(np.empty(m)) if config.use_shared_memory else None
        if shared is not None:
            with shared:
                pool.map_indexed(
                    _draw_chunk,
                    [
                        (distribution, chunk_seed, stop - start,
                         shared.spec, start)
                        for (start, stop), chunk_seed in zip(spans, seeds)
                    ],
                )
                return np.array(shared.array, dtype=float)
        chunks = pool.map_indexed(
            _draw_chunk,
            [
                (distribution, chunk_seed, stop - start, None, start)
                for (start, stop), chunk_seed in zip(spans, seeds)
            ],
        )
        return np.concatenate(chunks) if chunks else np.empty(0)
    finally:
        if own_pool:
            pool.close()


def _draw_rows(
    distributions: Sequence[object],
    seeds: Sequence[np.random.SeedSequence],
    m: int,
    out_spec: SharedSpec | None,
    row_start: int,
) -> np.ndarray | None:
    """Pool task: draw ``m`` values for a block of output variables."""
    block = np.empty((len(distributions), m), dtype=float)
    for i, (dist, seed) in enumerate(zip(distributions, seeds)):
        rng = np.random.default_rng(seed)
        block[i] = dist.sample(rng, m)  # type: ignore[attr-defined]
    if out_spec is None:
        return block
    out, segment = attach_array(out_spec)
    try:
        out[row_start : row_start + block.shape[0]] = block
    finally:
        del out
        segment.close()
    return None


def draw_mc_matrix(
    distributions: Sequence[object],
    m: int,
    seed: int | np.random.SeedSequence,
    config: ParallelConfig | None = None,
    pool: WorkerPool | None = None,
) -> np.ndarray:
    """A ``(len(distributions), m)`` Monte-Carlo matrix, row-parallel.

    Row ``i`` is seeded by spawn child ``i`` of the root seed, so the
    matrix is invariant to both the worker count and how rows are
    grouped into tasks.
    """
    config = config if config is not None else ParallelConfig()
    t = len(distributions)
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    seeds = root.spawn(t) if t else []
    rows_per_task = max(1, config.chunk_size // max(m, 1))
    spans = chunk_spans(t, rows_per_task)

    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(config)
    try:
        if pool.serial or len(spans) == 1:
            out = np.empty((t, m), dtype=float)
            for i, dist in enumerate(distributions):
                rng = np.random.default_rng(seeds[i])
                out[i] = dist.sample(rng, m)  # type: ignore[attr-defined]
            return out

        shared = (
            share_array(np.empty((t, m))) if config.use_shared_memory else None
        )
        if shared is not None:
            with shared:
                pool.map_indexed(
                    _draw_rows,
                    [
                        (list(distributions[a:b]), seeds[a:b], m,
                         shared.spec, a)
                        for a, b in spans
                    ],
                )
                return np.array(shared.array, dtype=float)
        blocks = pool.map_indexed(
            _draw_rows,
            [
                (list(distributions[a:b]), seeds[a:b], m, None, a)
                for a, b in spans
            ],
        )
        return (
            np.concatenate(blocks, axis=0)
            if blocks
            else np.empty((0, m))
        )
    finally:
        if own_pool:
            pool.close()


def parallel_bootstrap_accuracy_info(
    distribution: object,
    n: int,
    resamples: int = 20,
    confidence: float = 0.95,
    seed: int | np.random.SeedSequence = 0,
    edges: Sequence[float] | None = None,
    interval: str = "percentile",
    config: ParallelConfig | None = None,
    pool: WorkerPool | None = None,
    *,
    target_ci_width: float | None = None,
    target_relative_width: float | None = None,
    initial_resamples: int = DEFAULT_INITIAL_RESAMPLES,
    growth: float = DEFAULT_GROWTH,
) -> AccuracyInfo:
    """BOOTSTRAP-ACCURACY-INFO with the Monte-Carlo draw parallelised.

    Draws ``m = resamples * n`` values of the output variable across the
    pool (deterministically chunk-seeded) and feeds them to the serial
    :func:`bootstrap_accuracy_info` kernel.

    With a width target (``target_ci_width`` and/or
    ``target_relative_width``) the draw escalates round by round through
    :func:`~repro.core.adaptive.adaptive_bootstrap_accuracy_info`, with
    ``resamples`` as the budget.  Round ``k`` draws from spawn child
    ``k`` of the root seed through the chunk-seeded
    :func:`draw_mc_values`, so both the values and the stopping decision
    are a pure function of ``(seed, n, schedule)`` — byte-identical at
    any worker count.
    """
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    if target_ci_width is None and target_relative_width is None:
        values = draw_mc_values(
            distribution, resamples * n, root, config, pool
        )
        return bootstrap_accuracy_info(values, n, confidence, edges, interval)
    config = config if config is not None else ParallelConfig()
    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(config)
    try:

        def draw_round(count: int) -> np.ndarray:
            (child,) = root.spawn(1)
            return draw_mc_values(distribution, count, child, config, pool)

        return adaptive_bootstrap_accuracy_info(
            draw_round,
            n,
            confidence,
            target_ci_width=target_ci_width,
            target_relative_width=target_relative_width,
            max_resamples=resamples,
            initial_resamples=initial_resamples,
            growth=growth,
            edges=edges,
            interval=interval,
        )
    finally:
        if own_pool:
            pool.close()


def _bootstrap_slab(
    spec_or_matrix: SharedSpec | np.ndarray,
    row_start: int,
    row_stop: int,
    n: int,
    confidence: float,
    edges: Sequence[float] | None = None,
    interval: str = "percentile",
) -> tuple[AccuracyInfo, ...]:
    """Pool task: the batch kernel over a slab of value-matrix rows."""
    if isinstance(spec_or_matrix, SharedSpec):
        matrix, segment = attach_array(spec_or_matrix)
        try:
            slab = np.array(matrix[row_start:row_stop], dtype=float)
        finally:
            del matrix
            segment.close()
    else:
        slab = spec_or_matrix
    # Kernel warnings raised here would die with the worker process;
    # suppress them (in the in-process serial path too, for parity) and
    # let the parent re-warn once from the returned records.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return bootstrap_accuracy_batch(slab, n, confidence, edges, interval)


def _rewarn_truncation(
    records: Sequence[AccuracyInfo], n: int
) -> None:
    """Re-issue the batch kernel's truncation warning in the parent.

    Worker processes swallow warnings, so pooled runs re-derive the
    kernel's decision from the returned records (every row shares the
    same ``m`` and drop count) and warn once, exactly like a serial run.
    """
    if not records:
        return
    first = records[0]
    m = first.draws_used
    if first.values_dropped > TRUNCATION_WARN_FRACTION * m:
        warnings.warn(
            f"bootstrap chunking dropped {first.values_dropped} of {m} "
            f"Monte-Carlo values per row (m mod n with n={n}, "
            f"{len(records)} rows); draw a multiple of n values to "
            f"use them all",
            stacklevel=3,
        )


def parallel_bootstrap_accuracy_batch(
    value_matrix: np.ndarray,
    n: int,
    confidence: float = 0.95,
    edges: Sequence[float] | None = None,
    interval: str = "percentile",
    config: ParallelConfig | None = None,
    pool: WorkerPool | None = None,
) -> tuple[AccuracyInfo, ...]:
    """Row-parallel :func:`bootstrap_accuracy_batch`.

    The ``(t, m)`` matrix is published once through shared memory and
    each task bootstraps a fixed slab of rows; slabs are concatenated in
    row order.  The slab layout depends only on ``(t, m, chunk_size)``
    and the in-process serial path runs the *same* slabs, so the result
    is bit-identical at any worker count.  It matches the one-shot
    serial kernel to the last ulp (NumPy's reduction blocking can
    differ with the row count of the matrix it reduces, so exact bit
    equality across *different slab layouts* is not guaranteed).
    """
    config = config if config is not None else ParallelConfig()
    matrix = np.asarray(value_matrix, dtype=float)
    if matrix.ndim != 2:
        # Delegate shape validation (and its message) to the kernel.
        return bootstrap_accuracy_batch(matrix, n, confidence, edges, interval)
    t, m = matrix.shape
    rows_per_task = max(1, config.chunk_size // max(m, 1))
    spans = chunk_spans(t, rows_per_task)

    own_pool = pool is None
    pool = pool if pool is not None else WorkerPool(config)
    try:
        if len(spans) <= 1:
            return bootstrap_accuracy_batch(
                matrix, n, confidence, edges, interval
            )
        if pool.serial:
            # Same slab decomposition as the pooled path (each slab is a
            # fresh copy, exactly like a worker's view) so the result is
            # bit-identical whatever the worker count.
            merged_serial: list[AccuracyInfo] = []
            for a, b in spans:
                merged_serial.extend(
                    _bootstrap_slab(
                        np.array(matrix[a:b]), a, b, n, confidence,
                        edges, interval,
                    )
                )
            _rewarn_truncation(merged_serial, n)
            return tuple(merged_serial)
        shared = share_array(matrix) if config.use_shared_memory else None
        if shared is not None:
            with shared:
                slabs = pool.map_indexed(
                    _bootstrap_slab,
                    [
                        (shared.spec, a, b, n, confidence, edges, interval)
                        for a, b in spans
                    ],
                )
        else:
            slabs = pool.map_indexed(
                _bootstrap_slab,
                [
                    (matrix[a:b], a, b, n, confidence, edges, interval)
                    for a, b in spans
                ],
            )
        merged: list[AccuracyInfo] = []
        for slab in slabs:
            merged.extend(slab)
        _rewarn_truncation(merged, n)
        return tuple(merged)
    finally:
        if own_pool:
            pool.close()
