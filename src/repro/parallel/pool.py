"""Worker-pool lifecycle with graceful serial degradation.

:class:`WorkerPool` wraps a ``concurrent.futures.ProcessPoolExecutor``
on the configured start method.  Two properties matter more than raw
convenience:

* **Degradation, not crashes.**  Pool start-up can fail in plenty of
  legitimate environments (sandboxes without ``/dev/shm`` semaphores,
  containers with one CPU and strict rlimits).  With
  ``fallback_serial`` (the default) the pool silently reports itself
  as serial and every ``map_indexed`` call runs in-process.  Results
  are identical either way — the determinism contract does not allow
  the pool to change answers, only wall time.
* **Reuse.**  With the ``spawn`` start method each worker pays a full
  interpreter + NumPy import on start; benchmarks must create one pool
  per measurement session (see :func:`measure_throughput`'s sharded
  path) rather than one per run, so steady-state throughput is
  measured, not process creation.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import ParallelError
from repro.parallel.config import ParallelConfig

__all__ = ["WorkerPool"]


class WorkerPool:
    """A reusable process pool bound to a :class:`ParallelConfig`.

    The executor starts lazily on first use; ``serial`` pools (resolved
    worker count <= 1, or start-up failure with ``fallback_serial``)
    never create processes at all.
    """

    def __init__(self, config: ParallelConfig | None = None) -> None:
        self.config = config if config is not None else ParallelConfig()
        self.n_workers = self.config.resolve_workers()
        self._executor: Any = None
        self._broken = False

    @property
    def serial(self) -> bool:
        """True when calls will run in-process."""
        return self.n_workers <= 1 or self._broken

    def _ensure_executor(self) -> Any:
        if self._executor is not None or self.serial:
            return self._executor
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = multiprocessing.get_context(self.config.start_method)
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=context
            )
        except Exception as exc:  # noqa: BLE001 - degrade on any start failure
            if not self.config.fallback_serial:
                raise ParallelError(
                    f"could not start a {self.n_workers}-worker "
                    f"{self.config.start_method!r} pool: {exc}"
                ) from exc
            warnings.warn(
                f"parallel pool unavailable ({exc}); running serially",
                stacklevel=3,
            )
            self._broken = True
            self._executor = None
        return self._executor

    def map_indexed(
        self, fn: Callable[..., Any], tasks: Sequence[tuple]
    ) -> list[Any]:
        """Run ``fn(*task)`` for every task; results in task order.

        Task order — never completion order — keeps every downstream
        merge deterministic regardless of scheduling.  On a serial pool
        the tasks run in-process in the same order.  If the pool breaks
        mid-flight (a worker was OOM-killed, say) the call degrades to
        re-running every task serially when ``fallback_serial`` is on.
        """
        executor = self._ensure_executor()
        if executor is None:
            return [fn(*task) for task in tasks]
        try:
            futures = [executor.submit(fn, *task) for task in tasks]
            return [future.result() for future in futures]
        except Exception as exc:  # noqa: BLE001 - includes BrokenProcessPool
            if not self.config.fallback_serial:
                raise
            warnings.warn(
                f"parallel pool failed mid-run ({exc}); "
                "re-running serially",
                stacklevel=3,
            )
            self.close()
            self._broken = True
            return [fn(*task) for task in tasks]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
