"""Sharded pipeline execution: hash-partition, run per shard, merge.

``run_sharded`` is the data-parallel deployment mode of the push
pipeline: the input stream is partitioned into ``n_shards`` sub-streams,
each shard runs through its own pristine copy of the pipeline in a
worker process (``Pipeline.run_batched`` inside the worker, so the
vectorised kernels still apply), and the per-shard sinks — plus
per-worker metrics snapshots — are merged back deterministically.

Determinism contract (see ``docs/PARALLELISM.md``)
--------------------------------------------------
* The partition is a pure function of the tuple (or its index) and
  ``n_shards`` — a CRC32 key hash, never Python's salted ``hash()``.
* Shard ``i`` of a seeded run is reseeded from spawn child ``i`` of the
  root :class:`numpy.random.SeedSequence`.
* Results are merged in shard order (or exact input order, below), and
  the serial fallback executes the *same* shard decomposition
  in-process.

Together these make the sink contents a function of ``(stream, seed,
n_shards)`` only: any worker count — including 1, including a pool that
failed to start — produces identical output.

Sink merge semantics
--------------------
* ``CountingSink`` — counts sum.
* ``CollectSink`` with ``merge="interleave"`` (or ``"auto"`` when every
  shard emitted exactly one tuple per input) — outputs are placed back
  at their input's global stream position, which reproduces the serial
  ``run_batched`` order exactly for emit-per-input pipelines (all the
  window/group aggregates in this library).
* ``CollectSink`` with ``merge="concat"`` — shard 0's results, then
  shard 1's, ... — deterministic, but ordered by shard; the mode for
  pipelines that drop or multiply tuples.

Pipelines whose stateful operators partition cleanly by the same key as
``partition_by`` (e.g. :class:`~repro.streams.groupby.GroupedAggregate`
keyed by the partition attribute) produce *byte-identical* results to
the serial run; a global (unkeyed) window instead computes one window
per shard — a documented semantic choice, not an accident.
"""

from __future__ import annotations

import copy
import pickle
import warnings
import zlib
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ParallelError, StreamError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetryConfig, TelemetryRecorder
from repro.obs.trace import TraceConfig, Tracer
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import WorkerPool
from repro.streams.columnar import (
    ColumnarBatch,
    ColumnarPayload,
    as_columnar,
)
from repro.streams.operators import CollectSink, CountingSink
from repro.streams.tuples import UncertainTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.streams.engine import Pipeline

__all__ = [
    "stable_key_hash",
    "partition_indices",
    "run_sharded",
    "ShardedResult",
]

_MERGE_MODES = ("auto", "interleave", "concat")


def stable_key_hash(value: object) -> int:
    """A process- and run-stable hash for partition keys.

    Python's builtin ``hash`` is salted per process for str/bytes, so it
    would assign tuples to different shards in the parent and in a
    respawned benchmark run.  CRC32 over the key's ``repr`` is stable
    everywhere and fast enough for the partitioning loop.
    """
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return value & 0x7FFFFFFF
    return zlib.crc32(repr(value).encode("utf-8"))


def partition_indices(
    tuples: Sequence[UncertainTuple],
    n_shards: int,
    partition_by: str | Callable[[UncertainTuple], object] | None,
) -> list[list[int]]:
    """Global input indices per shard, in input order within each shard.

    ``partition_by`` may be an attribute name (hash of its value), a
    callable (hash of its return), or ``None`` (round-robin by index).
    """
    if n_shards < 1:
        raise ParallelError(f"n_shards must be >= 1, got {n_shards}")
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    if partition_by is None:
        for i in range(len(tuples)):
            shards[i % n_shards].append(i)
        return shards
    if isinstance(partition_by, str):
        if isinstance(tuples, ColumnarBatch):
            column = tuples.column(partition_by)
            if column is not None:
                # Key values straight off the column — same materialized
                # Python values, so the same hashes as the tuple loop.
                for i, key in enumerate(column.values()):
                    shards[stable_key_hash(key) % n_shards].append(i)
                return shards
        name = partition_by
        key_of = lambda tup: tup.value(name)  # noqa: E731
    else:
        key_of = partition_by
    for i, tup in enumerate(tuples):
        shards[stable_key_hash(key_of(tup)) % n_shards].append(i)
    return shards


def _run_shard(
    payload: "bytes | Pipeline",
    shard_source: "list[UncertainTuple] | ColumnarBatch | ColumnarPayload",
    batch_size: int,
    seed: np.random.SeedSequence | None,
    metrics_prefix: str | None,
    trace_config: TraceConfig | None = None,
    trace_prefix: str = "pipeline",
    trace_shard: str | None = None,
    telemetry_config: TelemetryConfig | None = None,
) -> tuple[tuple[str, object], dict | None, dict | None, dict | None]:
    """Pool task: run one shard through a pristine pipeline copy.

    ``payload`` is the pickled pipeline in worker processes, or an
    already-cloned pipeline on the serial deepcopy path — both paths
    share this function so they cannot drift apart.  ``shard_source``
    is a :class:`ColumnarPayload` on the columnar transport (column
    blocks, possibly shared-memory handles), or a tuple list / batch on
    the fallback paths.  Returns ``(sink_state, metrics_snapshot,
    trace_snapshot)``, all plain picklable values; a ``CollectSink``
    that stayed columnar comes back as ``("collect-columnar",
    ColumnarPayload)`` so the return trip ships column blocks too.
    When tracing, the worker builds a private :class:`Tracer` with
    shard label ``trace_shard`` (``shard{i}``) and the parent's
    :class:`TraceConfig` — span IDs depend only on ``(config.seed,
    shard label, seq)``, so the snapshot is identical whether this runs
    in a pool worker or on the serial fallback.
    """
    pipeline = pickle.loads(payload) if isinstance(payload, bytes) else payload
    if isinstance(shard_source, ColumnarPayload):
        shard_source = ColumnarBatch.from_payload(shard_source)
    if seed is not None:
        pipeline.reseed(seed)
    registry = None
    if metrics_prefix is not None:
        registry = MetricsRegistry()
        pipeline.attach_metrics(registry, prefix=metrics_prefix)
    tracer = None
    if trace_config is not None:
        tracer = Tracer(trace_config, shard=trace_shard or "shard?")
        pipeline.attach_trace(tracer, prefix=trace_prefix)
    telemetry = None
    if telemetry_config is not None:
        # Telemetry implies a registry on the parent, so metrics_prefix
        # is set here too; the recorder wraps this worker's registry and
        # its frames are keyed by this shard's local stream position.
        telemetry = TelemetryRecorder(telemetry_config, registry)
        pipeline.attach_telemetry(
            telemetry, prefix=metrics_prefix or "pipeline"
        )
    sink = pipeline.run_batched(shard_source, batch_size)
    snapshot = registry.snapshot() if registry is not None else None
    trace_snapshot = tracer.snapshot() if tracer is not None else None
    telemetry_snapshot = (
        telemetry.snapshot() if telemetry is not None else None
    )
    if isinstance(sink, CountingSink):
        return (
            ("count", sink.count),
            snapshot,
            trace_snapshot,
            telemetry_snapshot,
        )
    if isinstance(sink, CollectSink):
        collected = sink.columnar_result()
        if collected is not None:
            # Workers never create shm segments (the parent owns
            # segment lifetimes) — plain ndarrays still cross the
            # boundary as one buffer per column, not one pickle per
            # tuple.
            out_payload, _ = collected.to_payload(use_shm=False)
            return (
                ("collect-columnar", out_payload),
                snapshot,
                trace_snapshot,
                telemetry_snapshot,
            )
        return (
            ("collect", list(sink.results)),
            snapshot,
            trace_snapshot,
            telemetry_snapshot,
        )
    raise StreamError(
        f"run_sharded needs a CollectSink or CountingSink terminal "
        f"operator; got {type(sink).__name__} (a generic operator's "
        f"state cannot be merged across shards)"
    )


class ShardedResult:
    """Per-shard sink states + metrics snapshots, with merge helpers."""

    def __init__(
        self,
        sink_states: list[tuple[str, object]],
        snapshots: list[dict | None],
        shards: list[list[int]],
        total: int,
        merge: str,
        trace_snapshots: list[dict | None] | None = None,
        telemetry_snapshots: list[dict | None] | None = None,
    ) -> None:
        self.sink_states = sink_states
        self.snapshots = snapshots
        self.shards = shards
        self.total = total
        self.merge = merge
        self.trace_snapshots = (
            trace_snapshots if trace_snapshots is not None else []
        )
        self.telemetry_snapshots = (
            telemetry_snapshots if telemetry_snapshots is not None else []
        )

    @property
    def kind(self) -> str:
        if not self.sink_states:
            return "collect"
        kind = self.sink_states[0][0]
        return "collect" if kind == "collect-columnar" else kind

    def merged_count(self) -> int:
        """Summed CountingSink counts across shards."""
        return sum(
            int(state[1]) for state in self.sink_states  # type: ignore[arg-type]
            if state[0] == "count"
        )

    def merged_results(self) -> "list[UncertainTuple] | ColumnarBatch":
        """CollectSink contents merged per the configured mode.

        When every shard came back columnar the merge stays columnar —
        ``interleave`` scatters each shard's rows to their global input
        positions, ``concat`` concatenates columns in shard order — and
        a :class:`ColumnarBatch` is returned.  Any shard that fell back
        to a tuple list (or a cross-shard schema mismatch) degrades the
        whole merge to the materialized tuple-list form.
        """
        per_shard: list[object] = []
        all_columnar = True
        for kind, value in self.sink_states:  # type: ignore[misc]
            if kind == "collect-columnar":
                per_shard.append(
                    ColumnarBatch.from_payload(value)
                    if isinstance(value, ColumnarPayload)
                    else value
                )
            else:
                per_shard.append(value)
                all_columnar = False
        one_to_one = all(
            len(results) == len(indices)
            for results, indices in zip(per_shard, self.shards)
        )
        if self.merge == "interleave" and not one_to_one:
            raise ParallelError(
                "merge='interleave' requires every shard to emit exactly "
                "one tuple per input; got "
                + ", ".join(
                    f"shard {s}: {len(r)} out / {len(ix)} in"
                    for s, (r, ix) in enumerate(zip(per_shard, self.shards))
                )
                + " (use merge='concat' for filtering/expanding pipelines)"
            )
        if all_columnar:
            try:
                if self.merge == "concat" or not one_to_one:
                    return ColumnarBatch.concat(per_shard)
                return ColumnarBatch.interleave(
                    per_shard, self.shards, self.total
                )
            except StreamError:
                # Shards disagree on schema (e.g. a column degraded to
                # objects in one shard only) — materialize and merge
                # per tuple instead.
                per_shard = [batch.to_tuples() for batch in per_shard]
        else:
            per_shard = [
                part.to_tuples()
                if isinstance(part, ColumnarBatch)
                else part
                for part in per_shard
            ]
        if self.merge == "concat" or not one_to_one:
            concatenated: list[UncertainTuple] = []
            for results in per_shard:
                concatenated.extend(results)
            return concatenated
        slots: list[UncertainTuple | None] = [None] * self.total
        for results, indices in zip(per_shard, self.shards):
            for position, tup in zip(indices, results):
                slots[position] = tup
        return [tup for tup in slots if tup is not None]

    def merge_metrics(self, registry: MetricsRegistry) -> None:
        """Fold every worker snapshot into ``registry``, in shard order."""
        for snapshot in self.snapshots:
            if snapshot is not None:
                registry.merge_snapshot(snapshot)

    def merge_trace(self, tracer: Tracer) -> None:
        """Fold every worker trace snapshot into ``tracer``, shard order."""
        for snapshot in self.trace_snapshots:
            if snapshot is not None:
                tracer.merge_spans(snapshot)

    def merge_telemetry(self, recorder: TelemetryRecorder) -> None:
        """Fold worker frame series into ``recorder``, in shard order.

        Frames fold by index — shard-local stream positions line up
        because every shard cuts frames at the same ``frame_interval``
        boundaries — so the merged series is a function of ``(stream,
        seed, n_shards)`` only, like the sinks.  Call *after*
        :meth:`merge_metrics`: the recorder is re-baselined against the
        post-merge registry so a later serial run does not re-count the
        merged-in deltas.
        """
        for snapshot in self.telemetry_snapshots:
            if snapshot is not None:
                recorder.merge_snapshot(snapshot)
        recorder.resync()


def run_sharded(
    pipeline: "Pipeline",
    source: Iterable[UncertainTuple],
    n_workers: int | None = None,
    partition_by: str | Callable[[UncertainTuple], object] | None = None,
    n_shards: int | None = None,
    batch_size: int = 256,
    seed: int | np.random.SeedSequence | None = None,
    merge: str = "auto",
    config: ParallelConfig | None = None,
    pool: WorkerPool | None = None,
) -> ShardedResult:
    """Partition, execute per shard, and return the mergeable result.

    This is the engine behind :meth:`Pipeline.run_sharded`; call that
    unless you are building a custom merge.  ``n_shards`` defaults to
    the resolved worker count — pin it explicitly when results must be
    stable while the worker count varies (the Fig 5 harnesses pin
    ``n_shards=4``).
    """
    if merge not in _MERGE_MODES:
        raise ParallelError(
            f"merge must be one of {_MERGE_MODES}, got {merge!r}"
        )
    if batch_size < 1:
        raise StreamError(f"batch size must be >= 1, got {batch_size}")
    if config is None:
        config = ParallelConfig(n_workers=n_workers)
    elif n_workers is not None:
        config = dataclasses_replace(config, n_workers=n_workers)

    tuples: Sequence[UncertainTuple]
    if isinstance(source, ColumnarBatch):
        tuples = source
    else:
        tuples = list(source)
    shards_total = (
        n_shards if n_shards is not None else max(config.resolve_workers(), 1)
    )
    shards = partition_indices(tuples, shards_total, partition_by)

    metrics_prefix = (
        pipeline.metrics_prefix if pipeline.registry is not None else None
    )
    parent_tracer = pipeline.tracer
    trace_config = (
        parent_tracer.config if parent_tracer is not None else None
    )
    trace_prefix = pipeline.trace_prefix
    parent_telemetry = getattr(pipeline, "telemetry", None)
    telemetry_config = (
        parent_telemetry.config if parent_telemetry is not None else None
    )

    root = (
        seed
        if isinstance(seed, np.random.SeedSequence) or seed is None
        else np.random.SeedSequence(seed)
    )
    shard_seeds: Sequence[np.random.SeedSequence | None]
    shard_seeds = (
        root.spawn(len(shards)) if root is not None else [None] * len(shards)
    )

    pristine = pipeline.pristine()
    payload: bytes | None
    try:
        payload = pickle.dumps(pristine)
    except Exception as exc:  # noqa: BLE001 - any pickling failure degrades
        if not config.fallback_serial:
            raise ParallelError(
                f"pipeline is not picklable for sharded execution: {exc}"
            ) from exc
        if config.parallel:
            warnings.warn(
                f"pipeline is not picklable ({exc}); "
                "running shards serially via deepcopy",
                stacklevel=2,
            )
        payload = None

    # The columnar transport: partition by fancy-indexing columns, ship
    # column blocks (shared memory for large ones) instead of pickling
    # tuples one by one.  Non-uniform layouts keep the tuple-list path.
    batch = as_columnar(tuples)

    def shard_tuples(indices: list[int]) -> list[UncertainTuple]:
        return [tuples[i] for i in indices]

    if payload is None:
        outcomes = [
            _run_shard(
                copy.deepcopy(pristine),
                batch.take(indices)
                if batch is not None
                else shard_tuples(indices),
                batch_size,
                shard_seeds[shard_index],
                metrics_prefix,
                trace_config,
                trace_prefix,
                f"shard{shard_index}",
                telemetry_config,
            )
            for shard_index, indices in enumerate(shards)
        ]
    else:
        # The pool exists before the tasks so shared-memory shipping can
        # be skipped when the shards will run in-process anyway.
        own_pool = pool is None
        pool = pool if pool is not None else WorkerPool(config)
        use_shm = (
            batch is not None
            and config.use_shared_memory
            and not pool.serial
        )
        owners: list = []
        tasks = []
        try:
            for shard_index, indices in enumerate(shards):
                if batch is not None:
                    shard_source, shard_owners = batch.take(
                        indices
                    ).to_payload(use_shm=use_shm)
                    owners.extend(shard_owners)
                else:
                    shard_source = shard_tuples(indices)
                tasks.append(
                    (
                        payload,
                        shard_source,
                        batch_size,
                        shard_seeds[shard_index],
                        metrics_prefix,
                        trace_config,
                        trace_prefix,
                        f"shard{shard_index}",
                        telemetry_config,
                    )
                )
            outcomes = pool.map_indexed(_run_shard, tasks)
        finally:
            # Workers copy out of the segments before returning, so the
            # parent can unlink as soon as every task has completed.
            for owner in owners:
                owner.release()
            if own_pool:
                pool.close()

    return ShardedResult(
        sink_states=[state for state, _, _, _ in outcomes],
        snapshots=[snapshot for _, snapshot, _, _ in outcomes],
        shards=shards,
        total=len(tuples),
        merge=merge,
        trace_snapshots=[trace for _, _, trace, _ in outcomes],
        telemetry_snapshots=[t for _, _, _, t in outcomes],
    )


def dataclasses_replace(
    config: ParallelConfig, **overrides: object
) -> ParallelConfig:
    """``dataclasses.replace`` spelled out (keeps the import surface flat)."""
    import dataclasses

    return dataclasses.replace(config, **overrides)
