"""The accuracy-aware uncertain stream database facade.

:class:`StreamDatabase` ties the layers together the way the paper's
system diagram implies:

1. raw observation records stream in (Figure 1),
2. :meth:`ingest_observations` groups them and *learns* one distribution
   per group, keeping the sample size — the accuracy source,
3. one-shot :meth:`query` and push-based :meth:`register_continuous`
   queries run the SQL-ish dialect with accuracy attached to results,
   including significance predicates with coupled error-rate control.

The facade stores each stream's current tuples in a bounded buffer
(newest first out of age); it is a working single-process database, not
a distributed system.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from collections.abc import Callable, Iterable, Mapping

from repro.errors import QueryError, SchemaError, StreamError
from repro.core.dfsample import DfSized
from repro.learning.base import Learner
from repro.learning.histogram_learner import HistogramLearner
from repro.learning.registry import make_learner
from repro.learning.weighted import WeightedLearner
from repro.query.executor import ExecutorConfig, QueryExecutor, ResultTuple
from repro.query.planner import compile_query
from repro.streams.tuples import Schema, UncertainTuple

__all__ = ["StreamDatabase", "ContinuousQuery"]


@dataclasses.dataclass
class _StreamState:
    schema: Schema | None
    tuples: deque[UncertainTuple]
    inserted: int = 0


@dataclasses.dataclass
class ContinuousQuery:
    """A standing query: evaluated against every newly inserted tuple."""

    name: str
    source: str
    executor: QueryExecutor
    callback: Callable[[ResultTuple], None]
    matches: int = 0


class StreamDatabase:
    """A single-process accuracy-aware uncertain stream database."""

    def __init__(
        self,
        config: ExecutorConfig | None = None,
        max_tuples_per_stream: int = 100_000,
    ) -> None:
        if max_tuples_per_stream < 1:
            raise StreamError(
                "max_tuples_per_stream must be >= 1, got "
                f"{max_tuples_per_stream}"
            )
        self.config = config if config is not None else ExecutorConfig()
        self.max_tuples_per_stream = max_tuples_per_stream
        self._streams: dict[str, _StreamState] = {}
        self._continuous: dict[str, ContinuousQuery] = {}

    # -- stream management ---------------------------------------------------

    def create_stream(
        self, name: str, schema: "Schema | None" = None
    ) -> None:
        """Register a stream, optionally with a validated schema."""
        if not name or not name.isidentifier():
            raise StreamError(f"stream name must be an identifier: {name!r}")
        if name in self._streams:
            raise StreamError(f"stream {name!r} already exists")
        self._streams[name] = _StreamState(
            schema=schema,
            tuples=deque(maxlen=self.max_tuples_per_stream),
        )

    def drop_stream(self, name: str) -> None:
        """Remove a stream and any continuous queries reading it."""
        self._state(name)  # raises if unknown
        del self._streams[name]
        stale = [
            cq_name for cq_name, cq in self._continuous.items()
            if cq.source == name
        ]
        for cq_name in stale:
            del self._continuous[cq_name]

    def streams(self) -> list[str]:
        return sorted(self._streams)

    def count(self, name: str) -> int:
        """Number of tuples currently buffered in the stream."""
        return len(self._state(name).tuples)

    def stats(self, name: str) -> dict[str, object]:
        """Operational metadata for one stream.

        ``buffered`` is the current window of tuples; ``inserted`` counts
        every insert since creation (evictions included); ``watchers``
        lists the continuous queries reading this stream.
        """
        state = self._state(name)
        return {
            "buffered": len(state.tuples),
            "inserted": state.inserted,
            "has_schema": state.schema is not None,
            "watchers": sorted(
                cq_name for cq_name, cq in self._continuous.items()
                if cq.source == name
            ),
        }

    def _state(self, name: str) -> _StreamState:
        try:
            return self._streams[name]
        except KeyError:
            raise StreamError(
                f"unknown stream {name!r}; have {self.streams()}"
            ) from None

    # -- ingestion ---------------------------------------------------------------

    def insert(
        self, name: str, tup: "UncertainTuple | Mapping[str, object]"
    ) -> None:
        """Insert one tuple (mappings become probability-1 tuples)."""
        state = self._state(name)
        if not isinstance(tup, UncertainTuple):
            tup = UncertainTuple(dict(tup))
        if state.schema is not None:
            state.schema.validate(tup)
        state.tuples.append(tup)
        state.inserted += 1
        for cq in self._continuous.values():
            if cq.source == name:
                result = cq.executor.execute_one(tup)
                if result is not None:
                    cq.matches += 1
                    cq.callback(result)

    def insert_many(
        self,
        name: str,
        tuples: Iterable["UncertainTuple | Mapping[str, object]"],
    ) -> int:
        """Insert a batch; returns how many tuples were inserted."""
        count = 0
        for tup in tuples:
            self.insert(name, tup)
            count += 1
        return count

    def ingest_observations(
        self,
        name: str,
        records: Iterable[Mapping[str, object]],
        group_by: str,
        value: str,
        learner: "Learner | str | None" = None,
        carry: tuple[str, ...] = (),
        min_observations: int = 2,
        age: str | None = None,
        half_life: float | None = None,
    ) -> int:
        """The Figure-1 transformation: raw records -> uncertain tuples.

        Records are grouped by ``group_by``; each group's ``value``
        readings form the sample a distribution is learned from, and the
        learned field enters the stream *with its sample size* so
        accuracy can flow to queries.  ``carry`` attributes are copied
        from the group's first record (assumed constant per group, like
        a road's speed limit).  Groups with fewer than
        ``min_observations`` readings are skipped (their accuracy would
        be undefined); returns the number of tuples produced.

        Passing ``age`` (a record column holding each observation's age)
        together with ``half_life`` enables the paper's §VII weighted
        extension: fresh readings weigh more, the learned Gaussian
        tracks drift, and the field's sample size becomes the Kish
        effective size — so stale evidence honestly widens the accuracy
        intervals.
        """
        if (age is None) != (half_life is None):
            raise SchemaError(
                "age and half_life must be passed together"
            )
        weighted = (
            WeightedLearner(half_life) if half_life is not None else None
        )
        if weighted is None:
            if learner is None:
                learner = HistogramLearner(bucket_count=8)
            elif isinstance(learner, str):
                learner = make_learner(learner)
        elif learner is not None:
            raise SchemaError(
                "pass either a learner or age/half_life, not both"
            )
        groups: dict[object, list[Mapping[str, object]]] = {}
        for record in records:
            if group_by not in record or value not in record:
                raise SchemaError(
                    f"record {record!r} lacks {group_by!r}/{value!r}"
                )
            if age is not None and age not in record:
                raise SchemaError(f"record {record!r} lacks {age!r}")
            groups.setdefault(record[group_by], []).append(record)

        produced = 0
        for group_key in sorted(groups, key=str):
            members = groups[group_key]
            if len(members) < min_observations:
                continue
            sample = [float(m[value]) for m in members]  # type: ignore[arg-type]
            if weighted is not None:
                ages = [float(m[age]) for m in members]  # type: ignore[arg-type,index]
                fit = weighted.learn(sample, ages)
                field = DfSized(
                    fit.distribution,
                    max(int(fit.effective_size), 2),
                )
            else:
                assert isinstance(learner, Learner)
                field = learner.learn(sample).as_dfsized()
            attributes: dict[str, object] = {
                group_by: group_key,
                value: field,
            }
            for attr in carry:
                attributes[attr] = members[0].get(attr)
            self.insert(name, UncertainTuple(attributes))
            produced += 1
        return produced

    # -- querying ---------------------------------------------------------------

    def query(
        self, text: str, config: ExecutorConfig | None = None
    ) -> list[ResultTuple]:
        """One-shot query over a stream's current buffered tuples."""
        compiled = compile_query(text)
        state = self._state(compiled.source)
        executor = QueryExecutor(
            compiled,
            schema=None,
            config=config if config is not None else self.config,
        )
        return executor.execute(list(state.tuples))

    def register_continuous(
        self,
        name: str,
        text: str,
        callback: Callable[[ResultTuple], None],
        config: ExecutorConfig | None = None,
    ) -> ContinuousQuery:
        """Register a standing query evaluated on each future insert."""
        if name in self._continuous:
            raise QueryError(f"continuous query {name!r} already exists")
        compiled = compile_query(text)
        self._state(compiled.source)  # source must exist
        cq = ContinuousQuery(
            name=name,
            source=compiled.source,
            executor=QueryExecutor(
                compiled,
                schema=None,
                config=config if config is not None else self.config,
            ),
            callback=callback,
        )
        self._continuous[name] = cq
        return cq

    def unregister_continuous(self, name: str) -> None:
        try:
            del self._continuous[name]
        except KeyError:
            raise QueryError(f"no continuous query {name!r}") from None

    def continuous_queries(self) -> list[str]:
        return sorted(self._continuous)
