"""The accuracy-aware uncertain stream database facade.

:class:`StreamDatabase` ties the layers together the way the paper's
system diagram implies:

1. raw observation records stream in (Figure 1),
2. :meth:`ingest_observations` groups them and *learns* one distribution
   per group, keeping the sample size — the accuracy source,
3. one-shot :meth:`query` and push-based :meth:`register_continuous`
   queries run the SQL-ish dialect with accuracy attached to results,
   including significance predicates with coupled error-rate control.

The facade stores each stream's current tuples in a bounded buffer
(newest first out of age); it is a working single-process database, not
a distributed system.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from collections.abc import Callable, Iterable, Mapping

from repro.errors import CallbackError, QueryError, SchemaError, StreamError
from repro.core.dfsample import DfSized
from repro.learning.base import Learner
from repro.learning.histogram_learner import HistogramLearner
from repro.learning.registry import make_learner
from repro.learning.weighted import WeightedLearner
from repro.obs.metrics import MetricsRegistry
from repro.query.executor import ExecutorConfig, QueryExecutor, ResultTuple
from repro.query.multiquery import MultiQueryEngine
from repro.query.planner import compile_query_cached
from repro.streams.tuples import Schema, UncertainTuple

__all__ = ["StreamDatabase", "ContinuousQuery"]


@dataclasses.dataclass
class _StreamState:
    schema: Schema | None
    tuples: deque[UncertainTuple]
    inserted: int = 0


@dataclasses.dataclass
class ContinuousQuery:
    """A standing query: evaluated against every newly inserted tuple."""

    name: str
    source: str
    executor: QueryExecutor
    callback: Callable[[ResultTuple], None]
    matches: int = 0


class StreamDatabase:
    """A single-process accuracy-aware uncertain stream database.

    ``shared_subplans`` selects how standing queries are dispatched.
    With the default ``True``, registered plans are grouped by their
    accuracy-bearing prefix fingerprint (:mod:`repro.query.multiquery`)
    and each group's prefix runs once per tuple; ``insert_many``
    additionally columnarizes the batch and screens residual predicates
    vectorized.  ``False`` keeps the naive one-full-pipeline-per-query
    loop — the determinism oracle the shared path is byte-identical to.
    """

    def __init__(
        self,
        config: ExecutorConfig | None = None,
        max_tuples_per_stream: int = 100_000,
        shared_subplans: bool = True,
    ) -> None:
        if max_tuples_per_stream < 1:
            raise StreamError(
                "max_tuples_per_stream must be >= 1, got "
                f"{max_tuples_per_stream}"
            )
        self.config = config if config is not None else ExecutorConfig()
        self.max_tuples_per_stream = max_tuples_per_stream
        self.shared_subplans = shared_subplans
        self.metrics = MetricsRegistry()
        self._engine = MultiQueryEngine(self.metrics)
        self._streams: dict[str, _StreamState] = {}
        self._continuous: dict[str, ContinuousQuery] = {}
        self._cache_hits = self.metrics.counter(
            "plan_cache.hits", "compiled plans served from the plan cache"
        )
        self._cache_misses = self.metrics.counter(
            "plan_cache.misses", "query texts compiled from scratch"
        )
        self._fanout_timer = self.metrics.timer(
            "multiquery.fanout_seconds",
            "batched shared-subplan execution time per insert_many call",
        )

    # -- stream management ---------------------------------------------------

    def create_stream(
        self, name: str, schema: "Schema | None" = None
    ) -> None:
        """Register a stream, optionally with a validated schema."""
        if not name or not name.isidentifier():
            raise StreamError(f"stream name must be an identifier: {name!r}")
        if name in self._streams:
            raise StreamError(f"stream {name!r} already exists")
        self._streams[name] = _StreamState(
            schema=schema,
            tuples=deque(maxlen=self.max_tuples_per_stream),
        )

    def drop_stream(self, name: str) -> None:
        """Remove a stream and any continuous queries reading it."""
        self._state(name)  # raises if unknown
        del self._streams[name]
        stale = [
            cq_name for cq_name, cq in self._continuous.items()
            if cq.source == name
        ]
        for cq_name in stale:
            del self._continuous[cq_name]
        self._engine.remove_source(name)

    def streams(self) -> list[str]:
        return sorted(self._streams)

    def count(self, name: str) -> int:
        """Number of tuples currently buffered in the stream."""
        return len(self._state(name).tuples)

    def stats(self, name: str) -> dict[str, object]:
        """Operational metadata for one stream.

        ``buffered`` is the current window of tuples; ``inserted`` counts
        every insert since creation (evictions included); ``watchers``
        lists the continuous queries reading this stream.
        """
        state = self._state(name)
        return {
            "buffered": len(state.tuples),
            "inserted": state.inserted,
            "has_schema": state.schema is not None,
            "watchers": sorted(
                cq_name for cq_name, cq in self._continuous.items()
                if cq.source == name
            ),
        }

    def _state(self, name: str) -> _StreamState:
        try:
            return self._streams[name]
        except KeyError:
            raise StreamError(
                f"unknown stream {name!r}; have {self.streams()}"
            ) from None

    # -- ingestion ---------------------------------------------------------------

    def insert(
        self, name: str, tup: "UncertainTuple | Mapping[str, object]"
    ) -> None:
        """Insert one tuple (mappings become probability-1 tuples).

        Every standing query on the stream sees the tuple even when an
        earlier query's callback raises; the first callback failure is
        re-raised as :class:`~repro.errors.CallbackError` after the
        dispatch completes.
        """
        state = self._state(name)
        if not isinstance(tup, UncertainTuple):
            tup = UncertainTuple(dict(tup))
        if state.schema is not None:
            state.schema.validate(tup)
        state.tuples.append(tup)
        state.inserted += 1
        self._dispatch_one(name, tup)

    def _iter_naive(self, name: str, tup: UncertainTuple):
        """The per-query reference loop: every pipeline in full."""
        for cq in self._continuous.values():
            if cq.source == name:
                result = cq.executor.execute_one(tup)
                if result is not None:
                    yield cq, result

    def _dispatch_one(self, name: str, tup: UncertainTuple) -> None:
        """Fan one tuple out to its standing queries, fault-isolated."""
        if self.shared_subplans:
            pairs = self._engine.iter_results(name, tup)
        else:
            pairs = self._iter_naive(name, tup)
        first_error: Exception | None = None
        first_name = ""
        for cq, result in pairs:
            cq.matches += 1
            try:
                cq.callback(result)
            except Exception as exc:  # noqa: BLE001 - isolate subscribers
                if first_error is None:
                    first_error, first_name = exc, cq.name
        if first_error is not None:
            raise CallbackError(
                f"callback of continuous query {first_name!r} raised "
                f"{type(first_error).__name__}: {first_error}",
                first_name,
            ) from first_error

    def insert_many(
        self,
        name: str,
        tuples: Iterable["UncertainTuple | Mapping[str, object]"],
    ) -> int:
        """Insert a batch; returns how many tuples were inserted.

        Validation is atomic: the whole batch is checked against the
        stream schema before any tuple is buffered or dispatched.  With
        standing queries registered and ``shared_subplans`` enabled,
        the batch is columnarized and every shared-plan group's prefix
        runs once per tuple (vectorized where the residuals allow),
        with results emitted row by row in the naive callback order.
        A raising callback still sees the rest of *its* tuple's
        dispatch complete, then aborts the remaining rows with
        :class:`~repro.errors.CallbackError`.
        """
        state = self._state(name)
        batch = [
            tup
            if isinstance(tup, UncertainTuple)
            else UncertainTuple(dict(tup))
            for tup in tuples
        ]
        if state.schema is not None:
            state.schema.validate_batch(batch)
        buffer = state.tuples
        if not any(cq.source == name for cq in self._continuous.values()):
            buffer.extend(batch)
            state.inserted += len(batch)
            return len(batch)
        if self.shared_subplans and len(batch) >= 2:
            start = time.perf_counter()
            rows = self._engine.execute_batch(name, batch)
            self._fanout_timer.record(time.perf_counter() - start)
            first_error: Exception | None = None
            first_name = ""
            for tup, row in zip(batch, rows):
                buffer.append(tup)
                state.inserted += 1
                for cq, result in row:
                    cq.matches += 1
                    try:
                        cq.callback(result)
                    except Exception as exc:  # noqa: BLE001
                        if first_error is None:
                            first_error, first_name = exc, cq.name
                if first_error is not None:
                    raise CallbackError(
                        f"callback of continuous query {first_name!r} "
                        f"raised {type(first_error).__name__}: "
                        f"{first_error}",
                        first_name,
                    ) from first_error
            return len(batch)
        for tup in batch:
            buffer.append(tup)
            state.inserted += 1
            self._dispatch_one(name, tup)
        return len(batch)

    def ingest_observations(
        self,
        name: str,
        records: Iterable[Mapping[str, object]],
        group_by: str,
        value: str,
        learner: "Learner | str | None" = None,
        carry: tuple[str, ...] = (),
        min_observations: int = 2,
        age: str | None = None,
        half_life: float | None = None,
    ) -> int:
        """The Figure-1 transformation: raw records -> uncertain tuples.

        Records are grouped by ``group_by``; each group's ``value``
        readings form the sample a distribution is learned from, and the
        learned field enters the stream *with its sample size* so
        accuracy can flow to queries.  ``carry`` attributes are copied
        from the group's first record (assumed constant per group, like
        a road's speed limit).  Groups with fewer than
        ``min_observations`` readings are skipped (their accuracy would
        be undefined); returns the number of tuples produced.

        Passing ``age`` (a record column holding each observation's age)
        together with ``half_life`` enables the paper's §VII weighted
        extension: fresh readings weigh more, the learned Gaussian
        tracks drift, and the field's sample size becomes the Kish
        effective size — so stale evidence honestly widens the accuracy
        intervals.
        """
        if (age is None) != (half_life is None):
            raise SchemaError(
                "age and half_life must be passed together"
            )
        weighted = (
            WeightedLearner(half_life) if half_life is not None else None
        )
        if weighted is None:
            if learner is None:
                learner = HistogramLearner(bucket_count=8)
            elif isinstance(learner, str):
                learner = make_learner(learner)
        elif learner is not None:
            raise SchemaError(
                "pass either a learner or age/half_life, not both"
            )
        groups: dict[object, list[Mapping[str, object]]] = {}
        for record in records:
            if group_by not in record or value not in record:
                raise SchemaError(
                    f"record {record!r} lacks {group_by!r}/{value!r}"
                )
            if age is not None and age not in record:
                raise SchemaError(f"record {record!r} lacks {age!r}")
            groups.setdefault(record[group_by], []).append(record)

        produced = 0
        for group_key in sorted(groups, key=str):
            members = groups[group_key]
            if len(members) < min_observations:
                continue
            sample = [float(m[value]) for m in members]  # type: ignore[arg-type]
            if weighted is not None:
                ages = [float(m[age]) for m in members]  # type: ignore[arg-type,index]
                fit = weighted.learn(sample, ages)
                field = DfSized(
                    fit.distribution,
                    max(int(fit.effective_size), 2),
                )
            else:
                assert isinstance(learner, Learner)
                field = learner.learn(sample).as_dfsized()
            attributes: dict[str, object] = {
                group_by: group_key,
                value: field,
            }
            for attr in carry:
                attributes[attr] = members[0].get(attr)
            self.insert(name, UncertainTuple(attributes))
            produced += 1
        return produced

    # -- querying ---------------------------------------------------------------

    def _compile(self, text: str):
        """Compile through the plan cache, counting hits and misses."""
        compiled, hit = compile_query_cached(text)
        if hit:
            self._cache_hits.inc()
        else:
            self._cache_misses.inc()
        return compiled

    def query(
        self, text: str, config: ExecutorConfig | None = None
    ) -> list[ResultTuple]:
        """One-shot query over a stream's current buffered tuples."""
        compiled = self._compile(text)
        state = self._state(compiled.source)
        executor = QueryExecutor(
            compiled,
            schema=None,
            config=config if config is not None else self.config,
        )
        return executor.execute(list(state.tuples))

    def register_continuous(
        self,
        name: str,
        text: str,
        callback: Callable[[ResultTuple], None],
        config: ExecutorConfig | None = None,
    ) -> ContinuousQuery:
        """Register a standing query evaluated on each future insert.

        Identical query texts (modulo whitespace) share one compiled
        plan object through the plan cache, and plans whose prefix
        fingerprints match land in the same shared-plan group.
        """
        if name in self._continuous:
            raise QueryError(f"continuous query {name!r} already exists")
        compiled = self._compile(text)
        self._state(compiled.source)  # source must exist
        cq = ContinuousQuery(
            name=name,
            source=compiled.source,
            executor=QueryExecutor(
                compiled,
                schema=None,
                config=config if config is not None else self.config,
            ),
            callback=callback,
        )
        self._continuous[name] = cq
        self._engine.add(name, cq.source, cq.executor, cq)
        return cq

    def unregister_continuous(self, name: str) -> None:
        try:
            del self._continuous[name]
        except KeyError:
            raise QueryError(f"no continuous query {name!r}") from None
        self._engine.remove(name)

    def continuous_queries(self) -> list[str]:
        return sorted(self._continuous)
