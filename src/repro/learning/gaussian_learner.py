"""Maximum-likelihood Gaussian learning.

§V-C's throughput workload learns a Gaussian from 20 raw points per item;
this learner is that step.  The variance uses the unbiased (ddof=1)
estimator so it agrees with the ``s^2`` statistic in Lemma 2.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.gaussian import GaussianDistribution
from repro.learning.base import Learner, LearnedDistribution

__all__ = ["GaussianLearner"]


class GaussianLearner(Learner):
    """Fits N(sample mean, unbiased sample variance)."""

    def learn(self, sample: "np.ndarray | list[float]") -> LearnedDistribution:
        arr = self._validated(sample, minimum=2)
        mu = float(arr.mean())
        sigma2 = float(arr.var(ddof=1))
        return LearnedDistribution(GaussianDistribution(mu, sigma2), arr)
