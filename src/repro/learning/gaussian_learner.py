"""Maximum-likelihood Gaussian learning.

§V-C's throughput workload learns a Gaussian from 20 raw points per item;
this learner is that step.  The variance uses the unbiased (ddof=1)
estimator so it agrees with the ``s^2`` statistic in Lemma 2.

The learner is also fully incremental: the ``partial_*`` hooks maintain
the fit over a sliding window with Welford add/remove in O(1) per slide
(drift-guarded — see :mod:`repro.learning.partial`), so relearn-per-slide
stream workloads no longer pay O(window) per tuple.
"""

from __future__ import annotations

import numpy as np

from repro.core.accuracy import AccuracyInfo
from repro.core.analytic import accuracy_from_stats
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import LearningError
from repro.learning.base import Learner, LearnedDistribution
from repro.learning.partial import DEFAULT_RESUM_INTERVAL, PartialFitState

__all__ = ["GaussianLearner"]


class GaussianLearner(Learner):
    """Fits N(sample mean, unbiased sample variance)."""

    supports_partial = True
    partial_vectorizable = True

    def learn(self, sample: "np.ndarray | list[float]") -> LearnedDistribution:
        arr = self._validated(sample, minimum=2)
        mu = float(arr.mean())
        sigma2 = float(arr.var(ddof=1))
        return LearnedDistribution(GaussianDistribution(mu, sigma2), arr)

    # -- incremental hooks ---------------------------------------------------

    def partial_begin(
        self, resum_interval: int | None = None
    ) -> PartialFitState:
        if resum_interval is None:
            resum_interval = DEFAULT_RESUM_INTERVAL
        return PartialFitState(resum_interval)

    def partial_add(self, state: PartialFitState, x: float) -> None:
        state.add(self._validated_observation(x))

    def partial_evict(self, state: PartialFitState, x: float) -> None:
        state.evict(self._validated_observation(x))

    def partial_distribution(
        self, state: PartialFitState
    ) -> GaussianDistribution:
        if state.count < 2:
            raise LearningError(
                f"need at least 2 observations, got {state.count}"
            )
        return GaussianDistribution(state.mean, state.variance)

    def partial_accuracy(
        self, state: PartialFitState, confidence: float = 0.95
    ) -> AccuracyInfo:
        return accuracy_from_stats(
            state.mean, state.variance, state.count, confidence
        )

    def partial_moments(
        self, state: PartialFitState
    ) -> tuple[float, float, int]:
        return state.mean, state.variance, state.count
