"""Rolling learner state: Welford moments with remove + drift guard.

The incremental-learning hooks (:meth:`~repro.learning.base.Learner.partial_add`
/ :meth:`~repro.learning.base.Learner.partial_evict`) operate on a state
object created by ``partial_begin``.  :class:`PartialFitState` is the
shared substance of those states:

* Welford's online mean/M2 with the standard *removal* update, so a
  sliding window of observations is maintained in O(1) per slide
  instead of refitting from scratch (O(window));
* a multiset mirror of the window contents, so evictions may happen in
  any order (not just FIFO) and the drift guard can recompute the
  moments exactly;
* the drift guard itself: Welford removal is numerically stable but not
  exact, so every ``resum_interval`` evictions (default
  :data:`DEFAULT_RESUM_INTERVAL`) the mean and M2 are recomputed from
  the mirror with :func:`math.fsum`.  Immediately after a re-sum the
  moments equal the exactly rounded two-pass reference.

This module is deliberately free of :mod:`repro.streams` imports (the
stream operators import the learning registry, so the dependency must
point this way); the window-side kernels live in
:mod:`repro.streams.rolling` and share the same drift-guard design.
"""

from __future__ import annotations

import math

from repro.errors import LearningError

__all__ = ["DEFAULT_RESUM_INTERVAL", "PartialFitState"]

#: Evictions between exact re-computations of the Welford moments.
#: Mirrors ``repro.streams.rolling.DEFAULT_RESUM_INTERVAL``.
DEFAULT_RESUM_INTERVAL = 4096


class PartialFitState:
    """Sufficient statistics of a sliding observation window.

    Subclassed per learner (Gaussian adds nothing; the histogram state
    adds bin counts).  The owning operator binds
    :attr:`resums_counter` / :attr:`drift_histogram` when observability
    is attached; they must be unbound (``set_metrics(None, None)``)
    before the state is pickled or deep-copied.
    """

    __slots__ = (
        "count",
        "_mean",
        "_m2",
        "_mirror",
        "resum_interval",
        "_evictions_since_resum",
        "resums",
        "last_drift",
        "resums_counter",
        "drift_histogram",
    )

    def __init__(self, resum_interval: int = DEFAULT_RESUM_INTERVAL) -> None:
        if resum_interval < 1:
            raise LearningError(
                f"resum interval must be >= 1, got {resum_interval}"
            )
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._mirror: dict[float, int] = {}
        self.resum_interval = int(resum_interval)
        self._evictions_since_resum = 0
        #: Exact re-computations performed so far.
        self.resums = 0
        #: Drift magnitude observed at the latest re-computation.
        self.last_drift = 0.0
        self.resums_counter = None
        self.drift_histogram = None

    # -- incremental maintenance -------------------------------------------

    def add(self, x: float) -> None:
        """Welford add: O(1)."""
        mirror = self._mirror
        mirror[x] = mirror.get(x, 0) + 1
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    def evict(self, x: float) -> None:
        """Welford remove of a window member: O(1) amortized.

        ``x`` must be a value previously added and not yet evicted
        (checked against the multiset mirror); members may leave in any
        order.
        """
        mirror = self._mirror
        remaining = mirror.get(x, 0) - 1
        if remaining < 0:
            raise LearningError(
                f"evicted observation {x!r} is not in the window"
            )
        if remaining:
            mirror[x] = remaining
        else:
            del mirror[x]
        self.count -= 1
        cancelled = False
        if self.count == 0:
            self._mean = 0.0
            self._m2 = 0.0
        else:
            delta = x - self._mean
            self._mean -= delta / self.count
            removed = delta * (x - self._mean)
            m2 = self._m2 - removed
            if m2 < 0.0:  # removal residue; M2 is a sum of squares
                m2 = 0.0
            self._m2 = m2
            # Evicting a member that dominated M2 cancels catastrophically:
            # what remains is smaller than the rounding error of the value
            # subtracted, so it is noise, not a variance.  The periodic
            # guard is too slow for this — recompute exactly right away.
            cancelled = removed != 0.0 and m2 <= abs(removed) * 1e-9
        self._evictions_since_resum += 1
        if self._evictions_since_resum >= self.resum_interval:
            self._evictions_since_resum = 0
            self._resum()
        elif cancelled:
            # Corrective re-sum only: leave the periodic counter alone so
            # the every-resum_interval cadence stays deterministic.
            self._resum()

    # -- drift guard --------------------------------------------------------

    def _resum(self) -> None:
        """Exact two-pass recomputation of mean/M2 from the mirror."""
        n = self.count
        if n == 0:
            drift = max(abs(self._mean), abs(self._m2))
            self._mean = 0.0
            self._m2 = 0.0
        else:
            items = self._mirror.items()
            mean = math.fsum(v * c for v, c in items) / n
            m2 = math.fsum(c * (v - mean) * (v - mean) for v, c in items)
            drift = max(abs(self._mean - mean), abs(self._m2 - m2))
            self._mean = mean
            self._m2 = m2
        self.resums += 1
        self.last_drift = drift
        if self.resums_counter is not None:
            self.resums_counter.inc()
        if self.drift_histogram is not None:
            self.drift_histogram.observe(drift)

    def set_metrics(self, resums_counter, drift_histogram) -> None:
        """Bind (or, with Nones, unbind) the drift-guard metrics."""
        self.resums_counter = resums_counter
        self.drift_histogram = drift_histogram

    # -- statistics ---------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Approximate retained bytes (feeds the ``state.bytes`` gauge).

        Dominated by the multiset mirror: one dict entry (boxed float
        key + boxed int count) is ~100 bytes — O(distinct window values),
        which is O(window) for continuous observations.
        """
        return 160 + 100 * len(self._mirror)

    @property
    def mean(self) -> float:
        """Sample mean of the current window."""
        if self.count < 1:
            raise LearningError("mean of an empty observation window")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance s^2 (requires >= 2 observations)."""
        if self.count < 2:
            raise LearningError(
                f"sample variance needs >= 2 observations, got {self.count}"
            )
        return max(self._m2 / (self.count - 1), 0.0)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def __len__(self) -> int:
        return self.count
