"""Learner protocol and the sample-carrying learned distribution.

The paper's central observation is that once a distribution is learned its
accuracy information is lost *unless the system keeps the link to the
sample*.  :class:`LearnedDistribution` is that link: a distribution plus
the observations it came from, with convenience accessors for the sample
statistics and the analytical accuracy info.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.core.accuracy import AccuracyInfo
from repro.core.analytic import accuracy_from_sample, distribution_accuracy
from repro.core.dfsample import DfSized
from repro.distributions.base import Distribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import LearningError

__all__ = ["Learner", "LearnedDistribution"]


@dataclasses.dataclass(frozen=True)
class LearnedDistribution:
    """A distribution bundled with the raw sample it was learned from."""

    distribution: Distribution
    sample: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.sample, dtype=float).ravel()
        if arr.size == 0:
            raise LearningError("learned distribution needs a non-empty sample")
        object.__setattr__(self, "sample", arr)

    @property
    def sample_size(self) -> int:
        return int(self.sample.size)

    def as_dfsized(self) -> DfSized:
        """The (distribution, sample size) pair used by query evaluation."""
        return DfSized(self.distribution, self.sample_size)

    def accuracy(self, confidence: float = 0.95) -> AccuracyInfo:
        """Analytical accuracy info (Lemmas 1 & 2) from the backing sample.

        Mean/variance intervals come from the sample statistics; per-bin
        intervals are included when the learned distribution is a
        histogram.
        """
        if self.sample_size < 2:
            # Fall back to Theorem 1 with the distribution statistics is
            # impossible too (n >= 2 required) — surface a clear error.
            raise LearningError(
                "accuracy requires a sample of size >= 2; "
                f"got {self.sample_size}"
            )
        histogram = (
            self.distribution
            if isinstance(self.distribution, HistogramDistribution)
            else None
        )
        return accuracy_from_sample(self.sample, confidence, histogram)

    def accuracy_from_distribution(
        self, confidence: float = 0.95
    ) -> AccuracyInfo:
        """Theorem-1-style accuracy using the distribution's own moments."""
        return distribution_accuracy(
            self.distribution, self.sample_size, confidence
        )


class Learner(abc.ABC):
    """Learns a distribution from an iid sample of observations."""

    @abc.abstractmethod
    def learn(self, sample: "np.ndarray | list[float]") -> LearnedDistribution:
        """Fit a distribution to the sample; raises LearningError if unfit."""

    @staticmethod
    def _validated(sample: "np.ndarray | list[float]", minimum: int = 1
                   ) -> np.ndarray:
        arr = np.asarray(sample, dtype=float).ravel()
        if arr.size < minimum:
            raise LearningError(
                f"need at least {minimum} observations, got {arr.size}"
            )
        if not np.all(np.isfinite(arr)):
            raise LearningError("observations must be finite")
        return arr
