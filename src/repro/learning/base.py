"""Learner protocol and the sample-carrying learned distribution.

The paper's central observation is that once a distribution is learned its
accuracy information is lost *unless the system keeps the link to the
sample*.  :class:`LearnedDistribution` is that link: a distribution plus
the observations it came from, with convenience accessors for the sample
statistics and the analytical accuracy info.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.core.accuracy import AccuracyInfo
from repro.core.analytic import accuracy_from_sample, distribution_accuracy
from repro.core.dfsample import DfSized
from repro.distributions.base import Distribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import LearningError

__all__ = ["Learner", "LearnedDistribution"]


@dataclasses.dataclass(frozen=True)
class LearnedDistribution:
    """A distribution bundled with the raw sample it was learned from."""

    distribution: Distribution
    sample: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.sample, dtype=float).ravel()
        if arr.size == 0:
            raise LearningError("learned distribution needs a non-empty sample")
        object.__setattr__(self, "sample", arr)

    @property
    def sample_size(self) -> int:
        return int(self.sample.size)

    def as_dfsized(self) -> DfSized:
        """The (distribution, sample size) pair used by query evaluation."""
        return DfSized(self.distribution, self.sample_size)

    def accuracy(self, confidence: float = 0.95) -> AccuracyInfo:
        """Analytical accuracy info (Lemmas 1 & 2) from the backing sample.

        Mean/variance intervals come from the sample statistics; per-bin
        intervals are included when the learned distribution is a
        histogram.
        """
        if self.sample_size < 2:
            # Fall back to Theorem 1 with the distribution statistics is
            # impossible too (n >= 2 required) — surface a clear error.
            raise LearningError(
                "accuracy requires a sample of size >= 2; "
                f"got {self.sample_size}"
            )
        histogram = (
            self.distribution
            if isinstance(self.distribution, HistogramDistribution)
            else None
        )
        return accuracy_from_sample(self.sample, confidence, histogram)

    def accuracy_from_distribution(
        self, confidence: float = 0.95
    ) -> AccuracyInfo:
        """Theorem-1-style accuracy using the distribution's own moments."""
        return distribution_accuracy(
            self.distribution, self.sample_size, confidence
        )


class Learner(abc.ABC):
    """Learns a distribution from an iid sample of observations.

    Besides the batch :meth:`learn`, a learner may support *incremental*
    fitting over a sliding window of observations through the
    ``partial_*`` hooks: :meth:`partial_begin` creates a rolling state
    (a :class:`~repro.learning.partial.PartialFitState`),
    :meth:`partial_add` / :meth:`partial_evict` maintain it in O(1)
    amortized per slide, and :meth:`partial_distribution` /
    :meth:`partial_accuracy` read the current fit and its Lemma 1/2
    confidence intervals without refitting from scratch.  Learners that
    support this set :attr:`supports_partial`; the default hooks raise
    :class:`LearningError`.  See ``docs/ROLLING.md``.
    """

    #: Whether the ``partial_*`` incremental hooks are available.  May be
    #: a per-instance property (``HistogramLearner`` supports them only
    #: with fixed bucket edges).
    supports_partial: bool = False

    #: Whether ``partial_moments`` feeds the vectorized Lemma-2 batch
    #: kernel (:func:`repro.core.analytic.accuracy_from_moments`); bin-
    #: carrying learners compute per-slide accuracy instead.
    partial_vectorizable: bool = False

    #: Whether the rolling state handles sliding-window eviction itself
    #: (bounded-memory sketch synopses: :mod:`repro.learning.sketch`).
    #: When set, the owning operator keeps only a fill counter — no
    #: O(window) value buffer — and calls ``partial_evict(state, None)``
    #: once per expiry; the evicted value is not replayed because the
    #: state expires its own oldest content (FIFO chunk expiry).
    partial_self_evicting: bool = False

    @abc.abstractmethod
    def learn(self, sample: "np.ndarray | list[float]") -> LearnedDistribution:
        """Fit a distribution to the sample; raises LearningError if unfit."""

    # -- incremental (sliding-window) hooks ---------------------------------

    def partial_begin(self, resum_interval: int | None = None) -> object:
        """Create an empty rolling-fit state for a sliding window."""
        raise LearningError(
            f"{type(self).__name__} does not support incremental learning"
        )

    def partial_add(self, state: object, x: float) -> None:
        """Fold one new observation into the rolling state (O(1))."""
        raise LearningError(
            f"{type(self).__name__} does not support incremental learning"
        )

    def partial_evict(self, state: object, x: float) -> None:
        """Remove one previously added observation (O(1) amortized)."""
        raise LearningError(
            f"{type(self).__name__} does not support incremental learning"
        )

    def partial_distribution(self, state: object) -> "object":
        """The distribution currently fit to the window."""
        raise LearningError(
            f"{type(self).__name__} does not support incremental learning"
        )

    def partial_accuracy(
        self, state: object, confidence: float = 0.95
    ) -> AccuracyInfo:
        """Lemma 1/2 accuracy of the current fit (analytic intervals)."""
        raise LearningError(
            f"{type(self).__name__} does not support incremental learning"
        )

    def partial_moments(self, state: object) -> tuple[float, float, int]:
        """``(sample mean, unbiased variance, n)`` of the current window."""
        raise LearningError(
            f"{type(self).__name__} does not support incremental learning"
        )

    @staticmethod
    def _validated_observation(x: object) -> float:
        """Check one incremental observation the way ``learn`` checks many."""
        if isinstance(x, bool) or not isinstance(x, (int, float)):
            raise LearningError(
                f"observations must be real numbers, got {type(x).__name__}"
            )
        value = float(x)
        if not np.isfinite(value):
            raise LearningError("observations must be finite")
        return value

    @staticmethod
    def _validated(sample: "np.ndarray | list[float]", minimum: int = 1
                   ) -> np.ndarray:
        arr = np.asarray(sample, dtype=float).ravel()
        if arr.size < minimum:
            raise LearningError(
                f"need at least {minimum} observations, got {arr.size}"
            )
        if not np.all(np.isfinite(arr)):
            raise LearningError("observations must be finite")
        return arr
