"""Gaussian-kernel density estimation.

The paper lists kernel methods among the learning techniques a stream
database may apply (§I).  We implement a Gaussian KDE with Silverman's
bandwidth as a dedicated distribution type with vectorised moments, cdf,
and sampling (a KDE is a uniform mixture of Gaussians centred at the
observations).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.distributions.base import Distribution
from repro.errors import LearningError
from repro.learning.base import Learner, LearnedDistribution

__all__ = ["KdeDistribution", "KdeLearner"]


class KdeDistribution(Distribution):
    """Uniform mixture of N(x_i, h^2) over the observations x_i."""

    __slots__ = ("points", "bandwidth")

    def __init__(self, points: np.ndarray, bandwidth: float) -> None:
        arr = np.asarray(points, dtype=float).ravel()
        if arr.size == 0:
            raise LearningError("KDE needs at least one observation")
        if bandwidth <= 0:
            raise LearningError(f"bandwidth must be > 0, got {bandwidth}")
        self.points = arr
        self.bandwidth = float(bandwidth)

    def mean(self) -> float:
        return float(self.points.mean())

    def variance(self) -> float:
        # Mixture variance: average component variance + variance of centres.
        return float(self.points.var(ddof=0) + self.bandwidth**2)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        centres = rng.choice(self.points, size=size, replace=True)
        return centres + rng.normal(0.0, self.bandwidth, size)

    def cdf(self, x: float) -> float:
        z = (x - self.points) / self.bandwidth
        return float(stats.norm.cdf(z).mean())

    def pdf(self, x: float) -> float:
        """Kernel density estimate at ``x``."""
        z = (x - self.points) / self.bandwidth
        return float(stats.norm.pdf(z).mean() / self.bandwidth)

    def __repr__(self) -> str:
        return (
            f"KdeDistribution(n={self.points.size}, "
            f"bandwidth={self.bandwidth:.4g})"
        )


def silverman_bandwidth(sample: np.ndarray) -> float:
    """Silverman's rule of thumb: 0.9 * min(s, IQR/1.34) * n^(-1/5)."""
    n = sample.size
    s = float(sample.std(ddof=1)) if n > 1 else 0.0
    q75, q25 = np.percentile(sample, [75, 25])
    iqr = float(q75 - q25)
    spread_candidates = [v for v in (s, iqr / 1.34) if v > 0]
    spread = min(spread_candidates) if spread_candidates else 1.0
    return 0.9 * spread * n ** (-1.0 / 5.0)


class KdeLearner(Learner):
    """Learns a :class:`KdeDistribution` with Silverman's bandwidth."""

    def __init__(self, bandwidth: float | None = None) -> None:
        if bandwidth is not None and bandwidth <= 0:
            raise LearningError(f"bandwidth must be > 0, got {bandwidth}")
        self.bandwidth = bandwidth

    def learn(self, sample: "np.ndarray | list[float]") -> LearnedDistribution:
        arr = self._validated(sample, minimum=2)
        h = self.bandwidth if self.bandwidth is not None else (
            silverman_bandwidth(arr)
        )
        return LearnedDistribution(KdeDistribution(arr, h), arr)
