"""Distribution learning from raw observation samples.

A stream database transforms raw observation records into a single record
with a distribution field (Example 1 of the paper).  Each learner consumes
a sample and produces a :class:`LearnedDistribution` that keeps the sample
around — the sample size is exactly what the accuracy machinery needs.
"""

from repro.learning.base import Learner, LearnedDistribution
from repro.learning.partial import DEFAULT_RESUM_INTERVAL, PartialFitState
from repro.learning.histogram_learner import (
    HistogramLearner,
    equi_width_edges,
    equi_depth_edges,
)
from repro.learning.gaussian_learner import GaussianLearner
from repro.learning.empirical_learner import EmpiricalLearner
from repro.learning.kde_learner import KdeLearner
from repro.learning.weighted import WeightedLearner, WeightedLearnedDistribution
from repro.learning.registry import (
    LEARNERS,
    make_learner,
    make_rolling_learner,
    register_learner,
)
from repro.learning.sketch import (
    AmsSketch,
    CountMinSketch,
    FrequencySketchLearner,
    HistogramSynopsis,
    HistogramSynopsisLearner,
    KllSketch,
    QuantileSketchLearner,
    SketchWindowState,
)

__all__ = [
    "Learner",
    "LearnedDistribution",
    "PartialFitState",
    "DEFAULT_RESUM_INTERVAL",
    "HistogramLearner",
    "equi_width_edges",
    "equi_depth_edges",
    "GaussianLearner",
    "EmpiricalLearner",
    "KdeLearner",
    "WeightedLearner",
    "WeightedLearnedDistribution",
    "LEARNERS",
    "make_learner",
    "make_rolling_learner",
    "register_learner",
    "AmsSketch",
    "CountMinSketch",
    "FrequencySketchLearner",
    "HistogramSynopsis",
    "HistogramSynopsisLearner",
    "KllSketch",
    "QuantileSketchLearner",
    "SketchWindowState",
]
