"""Sketch-backed learners: bounded memory as an accuracy knob.

Three :class:`~repro.learning.base.Learner` registry entries wrap the
synopses of this package behind the standard ``partial_*`` hooks, so
:class:`~repro.streams.operators.RollingLearnOperator`,
:class:`~repro.streams.groupby.GroupedAggregate`, and the windowed
aggregates work unchanged:

* ``"sketch-quantile"`` (:class:`QuantileSketchLearner`) — KLL quantile
  sketch; emits an equi-depth :class:`~repro.distributions.histogram.
  HistogramDistribution` read off the sketch quantiles.
* ``"sketch-frequency"`` (:class:`FrequencySketchLearner`) — Count-Min
  + AMS plus a bounded heavy-hitter candidate set; emits a
  :class:`~repro.distributions.discrete.DiscreteDistribution`.
* ``"sketch-histogram"`` (:class:`HistogramSynopsisLearner`) — integer
  bucket counts over pinned edges; emits the exact-bucket
  :class:`~repro.distributions.histogram.HistogramDistribution`.

All three set :attr:`~repro.learning.base.Learner.partial_self_evicting`
— the sliding window lives inside :class:`~repro.learning.sketch.window.
SketchWindowState` (chunked, whole-chunk eviction), so the owning
operator keeps only a fill counter instead of an O(window) value buffer.

The error model (``docs/SKETCHES.md``): mean/variance intervals come
from *exact* per-chunk Welford moments, so they are widened only by the
staleness of the not-yet-dropped expired tail (in value units, scaled
by the window's value range); bin/probability estimates additionally
carry the synopsis' own probability-unit bound (KLL rank error, CM
``e/width``, histogram clamped fraction).  The total probability-unit
bound is recorded as ``AccuracyInfo.synopsis_error`` and flows into
provenance.
"""

from __future__ import annotations

import numpy as np

from repro.core.accuracy import AccuracyInfo
from repro.core.analytic import accuracy_from_stats
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import LearningError
from repro.learning.base import Learner, LearnedDistribution
from repro.learning.sketch.frequency import AmsSketch, CountMinSketch
from repro.learning.sketch.histogram import HistogramSynopsis
from repro.learning.sketch.quantile import KllSketch
from repro.learning.sketch.window import (
    DEFAULT_CHUNK_COUNT,
    SketchWindowState,
)

__all__ = [
    "FrequencySketchLearner",
    "HistogramSynopsisLearner",
    "QuantileSketchLearner",
]


class _SketchLearner(Learner):
    """Shared partial plumbing: every hook rides a SketchWindowState."""

    supports_partial = True
    partial_vectorizable = False
    partial_self_evicting = True

    def __init__(self, chunk_count: int, chunk_size: int) -> None:
        self.chunk_count = int(chunk_count)
        self.chunk_size = int(chunk_size)

    def _make_synopsis(self) -> object:
        raise NotImplementedError

    def partial_begin(self, resum_interval: int | None = None) -> object:
        # ``resum_interval`` is accepted for hook compatibility but
        # unused: chunk statistics are add-only, so there is no Welford
        # removal drift to guard against.
        return SketchWindowState(
            self._make_synopsis, self.chunk_count, self.chunk_size
        )

    def partial_add(self, state: SketchWindowState, x: float) -> None:
        state.add(self._validated_observation(x))

    def partial_evict(self, state: SketchWindowState, x: object) -> None:
        # The evicted value is ignored: eviction is FIFO chunk expiry
        # (self-evicting learners receive ``None`` from the operator).
        state.evict()

    def partial_moments(
        self, state: SketchWindowState
    ) -> tuple[float, float, int]:
        mean, variance, _ = state.moments()
        return mean, variance, state.count

    def partial_accuracy(
        self, state: SketchWindowState, confidence: float = 0.95
    ) -> AccuracyInfo:
        mean, variance, _ = state.moments()
        n = state.count
        if n < 2:
            raise LearningError(
                f"accuracy requires a window fill >= 2, got {n}"
            )
        base = accuracy_from_stats(
            mean, variance, n, confidence, self._accuracy_histogram(state)
        )
        stale = state.staleness
        value_span = state.value_range
        bin_eps = min(self._shape_epsilon(state) + stale, 1.0)
        return base.widened(
            mean_eps=stale * value_span,
            variance_eps=stale * value_span * value_span,
            bin_eps=bin_eps,
            synopsis_error=bin_eps,
        )

    def _shape_epsilon(self, state: SketchWindowState) -> float:
        """Probability-unit error of the synopsis' shape estimates."""
        raise NotImplementedError

    def _accuracy_histogram(
        self, state: SketchWindowState
    ) -> "HistogramDistribution | None":
        """Histogram handed to Lemma 1 for per-bin intervals, if any."""
        return None


class QuantileSketchLearner(_SketchLearner):
    """KLL-backed quantile learner; distributions are equi-depth reads.

    Parameters
    ----------
    k:
        KLL capacity (space ~3k items; rank error ~O(1/k)).
    bucket_count:
        Buckets of the emitted equi-depth histogram.
    chunk_count / chunk_size:
        Sliding-window ring shape (see ``SketchWindowState``).
    """

    def __init__(
        self,
        k: int = 200,
        bucket_count: int = 10,
        chunk_count: int = DEFAULT_CHUNK_COUNT,
        chunk_size: int = 512,
    ) -> None:
        super().__init__(chunk_count, chunk_size)
        if bucket_count < 1:
            raise LearningError(
                f"bucket count must be >= 1, got {bucket_count}"
            )
        self.k = int(k)
        self.bucket_count = int(bucket_count)
        self._probe = KllSketch(self.k)  # validates k eagerly

    def _make_synopsis(self) -> KllSketch:
        return KllSketch(self.k)

    def _distribution_from_sketch(
        self, sketch: KllSketch
    ) -> HistogramDistribution:
        qs = np.linspace(0.0, 1.0, self.bucket_count + 1)
        values = sketch.quantiles(qs)
        # Collapse duplicate quantile values (heavy ties), keeping the
        # *last* occurrence so each surviving edge carries the full
        # cumulative mass at that value.
        keep = np.r_[values[1:] != values[:-1], True]
        edges = values[keep]
        cum = qs[keep]
        if edges.size < 2:
            # Constant window: a single positive-width bucket, matching
            # the equi_width_edges degenerate-range convention.
            value = float(edges[0])
            return HistogramDistribution(
                [value - 0.5, value + 0.5], [1.0]
            )
        probabilities = np.diff(cum)
        probabilities[0] += cum[0]
        return HistogramDistribution(edges, probabilities)

    def learn(
        self, sample: "np.ndarray | list[float]"
    ) -> LearnedDistribution:
        arr = self._validated(sample)
        sketch = self._make_synopsis()
        for x in arr.tolist():
            sketch.update(x)
        return LearnedDistribution(
            self._distribution_from_sketch(sketch), arr
        )

    def partial_distribution(
        self, state: SketchWindowState
    ) -> HistogramDistribution:
        if state.count < 1:
            raise LearningError("distribution of an empty window")
        return self._distribution_from_sketch(state.merged())

    def _shape_epsilon(self, state: SketchWindowState) -> float:
        return state.merged().epsilon

    def _accuracy_histogram(
        self, state: SketchWindowState
    ) -> HistogramDistribution:
        return self._distribution_from_sketch(state.merged())


class _FrequencySynopsis:
    """Count-Min + AMS + a bounded, deterministic candidate set.

    Count-Min answers point-frequency queries but cannot enumerate the
    support, so a capped exact-count dictionary tracks candidate heavy
    hitters: when it overflows past ``2 * capacity`` it is pruned back
    to ``capacity`` by (tracked count desc, value asc) — deterministic,
    and merge-stable because merges re-prune the summed dictionaries the
    same way.
    """

    __slots__ = ("cm", "ams", "candidates", "capacity")

    def __init__(
        self,
        cm_width: int,
        cm_depth: int,
        ams_width: int,
        capacity: int,
    ) -> None:
        self.cm = CountMinSketch(cm_width, cm_depth)
        self.ams = AmsSketch(ams_width, cm_depth)
        self.candidates: dict[float, int] = {}
        self.capacity = capacity

    @property
    def n(self) -> int:
        return self.cm.n

    @property
    def epsilon(self) -> float:
        return self.cm.epsilon

    def update(self, x: float) -> None:
        self.cm.update(x)
        self.ams.update(x)
        candidates = self.candidates
        candidates[x] = candidates.get(x, 0) + 1
        if len(candidates) > 2 * self.capacity:
            self._prune()

    def _prune(self) -> None:
        ranked = sorted(
            self.candidates.items(), key=lambda kv: (-kv[1], kv[0])
        )
        self.candidates = dict(ranked[: self.capacity])

    def merge(self, other: "_FrequencySynopsis") -> "_FrequencySynopsis":
        if self.capacity != other.capacity:
            raise LearningError(
                "cannot merge frequency synopses with different "
                f"candidate capacities: {self.capacity} vs {other.capacity}"
            )
        merged = _FrequencySynopsis.__new__(_FrequencySynopsis)
        merged.cm = self.cm.merge(other.cm)
        merged.ams = self.ams.merge(other.ams)
        merged.capacity = self.capacity
        candidates = dict(self.candidates)
        for value, count in other.candidates.items():
            candidates[value] = candidates.get(value, 0) + count
        merged.candidates = candidates
        if len(candidates) > 2 * merged.capacity:
            merged._prune()
        return merged

    def second_moment(self) -> float:
        return self.ams.second_moment()

    @property
    def nbytes(self) -> int:
        return self.cm.nbytes + self.ams.nbytes + 48 * len(self.candidates)

    def _parts(self) -> tuple:
        values = np.fromiter(
            self.candidates.keys(), dtype=np.float64, count=len(self.candidates)
        )
        counts = np.fromiter(
            self.candidates.values(), dtype=np.int64, count=len(self.candidates)
        )
        return (
            self.capacity,
            self.cm.to_arrays(),
            self.ams.to_arrays(),
            values,
            counts,
        )

    @classmethod
    def _from_parts(cls, capacity, cm_arrays, ams_arrays, values, counts):
        synopsis = cls.__new__(cls)
        synopsis.capacity = capacity
        synopsis.cm = CountMinSketch.from_arrays(*cm_arrays)
        synopsis.ams = AmsSketch.from_arrays(*ams_arrays)
        synopsis.candidates = dict(
            zip(values.tolist(), (int(c) for c in counts))
        )
        return synopsis

    def __reduce__(self):
        return (_FrequencySynopsis._from_parts, self._parts())


class FrequencySketchLearner(_SketchLearner):
    """Count-Min/AMS-backed learner for discrete-valued streams.

    Emits a :class:`DiscreteDistribution` over the tracked heavy-hitter
    candidates with Count-Min frequency estimates as weights; point
    probabilities err by at most ``e / cm_width`` plus the window
    staleness (the recorded synopsis error).  ``partial_second_moment``
    exposes the AMS F2 estimate of the retained window.
    """

    def __init__(
        self,
        cm_width: int = 1024,
        cm_depth: int = 5,
        ams_width: int = 256,
        support_size: int = 64,
        chunk_count: int = DEFAULT_CHUNK_COUNT,
        chunk_size: int = 512,
    ) -> None:
        super().__init__(chunk_count, chunk_size)
        if support_size < 1:
            raise LearningError(
                f"support size must be >= 1, got {support_size}"
            )
        self.cm_width = int(cm_width)
        self.cm_depth = int(cm_depth)
        self.ams_width = int(ams_width)
        self.support_size = int(support_size)
        self._probe = self._make_synopsis()  # validates shapes eagerly

    def _make_synopsis(self) -> _FrequencySynopsis:
        return _FrequencySynopsis(
            self.cm_width, self.cm_depth, self.ams_width, self.support_size
        )

    def _distribution_from_synopsis(
        self, synopsis: _FrequencySynopsis
    ) -> DiscreteDistribution:
        candidates = synopsis.candidates
        if not candidates:
            raise LearningError("distribution of an empty synopsis")
        ranked = sorted(
            candidates.items(), key=lambda kv: (-kv[1], kv[0])
        )[: self.support_size]
        support = [value for value, _ in ranked]
        weights = [synopsis.cm.estimate(value) for value in support]
        return DiscreteDistribution(support, weights)

    def learn(
        self, sample: "np.ndarray | list[float]"
    ) -> LearnedDistribution:
        arr = self._validated(sample)
        synopsis = self._make_synopsis()
        for x in arr.tolist():
            synopsis.update(x)
        return LearnedDistribution(
            self._distribution_from_synopsis(synopsis), arr
        )

    def partial_distribution(
        self, state: SketchWindowState
    ) -> DiscreteDistribution:
        if state.count < 1:
            raise LearningError("distribution of an empty window")
        return self._distribution_from_synopsis(state.merged())

    def partial_second_moment(self, state: SketchWindowState) -> float:
        """AMS estimate of F2 = sum of squared frequencies (retained)."""
        return state.merged().second_moment()

    def _shape_epsilon(self, state: SketchWindowState) -> float:
        return state.merged().epsilon


class HistogramSynopsisLearner(_SketchLearner):
    """Pinned-edge histogram synopsis learner: bounded and near-exact.

    Bucket probabilities are exact integer counts (no shape error beyond
    the clamped out-of-range fraction); memory is O(buckets) per chunk.
    Edges must be pinned up front, the same restriction the exact
    ``HistogramLearner`` imposes for its incremental path.
    """

    def __init__(
        self,
        edges: "np.ndarray | list[float]",
        chunk_count: int = DEFAULT_CHUNK_COUNT,
        chunk_size: int = 512,
    ) -> None:
        super().__init__(chunk_count, chunk_size)
        # Validate eagerly via a probe instance; keep the canonical array.
        self.edges = HistogramSynopsis(edges).edges

    def _make_synopsis(self) -> HistogramSynopsis:
        return HistogramSynopsis(self.edges)

    def _distribution_from_synopsis(
        self, synopsis: HistogramSynopsis
    ) -> HistogramDistribution:
        if synopsis.n < 1:
            raise LearningError("distribution of an empty synopsis")
        return HistogramDistribution(synopsis.edges, synopsis.counts)

    def learn(
        self, sample: "np.ndarray | list[float]"
    ) -> LearnedDistribution:
        arr = self._validated(sample)
        synopsis = self._make_synopsis()
        for x in arr.tolist():
            synopsis.update(x)
        return LearnedDistribution(
            self._distribution_from_synopsis(synopsis), arr
        )

    def partial_distribution(
        self, state: SketchWindowState
    ) -> HistogramDistribution:
        if state.count < 1:
            raise LearningError("distribution of an empty window")
        return self._distribution_from_synopsis(state.merged())

    def _shape_epsilon(self, state: SketchWindowState) -> float:
        return state.merged().epsilon

    def _accuracy_histogram(
        self, state: SketchWindowState
    ) -> HistogramDistribution:
        return self._distribution_from_synopsis(state.merged())
