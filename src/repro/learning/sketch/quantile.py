"""KLL-style mergeable quantile sketch with deterministic compaction.

The sketch keeps a hierarchy of level buffers: level ``l`` holds items
that each represent ``2**l`` stream elements.  When the total buffered
item count exceeds the capacity budget, the lowest over-full level is
*compacted*: its buffer is sorted and every second item is promoted to
the level above, halving the buffer at the cost of a bounded rank
error.  Capacities decay geometrically from the top level
(``k * (2/3)**depth``), which is what gives KLL its O(k) space for an
O(1/k) rank-error guarantee [Karnin, Lang & Liberty, FOCS'16].

Two departures from the textbook sketch, both in service of the repo's
determinism contract (``docs/PARALLELISM.md``):

* **Seed-stable compaction.**  The even/odd promotion choice is drawn
  from a splitmix64 counter chain seeded by a fixed constant, never
  from global randomness — the sketch of a given input sequence is a
  pure function of that sequence, so sharded runs stay byte-identical
  at any worker count (fixed seed, pinned ``n_shards``).
* **A self-reported error bound.**  Every compaction at level ``l``
  adds at most ``2**(l-1)`` to the worst-case rank error; the sketch
  accumulates that bound exactly (an integer) and exposes it as
  :attr:`KllSketch.epsilon` — the *actual* certified bound for the
  stream seen so far, not the asymptotic constant.  Merging sums the
  operands' bounds, so a merged sketch's certificate is equally valid.

Merge semantics: :meth:`KllSketch.merge` combines the per-level item
multisets (sorted, so operand order cannot matter) and the coin states
symmetrically, then re-compacts — merges are deterministic and exactly
commutative at the byte level; associativity holds at the guarantee
level (every grouping's result certifies its own ``epsilon``).  The
count-based structures in :mod:`repro.learning.sketch.frequency` and
:mod:`repro.learning.sketch.histogram` are exactly associative too.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

import numpy as np

from repro.errors import LearningError

__all__ = ["KllSketch", "splitmix64"]

#: Geometric capacity decay per level below the top (the classic KLL c).
_DECAY = 2.0 / 3.0
#: Minimum per-level buffer capacity.
_MIN_CAPACITY = 2
#: Fixed seed for the compaction coin chain.  Not configurable: the
#: sketch must be a pure function of its input sequence so that sharded
#: execution is reproducible without threading a seed through learners.
_COIN_SEED = 0x9E3779B97F4A7C15


def splitmix64(state: int) -> int:
    """One splitmix64 step: uint64 in, uint64 out.  Pure and portable."""
    state = (state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class KllSketch:
    """Mergeable streaming quantiles in O(k) space.

    Parameters
    ----------
    k:
        Capacity parameter: the top-level buffer size.  Total space is
        ~``3k`` items plus two per extra level; the certified rank
        error ``epsilon`` decays as O(1/k).
    """

    __slots__ = (
        "k",
        "_levels",
        "_size",
        "n",
        "_coin",
        "_rank_error",
        "minimum",
        "maximum",
    )

    def __init__(self, k: int = 200) -> None:
        if k < 8:
            raise LearningError(f"KLL capacity k must be >= 8, got {k}")
        self.k = int(k)
        #: Level buffers, kept individually sorted; ``_levels[l]`` items
        #: each stand for ``2**l`` stream elements.
        self._levels: list[list[float]] = [[]]
        self._size = 0
        #: Total stream elements summarised (sum of item weights).
        self.n = 0
        self._coin = _COIN_SEED
        #: Accumulated worst-case rank error, in stream elements.
        self._rank_error = 0
        self.minimum = np.inf
        self.maximum = -np.inf

    # -- maintenance ---------------------------------------------------------

    def _capacity(self, level: int) -> int:
        """Target buffer capacity of ``level`` given the current depth."""
        depth = len(self._levels)
        raw = self.k * _DECAY ** (depth - 1 - level)
        return max(int(raw) if raw == int(raw) else int(raw) + 1,
                   _MIN_CAPACITY)

    def _budget(self) -> int:
        return sum(self._capacity(level) for level in range(len(self._levels)))

    def update(self, x: float) -> None:
        """Fold one observation into the sketch (amortized O(log k))."""
        insort(self._levels[0], x)
        self._size += 1
        self.n += 1
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x
        if self._size > self._budget():
            self._compress()

    def _compress(self) -> None:
        """Compact the lowest over-full level; repeat until within budget."""
        while self._size > self._budget():
            for level, buffer in enumerate(self._levels):
                if len(buffer) > self._capacity(level):
                    self._compact_level(level)
                    break
            else:
                # Every level is within its own capacity but the sum of
                # them exceeds the budget; growing a level is impossible
                # here because the budget is the sum of capacities.
                break

    def _compact_level(self, level: int) -> None:
        """Promote every second item of ``level`` to ``level + 1``."""
        buffer = self._levels[level]
        if len(buffer) < 2:
            return
        if level + 1 == len(self._levels):
            self._levels.append([])
        # Keep at most one (odd-count) leftover at this level, promote
        # the rest pairwise.  The buffer is maintained sorted.
        if len(buffer) % 2:
            self._coin = splitmix64(self._coin)
            if self._coin & 1:
                leftover, pairs = buffer[0], buffer[1:]
            else:
                leftover, pairs = buffer[-1], buffer[:-1]
            self._levels[level] = [leftover]
        else:
            pairs = buffer
            self._levels[level] = []
        self._coin = splitmix64(self._coin)
        offset = self._coin & 1
        promoted = pairs[offset::2]
        upper = self._levels[level + 1]
        if upper:
            for item in promoted:
                insort(upper, item)
        else:
            self._levels[level + 1] = list(promoted)
        removed = len(pairs) - len(promoted)
        self._size -= removed
        # Each compaction at level l perturbs ranks by at most one item
        # weight of the level above, i.e. 2**l; the standard analysis
        # charges w/2 = 2**(l-1) per surviving boundary.
        self._rank_error += 1 << level if level else 1

    # -- queries -------------------------------------------------------------

    @property
    def epsilon(self) -> float:
        """Certified relative rank error of every quantile/rank answer.

        ``|estimated_rank(x) - true_rank(x)| <= epsilon * n`` for all x,
        by construction: the bound accumulates the exact worst-case
        perturbation of each compaction performed so far.
        """
        if self.n == 0:
            return 0.0
        return min(self._rank_error / self.n, 1.0)

    def rank(self, x: float) -> float:
        """Estimated number of stream elements ``<= x``."""
        total = 0
        for level, buffer in enumerate(self._levels):
            if buffer:
                total += bisect_right(buffer, x) << level
        return float(total)

    def cdf(self, x: float) -> float:
        return self.rank(x) / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise LearningError(f"quantile must be in [0, 1], got {q}")
        if self.n == 0:
            raise LearningError("quantile of an empty sketch")
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        items, weights = self._weighted_items()
        target = q * self.n
        cumulative = np.cumsum(weights)
        index = int(np.searchsorted(cumulative, target, side="left"))
        if index >= len(items):
            index = len(items) - 1
        return float(items[index])

    def quantiles(self, qs: "np.ndarray | list[float]") -> np.ndarray:
        """Vectorized :meth:`quantile` over ascending probabilities."""
        if self.n == 0:
            raise LearningError("quantile of an empty sketch")
        probe = np.asarray(qs, dtype=float).ravel()
        if probe.size and (probe.min() < 0.0 or probe.max() > 1.0):
            raise LearningError("quantiles must be in [0, 1]")
        items, weights = self._weighted_items()
        cumulative = np.cumsum(weights)
        indices = np.searchsorted(cumulative, probe * self.n, side="left")
        indices = np.minimum(indices, len(items) - 1)
        out = items[indices]
        out[probe == 0.0] = self.minimum
        out[probe == 1.0] = self.maximum
        return out

    def _weighted_items(self) -> tuple[np.ndarray, np.ndarray]:
        """All retained items with their weights, sorted by value."""
        values: list[float] = []
        weights: list[int] = []
        for level, buffer in enumerate(self._levels):
            values.extend(buffer)
            weights.extend([1 << level] * len(buffer))
        items = np.asarray(values, dtype=np.float64)
        weight = np.asarray(weights, dtype=np.int64)
        order = np.argsort(items, kind="stable")
        return items[order], weight[order]

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "KllSketch") -> "KllSketch":
        """A new sketch summarising both operands' streams.

        Deterministic and exactly commutative: per-level buffers are
        combined as sorted multisets and the coin states combine
        symmetrically, so ``a.merge(b)`` and ``b.merge(a)`` are
        byte-identical.  The result's :attr:`epsilon` certificate sums
        the operands' bounds plus any merge-time compaction error.
        """
        if not isinstance(other, KllSketch):
            raise LearningError(
                f"cannot merge KllSketch with {type(other).__name__}"
            )
        if self.k != other.k:
            raise LearningError(
                f"cannot merge KLL sketches with different k: "
                f"{self.k} vs {other.k}"
            )
        merged = KllSketch(self.k)
        depth = max(len(self._levels), len(other._levels))
        merged._levels = []
        for level in range(depth):
            a = self._levels[level] if level < len(self._levels) else []
            b = other._levels[level] if level < len(other._levels) else []
            merged._levels.append(sorted(a + b))
        merged._size = sum(len(buf) for buf in merged._levels)
        merged.n = self.n + other.n
        merged._coin = splitmix64(
            (self._coin + other._coin) & 0xFFFFFFFFFFFFFFFF
        )
        merged._rank_error = self._rank_error + other._rank_error
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        merged._compress()
        return merged

    # -- transport -----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Retained payload size: the flattened numeric blocks."""
        meta, items = self.to_arrays()
        return meta.nbytes + items.nbytes

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Flatten into two numeric blocks (ColumnarBatch-style).

        ``meta`` is int64: ``[k, n, coin_lo, coin_hi, rank_error,
        n_levels, len(level_0), ...]`` followed by the min/max as two
        float64 values reinterpreted; ``items`` is one float64 array of
        the level buffers concatenated bottom-up.  Suitable for
        shared-memory transport — no per-item Python objects cross.
        """
        lengths = [len(buf) for buf in self._levels]
        extrema = np.asarray(
            [self.minimum, self.maximum], dtype=np.float64
        ).view(np.int64)
        meta = np.asarray(
            [
                self.k,
                self.n,
                self._coin & 0xFFFFFFFF,
                self._coin >> 32,
                self._rank_error,
                len(self._levels),
                *lengths,
                *extrema.tolist(),
            ],
            dtype=np.int64,
        )
        items = np.asarray(
            [x for buf in self._levels for x in buf], dtype=np.float64
        )
        return meta, items

    @classmethod
    def from_arrays(
        cls, meta: np.ndarray, items: np.ndarray
    ) -> "KllSketch":
        meta_list = [int(v) for v in meta]
        sketch = cls(meta_list[0])
        sketch.n = meta_list[1]
        sketch._coin = meta_list[2] | (meta_list[3] << 32)
        sketch._rank_error = meta_list[4]
        n_levels = meta_list[5]
        lengths = meta_list[6 : 6 + n_levels]
        extrema = np.asarray(
            meta_list[6 + n_levels : 8 + n_levels], dtype=np.int64
        ).view(np.float64)
        sketch.minimum = float(extrema[0])
        sketch.maximum = float(extrema[1])
        levels: list[list[float]] = []
        offset = 0
        data = np.asarray(items, dtype=np.float64)
        for length in lengths:
            levels.append(data[offset : offset + length].tolist())
            offset += length
        sketch._levels = levels if levels else [[]]
        sketch._size = sum(lengths)
        return sketch

    def __reduce__(self):
        return (KllSketch.from_arrays, self.to_arrays())

    def __len__(self) -> int:
        """Retained item count (space), not the stream length ``n``."""
        return self._size

    def __repr__(self) -> str:
        return (
            f"KllSketch(k={self.k}, n={self.n}, items={self._size}, "
            f"eps={self.epsilon:.4g})"
        )
