"""Sliding-window wrapper over mergeable synopses.

A sketch cannot delete: none of :class:`~repro.learning.sketch.quantile.
KllSketch`, Count-Min, or the histogram synopsis supports removing an
observation.  :class:`SketchWindowState` recovers sliding-window
semantics the standard way — by *chunking*: the window is a ring of
sub-synopses, new observations fill the newest chunk, and eviction
drops whole chunks from the old end once every observation in them has
logically expired.  Between chunk drops, expired-but-retained
observations are accounted for as :attr:`SketchWindowState.staleness`
(their fraction of the retained mass), which the learner folds into the
reported synopsis error — the approximation is quantified, never
silent.

Memory stays bounded for *any* window size without knowing it up front:
when the ring exceeds ``2 * chunk_count`` chunks, adjacent chunks are
pair-merged and the chunk size doubles, so the ring oscillates between
``chunk_count`` and ``2 * chunk_count`` chunks forever — O(chunk_count
x synopsis size) total, while staleness stays below roughly
``1 / chunk_count``.

Each chunk also carries *exact* Welford moments and extrema of its own
observations, combined across chunks with Chan's parallel formula — so
mean/variance intervals never pay the sketch's shape error, only the
staleness of the not-yet-dropped tail.

The state duck-types what :class:`~repro.streams.operators.
RollingLearnOperator` needs from a partial-fit state (``set_metrics``
is a no-op — there is no drift guard to bind, every statistic here is
add-only) and sets no learner-visible randomness: all structure is a
pure function of the observation sequence, preserving the sharded
determinism contract.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.errors import LearningError

__all__ = ["DEFAULT_CHUNK_COUNT", "SketchWindowState"]

#: Target ring size: the ring holds between this and twice this many
#: chunks, bounding staleness near ``1 / DEFAULT_CHUNK_COUNT``.
DEFAULT_CHUNK_COUNT = 16


class _Chunk:
    """One sub-synopsis plus exact statistics of its observations."""

    __slots__ = ("synopsis", "count", "mean", "m2", "minimum", "maximum")

    def __init__(self, synopsis: object) -> None:
        self.synopsis = synopsis
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        self.synopsis.update(x)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def merged_with(self, other: "_Chunk") -> "_Chunk":
        """Chan's parallel combine; ``self`` is the older chunk."""
        out = _Chunk(self.synopsis.merge(other.synopsis))
        n = self.count + other.count
        out.count = n
        if n:
            delta = other.mean - self.mean
            out.mean = self.mean + delta * other.count / n
            out.m2 = (
                self.m2
                + other.m2
                + delta * delta * self.count * other.count / n
            )
        out.minimum = min(self.minimum, other.minimum)
        out.maximum = max(self.maximum, other.maximum)
        return out


class SketchWindowState:
    """Bounded-memory rolling state over a mergeable synopsis.

    Parameters
    ----------
    factory:
        Zero-argument callable producing an empty synopsis (must expose
        ``update``/``merge``/``nbytes``).  Must be picklable — learners
        pass a bound method, never a lambda, because operator state
        ships to shard workers inside the pickled pipeline.
    chunk_count:
        Ring-size target; live chunks stay in
        ``[chunk_count, 2 * chunk_count]``.
    chunk_size:
        Initial observations per chunk; doubles whenever the ring
        overflows, adapting to the (unknown) window size.
    """

    __slots__ = ("_factory", "chunk_count", "chunk_size", "_chunks",
                 "pending", "_retained", "_frozen", "_frozen_version",
                 "_version")

    def __init__(
        self,
        factory: Callable[[], object],
        chunk_count: int = DEFAULT_CHUNK_COUNT,
        chunk_size: int = 512,
    ) -> None:
        if chunk_count < 2:
            raise LearningError(
                f"chunk count must be >= 2, got {chunk_count}"
            )
        if chunk_size < 1:
            raise LearningError(
                f"chunk size must be >= 1, got {chunk_size}"
            )
        self._factory = factory
        self.chunk_count = int(chunk_count)
        self.chunk_size = int(chunk_size)
        self._chunks: list[_Chunk] = []
        #: Evictions requested but not yet materialized as chunk drops.
        self.pending = 0
        self._retained = 0
        self._frozen = None
        self._frozen_version = -1
        self._version = 0

    # -- maintenance ---------------------------------------------------------

    def add(self, x: float) -> None:
        chunks = self._chunks
        if not chunks or chunks[-1].count >= self.chunk_size:
            chunks.append(_Chunk(self._factory()))
            self._version += 1
            if len(chunks) > 2 * self.chunk_count:
                self._double()
        chunks[-1].add(x)
        self._retained += 1

    def evict(self) -> None:
        """Logically expire the oldest live observation.

        The value itself is irrelevant (eviction is FIFO by
        construction); the oldest chunk is dropped once every one of its
        observations has expired.  The newest chunk is never dropped —
        with a window size >= 1 it always holds live observations.
        """
        self.pending += 1
        chunks = self._chunks
        while len(chunks) > 1 and self.pending >= chunks[0].count:
            dropped = chunks.pop(0)
            self.pending -= dropped.count
            self._retained -= dropped.count
            self._version += 1

    def _double(self) -> None:
        """Pair-merge adjacent chunks, oldest first; double chunk size."""
        chunks = self._chunks
        merged: list[_Chunk] = []
        for i in range(0, len(chunks) - 1, 2):
            merged.append(chunks[i].merged_with(chunks[i + 1]))
        if len(chunks) % 2:
            merged.append(chunks[-1])
        self._chunks = merged
        self.chunk_size *= 2
        self._version += 1

    # -- statistics ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Live (logical) window fill: retained minus pending-evicted."""
        return self._retained - self.pending

    @property
    def staleness(self) -> float:
        """Fraction of retained mass that has already logically expired.

        Every estimate read off the synopsis includes this expired tail;
        it bounds the resulting probability-unit error and is folded
        into the reported synopsis error by the learner layer.
        """
        return self.pending / self._retained if self._retained else 0.0

    def moments(self) -> tuple[float, float, int]:
        """Exact ``(mean, unbiased variance, n)`` of the retained mass.

        Combined across chunks with Chan's formula, oldest to newest —
        deterministic and independent of chunk boundaries up to the
        usual floating-point association of the merge tree.
        """
        n = self._retained
        if n < 2:
            raise LearningError(
                f"sample variance needs >= 2 observations, got {n}"
            )
        combined = self._chunks[0]
        for chunk in self._chunks[1:]:
            combined = _combine_moments(combined, chunk)
        return combined.mean, max(combined.m2 / (n - 1), 0.0), n

    @property
    def minimum(self) -> float:
        return min(chunk.minimum for chunk in self._chunks) \
            if self._chunks else math.inf

    @property
    def maximum(self) -> float:
        return max(chunk.maximum for chunk in self._chunks) \
            if self._chunks else -math.inf

    @property
    def value_range(self) -> float:
        """Spread of the retained observations (0 for empty/constant)."""
        if not self._chunks:
            return 0.0
        spread = self.maximum - self.minimum
        return spread if spread > 0.0 else 0.0

    def merged(self) -> object:
        """One synopsis summarising every retained observation.

        The sealed prefix (all chunks but the newest) is merged once and
        cached until the ring changes; each call merges that cache with
        the small active chunk, so the per-call cost is one synopsis
        merge, not one per chunk.
        """
        chunks = self._chunks
        if not chunks:
            raise LearningError("merged synopsis of an empty window")
        if len(chunks) == 1:
            # Callers treat the result as read-only; with a single chunk
            # the live synopsis is returned without a defensive merge.
            return chunks[0].synopsis
        if self._frozen_version != self._version:
            frozen = chunks[0].synopsis
            for chunk in chunks[1:-1]:
                frozen = frozen.merge(chunk.synopsis)
            self._frozen = frozen
            self._frozen_version = self._version
        return self._frozen.merge(chunks[-1].synopsis)

    # -- operator plumbing ---------------------------------------------------

    def set_metrics(self, resums_counter, drift_histogram) -> None:
        """No drift guard to bind: all statistics here are add-only."""

    @property
    def nbytes(self) -> int:
        """Approximate retained bytes: synopses + per-chunk bookkeeping."""
        return sum(
            chunk.synopsis.nbytes + 6 * 8 for chunk in self._chunks
        ) + 7 * 8

    def __len__(self) -> int:
        return self.count


def _combine_moments(a: _Chunk, b: _Chunk) -> _Chunk:
    """Chan combine of the moment fields only (no synopsis merge)."""
    out = _Chunk.__new__(_Chunk)
    out.synopsis = None
    n = a.count + b.count
    out.count = n
    delta = b.mean - a.mean
    out.mean = a.mean + delta * b.count / n if n else 0.0
    out.m2 = a.m2 + b.m2 + (
        delta * delta * a.count * b.count / n if n else 0.0
    )
    out.minimum = min(a.minimum, b.minimum)
    out.maximum = max(a.maximum, b.maximum)
    return out
