"""Count-Min and AMS sketches: frequency and moment estimation.

Both structures are arrays of integer counters updated by pairwise-
independent hashes of the observation, so ``merge`` is element-wise
integer addition — exactly associative *and* commutative, bit for bit.
That makes them the easy case of the determinism contract
(``docs/PARALLELISM.md``): any grouping or ordering of shard merges
yields the identical counter array.

Hashing floats deterministically is the only subtle point.  We hash the
IEEE-754 bit pattern of the float64 value via splitmix64, canonicalizing
``-0.0`` to ``+0.0`` first (``value + 0.0``) so the two zero encodings
count as one item.  The hash seeds derive from a fixed constant — no
per-instance randomness, so equal configurations always produce equal
sketches for equal inputs.

* :class:`CountMinSketch` — point frequency estimates with one-sided
  additive error ``epsilon * n`` where ``epsilon = e / width``, at
  failure probability ``exp(-depth)`` [Cormode & Muthukrishnan '05].
* :class:`AmsSketch` — the tug-of-war second-moment estimator
  [Alon, Matias & Szegedy '96]: F2 within relative error
  ``O(1/sqrt(width))``, medianed over ``depth`` rows.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import LearningError
from repro.learning.sketch.quantile import splitmix64

__all__ = ["AmsSketch", "CountMinSketch"]

_MASK = 0xFFFFFFFFFFFFFFFF


def _row_seeds(depth: int, salt: int) -> np.ndarray:
    """Fixed per-row hash seeds: a splitmix64 chain from a constant."""
    seeds = np.empty(depth, dtype=np.uint64)
    state = salt
    for row in range(depth):
        state = splitmix64(state)
        seeds[row] = state
    return seeds


def _value_bits(x: float) -> int:
    """Canonical uint64 encoding of a float64 observation."""
    # ``+ 0.0`` folds -0.0 into +0.0; NaN is rejected upstream by
    # Learner._validated_observation.
    return int(np.float64(x + 0.0).view(np.uint64))


class CountMinSketch:
    """Approximate item frequencies in O(depth * width) integer space.

    ``estimate(x)`` never under-counts and over-counts by at most
    ``epsilon * n`` (``epsilon = e / width``) except with probability
    ``exp(-depth)``.
    """

    __slots__ = ("depth", "width", "_seeds", "counts", "n")

    _SALT = 0xC0554D1E_5EED

    def __init__(self, width: int = 1024, depth: int = 5) -> None:
        if width < 8:
            raise LearningError(f"count-min width must be >= 8, got {width}")
        if depth < 1:
            raise LearningError(f"count-min depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self.width = int(width)
        self._seeds = _row_seeds(self.depth, self._SALT)
        self.counts = np.zeros((self.depth, self.width), dtype=np.int64)
        self.n = 0

    @property
    def epsilon(self) -> float:
        """Additive frequency error as a fraction of the stream length."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Probability that :meth:`estimate` exceeds the epsilon bound."""
        return math.exp(-self.depth)

    def _columns(self, x: float) -> np.ndarray:
        bits = _value_bits(x)
        cols = np.empty(self.depth, dtype=np.int64)
        for row in range(self.depth):
            cols[row] = splitmix64((bits ^ int(self._seeds[row])) & _MASK) \
                % self.width
        return cols

    def update(self, x: float, count: int = 1) -> None:
        cols = self._columns(x)
        self.counts[np.arange(self.depth), cols] += count
        self.n += count

    def estimate(self, x: float) -> int:
        """Upper-biased frequency estimate: min over rows."""
        cols = self._columns(x)
        return int(self.counts[np.arange(self.depth), cols].min())

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Element-wise sum: exactly associative and commutative."""
        if not isinstance(other, CountMinSketch):
            raise LearningError(
                f"cannot merge CountMinSketch with {type(other).__name__}"
            )
        if (self.width, self.depth) != (other.width, other.depth):
            raise LearningError(
                "cannot merge count-min sketches of different shapes: "
                f"{self.depth}x{self.width} vs {other.depth}x{other.width}"
            )
        merged = CountMinSketch(self.width, self.depth)
        np.add(self.counts, other.counts, out=merged.counts)
        merged.n = self.n + other.n
        return merged

    @property
    def nbytes(self) -> int:
        return self.counts.nbytes + self._seeds.nbytes

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        meta = np.asarray([self.width, self.depth, self.n], dtype=np.int64)
        return meta, self.counts.ravel().copy()

    @classmethod
    def from_arrays(
        cls, meta: np.ndarray, counts: np.ndarray
    ) -> "CountMinSketch":
        width, depth, n = (int(v) for v in meta)
        sketch = cls(width, depth)
        sketch.counts = (
            np.asarray(counts, dtype=np.int64).reshape(depth, width).copy()
        )
        sketch.n = n
        return sketch

    def __reduce__(self):
        return (CountMinSketch.from_arrays, self.to_arrays())

    def __repr__(self) -> str:
        return (
            f"CountMinSketch({self.depth}x{self.width}, n={self.n}, "
            f"eps={self.epsilon:.4g})"
        )


class AmsSketch:
    """Tug-of-war estimator of the second frequency moment (F2).

    Each counter accumulates ``sign(x) * count`` for a 4-wise-style hash
    sign; ``second_moment`` averages squared counters within a row and
    medians across rows, giving F2 within relative error
    ``O(1/sqrt(width))`` with failure probability shrinking in depth.
    """

    __slots__ = ("depth", "width", "_seeds", "counts", "n")

    _SALT = 0xA5A5_70F5_EED5

    def __init__(self, width: int = 256, depth: int = 5) -> None:
        if width < 8:
            raise LearningError(f"AMS width must be >= 8, got {width}")
        if depth < 1:
            raise LearningError(f"AMS depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self.width = int(width)
        self._seeds = _row_seeds(self.depth, self._SALT)
        self.counts = np.zeros((self.depth, self.width), dtype=np.int64)
        self.n = 0

    @property
    def relative_error(self) -> float:
        """Standard-error scale of :meth:`second_moment`."""
        return 1.0 / math.sqrt(self.width)

    def update(self, x: float, count: int = 1) -> None:
        bits = _value_bits(x)
        for row in range(self.depth):
            h = splitmix64((bits ^ int(self._seeds[row])) & _MASK)
            col = h % self.width
            sign = 1 if (h >> 32) & 1 else -1
            self.counts[row, col] += sign * count
        self.n += count

    def second_moment(self) -> float:
        """Estimated F2 = sum over items of frequency**2."""
        if self.n == 0:
            return 0.0
        row_estimates = np.mean(
            self.counts.astype(np.float64) ** 2, axis=1
        ) * self.width
        return float(np.median(row_estimates))

    def merge(self, other: "AmsSketch") -> "AmsSketch":
        """Element-wise sum: exactly associative and commutative."""
        if not isinstance(other, AmsSketch):
            raise LearningError(
                f"cannot merge AmsSketch with {type(other).__name__}"
            )
        if (self.width, self.depth) != (other.width, other.depth):
            raise LearningError(
                "cannot merge AMS sketches of different shapes: "
                f"{self.depth}x{self.width} vs {other.depth}x{other.width}"
            )
        merged = AmsSketch(self.width, self.depth)
        np.add(self.counts, other.counts, out=merged.counts)
        merged.n = self.n + other.n
        return merged

    @property
    def nbytes(self) -> int:
        return self.counts.nbytes + self._seeds.nbytes

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        meta = np.asarray([self.width, self.depth, self.n], dtype=np.int64)
        return meta, self.counts.ravel().copy()

    @classmethod
    def from_arrays(cls, meta: np.ndarray, counts: np.ndarray) -> "AmsSketch":
        width, depth, n = (int(v) for v in meta)
        sketch = cls(width, depth)
        sketch.counts = (
            np.asarray(counts, dtype=np.int64).reshape(depth, width).copy()
        )
        sketch.n = n
        return sketch

    def __reduce__(self):
        return (AmsSketch.from_arrays, self.to_arrays())

    def __repr__(self) -> str:
        return (
            f"AmsSketch({self.depth}x{self.width}, n={self.n}, "
            f"rel_err~{self.relative_error:.4g})"
        )
