"""Bounded-memory sketch synopses for million-tuple windows.

Every exact learner retains its full sample (``EmpiricalLearner`` keeps
the observations, ``PartialFitState`` mirrors the window as a multiset),
so memory grows O(window x keys).  This package provides *synopses* —
compact, mergeable summaries with quantified error — that stand in for
the full sample and convert memory from a scaling wall into an accuracy
knob:

* :class:`~repro.learning.sketch.quantile.KllSketch` — a KLL-style
  mergeable quantile sketch with deterministic, seed-stable compaction
  and a self-reported rank-error bound;
* :class:`~repro.learning.sketch.frequency.CountMinSketch` /
  :class:`~repro.learning.sketch.frequency.AmsSketch` — frequency and
  second-moment estimation with exactly associative integer merges;
* :class:`~repro.learning.sketch.histogram.HistogramSynopsis` — a
  bounded-bucket probabilistic-histogram synopsis over pinned edges;
* :class:`~repro.learning.sketch.window.SketchWindowState` — the
  sliding-window wrapper: a ring of per-chunk sub-synopses with exact
  chunk statistics, whole-chunk eviction, and pair-merge doubling that
  keeps the live chunk count bounded for any window size;
* :mod:`~repro.learning.sketch.learners` — the ``Learner`` registry
  entries (``"sketch-quantile"``, ``"sketch-frequency"``,
  ``"sketch-histogram"``) whose ``partial_*`` hooks ride the window
  state and whose accuracy records fold the synopsis error into the
  Lemma 1/2 intervals (see ``docs/SKETCHES.md``).
"""

from repro.learning.sketch.frequency import AmsSketch, CountMinSketch
from repro.learning.sketch.histogram import HistogramSynopsis
from repro.learning.sketch.learners import (
    FrequencySketchLearner,
    HistogramSynopsisLearner,
    QuantileSketchLearner,
)
from repro.learning.sketch.quantile import KllSketch
from repro.learning.sketch.window import SketchWindowState

__all__ = [
    "AmsSketch",
    "CountMinSketch",
    "FrequencySketchLearner",
    "HistogramSynopsis",
    "HistogramSynopsisLearner",
    "KllSketch",
    "QuantileSketchLearner",
    "SketchWindowState",
]
