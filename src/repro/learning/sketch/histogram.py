"""Bounded-bucket probabilistic-histogram synopsis.

A histogram over *pinned* bucket edges is the rare synopsis that is both
bounded and exact: per-bucket counts are integers, so bin probabilities
carry no synopsis error at all and ``merge`` is element-wise addition —
exactly associative and commutative (cf. Cormode & Garofalakis,
*Histograms and Wavelets on Probabilistic Data*).  The approximation
enters in two quantified places only:

* **Moments.**  The synopsis forgets where inside a bucket each value
  fell, so mean/variance read off bucket midpoints err by at most half
  the widest bucket (:attr:`HistogramSynopsis.value_error`) per value.
  (The sliding-window wrapper keeps exact per-chunk Welford moments, so
  this bound is only needed when the synopsis stands alone.)
* **Clamping.**  Observations outside the pinned range are folded into
  the nearest end bucket and counted; the fraction clamped is the
  probability-unit error :attr:`HistogramSynopsis.epsilon` on bin
  heights.

Edges must match for two synopses to merge; the learner layer pins them
at construction time, which is the same restriction the exact
``HistogramLearner`` already imposes for its incremental path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LearningError

__all__ = ["HistogramSynopsis"]


class HistogramSynopsis:
    """Integer bucket counts over fixed edges, with clamping accounting."""

    __slots__ = ("edges", "counts", "n", "clamped", "minimum", "maximum")

    def __init__(self, edges: "np.ndarray | list[float]") -> None:
        arr = np.asarray(edges, dtype=np.float64).ravel()
        if arr.size < 2:
            raise LearningError(
                f"histogram synopsis needs >= 2 edges, got {arr.size}"
            )
        if not np.all(np.isfinite(arr)):
            raise LearningError("histogram synopsis edges must be finite")
        if not np.all(np.diff(arr) > 0):
            raise LearningError(
                "histogram synopsis edges must be strictly increasing"
            )
        self.edges = arr
        self.counts = np.zeros(arr.size - 1, dtype=np.int64)
        self.n = 0
        #: How many observations fell outside [edges[0], edges[-1]] and
        #: were folded into the end buckets.
        self.clamped = 0
        self.minimum = np.inf
        self.maximum = -np.inf

    @property
    def n_bins(self) -> int:
        return self.counts.size

    def update(self, x: float, count: int = 1) -> None:
        if x < self.edges[0] or x > self.edges[-1]:
            self.clamped += count
        index = int(np.searchsorted(self.edges, x, side="right")) - 1
        index = min(max(index, 0), self.n_bins - 1)
        self.counts[index] += count
        self.n += count
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    # -- error model ---------------------------------------------------------

    @property
    def epsilon(self) -> float:
        """Probability-unit error on bin heights: the clamped fraction.

        In-range observations land in their exact bucket, so bin heights
        are exact up to the mass that arrived outside the pinned range.
        """
        return self.clamped / self.n if self.n else 0.0

    @property
    def value_error(self) -> float:
        """Per-value error of midpoint-based moment estimates."""
        return float(np.diff(self.edges).max()) / 2.0

    # -- estimates -----------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        if self.n == 0:
            raise LearningError("probabilities of an empty synopsis")
        return self.counts / self.n

    def midpoint_moments(self) -> tuple[float, float]:
        """(mean, biased variance) using bucket midpoints as values."""
        if self.n == 0:
            raise LearningError("moments of an empty synopsis")
        midpoints = (self.edges[:-1] + self.edges[1:]) / 2.0
        weights = self.counts / self.n
        mean = float(np.dot(weights, midpoints))
        variance = float(np.dot(weights, (midpoints - mean) ** 2))
        return mean, variance

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "HistogramSynopsis") -> "HistogramSynopsis":
        """Element-wise count sum: exactly associative and commutative."""
        if not isinstance(other, HistogramSynopsis):
            raise LearningError(
                f"cannot merge HistogramSynopsis with {type(other).__name__}"
            )
        if self.edges.shape != other.edges.shape or not np.array_equal(
            self.edges, other.edges
        ):
            raise LearningError(
                "cannot merge histogram synopses with different edges"
            )
        merged = HistogramSynopsis(self.edges)
        np.add(self.counts, other.counts, out=merged.counts)
        merged.n = self.n + other.n
        merged.clamped = self.clamped + other.clamped
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    # -- transport -----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return self.edges.nbytes + self.counts.nbytes

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        extrema = np.asarray(
            [self.minimum, self.maximum], dtype=np.float64
        ).view(np.int64)
        meta = np.asarray(
            [self.n, self.clamped, *self.counts.tolist(), *extrema.tolist()],
            dtype=np.int64,
        )
        return meta, self.edges.copy()

    @classmethod
    def from_arrays(
        cls, meta: np.ndarray, edges: np.ndarray
    ) -> "HistogramSynopsis":
        synopsis = cls(edges)
        meta_list = [int(v) for v in meta]
        synopsis.n = meta_list[0]
        synopsis.clamped = meta_list[1]
        synopsis.counts = np.asarray(
            meta_list[2 : 2 + synopsis.n_bins], dtype=np.int64
        )
        extrema = np.asarray(
            meta_list[2 + synopsis.n_bins : 4 + synopsis.n_bins],
            dtype=np.int64,
        ).view(np.float64)
        synopsis.minimum = float(extrema[0])
        synopsis.maximum = float(extrema[1])
        return synopsis

    def __reduce__(self):
        return (HistogramSynopsis.from_arrays, self.to_arrays())

    def __repr__(self) -> str:
        return (
            f"HistogramSynopsis(bins={self.n_bins}, n={self.n}, "
            f"clamped={self.clamped})"
        )
