"""Weighted-sample learning — the §VII future-work extension.

Recent observations may deserve more weight than stale ones.  The
:class:`WeightedLearner` takes observation ages, computes exponential-decay
weights, fits a weighted Gaussian, and exposes accuracy info through the
Kish effective sample size so intervals widen as the sample decays.

It is a full :class:`~repro.learning.base.Learner`: without ages every
observation gets unit weight (an ordinary Gaussian fit), so the learner
drops into any ingestion path that chooses learners by name
(``make_learner("weighted", half_life=...)``), and its product is a
:class:`~repro.learning.base.LearnedDistribution` that additionally
carries the weights.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.accuracy import AccuracyInfo
from repro.core.effective import (
    effective_sample_size,
    exponential_weights,
    weighted_accuracy,
    weighted_stats,
)
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import LearningError
from repro.learning.base import LearnedDistribution, Learner

__all__ = ["WeightedLearnedDistribution", "WeightedLearner"]


@dataclasses.dataclass(frozen=True)
class WeightedLearnedDistribution(LearnedDistribution):
    """A weighted fit: distribution + sample + weights + effective n."""

    weights: np.ndarray = dataclasses.field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.weights is None:
            raise LearningError("weighted fit needs observation weights")
        arr = np.asarray(self.weights, dtype=float).ravel()
        if arr.size != self.sample.size:
            raise LearningError(
                f"{self.sample.size} observations but {arr.size} weights"
            )
        object.__setattr__(self, "weights", arr)

    @property
    def effective_size(self) -> float:
        return effective_sample_size(self.weights)

    def accuracy(self, confidence: float = 0.95) -> AccuracyInfo:
        """Accuracy via the Kish effective sample size (not the raw n)."""
        return weighted_accuracy(self.sample, self.weights, confidence)


class WeightedLearner(Learner):
    """Learns from (value, age) observations with exponential decay.

    ``half_life`` is in the same unit as the ages; an observation one
    half-life old counts half as much as a fresh one.  With no ages
    every observation weighs 1 and the fit equals the plain weighted-
    stats Gaussian over the sample.
    """

    def __init__(self, half_life: float = 1.0) -> None:
        if half_life <= 0:
            raise LearningError(f"half-life must be > 0, got {half_life}")
        self.half_life = half_life

    def learn(
        self,
        sample: "np.ndarray | list[float]",
        ages: "np.ndarray | list[float] | None" = None,
    ) -> WeightedLearnedDistribution:
        vals = self._validated(sample, minimum=2)
        if ages is None:
            weights = np.ones_like(vals)
        else:
            age_arr = np.asarray(ages, dtype=float).ravel()
            if vals.size != age_arr.size:
                raise LearningError(
                    f"{vals.size} values but {age_arr.size} ages"
                )
            weights = exponential_weights(age_arr, self.half_life)
        ws = weighted_stats(vals, weights)
        return WeightedLearnedDistribution(
            GaussianDistribution(ws.mean, ws.variance), vals, weights
        )
