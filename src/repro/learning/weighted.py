"""Weighted-sample learning — the §VII future-work extension.

Recent observations may deserve more weight than stale ones.  The
:class:`WeightedLearner` takes observation ages, computes exponential-decay
weights, fits a weighted Gaussian, and exposes accuracy info through the
Kish effective sample size so intervals widen as the sample decays.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.accuracy import AccuracyInfo
from repro.core.effective import (
    effective_sample_size,
    exponential_weights,
    weighted_accuracy,
    weighted_stats,
)
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import LearningError

__all__ = ["WeightedLearnedDistribution", "WeightedLearner"]


@dataclasses.dataclass(frozen=True)
class WeightedLearnedDistribution:
    """A weighted fit: distribution + sample + weights + effective n."""

    distribution: GaussianDistribution
    sample: np.ndarray
    weights: np.ndarray

    @property
    def effective_size(self) -> float:
        return effective_sample_size(self.weights)

    def accuracy(self, confidence: float = 0.95) -> AccuracyInfo:
        return weighted_accuracy(self.sample, self.weights, confidence)


class WeightedLearner:
    """Learns from (value, age) observations with exponential decay.

    ``half_life`` is in the same unit as the ages; an observation one
    half-life old counts half as much as a fresh one.
    """

    def __init__(self, half_life: float) -> None:
        if half_life <= 0:
            raise LearningError(f"half-life must be > 0, got {half_life}")
        self.half_life = half_life

    def learn(
        self,
        values: "np.ndarray | list[float]",
        ages: "np.ndarray | list[float]",
    ) -> WeightedLearnedDistribution:
        vals = np.asarray(values, dtype=float).ravel()
        age_arr = np.asarray(ages, dtype=float).ravel()
        if vals.size != age_arr.size:
            raise LearningError(
                f"{vals.size} values but {age_arr.size} ages"
            )
        if vals.size < 2:
            raise LearningError("need at least 2 observations")
        weights = exponential_weights(age_arr, self.half_life)
        ws = weighted_stats(vals, weights)
        return WeightedLearnedDistribution(
            GaussianDistribution(ws.mean, ws.variance), vals, weights
        )
