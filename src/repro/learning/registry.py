"""Learner registry: config-friendly names for the built-in learners.

Lets ingestion paths (and user config files) choose a learner by name —
``"histogram"``, ``"gaussian"``, ``"empirical"``, ``"kde"`` — with
keyword arguments forwarded to the learner's constructor.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import LearningError
from repro.learning.base import Learner
from repro.learning.empirical_learner import EmpiricalLearner
from repro.learning.gaussian_learner import GaussianLearner
from repro.learning.histogram_learner import HistogramLearner
from repro.learning.kde_learner import KdeLearner
from repro.learning.sketch.learners import (
    FrequencySketchLearner,
    HistogramSynopsisLearner,
    QuantileSketchLearner,
)
from repro.learning.weighted import WeightedLearner

__all__ = [
    "LEARNERS",
    "make_learner",
    "make_rolling_learner",
    "register_learner",
]

LEARNERS: dict[str, Callable[..., Learner]] = {
    "histogram": HistogramLearner,
    "gaussian": GaussianLearner,
    "empirical": EmpiricalLearner,
    "kde": KdeLearner,
    "weighted": WeightedLearner,
    # Bounded-memory sketch synopses (repro.learning.sketch): memory
    # stays O(sketch) for any window size, at a quantified widening of
    # the emitted accuracy intervals (docs/SKETCHES.md).
    "sketch-quantile": QuantileSketchLearner,
    "sketch-frequency": FrequencySketchLearner,
    "sketch-histogram": HistogramSynopsisLearner,
}


def make_learner(name: str, **kwargs: object) -> Learner:
    """Instantiate a registered learner by name."""
    try:
        factory = LEARNERS[name]
    except KeyError:
        raise LearningError(
            f"unknown learner {name!r}; registered: {sorted(LEARNERS)}"
        ) from None
    return factory(**kwargs)


def make_rolling_learner(name: str, **kwargs: object) -> Learner:
    """Instantiate a registered learner and require incremental support.

    The rolling stream operators
    (:class:`~repro.streams.operators.RollingLearnOperator`) maintain a
    fit per slide through the ``partial_*`` hooks; a learner without
    them would silently degrade to O(window) relearning, so this raises
    :class:`LearningError` up front instead.
    """
    learner = make_learner(name, **kwargs)
    if not learner.supports_partial:
        raise LearningError(
            f"learner {name!r} does not support incremental "
            f"(partial_add/partial_evict) maintenance; incremental "
            f"histogram learning additionally needs fixed bucket edges"
        )
    return learner


def register_learner(
    name: str, factory: Callable[..., Learner], replace: bool = False
) -> None:
    """Add a custom learner factory to the registry."""
    if not name:
        raise LearningError("learner name must be non-empty")
    if name in LEARNERS and not replace:
        raise LearningError(
            f"learner {name!r} already registered (pass replace=True)"
        )
    LEARNERS[name] = factory
