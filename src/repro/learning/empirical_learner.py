"""Empirical (sample-is-the-distribution) learning.

The least lossy learner: the learned distribution is the empirical
distribution of the observations themselves.  Useful when downstream query
processing is Monte-Carlo anyway.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.empirical import EmpiricalDistribution
from repro.learning.base import Learner, LearnedDistribution

__all__ = ["EmpiricalLearner"]


class EmpiricalLearner(Learner):
    """Wraps the sample as an :class:`EmpiricalDistribution`."""

    def learn(self, sample: "np.ndarray | list[float]") -> LearnedDistribution:
        arr = self._validated(sample, minimum=1)
        return LearnedDistribution(EmpiricalDistribution(arr), arr)
